#!/usr/bin/env python
"""One-shot reproduction verifier: every shape target, PASS/FAIL.

Runs all the paper's experiments through the analytic model and checks the
qualitative claims listed in DESIGN.md §4 — the same assertions the
benchmark suite enforces, collected into a single human-readable scorecard.

Run:  python scripts/verify_reproduction.py      (exit code 0 iff all pass)

With ``--trace-out PATH`` the entire scorecard run streams telemetry
(spans, simulated kernels, metrics) to a JSONL file; convert it with
``python -m repro trace PATH`` and validate with ``scripts/check_trace.py``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figures import (
    eq345_arithmetic_intensity,
    fig1_dense_vs_sparse_breakdown,
    fig3_cstf_breakdown,
    fig4_cuadmm_optimizations,
    fig5_6_end_to_end_speedup,
    fig7_8_kernel_speedups,
    fig9_10_mu_hals_speedup,
)

CHECKS: list[tuple[str, bool]] = []


def check(label: str, condition: bool) -> None:
    CHECKS.append((label, bool(condition)))
    print(f"  [{'PASS' if condition else 'FAIL'}] {label}")


def run_checks() -> int:
    print("Figure 1 — dense vs sparse breakdown")
    dense, sparse = fig1_dense_vs_sparse_breakdown()
    check("MTTKRP dominates dense TF", dense.dominant == "MTTKRP")
    check("UPDATE dominates sparse TF", sparse.dominant == "UPDATE")

    print("Figure 3 — cSTF breakdown on the three largest tensors")
    for row in fig3_cstf_breakdown():
        check(f"UPDATE dominates {row.label}", row.dominant == "UPDATE")

    print("Figure 4 — cuADMM optimizations")
    rows = fig4_cuadmm_optimizations(inner_iters=1)
    small = [r.speedup_both for r in rows if r.rows < 20_000]
    large = [r.speedup_both for r in rows if r.rows > 1_000_000]
    check("small factor matrices: ~1.0-1.3x", max(small) < 1.5)
    check("speedup grows with factor size", min(large) > max(small))
    check("PI > OF on large modes",
          all(r.speedup_pi > r.speedup_of for r in rows if r.rows > 1_000_000))
    check("combined best everywhere",
          all(r.speedup_both >= 0.95 * max(r.speedup_of, r.speedup_pi) for r in rows))

    print("Figures 5/6 — end-to-end speedup vs SPLATT")
    a100 = fig5_6_end_to_end_speedup(device="a100")
    h100 = fig5_6_end_to_end_speedup(device="h100")
    check(f"A100 gmean in paper's decade ({a100.gmean:.2f}x vs 5.10x)",
          2.0 < a100.gmean < 20.0)
    check(f"H100 gmean in paper's decade ({h100.gmean:.2f}x vs 7.01x)",
          2.0 < h100.gmean < 25.0)
    check("GPU wins on every tensor (A100)", a100.min_speedup > 1.0)
    check("H100 > A100 overall", h100.gmean > a100.gmean)
    by_name = dict(zip(a100.labels, a100.speedups))
    check("large group beats small group",
          min(by_name[k] for k in ("flickr", "delicious", "nell1", "amazon"))
          > max(by_name[k] for k in ("nips", "uber", "chicago")))

    print("Figures 7/8 — MTTKRP vs ADMM kernel speedups")
    kernels = {r.dataset: r for r in fig7_8_kernel_speedups(device="a100")}
    check("short-mode tensors favor MTTKRP",
          all(kernels[n].mttkrp_speedup > kernels[n].admm_speedup
              for n in ("nips", "uber", "chicago")))
    check("long-mode tensors have large ADMM gains",
          all(kernels[n].admm_speedup > 10.0
              for n in ("flickr", "delicious", "nell1", "amazon")))
    check("VAST is the outlier",
          kernels["vast"].mttkrp_speedup < 1.0 and kernels["vast"].admm_speedup > 5.0)

    print("Figures 9/10 — MU and HALS")
    f9 = fig9_10_mu_hals_speedup(device="a100")
    f10 = fig9_10_mu_hals_speedup(device="h100")
    for method in ("mu", "hals"):
        check(f"{method.upper()} wins overall (A100 gmean {f9[method].gmean:.2f}x)",
              f9[method].gmean > 2.0)
        check(f"{method.upper()}: H100 > A100", f10[method].gmean > f9[method].gmean)

    print("Equations 3-5 — arithmetic intensity")
    ai = eq345_arithmetic_intensity()
    check("AI(16) = 0.29", abs(ai[16] - 0.29) < 0.01)
    check("AI(32) = 0.47", abs(ai[32] - 0.47) < 0.01)
    check("AI(64) = 0.83", abs(ai[64] - 0.83) < 0.01)

    passed = sum(ok for _, ok in CHECKS)
    print(f"\n{passed}/{len(CHECKS)} shape targets reproduced")
    return 0 if passed == len(CHECKS) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="reproduction scorecard")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="stream run telemetry to a JSONL file")
    args = parser.parse_args(argv)
    if args.trace_out:
        # One ambient session for the whole scorecard: every cstf() call
        # inside the figure functions (telemetry="auto") joins it.
        from repro.obs import telemetry_session

        with telemetry_session(jsonl_path=args.trace_out, kind="verify_reproduction"):
            code = run_checks()
        print(f"telemetry written to {args.trace_out}")
        return code
    return run_checks()


if __name__ == "__main__":
    raise SystemExit(main())
