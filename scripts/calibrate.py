"""Calibrate the free machine-model constants against Figure 5 of the paper.

The device peaks/bandwidths/caches come from Table 1; what Table 1 does not
give are achievable-efficiency constants (stream/gather/random fractions,
format locality). This script grid-searches those against the paper's
published per-tensor A100 end-to-end speedups (Figure 5) in log space, and
reports the best setting plus the resulting per-tensor table for both GPUs.

Run:  python scripts/calibrate.py

With ``--trace-out PATH`` the *final* per-device evaluation at the best
setting streams telemetry to a JSONL file. The grid search itself is never
traced — it runs thousands of model evaluations and would drown the stream.
"""

from __future__ import annotations

import argparse
import itertools
import math

from repro.data.frostt import FROSTT_TABLE2
from repro.machine import spec as spec_mod
from repro.machine import analytic as analytic_mod
from repro.baselines.splatt import splatt_cstf
from repro.core import cstf
from repro.core.config import CstfConfig

# Paper Figure 5 (A100, R=32) per-tensor end-to-end speedups vs SPLATT.
PAPER_A100 = {
    "nips": 2.11,
    "uber": 1.47,
    "chicago": 1.55,
    "vast": 2.60,
    "enron": 3.99,
    "nell2": 2.43,
    "flickr": 12.61,
    "delicious": 24.74,
    "nell1": 7.52,
    "amazon": 41.59,
}


def model_speedups(device: str) -> dict[str, float]:
    out = {}
    for ds in FROSTT_TABLE2:
        stats = ds.stats()
        cpu = splatt_cstf(stats, rank=32, max_iters=1)
        gpu = cstf(
            stats,
            CstfConfig(
                rank=32, max_iters=1, update="cuadmm", device=device,
                mttkrp_format="blco", compute_fit=False,
            ),
        )
        out[ds.name] = cpu.per_iteration_seconds() / gpu.per_iteration_seconds()
    return out


def loss(speedups: dict[str, float]) -> float:
    return sum((math.log(speedups[k]) - math.log(v)) ** 2 for k, v in PAPER_A100.items())


def set_params(cpu_stream, cpu_gather, cpu_random, gpu_gather, gpu_random, blco_loc, csf_loc):
    spec_mod.A100 = spec_mod.A100.with_(
        gather_efficiency=gpu_gather, random_efficiency=gpu_random
    )
    spec_mod.H100 = spec_mod.H100.with_(
        gather_efficiency=min(gpu_gather * 1.08, 1.0), random_efficiency=gpu_random * 1.25
    )
    spec_mod.ICELAKE_XEON = spec_mod.ICELAKE_XEON.with_(
        stream_efficiency=cpu_stream,
        gather_efficiency=cpu_gather,
        random_efficiency=cpu_random,
    )
    spec_mod._DEVICES.update(
        a100=spec_mod.A100, h100=spec_mod.H100,
        icelake=spec_mod.ICELAKE_XEON, cpu=spec_mod.ICELAKE_XEON, xeon=spec_mod.ICELAKE_XEON,
    )
    analytic_mod.MTTKRP_LOCALITY["blco"] = blco_loc
    analytic_mod.MTTKRP_LOCALITY["csf"] = csf_loc


def main(argv=None):
    parser = argparse.ArgumentParser(description="calibrate machine-model constants")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="stream telemetry of the final evaluation to a JSONL file")
    args = parser.parse_args(argv)
    grid = {
        "cpu_stream": [0.45, 0.6, 0.8],
        "cpu_gather": [0.35, 0.5],
        "cpu_random": [0.08, 0.14, 0.22, 0.35],
        "gpu_gather": [0.45, 0.6],
        "gpu_random": [0.06, 0.10, 0.16],
        "blco_loc": [0.1, 0.3, 0.6],
        "csf_loc": [0.03, 0.06, 0.15],
    }
    best = None
    keys = list(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        set_params(**params)
        try:
            sp = model_speedups("a100")
            score = loss(sp)
        except Exception:
            continue
        if best is None or score < best[0]:
            best = (score, params, sp)
            print(f"loss={score:.3f}  {params}")
    score, params, sp = best
    print("\nBEST:", params, "loss:", round(score, 3))
    set_params(**params)

    def final_tables():
        for dev in ("a100", "h100"):
            table = model_speedups(dev)
            gmean = math.exp(sum(math.log(v) for v in table.values()) / len(table))
            print(f"\n{dev}: gmean={gmean:.2f}")
            for k, v in table.items():
                target = PAPER_A100[k] if dev == "a100" else None
                print(f"  {k:10s} {v:7.2f}x" + (f"   (paper {target})" if target else ""))

    if args.trace_out:
        from repro.obs import telemetry_session

        with telemetry_session(jsonl_path=args.trace_out, kind="calibrate",
                               **{k: float(v) for k, v in params.items()}):
            final_tables()
        print(f"\ntelemetry written to {args.trace_out}")
    else:
        final_tables()


if __name__ == "__main__":
    main()
