#!/usr/bin/env python
"""Validate telemetry JSONL files against the published schema.

Checks every line of each file against ``repro.obs.schema.TELEMETRY_SCHEMA``
(the stable on-disk contract documented in docs/OBSERVABILITY.md) and then
confirms the stream converts to a loadable Chrome trace. Exit code 0 iff
every file passes.

``--require-worker-spans`` adds the trace-completeness gate for captured
sharded runs: every ``shard`` span must have at least one descendant span
carrying worker attribution (a ``shard_kernel`` shipped back from the
worker that executed it) — the guarantee that cross-process telemetry is
not silently dropping kernel spans.

``--require-transport-attr`` adds the transport-provenance gate: every
``shard`` span must carry a ``transport`` attr naming one of the known
transports (``inline``/``threads``/``pipe``/``shm``), so a trace *proves*
which shard transport actually ran (e.g. that an shm-enabled chaos run did
not silently fall back to pipes).

``--require-pressure-events`` adds the pressure-evidence gate for the
resource chaos stage: the trace must contain at least one
pressure-degradation event (``worker_recycled``/``transport_downgraded``/
``checkpoint_skipped``/``store_skipped``) or, as a fallback for runs whose
sink itself degraded, a nonzero pressure counter in the summary snapshot —
proof that injected resource pressure actually exercised the degraded
paths.

Each file is read exactly once: the parsed records feed the schema check
(which counts them), the completeness gate, and the Chrome-trace
conversion.

Run:  python scripts/check_trace.py [--quiet] run.jsonl [more.jsonl ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import telemetry_to_chrome_trace  # noqa: E402
from repro.obs.schema import validate_record  # noqa: E402
from repro.obs.sinks import read_jsonl  # noqa: E402


def check_worker_spans(records) -> list[str]:
    """The trace-completeness gate: no executed shard may be span-silent.

    Every ``shard`` span needs ≥1 descendant span with ``worker``
    attribution; a sharded trace with no shard spans at all also fails —
    that is the exact symptom this gate exists to catch.
    """
    spans = [r for r in records if r.get("type") == "span"]
    shard_spans = [s for s in spans if s.get("name") == "shard"]
    if not shard_spans:
        return ["--require-worker-spans: trace contains no shard spans"]
    attributed = {s.get("parent") for s in spans if s.get("worker")}
    problems = []
    for s in shard_spans:
        if s["id"] not in attributed:
            problems.append(
                f"--require-worker-spans: shard span #{s['id']} "
                f"(shard {s.get('attrs', {}).get('shard')}) has no "
                f"worker-attributed kernel span"
            )
    return problems


_TRANSPORTS = ("inline", "threads", "pipe", "shm")


def check_transport_attrs(records) -> list[str]:
    """The transport-provenance gate: every shard span names its transport.

    A sharded trace with no shard spans at all also fails — proving "which
    transport ran" requires shards to have run at all.
    """
    shard_spans = [
        r for r in records
        if r.get("type") == "span" and r.get("name") == "shard"
    ]
    if not shard_spans:
        return ["--require-transport-attr: trace contains no shard spans"]
    problems = []
    for s in shard_spans:
        transport = s.get("attrs", {}).get("transport")
        if transport not in _TRANSPORTS:
            problems.append(
                f"--require-transport-attr: shard span #{s['id']} "
                f"(shard {s.get('attrs', {}).get('shard')}) has transport "
                f"attr {transport!r}, expected one of {_TRANSPORTS}"
            )
    return problems


#: Resilience event kinds that prove pressure-triggered degradation ran.
_PRESSURE_KINDS = (
    "worker_recycled",
    "transport_downgraded",
    "checkpoint_skipped",
    "store_skipped",
)

#: Summary counters accepted as fallback evidence (a degraded sink drops
#: event records, but the final metrics snapshot still carries the tally).
_PRESSURE_COUNTERS = (
    "engine.proc.workers_recycled",
    "engine.shm.downgrades",
    "resilience.checkpoint.skips",
    "engine.store.write_errors",
    "obs.sink.dropped",
)


def check_pressure_events(records) -> list[str]:
    """The pressure-evidence gate: the trace must prove degradation fired.

    A resource-pressure chaos run that shows no ``worker_recycled`` /
    ``transport_downgraded`` / ``checkpoint_skipped`` / ``store_skipped``
    event — and no pressure counter in the summary snapshot — means the
    injected pressure silently did nothing, which is exactly the failure
    this gate exists to catch.
    """
    if any(
        r.get("type") == "event" and r.get("kind") in _PRESSURE_KINDS
        for r in records
    ):
        return []
    for r in records:
        if r.get("type") != "summary":
            continue
        counters = (r.get("metrics") or {}).get("counters") or {}
        if any(counters.get(c, 0) > 0 for c in _PRESSURE_COUNTERS):
            return []
    return [
        "--require-pressure-events: trace contains no pressure-degradation "
        f"events ({'/'.join(_PRESSURE_KINDS)}) and no pressure counters "
        f"({'/'.join(_PRESSURE_COUNTERS)}) in the summary"
    ]


def check_file(
    path: str, *, require_worker_spans: bool = False,
    require_transport_attr: bool = False, require_pressure_events: bool = False,
) -> tuple[list[str], int]:
    """Validate *path*; returns ``(problems, record_count)``.

    The file is opened once, with the handle released before validation
    starts; the count is taken from the records actually validated, so it
    cannot drift from what the schema check saw.
    """
    with open(path, encoding="utf-8") as fh:
        records = read_jsonl(fh)
    if not records:
        return (["file contains no telemetry records"], 0)
    errors: list[str] = []
    for i, rec in enumerate(records, start=1):
        errors.extend(f"line {i}: {e}" for e in validate_record(rec))
    if errors:
        return errors, len(records)
    if require_worker_spans:
        errors = check_worker_spans(records)
        if errors:
            return errors, len(records)
    if require_transport_attr:
        errors = check_transport_attrs(records)
        if errors:
            return errors, len(records)
    if require_pressure_events:
        errors = check_pressure_events(records)
        if errors:
            return errors, len(records)
    try:
        trace = telemetry_to_chrome_trace(records)
    except Exception as exc:  # defensive: schema-valid should always convert
        return [f"chrome-trace conversion failed: {exc}"], len(records)
    if not isinstance(trace.get("traceEvents"), list) or not trace["traceEvents"]:
        return ["chrome-trace conversion produced no events"], len(records)
    return [], len(records)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="telemetry JSONL files to validate")
    parser.add_argument("--quiet", action="store_true",
                        help="print failures only (for CI wrappers)")
    parser.add_argument("--require-worker-spans", action="store_true",
                        help="fail unless every shard span has >=1 "
                             "worker-attributed kernel span beneath it "
                             "(cross-process trace completeness)")
    parser.add_argument("--require-transport-attr", action="store_true",
                        help="fail unless every shard span carries a "
                             "transport attr naming a known transport "
                             "(inline/threads/pipe/shm)")
    parser.add_argument("--require-pressure-events", action="store_true",
                        help="fail unless the trace shows pressure-triggered "
                             "degradation: a worker_recycled/"
                             "transport_downgraded/checkpoint_skipped/"
                             "store_skipped event, or a pressure counter in "
                             "the summary snapshot")
    args = parser.parse_args(argv)

    failed = 0
    for path in args.files:
        if not Path(path).exists():
            print(f"[FAIL] {path}: no such file")
            failed += 1
            continue
        problems, count = check_file(
            path, require_worker_spans=args.require_worker_spans,
            require_transport_attr=args.require_transport_attr,
            require_pressure_events=args.require_pressure_events,
        )
        if problems:
            failed += 1
            print(f"[FAIL] {path}")
            for p in problems[:10]:
                print(f"       {p}")
            if len(problems) > 10:
                print(f"       ... and {len(problems) - 10} more")
        elif not args.quiet:
            print(f"[PASS] {path} ({count} records)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
