#!/usr/bin/env python
"""Validate telemetry JSONL files against the published schema.

Checks every line of each file against ``repro.obs.schema.TELEMETRY_SCHEMA``
(the stable on-disk contract documented in docs/OBSERVABILITY.md) and then
confirms the stream converts to a loadable Chrome trace. Exit code 0 iff
every file passes.

Run:  python scripts/check_trace.py run.jsonl [more.jsonl ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import jsonl_to_chrome_trace, validate_jsonl  # noqa: E402


def check_file(path: str) -> list[str]:
    """Return a list of problems with *path* (empty = valid)."""
    errors = validate_jsonl(path)
    if errors:
        return errors
    try:
        trace = jsonl_to_chrome_trace(path)
    except Exception as exc:  # defensive: schema-valid should always convert
        return [f"chrome-trace conversion failed: {exc}"]
    if not isinstance(trace.get("traceEvents"), list) or not trace["traceEvents"]:
        return ["chrome-trace conversion produced no events"]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="telemetry JSONL files to validate")
    args = parser.parse_args(argv)

    failed = 0
    for path in args.files:
        if not Path(path).exists():
            print(f"[FAIL] {path}: no such file")
            failed += 1
            continue
        problems = check_file(path)
        if problems:
            failed += 1
            print(f"[FAIL] {path}")
            for p in problems[:10]:
                print(f"       {p}")
            if len(problems) > 10:
                print(f"       ... and {len(problems) - 10} more")
        else:
            n = sum(1 for line in open(path, encoding="utf-8") if line.strip())
            print(f"[PASS] {path} ({n} records)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
