#!/usr/bin/env python
"""Run the fault-injection test suite under pinned, deterministic seeds.

The ``faults``-marked tests corrupt intermediates at every cSTF phase and
assert that each recovery path in :mod:`repro.resilience` actually fires.
All randomness is seeded, so the suite is bitwise repeatable; this runner
pins the remaining environmental sources (hash seed, test order) so a CI
failure reproduces locally from the same command:

    python scripts/run_fault_suite.py            (exit code 0 iff all pass)

Extra arguments are forwarded to pytest, e.g.::

    python scripts/run_fault_suite.py -k checkpoint -x
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(extra_args: list[str]) -> int:
    env = dict(os.environ)
    # Pin every environmental source of nondeterminism: fixed hash seed,
    # and src/ on the path so the checkout (not an installed wheel) is
    # what gets exercised.
    env["PYTHONHASHSEED"] = "0"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable, "-m", "pytest",
        "-m", "faults",
        "-p", "no:randomly",  # fixed collection order even if the plugin exists
        "-p", "no:cacheprovider",
        "-q",
        *extra_args,
    ]
    print("$", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
