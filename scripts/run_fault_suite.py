#!/usr/bin/env python
"""Run the fault-injection test suite under pinned, deterministic seeds.

The ``faults``-marked tests corrupt intermediates at every cSTF phase and
assert that each recovery path in :mod:`repro.resilience` actually fires;
the ``chaos``-marked tests inject *execution* faults (worker crashes,
stragglers, corrupted cached plans) and assert the engine and supervisor
recover bit-identically.
All randomness is seeded, so the suite is bitwise repeatable; this runner
pins the remaining environmental sources (hash seed, test order) so a CI
failure reproduces locally from the same command:

    python scripts/run_fault_suite.py            (exit code 0 iff all pass)

``--backend processes`` adds the process-isolation stage: the
``procfaults``-marked tests (real worker SIGKILLs; excluded from tier-1)
plus a supervised chaos run on the ``processes`` execution backend that
SIGKILLs a worker mid-MTTKRP *and* corrupts an on-disk plan-store entry,
asserting bit-identical convergence with ``worker_lost`` and
``plan_repaired`` events and a schema-valid trace. The chaos run executes
**twice** — once per shard transport (``shm="on"`` zero-copy shared
memory, ``shm="off"`` pipe pickling) — and each trace is checked with
``--require-worker-spans`` (trace completeness: every executed shard must
carry at least one worker-attributed kernel span, even across kills and
respawns) and ``--require-transport-attr`` (transport provenance: every
shard span proves which transport actually ran).

``--backend processes`` also runs the **resource-pressure stage**: the
``pressure``-marked tests (real worker processes under memory budgets;
excluded from tier-1) plus a supervised chaos run that injects
``oom_worker`` (real SIGKILL dressed as the kernel OOM killer),
``disk_full`` (synthetic ENOSPC on plan-store/checkpoint/sink writes) and
``shm_exhausted`` (refused /dev/shm leases) under a deliberately tiny
memory budget, asserting bit-identical convergence, pressure-degradation
events, a clean run with zero pressure events, and no leaked /dev/shm
segments; each trace is checked with ``--require-pressure-events``. The
stage runs twice, once per shard transport (``shm on``/``off``).
``--stage resource`` runs only that stage.

Extra arguments are forwarded to pytest, e.g.::

    python scripts/run_fault_suite.py -k checkpoint -x
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline fault run with JSONL telemetry: injects faults at a high rate so
# recovery events land in the stream, which check_trace.py then validates
# against the published schema (resilience events must round-trip).
_FAULT_TRACE_SNIPPET = """
import numpy as np
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.obs import Telemetry
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.tensor.coo import SparseTensor

rng = np.random.default_rng(0)
idx = rng.integers(0, [14, 12, 10], size=(300, 3))
vals = rng.random(300)
X = SparseTensor(idx, vals, (14, 12, 10))
injector = FaultInjector(
    [FaultSpec(phase="UPDATE", kind="nan", probability=0.5),
     FaultSpec(phase="MTTKRP", kind="perturb", probability=0.5)],
    seed=7,
)
cstf(X, CstfConfig(
    rank=4, max_iters=4, update="admm", device="cpu", mttkrp_format="coo",
    seed=3, fault_injector=injector,
    telemetry=Telemetry(jsonl_path=SYS_ARGV_PATH),
))
"""


# Engine equivalence gate: the PR 4 execution engine must reproduce the
# seed kernels bit for bit (serial and sharded) and hit its plan cache on
# every lookup after the first AO iteration.
_ENGINE_EQUIV_SNIPPET = """
import numpy as np
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.tensor.coo import SparseTensor

rng = np.random.default_rng(0)
idx = rng.integers(0, [60, 45, 30], size=(5000, 3))
vals = rng.random(5000)
X = SparseTensor(idx, vals, (60, 45, 30))

def run(engine, telemetry="off"):
    return cstf(X, CstfConfig(
        rank=8, max_iters=11, update="cuadmm", device="a100",
        mttkrp_format="coo", compute_fit=False, seed=1,
        telemetry=telemetry, engine=engine,
    ))

seed_res = run(None)
on_res = run("on", telemetry="on")
sh_res = run({"shards": 3})

for res, label in ((on_res, "engine-serial"), (sh_res, "engine-sharded")):
    assert np.array_equal(res.kruskal.weights, seed_res.kruskal.weights), (
        label + " weights differ"
    )
    for mode, (fa, fb) in enumerate(zip(res.kruskal.factors, seed_res.kruskal.factors)):
        assert np.array_equal(fa, fb), label + f" factor {mode} differs"

counters = on_res.telemetry.metrics_summary.get("counters", {})
hits = counters.get("engine.plan.hits", 0)
misses = counters.get("engine.plan.misses", 0)
rate = hits / max(1, hits + misses)
assert rate >= 0.9, f"plan-cache hit rate {rate:.3f} < 0.9"
print(f"engine equivalence OK: serial+sharded bitwise, hit rate {rate:.3f}")
"""


# Chaos gate: a *supervised* run with execution faults injected (worker
# crashes, stragglers, plan corruption) must complete bit-identical to a
# fault-free run, and its telemetry stream must stay schema-valid; a
# supervised run with no faults must add zero retries/degradations.
_CHAOS_SNIPPET = """
import numpy as np
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.obs import Telemetry
from repro.resilience import FaultInjector, FaultSpec, supervised_cstf

from repro.tensor.coo import SparseTensor

rng = np.random.default_rng(0)
idx = rng.integers(0, [40, 30, 20], size=(2500, 3))
vals = rng.random(2500)
X = SparseTensor(idx, vals, (40, 30, 20))
base = dict(rank=5, max_iters=4, update="admm", device="cpu",
            mttkrp_format="coo", seed=11)

plain = cstf(X, CstfConfig(**base))

# 1. Supervised, no faults: pure pass-through.
sup = supervised_cstf(X, CstfConfig(**base))
for a, b in zip(plain.kruskal.factors, sup.kruskal.factors):
    assert np.array_equal(a, b), "supervised no-fault run is not bit-identical"
assert not [e for e in sup.events if e.phase == "SUPERVISE"], (
    "no-fault supervised run produced supervisor events"
)

# 2. Supervised chaos: every execution fault kind, sharded engine, traced.
injector = FaultInjector(
    [FaultSpec(phase="EXECUTE", kind="worker_crash", probability=0.5),
     FaultSpec(phase="EXECUTE", kind="slow_shard", probability=0.5, magnitude=0.2),
     FaultSpec(phase="EXECUTE", kind="corrupt_plan", probability=0.3)],
    seed=23,
)
chaos = supervised_cstf(X, CstfConfig(
    **base, engine={"shards": 3, "shard_timeout": 0.05},
    fault_injector=injector,
    telemetry=Telemetry(jsonl_path=SYS_ARGV_PATH),
))
assert injector.injected > 0, "chaos run injected no execution faults"
for a, b in zip(plain.kruskal.factors, chaos.kruskal.factors):
    assert np.array_equal(a, b), "chaos run is not bit-identical to fault-free"
kinds = {e.kind for e in chaos.events}
recoveries = kinds & {"shard_retry", "shard_timeout", "plan_repaired"}
assert recoveries, f"no recovery events on the chaos run (saw {sorted(kinds)})"
print("chaos OK: faults=%d, recoveries=%s" % (
    injector.injected, ",".join(sorted(recoveries))))
"""


# Process-backend chaos gate: a supervised run on isolated worker
# processes, with a real SIGKILL landing mid-MTTKRP and the on-disk
# plan-store entry corrupted under the run. The watchdog must detect the
# dead worker (worker_lost), the store must quarantine the damaged entry
# (plan_repaired), and the factors must still match the serial-backend run
# bit for bit. Trace stays schema-valid and complete — every shard span
# keeps a worker-attributed kernel span (checked by the caller).
_PROCESS_CHAOS_SNIPPET = """
import numpy as np
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.engine import shutdown_pools
from repro.obs import Telemetry
from repro.resilience import FaultInjector, FaultSpec, supervised_cstf
from repro.tensor.coo import SparseTensor

rng = np.random.default_rng(0)
idx = rng.integers(0, [40, 30, 20], size=(2500, 3))
vals = rng.random(2500)
X = SparseTensor(idx, vals, (40, 30, 20))
base = dict(rank=5, max_iters=3, update="admm", device="cpu",
            mttkrp_format="coo", seed=11)

serial = cstf(X, CstfConfig(
    **base, engine={"shards": 3, "backend": "serial"},
))

injector = FaultInjector(
    [FaultSpec(phase="EXECUTE", kind="kill_worker", probability=0.4),
     FaultSpec(phase="EXECUTE", kind="corrupt_store", probability=0.2)],
    seed=29,
)
chaos = supervised_cstf(X, CstfConfig(
    **base,
    engine={"shards": 3, "backend": "processes", "plan_store": STORE_DIR,
            "shm": SHM_MODE},
    fault_injector=injector,
    telemetry=Telemetry(jsonl_path=TRACE_PATH),
))
assert injector.injected > 0, "process chaos run injected no faults"
counters = chaos.telemetry.metrics_summary.get("counters", {})
if SHM_MODE == "on":
    assert counters.get("engine.shm.segments", 0) > 0, (
        "shm transport enabled but no shared-memory segment was published"
    )
else:
    assert "engine.shm.segments" not in counters, (
        "shm segments created despite shm='off'"
    )
for mode, (a, b) in enumerate(zip(serial.kruskal.factors, chaos.kruskal.factors)):
    assert np.array_equal(a, b), (
        f"processes backend factor {mode} differs from serial under chaos"
    )
kinds = {e.kind for e in chaos.events}
assert "worker_lost" in kinds, (
    f"no worker_lost event despite kill_worker faults (saw {sorted(kinds)})"
)
assert "plan_repaired" in kinds, (
    f"no plan_repaired event despite corrupt_store faults (saw {sorted(kinds)})"
)
shutdown_pools()
print("process chaos OK (shm=%s): faults=%d, kinds=%s" % (
    SHM_MODE, injector.injected,
    ",".join(sorted(kinds & {"worker_lost", "plan_repaired"}))))
"""


# Resource-pressure chaos gate: a supervised processes-backend run with a
# deliberately tiny memory budget and every resource fault kind injected —
# workers OOM-SIGKILLed mid-shard, plan-store/checkpoint writes hitting
# synthetic ENOSPC, shm leases refused. The run must complete bit-identical
# to an uninjected serial run, its events must prove the degraded paths
# fired (worker_recycled, checkpoint/store skips, transport downgrades on
# the shm transport), a clean run must show zero pressure events, and the
# shared-memory pool must leak nothing into /dev/shm.
_RESOURCE_CHAOS_SNIPPET = """
import glob
import numpy as np
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.engine import shutdown_pools
from repro.obs import Telemetry
from repro.resilience import FaultInjector, FaultSpec, supervised_cstf
from repro.resilience.checkpoint import load_checkpoint
from repro.tensor.coo import SparseTensor

shm_before = set(glob.glob("/dev/shm/*"))

rng = np.random.default_rng(0)
idx = rng.integers(0, [40, 30, 20], size=(2500, 3))
vals = rng.random(2500)
X = SparseTensor(idx, vals, (40, 30, 20))
base = dict(rank=5, max_iters=3, update="admm", device="cpu",
            mttkrp_format="coo", seed=11)

serial = cstf(X, CstfConfig(
    **base, engine={"shards": 3, "backend": "serial"},
))

# An 8 MB budget: far above the dispatch's segment needs (the shm path
# stays viable), far below any real worker's RSS (every collected shard
# recycles its worker).
injector = FaultInjector(
    [FaultSpec(phase="EXECUTE", kind="oom_worker", probability=0.4),
     FaultSpec(phase="EXECUTE", kind="disk_full", probability=0.5),
     FaultSpec(phase="EXECUTE", kind="shm_exhausted", probability=0.5)],
    seed=31,
)
chaos = supervised_cstf(X, CstfConfig(
    **base,
    engine={"shards": 3, "backend": "processes", "shm": SHM_MODE,
            "memory_budget_bytes": 8_000_000, "plan_store": STORE_DIR},
    checkpoint_every=1, checkpoint_path=CK_PATH,
    fault_injector=injector,
    telemetry=Telemetry(jsonl_path=TRACE_PATH),
))
assert injector.injected > 0, "resource chaos run injected no faults"
for mode, (a, b) in enumerate(zip(serial.kruskal.factors, chaos.kruskal.factors)):
    assert np.array_equal(a, b), (
        f"factor {mode} differs from serial under resource pressure"
    )
assert np.array_equal(serial.kruskal.weights, chaos.kruskal.weights), (
    "weights differ from serial under resource pressure"
)
kinds = {e.kind for e in chaos.events}
assert "worker_recycled" in kinds, (
    f"no worker_recycled event despite a 8 MB budget (saw {sorted(kinds)})"
)
assert kinds & {"checkpoint_skipped", "store_skipped"}, (
    f"no persistence skips despite disk_full faults (saw {sorted(kinds)})"
)
if SHM_MODE == "on":
    assert "transport_downgraded" in kinds, (
        f"no transport_downgraded despite shm_exhausted faults "
        f"(saw {sorted(kinds)})"
    )
ck = load_checkpoint(CK_PATH)
assert ck.iteration >= 1, "no checkpoint generation survived the skips"

# A clean supervised run (no faults, no budget) must pay nothing.
clean = supervised_cstf(X, CstfConfig(
    **base, engine={"shards": 3, "backend": "processes", "shm": SHM_MODE},
))
for a, b in zip(serial.kruskal.factors, clean.kruskal.factors):
    assert np.array_equal(a, b), "clean processes run is not bit-identical"
clean_kinds = {e.kind for e in clean.events}
pressure = {"worker_recycled", "transport_downgraded",
            "checkpoint_skipped", "store_skipped"}
assert not (clean_kinds & pressure), (
    f"clean run shows pressure events: {sorted(clean_kinds & pressure)}"
)

shutdown_pools()
leaked = set(glob.glob("/dev/shm/*")) - shm_before
assert not leaked, f"/dev/shm leaked segments: {sorted(leaked)}"
print("resource chaos OK (shm=%s): faults=%d, kinds=%s" % (
    SHM_MODE, injector.injected, ",".join(sorted(kinds & pressure))))
"""


def _check_resource_chaos(env, shm_mode: str) -> int:
    """Resource-pressure chaos: OOM + ENOSPC + shm exhaustion, degraded
    but bit-identical; the trace must prove the pressure paths fired."""
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "resource_chaos.jsonl"
        store = Path(tmp) / "plan_store"
        ck = Path(tmp) / "resource_chaos.npz"
        snippet = (
            _RESOURCE_CHAOS_SNIPPET
            .replace("TRACE_PATH", repr(str(trace)))
            .replace("STORE_DIR", repr(str(store)))
            .replace("CK_PATH", repr(str(ck)))
            .replace("SHM_MODE", repr(shm_mode))
        )
        code = subprocess.call(
            [sys.executable, "-c", snippet], cwd=REPO_ROOT, env=env,
        )
        if code != 0:
            print(f"resource chaos run failed (shm={shm_mode})")
            return code
        # No worker-span/transport gates here: a run whose sink degrades
        # under an injected sink fault legitimately truncates its stream.
        return subprocess.call(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_trace.py"),
             "--quiet", "--require-pressure-events", str(trace)],
            cwd=REPO_ROOT, env=env,
        )


def _check_process_chaos(env, shm_mode: str) -> int:
    """Process-backend chaos: SIGKILL + store corruption, bit-identical.

    Runs on one shard transport (*shm_mode* ``"on"`` or ``"off"``); the
    caller invokes it for both so recovery is proven with and without the
    zero-copy path.
    """
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "process_chaos.jsonl"
        store = Path(tmp) / "plan_store"
        snippet = (
            _PROCESS_CHAOS_SNIPPET
            .replace("TRACE_PATH", repr(str(trace)))
            .replace("STORE_DIR", repr(str(store)))
            .replace("SHM_MODE", repr(shm_mode))
        )
        code = subprocess.call(
            [sys.executable, "-c", snippet], cwd=REPO_ROOT, env=env,
        )
        if code != 0:
            print(f"process chaos run failed (shm={shm_mode})")
            return code
        return subprocess.call(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_trace.py"),
             "--quiet", "--require-worker-spans", "--require-transport-attr",
             str(trace)],
            cwd=REPO_ROOT, env=env,
        )


def _check_chaos(env) -> int:
    """Supervised chaos run: bit-identical recovery + schema-valid trace."""
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "chaos_run.jsonl"
        code = subprocess.call(
            [sys.executable, "-c",
             _CHAOS_SNIPPET.replace("SYS_ARGV_PATH", repr(str(trace)))],
            cwd=REPO_ROOT, env=env,
        )
        if code != 0:
            print("chaos run failed")
            return code
        return subprocess.call(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_trace.py"),
             "--quiet", str(trace)],
            cwd=REPO_ROOT, env=env,
        )


def _check_engine_equivalence(env) -> int:
    """Seed vs engine-serial vs engine-sharded must be bit-identical."""
    return subprocess.call(
        [sys.executable, "-c", _ENGINE_EQUIV_SNIPPET], cwd=REPO_ROOT, env=env,
    )


def _check_fault_trace(env) -> int:
    """Run a faulty factorization with telemetry and validate the stream."""
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "fault_run.jsonl"
        code = subprocess.call(
            [sys.executable, "-c",
             _FAULT_TRACE_SNIPPET.replace("SYS_ARGV_PATH", repr(str(trace)))],
            cwd=REPO_ROOT, env=env,
        )
        if code != 0:
            print("fault-trace generation failed")
            return code
        return subprocess.call(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_trace.py"),
             "--quiet", str(trace)],
            cwd=REPO_ROOT, env=env,
        )


def _check_perf_baselines(env) -> int:
    """Run the bench suite and gate it against the committed baselines.

    The simulated groups are seeded, so any drift caught by ``repro diff``
    is a genuine behavior change, not noise; the measured ``fig4wall``
    group carries its own wide tolerance and is additionally gated here on
    the PR 4 acceptance floor: engine wall-clock speedup geomean >= 2x.
    The ``--shm-bench`` group (processes-backend dispatch overhead, pipe
    vs shared-memory transport) rides along and is diffed against its
    blessed baseline; its speedup is reported informationally.
    """
    import json

    with tempfile.TemporaryDirectory() as tmp:
        bench = Path(tmp) / "BENCH_ci.json"
        code = subprocess.call(
            [sys.executable, str(REPO_ROOT / "scripts" / "run_bench_suite.py"),
             "--quiet", "--shm-bench", "--out", str(bench)],
            cwd=REPO_ROOT, env=env,
        )
        if code != 0:
            print("bench-suite generation failed")
            return code
        doc = json.loads(bench.read_text(encoding="utf-8"))
        for group in doc["groups"]:
            if group["figure"] == "shmdispatch":
                m = group["metrics"]
                print(f"shm dispatch overhead: pipe {m['pipe.dispatch_s']*1e3:.1f}ms "
                      f"vs shm {m['shm.dispatch_s']*1e3:.1f}ms "
                      f"({m['shm_speedup']:.2f}x)")
            if group["figure"] != "fig4wall":
                continue
            speedup = group["metrics"]["geomean.engine_speedup"]
            if speedup < 2.0:
                print(f"engine wall-clock speedup gate failed: "
                      f"geomean {speedup:.2f}x < 2.0x")
                return 1
            print(f"engine wall-clock speedup: geomean {speedup:.2f}x (gate: >= 2x)")
        return subprocess.call(
            [sys.executable, "-m", "repro", "diff", str(bench),
             "--baselines", str(REPO_ROOT / "benchmarks" / "baselines")],
            cwd=REPO_ROOT, env=env,
        )


def main(extra_args: list[str]) -> int:
    extra_args = list(extra_args)
    backend = "threads"
    if "--backend" in extra_args:
        at = extra_args.index("--backend")
        try:
            backend = extra_args[at + 1]
        except IndexError:
            print("--backend requires a value (threads or processes)")
            return 2
        del extra_args[at:at + 2]
        if backend not in ("threads", "processes"):
            print(f"unknown --backend {backend!r} (expected threads or processes)")
            return 2
    stage = None
    if "--stage" in extra_args:
        at = extra_args.index("--stage")
        try:
            stage = extra_args[at + 1]
        except IndexError:
            print("--stage requires a value (resource)")
            return 2
        del extra_args[at:at + 2]
        if stage != "resource":
            print(f"unknown --stage {stage!r} (expected resource)")
            return 2

    env = dict(os.environ)
    # Pin every environmental source of nondeterminism: fixed hash seed,
    # and src/ on the path so the checkout (not an installed wheel) is
    # what gets exercised.
    env["PYTHONHASHSEED"] = "0"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    markers = ["faults", "chaos"]
    if backend == "processes":
        markers.extend(["procfaults", "pressure"])
    if stage == "resource":
        markers = ["pressure"]
    for marker in markers:
        cmd = [
            sys.executable, "-m", "pytest",
            "-m", marker,
            "-p", "no:randomly",  # fixed collection order even if the plugin exists
            "-p", "no:cacheprovider",
            "-q",
            *extra_args,
        ]
        print("$", " ".join(cmd))
        code = subprocess.call(cmd, cwd=REPO_ROOT, env=env)
        if code != 0:
            return code
    if stage == "resource":
        for shm_mode in ("on", "off"):
            print(f"\nrunning the resource-pressure chaos gate "
                  f"(OOM + ENOSPC + shm exhaustion, traced, shm={shm_mode})")
            code = _check_resource_chaos(env, shm_mode)
            if code != 0:
                return code
        return 0
    print("\nrunning the supervised chaos gate (execution faults, traced)")
    code = _check_chaos(env)
    if code != 0:
        return code
    if backend == "processes":
        for shm_mode in ("on", "off"):
            print(f"\nrunning the process-backend chaos gate "
                  f"(real SIGKILL + store corruption, traced, shm={shm_mode})")
            code = _check_process_chaos(env, shm_mode)
            if code != 0:
                return code
        for shm_mode in ("on", "off"):
            print(f"\nrunning the resource-pressure chaos gate "
                  f"(OOM + ENOSPC + shm exhaustion, traced, shm={shm_mode})")
            code = _check_resource_chaos(env, shm_mode)
            if code != 0:
                return code
    print("\nvalidating fault-run telemetry against the schema")
    code = _check_fault_trace(env)
    if code != 0:
        return code
    print("\nchecking engine (sharded vs serial vs seed) reproduction")
    code = _check_engine_equivalence(env)
    if code != 0:
        return code
    print("\ngating the bench suite against committed baselines")
    return _check_perf_baselines(env)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
