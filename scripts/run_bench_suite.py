#!/usr/bin/env python
"""Run the Figure 4/5/7 bench suite and write a timestamped BENCH JSON.

The suite (:func:`repro.obs.analysis.bench.run_bench_suite`) replays the
paper's headline evaluations through the simulated machine model, so the
output is deterministic for a given configuration. The document layout is
:data:`repro.obs.analysis.bench.BENCH_SCHEMA`, documented in
docs/OBSERVABILITY.md.

Run:
    python scripts/run_bench_suite.py                       # BENCH_<ts>.json
    python scripts/run_bench_suite.py --out results.json    # fixed name
    python scripts/run_bench_suite.py --write-baselines     # (re)seed
                                                            # benchmarks/baselines/

Gate a fresh run against the committed baselines with::

    python -m repro diff BENCH_<ts>.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.analysis.baseline import BaselineStore  # noqa: E402
from repro.obs.analysis.bench import (  # noqa: E402
    DEFAULT_DATASETS,
    bench_to_baselines,
    run_bench_suite,
    validate_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--device", default="a100", help="fig5/fig7 device")
    parser.add_argument("--rank", type=int, default=32)
    parser.add_argument("--inner-iters", type=int, default=10)
    parser.add_argument("--datasets", nargs="+", default=list(DEFAULT_DATASETS),
                        help="Table 2 dataset names for fig5/fig7")
    parser.add_argument("--fig4-names", nargs="+", default=["nips", "flickr"],
                        help="dataset names for the fig4 per-mode sweep")
    parser.add_argument("--fig4-device", default="h100")
    parser.add_argument("--no-wall", action="store_true",
                        help="skip the fig4wall measured wall-clock group "
                             "(engine vs seed kernels)")
    parser.add_argument("--wall-names", nargs="+", default=["nips", "flickr"],
                        help="dataset names for the fig4wall wall-clock runs")
    parser.add_argument("--wall-nnz", type=int, default=80_000,
                        help="target nonzeros for the fig4wall analogues")
    parser.add_argument("--wall-repeats", type=int, default=2,
                        help="wall-clock repeats per configuration (min is kept)")
    parser.add_argument("--shm-bench", action="store_true",
                        help="also measure the shmdispatch group: processes-"
                             "backend dispatch overhead, pipe vs shared-"
                             "memory transport (spawns a worker pool)")
    parser.add_argument("--shm-shards", type=int, default=4,
                        help="worker shards for the shmdispatch group")
    parser.add_argument("--shm-nnz", type=int, default=50_000,
                        help="nonzeros of the shmdispatch synthetic tensor")
    parser.add_argument("--shm-repeats", type=int, default=3,
                        help="shmdispatch repeats per transport (min is kept)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: BENCH_<timestamp>.json in cwd)")
    parser.add_argument("--write-baselines", action="store_true",
                        help="also (re)write benchmarks/baselines/ from this run")
    parser.add_argument("--quiet", action="store_true", help="suppress the summary")
    args = parser.parse_args(argv)

    doc = run_bench_suite(
        device=args.device,
        rank=args.rank,
        inner_iters=args.inner_iters,
        datasets=tuple(args.datasets),
        fig4_names=tuple(args.fig4_names),
        fig4_device=args.fig4_device,
        wall=not args.no_wall,
        wall_names=tuple(args.wall_names),
        wall_nnz=args.wall_nnz,
        wall_repeats=args.wall_repeats,
        shm_bench=args.shm_bench,
        shm_shards=args.shm_shards,
        shm_nnz=args.shm_nnz,
        shm_repeats=args.shm_repeats,
    )
    errors = validate_bench(doc)
    if errors:  # defensive: run_bench_suite validates its own output
        for err in errors[:10]:
            print(f"invalid bench document: {err}", file=sys.stderr)
        return 1

    out = args.out or f"BENCH_{time.strftime('%Y%m%dT%H%M%S')}.json"
    Path(out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                         encoding="utf-8")
    if not args.quiet:
        for group in doc["groups"]:
            print(f"[{group['key']}] {len(group['metrics'])} metrics")
        print(f"bench document written to {out}")

    if args.write_baselines:
        store = BaselineStore(REPO_ROOT / "benchmarks" / "baselines")
        for base in bench_to_baselines(doc):
            path = store.save(base)
            if not args.quiet:
                print(f"baseline written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
