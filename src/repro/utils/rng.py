"""Deterministic random-number plumbing.

The whole library takes ``seed`` arguments that may be ``None``, an integer,
or an existing :class:`numpy.random.Generator`, and converts them through
:func:`as_generator`. Nothing in the package touches NumPy's legacy global
RNG, so every experiment is reproducible from its seed alone.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so callers can thread
    one generator through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Used by workload generators that build several tensors (one per dataset)
    from a single experiment seed: each child stream is independent, so adding
    or removing datasets does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [
            np.random.default_rng(s)
            for s in seed.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
        ]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
