"""Wall-clock timing helpers for the measured (non-simulated) code paths.

Simulated device time lives in :mod:`repro.machine`; this module only times
host execution, e.g. for the pytest-benchmark harnesses and for sanity
comparisons between formats at equal problem size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("mttkrp"):
    ...     pass
    >>> sw.total("mttkrp") >= 0.0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def lap(self, name: str):
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.laps[name] = self.laps.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.laps.get(name, 0.0)

    def grand_total(self) -> float:
        return sum(self.laps.values())

    def breakdown(self) -> dict[str, float]:
        """Fraction of total time per lap name (empty dict if nothing timed)."""
        total = self.grand_total()
        if total <= 0.0:
            return {name: 0.0 for name in self.laps}
        return {name: t / total for name, t in self.laps.items()}


class _Lap:
    def __init__(self, watch: Stopwatch, name: str):
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._watch.add(self._name, time.perf_counter() - self._start)
        return False
