"""Wall-clock timing helpers for the measured (non-simulated) code paths.

Simulated device time lives in :mod:`repro.machine`; this module only times
host execution, e.g. for the pytest-benchmark harnesses and for sanity
comparisons between formats at equal problem size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("mttkrp"):
    ...     pass
    >>> sw.total("mttkrp") >= 0.0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def lap(self, name: str):
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.laps[name] = self.laps.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.laps.get(name, 0.0)

    def grand_total(self) -> float:
        return sum(self.laps.values())

    def mean(self, name: str) -> float:
        """Mean seconds per lap for *name* (0.0 if never timed)."""
        n = self.counts.get(name, 0)
        return self.laps.get(name, 0.0) / n if n else 0.0

    def breakdown(self) -> dict[str, float]:
        """Fraction of total time per lap name, ordered by descending time.

        Iteration order is part of the contract: the heaviest lap comes
        first, ties break by name for stability. Empty laps yield 0.0.
        """
        total = self.grand_total()
        ordered = sorted(self.laps.items(), key=lambda kv: (-kv[1], kv[0]))
        if total <= 0.0:
            return {name: 0.0 for name, _ in ordered}
        return {name: t / total for name, t in ordered}

    def report(self) -> str:
        """Human-readable table: name, calls, total, mean, share — sorted by
        descending total time (same order as :meth:`breakdown`)."""
        if not self.laps:
            return "(no laps recorded)"
        fractions = self.breakdown()
        header = f"{'lap':<24} {'calls':>6} {'total s':>12} {'mean s':>12} {'share':>7}"
        lines = [header, "-" * len(header)]
        for name in fractions:
            lines.append(
                f"{name:<24} {self.counts.get(name, 0):>6} "
                f"{self.laps[name]:>12.6f} {self.mean(name):>12.6f} "
                f"{100.0 * fractions[name]:>6.1f}%"
            )
        lines.append(
            f"{'TOTAL':<24} {sum(self.counts.values()):>6} "
            f"{self.grand_total():>12.6f}"
        )
        return "\n".join(lines)


class _Lap:
    def __init__(self, watch: Stopwatch, name: str):
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._watch.add(self._name, time.perf_counter() - self._start)
        return False
