"""Lightweight argument validation helpers.

Every public entry point of the library validates its inputs eagerly so that
shape and type errors surface at the API boundary with an actionable message,
instead of deep inside a vectorized kernel as an inscrutable broadcast error.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``.

    Accepts NumPy integer scalars as well as Python ints; rejects bools
    (which are technically ``int`` subclasses but never a sensible size).
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    try:
        as_int = int(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}") from exc
    if as_int != value:
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if as_int <= 0:
        raise ValueError(f"{name} must be positive, got {as_int}")
    return as_int


def check_shape(shape: Iterable[Any], min_modes: int = 1) -> tuple[int, ...]:
    """Validate a tensor shape: a sequence of positive integers.

    Parameters
    ----------
    shape:
        Candidate shape, any iterable of integer-likes.
    min_modes:
        Minimum number of modes required (e.g. 3 for tensor-only APIs).
    """
    dims = tuple(check_positive_int(d, "dimension") for d in shape)
    if len(dims) < min_modes:
        raise ValueError(
            f"tensor must have at least {min_modes} mode(s), got shape {dims}"
        )
    return dims


def check_axis(axis: Any, ndim: int, name: str = "mode") -> int:
    """Validate a mode index against *ndim* modes, supporting negatives."""
    if isinstance(axis, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    axis = int(axis)
    if not -ndim <= axis < ndim:
        raise ValueError(f"{name} {axis} out of range for {ndim}-mode tensor")
    return axis % ndim


def check_rank(rank: Any) -> int:
    """Validate a CP factorization rank."""
    return check_positive_int(rank, "rank")


def check_same_length(a: Sequence[Any], b: Sequence[Any], what: str) -> None:
    """Raise if two sequences disagree in length."""
    if len(a) != len(b):
        raise ValueError(f"{what}: lengths differ ({len(a)} vs {len(b)})")
