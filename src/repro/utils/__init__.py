"""Shared utilities: argument validation, deterministic RNG, wall-clock timing.

These helpers keep the numerical packages free of repetitive boilerplate and
enforce the conventions listed in DESIGN.md (float64 everywhere, explicit
``numpy.random.Generator`` seeding, no global RNG state).
"""

from repro.utils.validation import (
    check_axis,
    check_positive_int,
    check_rank,
    check_shape,
    require,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch

__all__ = [
    "check_axis",
    "check_positive_int",
    "check_rank",
    "check_shape",
    "require",
    "as_generator",
    "spawn_generators",
    "Stopwatch",
]
