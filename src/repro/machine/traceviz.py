"""Export a simulated kernel timeline as a Chrome trace (``chrome://tracing``
/ Perfetto JSON).

Give the :class:`~repro.machine.Executor` ``keep_records=True`` and every
kernel becomes a complete event on a per-phase track, laid out back-to-back
in simulated time. Useful for eyeballing where an update method's time goes
— the simulated analogue of an Nsight timeline.

Example
-------
>>> from repro.machine import Executor
>>> from repro.machine.traceviz import timeline_to_chrome_trace
>>> ex = Executor("a100", keep_records=True)
>>> _ = ex.gram(__import__("numpy").ones((64, 8)))
>>> trace = timeline_to_chrome_trace(ex)
>>> [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
['dsyrk_gram']
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.machine.costmodel import kernel_seconds
from repro.machine.executor import Executor
from repro.utils.validation import require

__all__ = ["timeline_to_chrome_trace", "write_chrome_trace"]


def timeline_to_chrome_trace(executor: Executor) -> dict:
    """Build the Chrome-trace dict from an executor's retained records.

    Events are placed sequentially (the simulator models a single in-order
    device queue); phases map to thread ids so tracks group by phase.
    """
    records = executor.timeline.records
    require(
        bool(records),
        "no kernel records retained — construct the Executor with keep_records=True",
    )
    phases: dict[str, int] = {}
    events = []
    cursor_us = 0.0
    for rec in records:
        duration_us = kernel_seconds(executor.device, rec) * 1e6
        tid = phases.setdefault(rec.phase, len(phases) + 1)
        events.append(
            {
                "name": rec.name,
                "cat": rec.phase,
                "ph": "X",
                "ts": round(cursor_us, 3),
                "dur": round(duration_us, 3),
                "pid": 1,
                "tid": tid,
                "args": {
                    "flops": rec.flops,
                    "bytes": rec.total_bytes,
                    "launches": rec.launches,
                    "parallel_work": rec.parallel_work,
                },
            }
        )
        cursor_us += duration_us
    # Track names.
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": phase},
        }
        for phase, tid in phases.items()
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"device": executor.device.name, "simulated": True},
    }


def write_chrome_trace(executor: Executor, target) -> None:
    """Serialize the trace to *target* (path or text file object)."""
    trace = timeline_to_chrome_trace(executor)
    if isinstance(target, (str, Path)):
        Path(target).write_text(json.dumps(trace))
    else:
        json.dump(trace, target)
