"""Kernel records and the simulated-time aggregator.

Every executor op produces one :class:`KernelRecord` describing its logical
work; :mod:`repro.machine.costmodel` converts records to seconds and
:class:`Timeline` aggregates them per phase (GRAM / MTTKRP / UPDATE /
NORMALIZE) and per kernel name — the two views the paper's breakdown figures
(1, 3) and optimization analysis (Fig 4) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelRecord", "Timeline", "WORD_BYTES"]

#: Size of a double-precision word; the paper's analysis (Eq. 5) assumes FP64.
WORD_BYTES = 8


@dataclass(frozen=True)
class KernelRecord:
    """The logical cost signature of one device kernel invocation."""

    name: str
    phase: str
    flops: float
    bytes_read: float
    bytes_written: float
    parallel_work: float
    """Independent scalar work items available to hide latency."""

    unique_bytes: float | None = None
    """Compulsory (first-touch) traffic; defaults to read+write. The excess
    over unique is *re-access* traffic that may hit in cache."""

    working_set: float | None = None
    """Bytes that must stay resident for re-accesses to hit; defaults to
    unique_bytes."""

    launches: int = 1
    serial_steps: int = 0
    """Dependent sequential steps (e.g. 2R substitution steps in a Cholesky
    solve); each one is charged the device's sync overhead."""

    compute_efficiency: float = 1.0
    """Multiplier on device peak for this kernel class (GEMM vs TRSM...)."""

    traffic_kind: str = "stream"
    """``"stream"`` or ``"gather"`` — selects the bandwidth efficiency."""

    utilization_exempt: bool = False
    """Skip the occupancy ramp for the compute term. Set by serialization-
    bound kernels (TRSM, POTRF) whose low throughput is already captured by
    ``compute_efficiency`` and ``serial_steps`` — applying the ramp on top
    would double-count the penalty."""

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def resolved_unique(self) -> float:
        return self.total_bytes if self.unique_bytes is None else self.unique_bytes

    def resolved_working_set(self) -> float:
        return self.resolved_unique() if self.working_set is None else self.working_set


@dataclass
class Timeline:
    """Accumulates simulated seconds, flops, bytes per phase and kernel."""

    phase_seconds: dict[str, float] = field(default_factory=dict)
    kernel_seconds: dict[str, float] = field(default_factory=dict)
    phase_flops: dict[str, float] = field(default_factory=dict)
    phase_bytes: dict[str, float] = field(default_factory=dict)
    launch_count: int = 0
    records: list[KernelRecord] = field(default_factory=list)
    keep_records: bool = False

    def add(self, record: KernelRecord, seconds: float) -> None:
        self.phase_seconds[record.phase] = self.phase_seconds.get(record.phase, 0.0) + seconds
        self.kernel_seconds[record.name] = self.kernel_seconds.get(record.name, 0.0) + seconds
        self.phase_flops[record.phase] = self.phase_flops.get(record.phase, 0.0) + record.flops
        self.phase_bytes[record.phase] = (
            self.phase_bytes.get(record.phase, 0.0) + record.total_bytes
        )
        self.launch_count += record.launches
        if self.keep_records:
            self.records.append(record)

    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def seconds(self, phase: str) -> float:
        return self.phase_seconds.get(phase, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Phase → fraction of total simulated time."""
        total = self.total_seconds()
        if total <= 0.0:
            return {k: 0.0 for k in self.phase_seconds}
        return {k: v / total for k, v in self.phase_seconds.items()}

    def merged_with(self, other: "Timeline") -> "Timeline":
        out = Timeline(keep_records=False)
        for src in (self, other):
            for k, v in src.phase_seconds.items():
                out.phase_seconds[k] = out.phase_seconds.get(k, 0.0) + v
            for k, v in src.kernel_seconds.items():
                out.kernel_seconds[k] = out.kernel_seconds.get(k, 0.0) + v
            for k, v in src.phase_flops.items():
                out.phase_flops[k] = out.phase_flops.get(k, 0.0) + v
            for k, v in src.phase_bytes.items():
                out.phase_bytes[k] = out.phase_bytes.get(k, 0.0) + v
            out.launch_count += src.launch_count
        return out
