"""Device-memory footprints and out-of-core MTTKRP.

The BLCO work the paper builds on (Nguyen et al., ICS '22) is titled
"Efficient, **out-of-memory** sparse MTTKRP": its block structure exists
precisely so tensors larger than device memory can be streamed block by
block over the host interconnect. This module adds that dimension to the
machine model:

- :func:`tensor_bytes` / :func:`factor_bytes` / :func:`footprint` — what a
  resident cSTF run keeps on the device (Table 1 gives both GPUs 80 GB).
- :func:`fits_on_device` — the residency check.
- :func:`charge_out_of_core_mttkrp` — when the tensor does not fit, every
  MTTKRP must re-stream the nonzero blocks over PCIe; the kernel becomes
  interconnect-bound and the end-to-end advantage shrinks accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.machine.counters import WORD_BYTES
from repro.machine.executor import Executor
from repro.machine.spec import get_device
from repro.utils.validation import check_rank, require

__all__ = [
    "DEVICE_MEMORY_BYTES",
    "MemoryFootprint",
    "tensor_bytes",
    "factor_bytes",
    "footprint",
    "fits_on_device",
    "charge_out_of_core_mttkrp",
]

#: Table 1: both the A100 and H100 carry 80 GB of HBM.
DEVICE_MEMORY_BYTES = 80e9

#: Default host link for out-of-core streaming (PCIe 4.0 ×16 sustained).
PCIE_BANDWIDTH = 25e9


def tensor_bytes(stats: TensorStats, fmt: str = "blco") -> float:
    """Resident bytes of the sparse tensor in *fmt*.

    BLCO/ALTO store one index word + one value per nonzero; COO stores one
    index word per mode; CSF stores the tree (levels + pointers) + values.
    """
    nnz = float(stats.nnz)
    if fmt in ("blco", "alto"):
        return nnz * 2 * WORD_BYTES + stats.num_blocks * stats.ndim * WORD_BYTES
    if fmt == "coo":
        return nnz * (stats.ndim + 1) * WORD_BYTES
    if fmt == "csf":
        levels = stats.csf_level_sizes or tuple([nnz] * stats.ndim)
        return (nnz + 2.0 * sum(levels)) * WORD_BYTES
    raise ValueError(f"unknown format {fmt!r}")


def factor_bytes(stats: TensorStats, rank: int, copies: int = 3) -> float:
    """Bytes of the factor-sized state: H, the ADMM dual U, and the MTTKRP
    output M per mode (``copies`` of ΣIₙ×R)."""
    return float(copies) * sum(stats.shape) * check_rank(rank) * WORD_BYTES


@dataclass(frozen=True)
class MemoryFootprint:
    tensor: float
    factors: float
    capacity: float

    @property
    def total(self) -> float:
        return self.tensor + self.factors

    @property
    def resident(self) -> bool:
        return self.total <= self.capacity

    @property
    def utilization(self) -> float:
        return self.total / self.capacity


def footprint(
    stats: TensorStats,
    rank: int,
    fmt: str = "blco",
    capacity: float = DEVICE_MEMORY_BYTES,
) -> MemoryFootprint:
    """Device-memory footprint of a resident cSTF run."""
    require(capacity > 0, "capacity must be positive")
    return MemoryFootprint(
        tensor=tensor_bytes(stats, fmt),
        factors=factor_bytes(stats, rank),
        capacity=capacity,
    )


def fits_on_device(stats: TensorStats, rank: int, fmt: str = "blco",
                   capacity: float = DEVICE_MEMORY_BYTES) -> bool:
    """Whether tensor + factor state fit in device memory."""
    return footprint(stats, rank, fmt, capacity).resident


def charge_out_of_core_mttkrp(
    ex: Executor,
    stats: TensorStats,
    rank: int,
    mode: int,
    fmt: str = "blco",
    pcie_bandwidth: float = PCIE_BANDWIDTH,
    capacity: float = DEVICE_MEMORY_BYTES,
) -> float:
    """Charge one MTTKRP with out-of-core streaming when needed.

    When the tensor is resident this is exactly :func:`charge_mttkrp`.
    Otherwise, the non-resident fraction of the nonzero stream crosses the
    host link every call; the kernel time becomes the max of the on-device
    cost and the PCIe stream (compute/transfer overlap, as the BLCO
    pipeline does).
    """
    on_device = charge_mttkrp(ex, stats, rank, mode, fmt)
    spec = get_device(ex.device)
    fp = footprint(stats, rank, fmt, capacity)
    if fp.resident or spec.kind != "gpu":
        return on_device
    available_for_tensor = max(capacity - fp.factors, 0.0)
    nonresident = max(1.0 - available_for_tensor / fp.tensor, 0.0)
    stream_seconds = nonresident * fp.tensor / pcie_bandwidth
    # Overlapped pipeline: the slower of compute and host streaming rules.
    extra = max(stream_seconds - on_device, 0.0)
    if extra > 0.0:
        ex.charge_fixed("mttkrp_host_stream", extra)
    return on_device + extra
