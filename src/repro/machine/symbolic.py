"""Shape-only arrays for analytic (paper-scale) cost evaluation.

The paper evaluates on tensors up to 1.7 billion nonzeros with factor
matrices of up to 28 million rows — far beyond what a laptop materializes.
:class:`SymArray` lets the *same* update-method code paths (ADMM, cuADMM,
HALS, MU) replay their exact kernel sequences with nothing but shapes, so
the cost model charges identical records to a concrete run at that size.
Executor ops detect a ``SymArray`` operand and skip the numerics.

Measured-vs-analytic agreement is enforced by the integration tests: running
an update concretely at small scale and symbolically at the same shape must
charge identical simulated times.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_shape

__all__ = ["SymArray", "is_symbolic"]


class SymArray:
    """A stand-in array carrying only a shape (float64 semantics)."""

    __slots__ = ("shape",)

    def __init__(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        self.shape = check_shape(shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    @property
    def T(self) -> "SymArray":
        return SymArray(tuple(reversed(self.shape)))

    def copy(self) -> "SymArray":
        return SymArray(self.shape)

    def __repr__(self) -> str:
        return f"SymArray{self.shape}"


def is_symbolic(*arrays) -> bool:
    """True when any operand is a :class:`SymArray`."""
    return any(isinstance(a, SymArray) for a in arrays)
