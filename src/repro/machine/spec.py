"""Device specifications (Table 1 of the paper) and derived model constants.

The three presets mirror the paper's testbed:

==========  =========================  ==========================
preset      paper hardware             key modeled properties
==========  =========================  ==========================
A100        NVIDIA A100 (Ampere)       2039 GB/s HBM, 60.3 MB cache
H100        NVIDIA H100 (Hopper)       2039 GB/s HBM, 78.5 MB cache
ICELAKE     Xeon Platinum 8367HC ×26   ~205 GB/s DDR4, large LLC
==========  =========================  ==========================

The GPUs share DRAM bandwidth; the H100's edge in the paper comes from its
larger L1D+L2 (28.5+50 vs 20.3+40 MB) — exactly what the cache term of the
cost model captures — plus higher compute peak.

Calibration constants (efficiencies, overheads, saturation work) are not in
Table 1; they are set to widely published microbenchmark magnitudes (kernel
launch ≈ 4 µs, GEMM ≈ 80-90 % of peak, gather-limited kernels at a fraction
of stream bandwidth) and are validated in the benchmark suite by checking
the *shape* targets of DESIGN.md §4 rather than absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import require

__all__ = ["DeviceSpec", "A100", "H100", "ICELAKE_XEON", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """A device for the roofline execution model. All units SI (FLOP/s, B/s, s, B)."""

    name: str
    kind: str
    """``"gpu"`` or ``"cpu"`` — selects baseline conventions only."""

    peak_flops: float
    """Double-precision peak arithmetic throughput."""

    mem_bandwidth: float
    """DRAM (HBM) bandwidth."""

    cache_bytes: float
    """Total on-chip capacity used by the re-access hit model (L1D+L2 on the
    GPUs; L2+L3 on the CPU)."""

    launch_overhead: float
    """Fixed cost per kernel launch (GPU) or parallel-region fork/join (CPU)."""

    sync_overhead: float
    """Cost per *serialized dependent step*, charged by triangular solves:
    each forward/backward substitution step must complete before the next."""

    saturation_work: float
    """Parallel scalar work items at which utilization reaches 50 %. GPUs
    need hundreds of thousands of independent elements to fill their SMs;
    CPUs saturate with a few thousand."""

    gemm_efficiency: float
    """Fraction of peak attainable by large dense GEMM."""

    trsm_efficiency: float
    """Fraction of peak attainable by triangular solves (low on GPUs — the
    motivation for cuADMM's pre-inversion). Triangular solves are
    latency-bound, so their *absolute* throughput is similar across GPUs;
    the fraction is therefore smaller on the higher-peak H100."""

    stream_efficiency: float
    """Fraction of DRAM bandwidth attainable by unit-stride streaming."""

    gather_efficiency: float
    """Fraction of DRAM bandwidth attainable by irregular row gathers
    (MTTKRP's factor-row accesses) when the working set is cache-resident."""

    random_efficiency: float
    """Fraction of DRAM bandwidth attainable by cache-*thrashing* gathers
    (working set far beyond cache). GPUs collapse hard here — small cache
    per thread and wasted sector transfers — which is why the paper's
    MTTKRP speedups *shrink* as tensors get hypersparse (Figs 7/8), while
    CPUs with deep cache hierarchies and hardware prefetch degrade
    gracefully. The effective gather bandwidth interpolates between
    ``gather_efficiency`` and this value by the modeled miss rate."""

    def __post_init__(self):
        require(self.kind in ("gpu", "cpu"), f"kind must be gpu|cpu, got {self.kind!r}")
        for field_name in (
            "peak_flops",
            "mem_bandwidth",
            "cache_bytes",
            "saturation_work",
        ):
            require(getattr(self, field_name) > 0, f"{field_name} must be positive")
        for field_name in ("launch_overhead", "sync_overhead"):
            require(getattr(self, field_name) >= 0, f"{field_name} must be non-negative")
        for field_name in (
            "gemm_efficiency",
            "trsm_efficiency",
            "stream_efficiency",
            "gather_efficiency",
            "random_efficiency",
        ):
            value = getattr(self, field_name)
            require(0 < value <= 1, f"{field_name} must be in (0, 1], got {value}")

    def with_(self, **overrides) -> "DeviceSpec":
        """Return a modified copy (for ablation studies)."""
        return replace(self, **overrides)


#: NVIDIA A100-80GB (Ampere): 108 SMs @ 1.41 GHz, fp64 peak 9.7 TFLOP/s,
#: 2039 GB/s HBM2e, 20.3 MB aggregate L1D + 40 MB L2.
A100 = DeviceSpec(
    name="A100",
    kind="gpu",
    peak_flops=9.7e12,
    mem_bandwidth=2039e9,
    cache_bytes=(20.3 + 40.0) * 1e6,
    launch_overhead=2.5e-6,
    sync_overhead=1.0e-7,
    saturation_work=4.0e5,
    gemm_efficiency=0.85,
    trsm_efficiency=0.10,
    stream_efficiency=0.88,
    gather_efficiency=0.45,
    random_efficiency=0.16,
)

#: NVIDIA H100-80GB (Hopper, PCIe): 114 SMs @ 1.98 GHz, fp64 peak ~25.6
#: TFLOP/s, same 2039 GB/s HBM as the A100 in the paper's table, but 28.5 MB
#: aggregate L1D + 50 MB L2 — the cache advantage Section 5.3 credits.
H100 = DeviceSpec(
    name="H100",
    kind="gpu",
    peak_flops=25.6e12,
    mem_bandwidth=2039e9,
    cache_bytes=(28.5 + 50.0) * 1e6,
    launch_overhead=2.2e-6,
    sync_overhead=1.0e-7,
    saturation_work=4.5e5,
    gemm_efficiency=0.85,
    trsm_efficiency=0.042,
    stream_efficiency=0.92,
    gather_efficiency=0.49,
    random_efficiency=0.20,
)

#: Intel Xeon Platinum 8367HC, 26 cores @ 3.2 GHz, AVX-512 (2 FMA units):
#: peak fp64 = 26 cores × 16 FLOP/cycle... × 3.2 GHz ≈ 2.66 TFLOP/s; ~205
#: GB/s DDR4-3200 over 8 channels (Table 1 lists capacity, not bandwidth).
#: Cache term uses L2+L3. CPUs have negligible launch cost (OpenMP region
#: ≈ 1 µs) and handle serialized substitution well (high trsm efficiency).
ICELAKE_XEON = DeviceSpec(
    name="IceLakeXeon8367HC",
    kind="cpu",
    peak_flops=2.66e12,
    mem_bandwidth=205e9,
    cache_bytes=(33.8 + 39.0) * 1e6,
    launch_overhead=1.0e-6,
    sync_overhead=5.0e-9,
    saturation_work=4.0e3,
    gemm_efficiency=0.80,
    trsm_efficiency=0.45,
    stream_efficiency=0.80,
    gather_efficiency=0.50,
    random_efficiency=0.12,
)

_DEVICES = {
    "a100": A100,
    "h100": H100,
    "icelake": ICELAKE_XEON,
    "cpu": ICELAKE_XEON,
    "xeon": ICELAKE_XEON,
}


def get_device(name) -> DeviceSpec:
    """Resolve a device by name (case-insensitive) or pass a spec through."""
    if isinstance(name, DeviceSpec):
        return name
    key = str(name).lower()
    if key not in _DEVICES:
        raise KeyError(f"unknown device {name!r}; available: {sorted(set(_DEVICES))}")
    return _DEVICES[key]
