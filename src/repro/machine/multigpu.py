"""Multi-GPU cSTF model: the paper's second future-work item.

    "We also plan to extend our framework to support multi-GPU and
    distributed-memory computation." (Section 7)

The model follows the standard medium-grained data-parallel decomposition
for CP factorization (cf. SPLATT-MPI / PLANC-distributed):

- **Nonzeros are partitioned** evenly across the GPUs; each computes a
  partial MTTKRP into a full-size accumulator, followed by a ring
  all-reduce of the ``Iₙ×R`` output over NVLink.
- **Factor rows are partitioned** for the update phases (ADMM is
  row-separable once ``S`` and ``L`` are replicated), followed by an
  all-gather of the updated factor.
- **Gram matrices** reduce an ``R×R`` summand — negligible traffic, but
  per-collective latency still counts, which is what caps scaling for
  small tensors.

Per-GPU compute costs are evaluated through the same analytic cost model
as the single-device simulator, with per-GPU statistics (fewer nonzeros →
fewer distinct rows touched → different cache behaviour), so scaling
efficiency *emerges* from the model rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, exp

from repro.core.trace import PHASES
from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.machine.counters import WORD_BYTES
from repro.machine.executor import Executor
from repro.machine.spec import DeviceSpec, get_device
from repro.machine.symbolic import SymArray
from repro.updates.base import get_update
from repro.utils.validation import check_positive_int, check_rank, require

__all__ = ["Interconnect", "MultiGpuModel", "MultiGpuEstimate", "MultiNodeModel"]


@dataclass(frozen=True)
class Interconnect:
    """GPU↔GPU link (NVLink-class by default)."""

    bandwidth: float = 300e9
    """Per-GPU bidirectional bytes/second (NVLink 3 ≈ 300 GB/s usable)."""

    latency: float = 8e-6
    """Per-collective-step latency."""

    def all_reduce_seconds(self, words: float, n: int) -> float:
        """Ring all-reduce: ``2(n-1)/n`` of the payload crosses each link."""
        if n <= 1:
            return 0.0
        volume = 2.0 * (n - 1) / n * words * WORD_BYTES
        return 2.0 * (n - 1) * self.latency + volume / self.bandwidth

    def all_gather_seconds(self, words: float, n: int) -> float:
        """Ring all-gather of a payload of *words* total."""
        if n <= 1:
            return 0.0
        volume = (n - 1) / n * words * WORD_BYTES
        return (n - 1) * self.latency + volume / self.bandwidth


def _per_gpu_stats(stats: TensorStats, n: int) -> TensorStats:
    """Statistics of one GPU's nonzero partition.

    Each GPU draws ``nnz/n`` of the nonzeros; the distinct factor rows it
    touches follow the occupancy expectation over the tensor's global
    distinct counts.
    """
    local_nnz = max(1, stats.nnz // n)
    distinct = tuple(
        d * (1.0 - exp(-local_nnz / d)) if d > 0 else 0.0 for d in stats.distinct
    )
    levels = (
        tuple(min(float(local_nnz), lv) for lv in stats.csf_level_sizes)
        if stats.csf_level_sizes
        else None
    )
    return TensorStats(
        shape=stats.shape,
        nnz=local_nnz,
        distinct=distinct,
        num_blocks=max(1, stats.num_blocks // n),
        csf_level_sizes=levels,
    )


@dataclass(frozen=True)
class MultiGpuEstimate:
    """Per-iteration prediction for one GPU count."""

    n_gpus: int
    compute_seconds: dict[str, float]
    communication_seconds: float

    @property
    def total(self) -> float:
        return sum(self.compute_seconds.values()) + self.communication_seconds


class MultiGpuModel:
    """Predicts multi-GPU cSTF iteration time and scaling efficiency."""

    def __init__(self, device="a100", interconnect: Interconnect | None = None,
                 update: str = "cuadmm", inner_iters: int = 10):
        self.spec: DeviceSpec = get_device(device)
        require(self.spec.kind == "gpu", "multi-GPU model needs a GPU spec")
        self.interconnect = interconnect or Interconnect()
        self.update_name = update
        self.inner_iters = inner_iters

    def estimate(self, stats: TensorStats, rank: int, n_gpus: int) -> MultiGpuEstimate:
        rank = check_rank(rank)
        n = check_positive_int(n_gpus, "n_gpus")
        local = _per_gpu_stats(stats, n)
        update = get_update(
            self.update_name,
            **({"inner_iters": self.inner_iters} if self.update_name in ("admm", "cuadmm") else {}),
        )

        ex = Executor(self.spec)
        comm = 0.0
        grams = [SymArray((ceil(dim / n), rank)) for dim in stats.shape]
        with ex.phase("GRAM"):
            for g in grams:
                ex.gram(g)
        comm += stats.ndim * self.interconnect.all_reduce_seconds(rank * rank, n)

        for mode, dim in enumerate(stats.shape):
            rows_local = ceil(dim / n)
            with ex.phase("GRAM"):
                s_mat = SymArray((rank, rank))
                for _ in range(max(stats.ndim - 2, 1)):
                    s_mat = ex.hadamard(s_mat, SymArray((rank, rank)), name="hadamard_gram")
            with ex.phase("MTTKRP"):
                charge_mttkrp(ex, local, rank, mode, "blco")
            # Partial MTTKRP outputs cover the full mode: all-reduce Iₙ×R.
            comm += self.interconnect.all_reduce_seconds(float(dim) * rank, n)
            with ex.phase("UPDATE"):
                h_local = SymArray((rows_local, rank))
                h_local = ex.col_scale(h_local, SymArray((rank,)), name="col_scale_lambda")
                update.update(ex, mode, SymArray((rows_local, rank)), s_mat, h_local, {})
            with ex.phase("NORMALIZE"):
                ex.normalize_columns(SymArray((rows_local, rank)))
            # Column norms reduce (R words), then the factor is all-gathered.
            comm += self.interconnect.all_reduce_seconds(rank, n)
            comm += self.interconnect.all_gather_seconds(float(dim) * rank, n)
            with ex.phase("GRAM"):
                ex.gram(SymArray((rows_local, rank)))

        return MultiGpuEstimate(
            n_gpus=n,
            compute_seconds={p: ex.timeline.seconds(p) for p in PHASES},
            communication_seconds=comm,
        )

    def scaling_curve(self, stats: TensorStats, rank: int, counts=(1, 2, 4, 8)) -> dict[int, MultiGpuEstimate]:
        """Estimates for several GPU counts (for strong-scaling plots)."""
        return {n: self.estimate(stats, rank, n) for n in counts}

    def speedup(self, stats: TensorStats, rank: int, n_gpus: int) -> float:
        """Strong-scaling speedup of *n_gpus* over a single GPU."""
        one = self.estimate(stats, rank, 1).total
        return one / self.estimate(stats, rank, n_gpus).total


class MultiNodeModel:
    """Distributed-memory cSTF: nodes of GPUs over a slower fabric.

    The paper's Section 7 names "multi-GPU and distributed-memory
    computation" as future work; this model covers the second half.
    Collectives are hierarchical: a reduce within each node over NVLink,
    then a ring all-reduce across nodes over the cluster fabric
    (InfiniBand-class by default), then an intra-node broadcast — the
    standard NCCL tree/ring composition. Compute is the per-GPU cost at
    ``nodes × gpus_per_node`` total partitions.
    """

    def __init__(
        self,
        device="a100",
        gpus_per_node: int = 4,
        intra_node: Interconnect | None = None,
        inter_node: Interconnect | None = None,
        update: str = "cuadmm",
        inner_iters: int = 10,
    ):
        self.gpus_per_node = check_positive_int(gpus_per_node, "gpus_per_node")
        self.intra = intra_node or Interconnect()
        #: HDR InfiniBand ≈ 25 GB/s per direction, µs-scale latency.
        self.inter = inter_node or Interconnect(bandwidth=25e9, latency=3e-6)
        self._single_node = MultiGpuModel(
            device=device, interconnect=self.intra, update=update, inner_iters=inner_iters
        )

    def estimate(self, stats: TensorStats, rank: int, nodes: int) -> MultiGpuEstimate:
        """Per-iteration estimate on ``nodes × gpus_per_node`` GPUs."""
        nodes = check_positive_int(nodes, "nodes")
        total_gpus = nodes * self.gpus_per_node
        # Compute + intra-node communication at the total partition count.
        base = self._single_node.estimate(stats, rank, total_gpus)
        if nodes == 1:
            return base
        # Additional inter-node stage of each collective: per mode, the
        # factor-sized all-reduce/all-gather payloads cross the fabric once.
        extra = 0.0
        for dim in stats.shape:
            extra += self.inter.all_reduce_seconds(float(dim) * rank, nodes)
            extra += self.inter.all_gather_seconds(float(dim) * rank, nodes)
            extra += self.inter.all_reduce_seconds(rank * rank + rank, nodes)
        return MultiGpuEstimate(
            n_gpus=total_gpus,
            compute_seconds=base.compute_seconds,
            communication_seconds=base.communication_seconds + extra,
        )

    def speedup(self, stats: TensorStats, rank: int, nodes: int) -> float:
        """Speedup of *nodes* over a single node (same GPUs per node)."""
        one = self.estimate(stats, rank, 1).total
        return one / self.estimate(stats, rank, nodes).total
