"""Analytic cost records for the sparse kernels, driven by tensor statistics.

MTTKRP cost depends only on summary statistics of the sparse tensor — nnz,
mode lengths, distinct indices touched per mode, block/fiber structure — so
the simulator charges it from a :class:`TensorStats` instead of walking the
data. This is what lets Figures 5–8 be evaluated at the *paper's* scale
(up to 1.7 B nonzeros) on a laptop: statistics come straight from Table 2.

Concrete runs (scaled tensors) compute exact statistics with
:meth:`TensorStats.from_coo`; paper-scale runs estimate the distinct-index
counts with the standard occupancy formula ``d ≈ D(1 - exp(-nnz/D))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, prod

from repro.machine.executor import Executor
from repro.utils.validation import check_shape, require

__all__ = ["TensorStats", "charge_mttkrp", "MTTKRP_LOCALITY"]

#: Effective working-set scale per format for the cache-miss model. A
#: locality-preserving traversal order means only a window of the factor
#: rows is hot at a time: ALTO's adaptive interleaving and CSF's fiber
#: grouping give tight windows on the CPU; BLCO's linearized streaming
#: gives a looser window because tens of thousands of GPU threads spread
#: accesses concurrently; raw COO order has no locality at all.
MTTKRP_LOCALITY = {"blco": 0.10, "alto": 0.05, "csf": 0.15, "coo": 1.0}


def _expected_distinct(space: float, draws: float) -> float:
    """Expected number of distinct cells hit by *draws* uniform samples."""
    if space <= 0.0:
        return 0.0
    ratio = draws / space
    if ratio > 50.0:  # saturated; avoids exp underflow work
        return space
    return space * (1.0 - exp(-ratio))


@dataclass(frozen=True)
class TensorStats:
    """Summary statistics of a sparse tensor for cost purposes."""

    shape: tuple[int, ...]
    nnz: int
    distinct: tuple[float, ...]
    """Distinct indices appearing along each mode (≈ factor rows touched)."""

    num_blocks: int = 1
    """BLCO block count (GPU kernel launches per MTTKRP)."""

    csf_level_sizes: tuple[float, ...] | None = None
    """Node counts per CSF level for the *shortest-root* tree; estimated
    when unknown. Level 0 is the root mode's distinct count."""

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @classmethod
    def from_coo(cls, tensor, bit_budget: int = 48) -> "TensorStats":
        """Exact statistics from a materialized COO tensor."""
        from repro.tensor.blco import BlcoTensor
        from repro.tensor.csf import CsfTensor

        distinct = tuple(float(tensor.distinct_mode_indices(m)) for m in range(tensor.ndim))
        blco = BlcoTensor.from_coo(tensor, bit_budget=bit_budget)
        csf = CsfTensor.from_coo(tensor, root_mode=0)
        return cls(
            shape=tensor.shape,
            nnz=tensor.nnz,
            distinct=distinct,
            num_blocks=max(blco.num_blocks, 1),
            csf_level_sizes=tuple(float(s) for s in csf.level_sizes()),
        )

    @classmethod
    def from_dims(cls, shape, nnz: int, bit_budget: int = 48) -> "TensorStats":
        """Estimated statistics from dimensions and nnz alone (Table 2 mode).

        Distinct counts use the occupancy expectation; the BLCO block count
        follows from the bit-budget overflow (each overflow bit doubles the
        potential block count, capped by nnz); CSF level sizes use the
        prefix-space occupancy expectation.
        """
        from repro.tensor.blco import split_bit_widths
        from repro.tensor.linearize import mode_bit_widths

        shape = check_shape(shape)
        require(nnz >= 0, "nnz must be non-negative")
        distinct = tuple(_expected_distinct(float(d), float(nnz)) for d in shape)

        widths = mode_bit_widths(shape)
        _, high = split_bit_widths(widths, bit_budget)
        overflow_bits = sum(high)
        # Occupied blocks: distinct high-bit prefixes among the nonzeros.
        num_blocks = int(
            min(_expected_distinct(2.0 ** min(overflow_bits, 60), float(nnz)), float(max(nnz, 1)))
        )

        levels = []
        space = 1.0
        for dim in shape:
            space *= float(dim)
            levels.append(_expected_distinct(space, float(nnz)))
        return cls(
            shape=shape,
            nnz=int(nnz),
            distinct=distinct,
            num_blocks=max(num_blocks, 1),
            csf_level_sizes=tuple(levels),
        )

    def density(self) -> float:
        return self.nnz / prod(float(d) for d in self.shape)


def charge_mttkrp(ex: Executor, stats: TensorStats, rank: int, mode: int, fmt: str) -> float:
    """Charge one MTTKRP kernel for *mode* on the executor's device.

    ``fmt`` selects the storage format's traffic profile: ``"blco"`` (GPU
    block-streaming), ``"csf"`` (SPLATT tree walk), ``"alto"`` or ``"coo"``
    (linearized / raw coordinate streaming). Returns simulated seconds.
    """
    require(0 <= mode < stats.ndim, f"mode {mode} out of range")
    nnz = float(stats.nnz)
    ndim = stats.ndim
    r = float(rank)
    other_distinct = sum(d for m, d in enumerate(stats.distinct) if m != mode)
    out_rows = stats.distinct[mode]

    if fmt == "blco":
        # A single kernel launch streams the block array (block headers are
        # part of the stream: ndim words per block). Streams value + one
        # packed index word per nonzero; gathers (ndim-1) factor rows per
        # nonzero; hierarchical (warp-reduced) atomics toward the output.
        reads = 2.0 * nnz + stats.num_blocks * ndim + nnz * (ndim - 1) * r + nnz * r * 0.25
        writes = out_rows * r + nnz * r * 0.25
        unique = 2.0 * nnz + other_distinct * r + out_rows * r
        # Atomic contention: the GPU kernel accumulates into the output with
        # atomics; when the target mode is much shorter than the nonzero
        # count (e.g. VAST's length-2 mode), conflicting updates serialize.
        # Warp-level pre-aggregation (factor 32) is modeled; beyond that the
        # conflict chains are charged as serialized steps. This is the
        # effect that makes VAST the outlier of Figures 7/8.
        contention_steps = int(nnz / (max(out_rows, 1.0) * 32.0))
        return ex.record(
            "mttkrp_blco",
            flops=nnz * r * ndim,
            reads=reads,
            writes=writes,
            parallel_work=nnz * r,
            unique_words=unique,
            working_set_words=(other_distinct + out_rows) * r * MTTKRP_LOCALITY["blco"],
            launches=1,
            serial_steps=contention_steps,
            traffic_kind="gather",
        )

    if fmt == "csf":
        # Tree walk: values once, per-node factor rows at each level, fiber
        # pointers once. Reuse across a fiber's leaves is structural (the
        # partial product), so logical gather traffic is per *node*, not per
        # nonzero — CSF's compression advantage.
        levels = stats.csf_level_sizes or tuple(
            min(nnz, float(prod(stats.shape[: l + 1]))) for l in range(ndim)
        )
        inner_nodes = sum(levels[1:])
        reads = nnz + sum(levels) + inner_nodes * r
        writes = out_rows * r + inner_nodes * r * 0.5
        unique = nnz + sum(levels) + other_distinct * r + out_rows * r
        return ex.record(
            "mttkrp_csf",
            flops=(nnz + inner_nodes) * r * 2.0,
            reads=reads,
            writes=writes,
            # SPLATT parallelizes over root subtrees, falling back to a
            # nonzero decomposition for short modes, so available parallelism
            # tracks the nonzero count, not the output row count.
            parallel_work=nnz * r,
            unique_words=unique,
            working_set_words=(other_distinct + out_rows) * r * MTTKRP_LOCALITY["csf"],
            launches=1,
            traffic_kind="gather",
        )

    if fmt in ("alto", "coo"):
        index_words = 1.0 if fmt == "alto" else float(ndim)
        reads = (1.0 + index_words) * nnz + nnz * (ndim - 1) * r + nnz * r * 0.25
        writes = out_rows * r + nnz * r * 0.25
        unique = (1.0 + index_words) * nnz + other_distinct * r + out_rows * r
        return ex.record(
            f"mttkrp_{fmt}",
            flops=nnz * r * ndim,
            reads=reads,
            writes=writes,
            parallel_work=nnz * r,
            unique_words=unique,
            working_set_words=(other_distinct + out_rows) * r * MTTKRP_LOCALITY[fmt],
            launches=1,
            traffic_kind="gather",
        )

    raise ValueError(f"unknown MTTKRP format {fmt!r}")
