"""Roofline cost model: :class:`KernelRecord` → simulated seconds.

The model has three terms, each tied to a GPU-performance effect the paper
measures:

1. **Fixed overheads** — ``launches · launch_overhead`` (Fig 4's small-tensor
   plateau: fusing kernels removes launches) and ``serial_steps ·
   sync_overhead`` (triangular-solve serialization, removed by
   pre-inversion).
2. **Utilization ramp** — ``U(w) = w / (w + saturation_work)``: kernels on
   short factor matrices cannot fill a GPU's SMs, so both compute and
   bandwidth scale down (Section 5.3's "longer modes benefit more").
3. **Cache-aware traffic** — re-access traffic beyond the compulsory bytes
   is served from cache in proportion to how much of the working set fits
   (Section 5.3's H100-vs-A100 cache argument).
"""

from __future__ import annotations

from repro.machine.counters import KernelRecord
from repro.machine.spec import DeviceSpec

__all__ = [
    "utilization",
    "dram_traffic",
    "kernel_seconds",
    "admm_aux_formation_words",
    "admm_aux_step_words",
]


def utilization(spec: DeviceSpec, parallel_work: float) -> float:
    """Fraction of peak throughput reachable with *parallel_work* items.

    A smooth saturating ramp ``w / (w + w_half)``: half the peak at the
    device's ``saturation_work``, asymptotically 1. Monotone in *w*, which
    the property tests rely on.
    """
    w = max(float(parallel_work), 1.0)
    return w / (w + spec.saturation_work)


def miss_rate(spec: DeviceSpec, record: KernelRecord) -> float:
    """Fraction of re-access traffic that misses in cache: the portion of
    the working set exceeding the device's cache capacity."""
    ws = max(record.resolved_working_set(), 1.0)
    return max(0.0, min(1.0, (ws - spec.cache_bytes) / ws))


def dram_traffic(spec: DeviceSpec, record: KernelRecord) -> float:
    """DRAM bytes after the cache model.

    ``unique`` bytes always travel (compulsory misses). Re-access traffic
    ``total - unique`` misses at the capacity-model rate.
    """
    total = record.total_bytes
    unique = min(record.resolved_unique(), total)
    reaccess = total - unique
    if reaccess <= 0.0:
        return total
    return unique + reaccess * miss_rate(spec, record)


def kernel_seconds(spec: DeviceSpec, record: KernelRecord) -> float:
    """Simulated wall-clock seconds for one kernel record on *spec*."""
    u = utilization(spec, record.parallel_work)

    if record.traffic_kind == "stream":
        bw_eff = spec.stream_efficiency
    else:
        # Gathers degrade from the cache-resident rate toward the
        # cache-thrashing rate as the working set outgrows the cache.
        miss = miss_rate(spec, record)
        bw_eff = spec.gather_efficiency * (1.0 - miss) + spec.random_efficiency * miss
    bytes_dram = dram_traffic(spec, record)
    t_mem = bytes_dram / (spec.mem_bandwidth * bw_eff * u) if bytes_dram > 0 else 0.0

    u_compute = 1.0 if record.utilization_exempt else u
    flops_rate = spec.peak_flops * record.compute_efficiency * u_compute
    t_compute = record.flops / flops_rate if record.flops > 0 else 0.0

    fixed = record.launches * spec.launch_overhead + record.serial_steps * spec.sync_overhead
    return fixed + max(t_mem, t_compute)


# --------------------------------------------------------------------- #
# ADMM auxiliary-step traffic model (Section 4.3.1 word counts)
# --------------------------------------------------------------------- #
# Words moved per ADMM inner iteration on an I×R factor (n = I·R elements),
# itemized per kernel exactly as the Executor accounts them. These tables
# are the paper's operation-fusion argument in closed form: the trace
# analyzer (repro.obs.analysis.trace) uses them to model the counterfactual
# kernel plan a run did NOT take, so one trace suffices to check the claim.

#: Auxiliary formation ``H̃ = M + ρ(H + U)`` alone: two DGEAMs (4n reads,
#: 2n writes) unfused vs one fused kernel (3n reads, n writes) — the
#: "fused auxiliary step moves ~2/3 the bytes" headline.
_AUX_FORMATION_WORDS = {"fused": 4.0, "unfused": 6.0}

#: The whole non-solve part of one inner iteration (everything Section
#: 4.3.1 fuses: formation, prox/primal, dual update + the four convergence
#: reductions). Coefficients are words per factor element n.
_AUX_STEP_WORDS = {
    "fused": {
        "fused_auxiliary": 4.0,     # 3n reads, n writes
        "fused_prox_primal": 4.0,   # 2n reads, 2n writes
        "fused_dual_update": 7.0,   # 5n reads, 2n writes
    },
    "unfused": {
        "dcopy_hprev": 2.0,
        "dgeam_h_plus_u": 3.0,
        "dgeam_aux": 3.0,
        "dgeam_prox_arg": 3.0,
        "prox": 2.0,
        "dgeam_dh": 3.0,
        "dgeam_dual": 3.0,
        "dgeam_dprev": 3.0,
        "norm_primal": 1.0,
        "norm_h": 1.0,
        "norm_dual": 1.0,
        "norm_u": 1.0,
    },
}


def admm_aux_formation_words(n_elements: float, fused: bool) -> float:
    """Words the auxiliary-formation kernel(s) move for an n-element factor."""
    return _AUX_FORMATION_WORDS["fused" if fused else "unfused"] * float(n_elements)


def admm_aux_step_words(n_elements: float, fused: bool) -> float:
    """Words one full auxiliary step (formation + prox + dual + reductions)
    moves per inner iteration: 15n fused vs 26n unfused (≈0.58×)."""
    table = _AUX_STEP_WORDS["fused" if fused else "unfused"]
    return sum(table.values()) * float(n_elements)
