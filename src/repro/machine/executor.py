"""The typed-kernel executor: compute in NumPy, account in simulated time.

Every operation an update method performs on the "device" goes through one
of these ops. Each op

1. computes the real result with NumPy (skipped when any operand is a
   :class:`~repro.machine.symbolic.SymArray` — the analytic, paper-scale
   mode), and
2. emits one :class:`~repro.machine.counters.KernelRecord`, converted to
   simulated seconds by the roofline model and accumulated on the
   :class:`~repro.machine.counters.Timeline`.

Op granularity mirrors the cuBLAS/cuSOLVER calls the paper's baseline uses
(DGEAM, DGEMM, DSYRK, DPOTRF, DTRSM, reductions) plus the three custom fused
kernels of cuADMM (Section 4.3.1): ``fused_auxiliary``,
``fused_prox_primal``, and ``fused_dual_update``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager

import numpy as np
import scipy.linalg

from repro.linalg.proximal import ProximalOperator
from repro.machine.costmodel import kernel_seconds
from repro.machine.counters import WORD_BYTES, KernelRecord, Timeline
from repro.machine.spec import DeviceSpec, get_device
from repro.machine.symbolic import SymArray, is_symbolic

__all__ = ["Executor"]


def _shape(x) -> tuple[int, ...]:
    return tuple(x.shape)


def _size(x) -> int:
    return math.prod(_shape(x))


class Executor:
    """Executes device kernels and accounts their simulated cost.

    Parameters
    ----------
    device:
        A :class:`DeviceSpec` or preset name (``"a100"``, ``"h100"``,
        ``"cpu"``).
    keep_records:
        Retain every :class:`KernelRecord` on the timeline (for tests and
        detailed traces); off by default to bound memory.
    """

    def __init__(self, device="a100", keep_records: bool = False):
        self.device: DeviceSpec = get_device(device)
        self.timeline = Timeline(keep_records=keep_records)
        self._phase = "UNPHASED"
        self.on_kernel = None
        """Optional ``(KernelRecord, seconds) -> None`` observer invoked for
        every charged kernel — the bridge an active telemetry session (see
        :mod:`repro.obs`) uses to mirror the simulated-device stream. None
        (the default) costs nothing."""

    # ------------------------------------------------------------------ #
    # Phase management and raw accounting
    # ------------------------------------------------------------------ #
    @contextmanager
    def phase(self, name: str):
        """Tag all kernels issued inside the block with phase *name*."""
        prev = self._phase
        self._phase = name
        try:
            yield self
        finally:
            self._phase = prev

    @property
    def current_phase(self) -> str:
        return self._phase

    def record(
        self,
        name: str,
        *,
        flops: float = 0.0,
        reads: float = 0.0,
        writes: float = 0.0,
        parallel_work: float = 1.0,
        unique_words: float | None = None,
        working_set_words: float | None = None,
        launches: int = 1,
        serial_steps: int = 0,
        compute_efficiency: float = 1.0,
        traffic_kind: str = "stream",
        utilization_exempt: bool = False,
    ) -> float:
        """Charge a kernel given word counts; returns its simulated seconds.

        ``reads``/``writes``/``unique_words``/``working_set_words`` are in
        *words* (float64); conversion to bytes happens here so call sites
        read like the paper's word-count analysis (Eq. 4).
        """
        rec = KernelRecord(
            name=name,
            phase=self._phase,
            flops=float(flops),
            bytes_read=float(reads) * WORD_BYTES,
            bytes_written=float(writes) * WORD_BYTES,
            parallel_work=float(parallel_work),
            unique_bytes=None if unique_words is None else float(unique_words) * WORD_BYTES,
            working_set=None
            if working_set_words is None
            else float(working_set_words) * WORD_BYTES,
            launches=launches,
            serial_steps=serial_steps,
            compute_efficiency=compute_efficiency,
            traffic_kind=traffic_kind,
            utilization_exempt=utilization_exempt,
        )
        seconds = kernel_seconds(self.device, rec)
        self.timeline.add(rec, seconds)
        if self.on_kernel is not None:
            self.on_kernel(rec, seconds)
        return seconds

    def charge_fixed(self, name: str, seconds: float) -> float:
        """Charge a fixed simulated duration (e.g. host-link streaming that
        the device's own bandwidth model must not re-price)."""
        rec = KernelRecord(
            name=name, phase=self._phase, flops=0.0, bytes_read=0.0,
            bytes_written=0.0, parallel_work=1.0, launches=0,
        )
        self.timeline.add(rec, float(seconds))
        if self.on_kernel is not None:
            self.on_kernel(rec, float(seconds))
        return float(seconds)

    def _out(self, template, shape):
        """Symbolic or concrete result placeholder."""
        return SymArray(shape) if is_symbolic(template) else None

    # ------------------------------------------------------------------ #
    # BLAS-1 style elementwise kernels (DGEAM / custom)
    # ------------------------------------------------------------------ #
    def copy(self, a, name: str = "dcopy"):
        """``out = a`` (DCOPY): reads n, writes n."""
        n = _size(a)
        self.record(name, reads=n, writes=n, parallel_work=n)
        return SymArray(_shape(a)) if is_symbolic(a) else np.array(a, copy=True)

    def geam(self, alpha: float, a, beta: float, b, name: str = "dgeam"):
        """``alpha·A + beta·B`` (cuBLAS DGEAM): reads 2n, writes n."""
        n = _size(a)
        self.record(name, flops=3 * n, reads=2 * n, writes=n, parallel_work=n)
        if is_symbolic(a, b):
            return SymArray(_shape(a))
        return alpha * np.asarray(a) + beta * np.asarray(b)

    def add(self, a, b, name: str = "dgeam_add"):
        return self.geam(1.0, a, 1.0, b, name=name)

    def sub(self, a, b, name: str = "dgeam_sub"):
        return self.geam(1.0, a, -1.0, b, name=name)

    def hadamard(self, a, b, name: str = "hadamard"):
        """Element-wise product: reads 2n, writes n."""
        n = _size(a)
        self.record(name, flops=n, reads=2 * n, writes=n, parallel_work=n)
        if is_symbolic(a, b):
            return SymArray(_shape(a))
        return np.asarray(a) * np.asarray(b)

    def elementwise_div(self, a, b, eps: float = 0.0, name: str = "elementwise_div"):
        """``a / (b + eps)``: reads 2n, writes n (MU's core kernel)."""
        n = _size(a)
        self.record(name, flops=2 * n, reads=2 * n, writes=n, parallel_work=n)
        if is_symbolic(a, b):
            return SymArray(_shape(a))
        return np.asarray(a) / (np.asarray(b) + eps)

    def scale(self, alpha: float, a, name: str = "dscal"):
        n = _size(a)
        self.record(name, flops=n, reads=n, writes=n, parallel_work=n)
        return SymArray(_shape(a)) if is_symbolic(a) else alpha * np.asarray(a)

    def clip_min(self, a, lo: float = 0.0, name: str = "clip_min"):
        """Elementwise ``max(a, lo)`` (HALS's projection)."""
        n = _size(a)
        self.record(name, flops=n, reads=n, writes=n, parallel_work=n)
        return SymArray(_shape(a)) if is_symbolic(a) else np.maximum(np.asarray(a), lo)

    def col_scale(self, a, scale, name: str = "col_scale"):
        """``A · diag(scale)`` — re-applies λ to a normalized factor."""
        n = _size(a)
        self.record(name, flops=n, reads=n + _shape(a)[1], writes=n, parallel_work=n)
        if is_symbolic(a, scale):
            return SymArray(_shape(a))
        return np.asarray(a) * np.asarray(scale)[None, :]

    def normalize_columns(self, a, kind: str = "max", name: str = "normalize_columns"):
        """Column normalization + λ extraction (line 11 of Algorithm 1).

        One reduction pass (column norms) plus one scaling pass: reads 2n,
        writes n + R.
        """
        n = _size(a)
        rank = _shape(a)[1]
        self.record(name, flops=3 * n, reads=2 * n, writes=n + rank, parallel_work=n)
        if is_symbolic(a):
            return SymArray(_shape(a)), SymArray((rank,))
        from repro.kernels.normalize import normalize_factor

        return normalize_factor(np.asarray(a), kind=kind)

    def norm_sq(self, a, name: str = "norm_sq") -> float:
        """Squared Frobenius norm reduction; NaN in symbolic mode."""
        n = _size(a)
        self.record(name, flops=2 * n, reads=n, writes=1, parallel_work=n)
        if is_symbolic(a):
            return float("nan")
        flat = np.asarray(a, dtype=np.float64).ravel()
        return float(np.dot(flat, flat))

    def prox(self, op: ProximalOperator, x, rho: float, name: str | None = None):
        """Apply a proximity operator as a standalone elementwise kernel."""
        n = _size(x)
        self.record(name or f"prox_{op.name}", flops=2 * n, reads=n, writes=n, parallel_work=n)
        return SymArray(_shape(x)) if is_symbolic(x) else op(x, rho)

    # ------------------------------------------------------------------ #
    # BLAS-2/3 kernels
    # ------------------------------------------------------------------ #
    def gemm(self, a, b, name: str = "dgemm"):
        """``A @ B``: flops 2·m·k·n, streaming traffic, GEMM efficiency."""
        m, k = _shape(a)
        k2, n = _shape(b)
        if k != k2:
            raise ValueError(f"gemm shape mismatch: {(m, k)} @ {(k2, n)}")
        self.record(
            name,
            flops=2.0 * m * k * n,
            reads=m * k + k * n,
            writes=m * n,
            parallel_work=m * n,
            compute_efficiency=self.device.gemm_efficiency,
        )
        if is_symbolic(a, b):
            return SymArray((m, n))
        return np.asarray(a) @ np.asarray(b)

    def gemv(self, a, x, name: str = "dgemv"):
        """``A @ x``: flops 2·m·n (HALS's per-rank kernel)."""
        m, n = _shape(a)
        self.record(
            name,
            flops=2.0 * m * n,
            reads=m * n + n,
            writes=m,
            # Every product in the m×n sweep is independent work before the
            # row reductions, so occupancy scales with m·n, not m.
            parallel_work=float(m) * n,
            compute_efficiency=self.device.gemm_efficiency,
        )
        if is_symbolic(a, x):
            return SymArray((m,))
        return np.asarray(a) @ np.asarray(x)

    def gram(self, h, name: str = "dsyrk_gram"):
        """``HᵀH`` (DSYRK): flops I·R², reads I·R, writes R²."""
        i, r = _shape(h)
        self.record(
            name,
            flops=float(i) * r * r,
            reads=float(i) * r,
            writes=r * r,
            parallel_work=float(i) * r,
            compute_efficiency=self.device.gemm_efficiency,
        )
        if is_symbolic(h):
            return SymArray((r, r))
        h = np.asarray(h)
        return h.T @ h

    # ------------------------------------------------------------------ #
    # Factorization / solve kernels
    # ------------------------------------------------------------------ #
    def cholesky(self, s, name: str = "dpotrf"):
        """Cholesky of an R×R SPD matrix: R³/3 flops, R serialized steps.

        Charged with a substantial fixed library-call cost (``launches=40``):
        a cuSOLVER DPOTRF involves a workspace query, allocation, and a
        multi-kernel panel factorization — on small factor matrices this
        setup dominates a whole ADMM iteration, which is what flattens the
        Figure 4 speedups for NIPS/Enron-class tensors.
        """
        r, r2 = _shape(s)
        if r != r2:
            raise ValueError("cholesky needs a square matrix")
        self.record(
            name,
            flops=r**3 / 3.0,
            reads=r * r,
            writes=r * r,
            parallel_work=r * r,
            launches=40,
            serial_steps=r,
            compute_efficiency=self.device.trsm_efficiency,
            utilization_exempt=True,
        )
        if is_symbolic(s):
            return SymArray((r, r))
        return np.linalg.cholesky(np.asarray(s, dtype=np.float64))

    def trsm(self, l_factor, b, lower: bool = True, transpose: bool = False, name: str = "dtrsm"):
        """Triangular solve ``op(L) X = B`` with ``B`` R×n.

        Serialized over R dependent substitution steps — the GPU pathology
        pre-inversion eliminates (Section 4.3.2).
        """
        r, r2 = _shape(l_factor)
        rb, nrhs = _shape(b)
        if r != r2 or rb != r:
            raise ValueError(f"trsm shape mismatch: L {(r, r2)}, B {(rb, nrhs)}")
        self.record(
            name,
            flops=float(r) * r * nrhs,
            reads=r * r / 2.0 + float(r) * nrhs,
            writes=float(r) * nrhs,
            parallel_work=float(nrhs) * r,
            launches=6,  # blocked multi-kernel solve (cuBLAS DTRSM internals)
            serial_steps=r,
            compute_efficiency=self.device.trsm_efficiency,
            utilization_exempt=True,
        )
        if is_symbolic(l_factor, b):
            return SymArray((r, nrhs))
        mat = np.asarray(l_factor, dtype=np.float64)
        return scipy.linalg.solve_triangular(
            mat.T if transpose else mat, np.asarray(b, dtype=np.float64),
            lower=lower != transpose,
        )

    def cholesky_solve(self, l_factor, b):
        """``(LLᵀ)⁻¹ B`` via forward+backward substitution (two DTRSM)."""
        y = self.trsm(l_factor, b, lower=True, transpose=False, name="dtrsm_fwd")
        return self.trsm(l_factor, y, lower=True, transpose=True, name="dtrsm_bwd")

    def spd_inverse(self, l_factor, name: str = "dpotri"):
        """Explicit ``(LLᵀ)⁻¹`` — cuADMM's one-off pre-inversion."""
        r, _ = _shape(l_factor)
        if is_symbolic(l_factor):
            self.cholesky_solve(l_factor, SymArray((r, r)))
            return SymArray((r, r))
        inv = self.cholesky_solve(l_factor, np.eye(r))
        return 0.5 * (inv + inv.T)

    # ------------------------------------------------------------------ #
    # cuADMM fused kernels (Section 4.3.1)
    # ------------------------------------------------------------------ #
    def fused_auxiliary(self, m, h, u, rho: float, name: str = "fused_auxiliary"):
        """``H̃ = M + ρ(H + U)`` in one kernel: 3n reads, n writes.

        The unfused equivalent is two DGEAM calls (4n reads, 2n writes) —
        the ~33 % traffic saving the paper quotes.
        """
        n = _size(m)
        self.record(name, flops=3 * n, reads=3 * n, writes=n, parallel_work=n)
        if is_symbolic(m, h, u):
            return SymArray(_shape(m))
        return np.asarray(m) + rho * (np.asarray(h) + np.asarray(u))

    def fused_prox_primal(self, op: ProximalOperator, h_aux, u, rho: float,
                          name: str = "fused_prox_primal"):
        """``H = prox_r(H̃ - U)`` in one kernel.

        No intermediate global store of ``H̃ - U`` as a *separate kernel's*
        output; the kernel reads H̃ and U (2n) and writes the new primal H
        plus the difference tile the dual kernel consumes (2n). This is the
        conservative traffic accounting: fusion removes kernel round-trips,
        not the fundamental stores.
        """
        n = _size(h_aux)
        self.record(name, flops=3 * n, reads=2 * n, writes=2 * n, parallel_work=n)
        if is_symbolic(h_aux, u):
            return SymArray(_shape(h_aux))
        return op(np.asarray(h_aux) - np.asarray(u), rho)

    def fused_dual_update(self, u, h, h_aux, h_prev, name: str = "fused_dual_update"):
        """Dual update and all four convergence reductions in one kernel.

        Computes ``ΔH = H - H̃``, ``U += ΔH``, and co-computes
        ``‖ΔH‖², ‖H‖², ‖H - H_prev‖², ‖U‖²`` while the operands are in
        registers: 5n reads (U, H, H̃, H_prev, plus the prox kernel's
        difference tile), 2n writes (U and the materialized ΔH), versus the
        unfused path's three DGEAMs plus four separate reduction kernels.
        """
        n = _size(u)
        self.record(name, flops=10 * n, reads=5 * n, writes=2 * n, parallel_work=n)
        if is_symbolic(u, h, h_aux, h_prev):
            nan = float("nan")
            return SymArray(_shape(u)), nan, nan, nan, nan
        u = np.asarray(u)
        h = np.asarray(h)
        dh = h - np.asarray(h_aux)
        u_new = u + dh
        d_prev = h - np.asarray(h_prev)
        return (
            u_new,
            float(np.vdot(dh, dh).real),
            float(np.vdot(h, h).real),
            float(np.vdot(d_prev, d_prev).real),
            float(np.vdot(u_new, u_new).real),
        )
