"""The machine model: a roofline-style execution simulator for GPUs and CPUs.

This subpackage is the substitution for the paper's NVIDIA A100/H100 GPUs and
26-core Ice Lake Xeon (Table 1). Real numerics run in NumPy; *simulated*
execution time is charged per kernel from first principles:

``t = launches · launch_overhead + serial_steps · sync_overhead
    + max(flops / (peak · eff · U_c),  dram_bytes / (bw · eff · U_m))``

where the utilization terms ``U`` ramp with the available parallel work
(short factor matrices cannot fill a GPU — the effect behind the paper's
"longer modes benefit more" observation) and ``dram_bytes`` discounts
re-accessed data by a cache-capacity miss model (the effect behind H100
beating A100 at equal DRAM bandwidth).

Components
----------
- :mod:`repro.machine.spec` — :class:`DeviceSpec` and the Table 1 presets.
- :mod:`repro.machine.counters` — :class:`KernelRecord` and the
  :class:`Timeline` aggregator.
- :mod:`repro.machine.costmodel` — record → seconds.
- :mod:`repro.machine.executor` — :class:`Executor`, typed kernel ops
  (GEMM/GEAM/TRSM/fused kernels) that both compute and account.
- :mod:`repro.machine.symbolic` — :class:`SymArray` shape-only arrays for
  analytic (paper-scale) evaluation through the same op sequences.
- :mod:`repro.machine.analytic` — closed-form MTTKRP cost records per
  format, driven by tensor statistics instead of materialized data.
"""

from repro.machine.spec import DeviceSpec, A100, H100, ICELAKE_XEON, get_device
from repro.machine.counters import KernelRecord, Timeline
from repro.machine.costmodel import kernel_seconds, utilization, dram_traffic, miss_rate
from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray

__all__ = [
    "DeviceSpec",
    "A100",
    "H100",
    "ICELAKE_XEON",
    "get_device",
    "KernelRecord",
    "Timeline",
    "kernel_seconds",
    "utilization",
    "dram_traffic",
    "miss_rate",
    "TensorStats",
    "charge_mttkrp",
    "Executor",
    "SymArray",
]
