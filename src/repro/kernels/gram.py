"""Gram matrices and the Hadamard-of-Grams chain of Algorithm 1.

Line 8 of the paper's Algorithm 1 forms ``S^(n) = G^(1) * ... * G^(n-1) *
G^(n+1) * ... * G^(N)`` where ``G^(m) = H^(m)ᵀ H^(m)`` and ``*`` is the
Hadamard product. The driver caches the ``G^(m)`` and refreshes only the one
whose factor changed (line 12), which these helpers support.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

__all__ = ["gram", "gram_chain", "hadamard_of_grams"]


def gram(factor: np.ndarray) -> np.ndarray:
    """``HᵀH`` for a factor matrix ``H ∈ R^{I×R}`` (symmetric R×R)."""
    factor = np.asarray(factor, dtype=np.float64)
    require(factor.ndim == 2, "factor must be 2-D")
    return factor.T @ factor


def hadamard_of_grams(grams, skip: int | None = None) -> np.ndarray:
    """Element-wise product of Gram matrices, optionally skipping one mode."""
    grams = list(grams)
    require(len(grams) >= 1, "need at least one Gram matrix")
    picked = [g for m, g in enumerate(grams) if m != skip]
    require(len(picked) >= 1, "cannot skip the only Gram matrix")
    out = np.array(picked[0], dtype=np.float64, copy=True)
    for g in picked[1:]:
        out *= g
    return out


def gram_chain(factors, skip: int | None = None) -> np.ndarray:
    """Compute ``S^(skip)`` directly from the factor matrices (no cache)."""
    return hadamard_of_grams([gram(f) for f in factors], skip=skip)
