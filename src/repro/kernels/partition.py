"""Nonzero partitioning and load balance for parallel MTTKRP.

Real MTTKRP kernels (SPLATT's OpenMP loops, BLCO's thread blocks) must
split the nonzeros across workers; skewed fiber histograms make naive
splits imbalanced. This module implements the three classic strategies and
the imbalance statistics the machine model's utilization term abstracts:

- ``partition_equal_nnz`` — contiguous equal-count chunks of the sorted
  nonzero stream (BLCO's approach; perfect nnz balance, but workers may
  collide on output rows → atomics).
- ``partition_by_output_row`` — owner-computes: each worker owns a range
  of output rows (SPLATT's approach; no write conflicts, but heavy fibers
  skew the work).
- ``partition_greedy_fibers`` — longest-processing-time greedy assignment
  of whole fibers to workers (the standard imbalance fix).

``imbalance`` (max/mean work) is the factor by which the slowest worker
exceeds a perfect split — multiply a kernel's ideal parallel time by it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_axis, check_positive_int, require

__all__ = [
    "Partition",
    "partition_equal_nnz",
    "partition_by_output_row",
    "partition_greedy_fibers",
    "greedy_assign",
    "imbalance",
]


@dataclass(frozen=True)
class Partition:
    """An assignment of nonzeros to workers."""

    strategy: str
    n_workers: int
    counts: np.ndarray
    """Nonzeros per worker (length ``n_workers``)."""

    owner_of_nnz: np.ndarray | None = None
    """Optional per-nonzero worker id (aligned with the tensor's order)."""

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def imbalance(self) -> float:
        return imbalance(self.counts)

    def conflict_free(self) -> bool:
        """Whether workers never write the same output row (owner-computes)."""
        return self.strategy in ("by_output_row", "greedy_fibers")


def imbalance(counts) -> float:
    """``max(work) / mean(work)`` — 1.0 is perfect balance."""
    counts = np.asarray(counts, dtype=np.float64)
    require(counts.size > 0, "no workers")
    mean = counts.mean()
    if mean <= 0:
        return 1.0
    return float(counts.max() / mean)


def partition_equal_nnz(tensor: SparseTensor, n_workers: int) -> Partition:
    """Contiguous equal-count chunks of the (sorted) nonzero stream."""
    n_workers = check_positive_int(n_workers, "n_workers")
    nnz = tensor.nnz
    base, extra = divmod(nnz, n_workers)
    counts = np.full(n_workers, base, dtype=np.int64)
    counts[:extra] += 1
    owner = np.repeat(np.arange(n_workers), counts)
    return Partition("equal_nnz", n_workers, counts, owner)


def partition_by_output_row(tensor: SparseTensor, mode: int, n_workers: int) -> Partition:
    """Owner-computes: contiguous output-row ranges with ~equal row counts."""
    n_workers = check_positive_int(n_workers, "n_workers")
    mode = check_axis(mode, tensor.ndim)
    dim = tensor.shape[mode]
    boundaries = np.linspace(0, dim, n_workers + 1).astype(np.int64)
    rows = tensor.mode_indices(mode)
    owner = np.clip(np.searchsorted(boundaries, rows, side="right") - 1, 0, n_workers - 1)
    counts = np.bincount(owner, minlength=n_workers).astype(np.int64)
    return Partition("by_output_row", n_workers, counts, owner.astype(np.int64))


def greedy_assign(sizes, n_workers: int) -> tuple[np.ndarray, np.ndarray]:
    """LPT greedy assignment of weighted items to workers.

    Items are visited heaviest-first with a *stable* tie-break on the item
    index — ``np.argsort(-sizes, kind="stable")`` orders equal weights by
    position, so the assignment is identical across calls, platforms, and
    NumPy versions (a reversed non-stable sort is not). Each item goes to
    the currently least-loaded worker (``argmin`` returns the first minimum,
    which is deterministic too). Zero-size items stay on worker 0 without
    affecting any load.

    Returns ``(owner, loads)``: the per-item worker id and the per-worker
    total weight.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    n_workers = check_positive_int(n_workers, "n_workers")
    owner = np.zeros(sizes.size, dtype=np.int64)
    loads = np.zeros(n_workers, dtype=np.int64)
    for item in np.argsort(-sizes, kind="stable"):
        c = sizes[item]
        if c == 0:
            continue
        w = int(np.argmin(loads))
        owner[item] = w
        loads[w] += c
    return owner, loads


def partition_greedy_fibers(tensor: SparseTensor, mode: int, n_workers: int) -> Partition:
    """LPT greedy: assign output rows (with all their nonzeros) to the
    currently least-loaded worker, heaviest rows first."""
    n_workers = check_positive_int(n_workers, "n_workers")
    mode = check_axis(mode, tensor.ndim)
    fiber_counts = tensor.mode_fiber_counts(mode)
    row_owner, loads = greedy_assign(fiber_counts, n_workers)
    owner = row_owner[tensor.mode_indices(mode)]
    return Partition("greedy_fibers", n_workers, loads, owner)
