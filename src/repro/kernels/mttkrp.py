"""MTTKRP dispatch and the dense reference implementation.

See Section 2.2 of the paper: for a mode-3 tensor the mode-1 MTTKRP is
``X_(1) (B ⊙ C)``; sparse kernels never materialize the Khatri-Rao product
but compute its rows on the fly per nonzero (Figure 2).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.obs import current_telemetry
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.coo import SparseTensor
from repro.tensor.csf import CsfTensor
from repro.tensor.dense import DenseTensor, matricize
from repro.tensor.hicoo import HicooTensor
from repro.utils.validation import check_axis, require

__all__ = ["khatri_rao", "mttkrp_dense", "mttkrp", "check_factors", "traced_mttkrp"]


def traced_mttkrp(fmt: str):
    """Shared telemetry decorator for the per-format MTTKRP kernels.

    Wraps a ``kernel(tensor, factors, mode)`` function in a host span named
    ``mttkrp_kernel`` carrying the storage format and target mode, and
    bumps the ``mttkrp.calls.<fmt>`` counter. With no ambient telemetry
    session the wrapper is two attribute lookups and a no-op context —
    effectively free next to the kernel body.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(tensor, factors, mode, *args, **kwargs):
            tel = current_telemetry()
            with tel.span("mttkrp_kernel", format=fmt, mode=mode):
                tel.counter(f"mttkrp.calls.{fmt}")
                return fn(tensor, factors, mode, *args, **kwargs)

        return wrapper

    return decorate


def khatri_rao(matrices) -> np.ndarray:
    """Column-wise Khatri-Rao product of a sequence of matrices.

    All inputs must share the same column count R; the result has
    ``prod(rows)`` rows with the *leftmost* matrix's index slowest — matching
    the C-order matricization of :mod:`repro.tensor.dense`.
    """
    matrices = [np.asarray(m, dtype=np.float64) for m in matrices]
    require(len(matrices) >= 1, "khatri_rao needs at least one matrix")
    rank = matrices[0].shape[1]
    for m in matrices:
        require(m.ndim == 2 and m.shape[1] == rank, "all factors must share the rank")
    out = matrices[0]
    for m in matrices[1:]:
        # (I, R) ⊙ (J, R) -> (I*J, R): broadcasting the row dimensions.
        out = (out[:, None, :] * m[None, :, :]).reshape(-1, rank)
    return out


def check_factors(shape, factors, mode=None) -> int:
    """Validate factor-matrix shapes against *shape*; return the rank."""
    require(len(factors) == len(shape), f"expected {len(shape)} factors, got {len(factors)}")
    rank = None
    for n, (dim, f) in enumerate(zip(shape, factors)):
        f = np.asarray(f)
        require(f.ndim == 2, f"factor {n} must be 2-D")
        if mode is not None and n == mode:
            # The target mode's factor is not read by MTTKRP; its row count
            # may differ mid-update, but the rank must still agree.
            pass
        else:
            require(
                f.shape[0] == dim,
                f"factor {n} has {f.shape[0]} rows but mode length is {dim}",
            )
        if rank is None:
            rank = f.shape[1]
        require(f.shape[1] == rank, f"factor {n} rank {f.shape[1]} != {rank}")
    return int(rank)  # type: ignore[arg-type]


@traced_mttkrp("dense")
def mttkrp_dense(tensor, factors, mode: int) -> np.ndarray:
    """Dense oracle: ``matricize(X, mode) @ khatri_rao(other factors)``.

    Quadratic in memory for large tensors — used by the dense baseline and
    as the ground truth in the sparse-kernel tests.
    """
    data = tensor.data if isinstance(tensor, DenseTensor) else np.asarray(tensor, dtype=np.float64)
    mode = check_axis(mode, data.ndim)
    check_factors(data.shape, factors, mode)
    others = [np.asarray(factors[m], dtype=np.float64) for m in range(data.ndim) if m != mode]
    return matricize(data, mode) @ khatri_rao(others)


def mttkrp(tensor, factors, mode: int) -> np.ndarray:
    """Dispatch MTTKRP to the kernel matching the tensor's storage format."""
    # Local imports avoid a cycle (format kernels import helpers from here).
    from repro.kernels.mttkrp_alto import mttkrp_alto
    from repro.kernels.mttkrp_blco import mttkrp_blco
    from repro.kernels.mttkrp_coo import mttkrp_coo
    from repro.kernels.mttkrp_csf import mttkrp_csf
    from repro.kernels.mttkrp_hicoo import mttkrp_hicoo

    if isinstance(tensor, SparseTensor):
        return mttkrp_coo(tensor, factors, mode)
    if isinstance(tensor, CsfTensor):
        return mttkrp_csf(tensor, factors, mode)
    if isinstance(tensor, AltoTensor):
        return mttkrp_alto(tensor, factors, mode)
    if isinstance(tensor, BlcoTensor):
        return mttkrp_blco(tensor, factors, mode)
    if isinstance(tensor, HicooTensor):
        return mttkrp_hicoo(tensor, factors, mode)
    if isinstance(tensor, (DenseTensor, np.ndarray)):
        return mttkrp_dense(tensor, factors, mode)
    raise TypeError(f"no MTTKRP kernel for {type(tensor).__name__}")
