"""HiCOO MTTKRP: block-tiled accumulation.

Processes one HiCOO block at a time — each block's factor-row accesses fall
inside a ``2^block_bits``-aligned window per mode, which is the cache-tiling
property HiCOO was designed for. Contributions are accumulated per block
and segment-reduced into the output.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.mttkrp import check_factors, traced_mttkrp
from repro.kernels.mttkrp_coo import segment_accumulate
from repro.tensor.hicoo import HicooTensor
from repro.utils.validation import check_axis

__all__ = ["mttkrp_hicoo"]


@traced_mttkrp("hicoo")
def mttkrp_hicoo(tensor: HicooTensor, factors, mode: int) -> np.ndarray:
    """MTTKRP over a HiCOO tensor; returns ``(shape[mode], R)``."""
    mode = check_axis(mode, tensor.ndim)
    rank = check_factors(tensor.shape, factors, mode)
    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    if tensor.nnz == 0:
        return out

    fmats = [np.asarray(f, dtype=np.float64) for f in factors]
    for b in range(tensor.num_blocks):
        _, offsets, values = tensor.block_slice(b)
        acc = np.broadcast_to(values[:, None], (values.shape[0], rank)).copy()
        for m in range(tensor.ndim):
            if m == mode:
                continue
            acc *= fmats[m][tensor.mode_indices_of_block(b, m)]
        targets = tensor.mode_indices_of_block(b, mode)
        out += segment_accumulate(acc, targets, tensor.shape[mode])
    return out
