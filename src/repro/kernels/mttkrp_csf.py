"""CSF MTTKRP: the SPLATT tree-walk algorithm.

Partial Khatri-Rao products are accumulated bottom-up through the fiber
tree: leaves contribute ``x * H^(leaf mode)[i]``, inner levels segment-sum
their children and multiply by their own factor row, and the root level
scatters into the output. Fibers sharing index prefixes are therefore
visited once — the data-reuse advantage CSF gives SPLATT on CPUs.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.mttkrp import check_factors, traced_mttkrp
from repro.tensor.csf import CsfTensor
from repro.utils.validation import check_axis

__all__ = ["mttkrp_csf"]


def _segment_sum(rows: np.ndarray, fptr: np.ndarray) -> np.ndarray:
    """Sum child rows into parents along CSF pointer spans."""
    if fptr.size <= 1:
        return np.zeros((0, rows.shape[1]), dtype=np.float64)
    return np.add.reduceat(rows, fptr[:-1], axis=0)


@traced_mttkrp("csf")
def mttkrp_csf(tensor: CsfTensor, factors, mode: int) -> np.ndarray:
    """MTTKRP over a CSF tensor; returns ``(shape[mode], R)``.

    The fast path requires the tree to be rooted at *mode* (the baseline
    keeps one tree per mode, SPLATT's ``ALLMODE`` policy). A tree rooted
    elsewhere is transparently re-rooted through COO — correct but slow, and
    flagged in the docstring so callers avoid it in hot loops.
    """
    mode = check_axis(mode, tensor.ndim)
    rank = check_factors(tensor.shape, factors, mode)
    if tensor.mode_order[0] != mode:
        tensor = CsfTensor.from_coo(tensor.to_coo(), root_mode=mode)

    ndim = tensor.ndim
    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    if tensor.nnz == 0:
        return out

    order = tensor.mode_order
    leaf_factor = np.asarray(factors[order[ndim - 1]], dtype=np.float64)
    partial = tensor.values[:, None] * leaf_factor[tensor.fids[ndim - 1]]
    for level in range(ndim - 2, 0, -1):
        partial = _segment_sum(partial, tensor.fptr[level])
        level_factor = np.asarray(factors[order[level]], dtype=np.float64)
        partial *= level_factor[tensor.fids[level]]
    partial = _segment_sum(partial, tensor.fptr[0])
    # Root indices are unique by construction, so direct assignment suffices.
    out[tensor.fids[0]] = partial
    return out
