"""COO MTTKRP: per-nonzero Khatri-Rao rows with segmented accumulation.

For each stored element ``x_{i0..iN}`` the kernel forms the Hadamard product
of the corresponding factor rows of every non-target mode, scales by the
value, and accumulates into row ``i_mode`` of the output (Figure 2 of the
paper). Two accumulation strategies are provided:

- ``"segment"`` (default): sort nonzeros by the target-mode index once and
  reduce contiguous runs with ``np.add.reduceat`` — the analogue of the
  privatized/owner-computes reductions HPC kernels use.
- ``"atomic"``: scatter-add with ``np.add.at`` — the analogue of the
  atomic-update GPU strategy; slower in NumPy but allocation-free.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.mttkrp import check_factors, traced_mttkrp
from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_axis, require

__all__ = ["mttkrp_coo", "partial_khatri_rao_rows", "segment_accumulate"]


def partial_khatri_rao_rows(indices: np.ndarray, values: np.ndarray, factors, mode: int) -> np.ndarray:
    """The per-nonzero scaled Khatri-Rao rows: ``x * ⊛_{m≠mode} H^(m)[i_m]``.

    Returns an ``(nnz, R)`` matrix; row *r* is the contribution of nonzero
    *r* to the output row ``indices[r, mode]``.
    """
    rank = np.asarray(factors[0]).shape[1]
    nnz = values.shape[0]
    acc = np.broadcast_to(values[:, None], (nnz, rank)).copy()
    for m, factor in enumerate(factors):
        if m == mode:
            continue
        acc *= np.asarray(factor, dtype=np.float64)[indices[:, m]]
    return acc


def segment_accumulate(rows: np.ndarray, targets: np.ndarray, out_rows: int) -> np.ndarray:
    """Sum *rows* into ``out[targets]`` via a sort + segmented reduction."""
    out = np.zeros((out_rows, rows.shape[1]), dtype=np.float64)
    if rows.shape[0] == 0:
        return out
    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    sorted_rows = rows[order]
    starts = np.flatnonzero(np.concatenate(([True], sorted_targets[1:] != sorted_targets[:-1])))
    sums = np.add.reduceat(sorted_rows, starts, axis=0)
    out[sorted_targets[starts]] = sums
    return out


@traced_mttkrp("coo")
def mttkrp_coo(tensor: SparseTensor, factors, mode: int, strategy: str = "segment") -> np.ndarray:
    """MTTKRP over a COO tensor; returns ``(shape[mode], R)``."""
    mode = check_axis(mode, tensor.ndim)
    rank = check_factors(tensor.shape, factors, mode)
    require(strategy in ("segment", "atomic"), f"unknown strategy {strategy!r}")

    rows = partial_khatri_rao_rows(tensor.indices, tensor.values, factors, mode)
    targets = tensor.indices[:, mode]
    if strategy == "segment":
        return segment_accumulate(rows, targets, tensor.shape[mode])
    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    np.add.at(out, targets, rows)
    return out
