"""Factor-matrix column normalization (line 11 of Algorithm 1).

After each mode update the factor's columns are normalized and the norms
absorbed into the weight vector λ, keeping the factors well-scaled across AO
iterations. Two conventions are supported:

- ``"2"``: Euclidean column norms (classic CP-ALS).
- ``"max"``: max-norm with a floor of 1, the PLANC convention for
  nonnegative factorization — it never *scales up* small columns, which
  would amplify noise in sparse data.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

__all__ = ["normalize_factor"]


def normalize_factor(factor: np.ndarray, kind: str = "2") -> tuple[np.ndarray, np.ndarray]:
    """Normalize columns of *factor*; return ``(normalized, lambda)``.

    Zero columns get λ = 1 and are left unchanged so downstream Gram
    matrices stay finite.
    """
    factor = np.asarray(factor, dtype=np.float64)
    require(factor.ndim == 2, "factor must be 2-D")
    if kind == "2":
        lam = np.linalg.norm(factor, axis=0)
    elif kind == "max":
        lam = np.maximum(np.abs(factor).max(axis=0) if factor.size else np.zeros(factor.shape[1]), 1.0)
    else:
        raise ValueError(f"unknown normalization kind {kind!r}")
    lam = np.where(lam > 0.0, lam, 1.0)
    return factor / lam, lam
