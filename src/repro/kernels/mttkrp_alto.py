"""ALTO MTTKRP: delinearize, form Khatri-Rao rows, segment-reduce.

The ALTO kernel streams the linearized nonzeros in their locality-preserving
order, decodes the per-mode coordinates with shift/mask operations, and
accumulates like the COO kernel. Because ALTO order clusters nonzeros that
are close in every mode, consecutive entries touch nearby factor rows — the
cache-friendliness the machine cost model rewards for the CPU baseline.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.mttkrp import check_factors, traced_mttkrp
from repro.kernels.mttkrp_coo import segment_accumulate
from repro.tensor.alto import AltoTensor
from repro.utils.validation import check_axis

__all__ = ["mttkrp_alto"]


@traced_mttkrp("alto")
def mttkrp_alto(tensor: AltoTensor, factors, mode: int) -> np.ndarray:
    """MTTKRP over an ALTO tensor; returns ``(shape[mode], R)``."""
    mode = check_axis(mode, tensor.ndim)
    rank = check_factors(tensor.shape, factors, mode)
    out_rows = tensor.shape[mode]
    if tensor.nnz == 0:
        return np.zeros((out_rows, rank), dtype=np.float64)

    acc = np.broadcast_to(tensor.values[:, None], (tensor.nnz, rank)).copy()
    for m in range(tensor.ndim):
        if m == mode:
            continue
        idx = tensor.mode_indices(m)
        acc *= np.asarray(factors[m], dtype=np.float64)[idx]
    targets = tensor.mode_indices(mode)
    return segment_accumulate(acc, targets, out_rows)
