"""BLCO MTTKRP: the block-streaming GPU algorithm (Nguyen et al., ICS '22).

Each BLCO block is processed as one kernel launch would be on the GPU: the
in-block linearized indices are decoded with two shift/mask operations per
mode, the scaled Khatri-Rao rows are formed, and contributions are reduced
into the output. The per-block structure matters for the machine model —
block count determines launch overhead and per-block working sets determine
cache behaviour — and for correctness under the blocked index compression.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.mttkrp import check_factors, traced_mttkrp
from repro.kernels.mttkrp_coo import segment_accumulate
from repro.obs import current_telemetry
from repro.tensor.blco import BlcoTensor
from repro.utils.validation import check_axis

__all__ = ["mttkrp_blco"]


def _record_block_balance(tensor: BlcoTensor) -> None:
    """Gauge the block-count and nnz load imbalance for the run doctor.

    Imbalance is max/mean nonzeros per block — the GPU figure of merit,
    since the fattest block bounds every launch. Computed only when a
    telemetry session is live; the kernel stays gauge-free otherwise.
    """
    tel = current_telemetry()
    if not tel.enabled or not tensor.blocks:
        return
    sizes = [block.nnz for block in tensor.blocks]
    mean = sum(sizes) / len(sizes)
    tel.gauge("mttkrp.blco.blocks", float(len(sizes)))
    tel.gauge("mttkrp.blco.block_imbalance",
              max(sizes) / mean if mean > 0 else 1.0)


@traced_mttkrp("blco")
def mttkrp_blco(tensor: BlcoTensor, factors, mode: int) -> np.ndarray:
    """MTTKRP over a BLCO tensor; returns ``(shape[mode], R)``."""
    mode = check_axis(mode, tensor.ndim)
    rank = check_factors(tensor.shape, factors, mode)
    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    if tensor.nnz == 0:
        return out
    _record_block_balance(tensor)

    fmats = [np.asarray(f, dtype=np.float64) for f in factors]
    for block in tensor.blocks:
        acc = np.broadcast_to(block.values[:, None], (block.nnz, rank)).copy()
        for m in range(tensor.ndim):
            if m == mode:
                continue
            acc *= fmats[m][tensor.block_mode_indices(block, m)]
        targets = tensor.block_mode_indices(block, mode)
        # Blocks own disjoint high-bit regions only in blocked modes; in
        # general several blocks may hit the same output rows, so accumulate.
        out += segment_accumulate(acc, targets, tensor.shape[mode])
    return out
