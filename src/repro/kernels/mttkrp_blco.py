"""BLCO MTTKRP: the block-streaming GPU algorithm (Nguyen et al., ICS '22).

Each BLCO block is processed as one kernel launch would be on the GPU: the
in-block linearized indices are decoded with two shift/mask operations per
mode, the scaled Khatri-Rao rows are formed, and contributions are reduced
into the output. The per-block structure matters for the machine model —
block count determines launch overhead and per-block working sets determine
cache behaviour — and for correctness under the blocked index compression.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.mttkrp import check_factors, traced_mttkrp
from repro.kernels.mttkrp_coo import segment_accumulate
from repro.tensor.blco import BlcoTensor
from repro.utils.validation import check_axis

__all__ = ["mttkrp_blco"]


@traced_mttkrp("blco")
def mttkrp_blco(tensor: BlcoTensor, factors, mode: int) -> np.ndarray:
    """MTTKRP over a BLCO tensor; returns ``(shape[mode], R)``."""
    mode = check_axis(mode, tensor.ndim)
    rank = check_factors(tensor.shape, factors, mode)
    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    if tensor.nnz == 0:
        return out

    fmats = [np.asarray(f, dtype=np.float64) for f in factors]
    for block in tensor.blocks:
        acc = np.broadcast_to(block.values[:, None], (block.nnz, rank)).copy()
        for m in range(tensor.ndim):
            if m == mode:
                continue
            acc *= fmats[m][tensor.block_mode_indices(block, m)]
        targets = tensor.block_mode_indices(block, mode)
        # Blocks own disjoint high-bit regions only in blocked modes; in
        # general several blocks may hit the same output rows, so accumulate.
        out += segment_accumulate(acc, targets, tensor.shape[mode])
    return out
