"""Compute kernels: MTTKRP for every tensor format, Gram chains, normalization.

The MTTKRP (matricized tensor times Khatri-Rao product) is one of the two
performance bottlenecks of cSTF (the other being the constraint update). One
implementation exists per storage format, all verified against the dense
unfold-times-Khatri-Rao oracle:

- :func:`~repro.kernels.mttkrp.mttkrp` — format dispatch.
- :func:`~repro.kernels.mttkrp.mttkrp_dense` — dense oracle.
- :func:`~repro.kernels.mttkrp_coo.mttkrp_coo` — segment-reduced COO kernel.
- :func:`~repro.kernels.mttkrp_csf.mttkrp_csf` — CSF tree-walk kernel
  (SPLATT's CPU algorithm).
- :func:`~repro.kernels.mttkrp_alto.mttkrp_alto` — ALTO delinearizing kernel.
- :func:`~repro.kernels.mttkrp_blco.mttkrp_blco` — BLCO block-streaming
  kernel (the GPU algorithm the paper adopts).
"""

from repro.kernels.mttkrp import khatri_rao, mttkrp, mttkrp_dense
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.kernels.mttkrp_alto import mttkrp_alto
from repro.kernels.mttkrp_blco import mttkrp_blco
from repro.kernels.mttkrp_hicoo import mttkrp_hicoo
from repro.kernels.gram import gram, gram_chain, hadamard_of_grams
from repro.kernels.normalize import normalize_factor

__all__ = [
    "khatri_rao",
    "mttkrp",
    "mttkrp_dense",
    "mttkrp_coo",
    "mttkrp_csf",
    "mttkrp_alto",
    "mttkrp_blco",
    "mttkrp_hicoo",
    "gram",
    "gram_chain",
    "hadamard_of_grams",
    "normalize_factor",
]
