"""Guarded linear algebra and phase-boundary sentinels.

``cholesky_factor`` raises :class:`numpy.linalg.LinAlgError` the moment a
Gram chain loses positive definiteness — which *does* happen in long
AO-ADMM campaigns when factors lose rank or a kernel produces garbage
(cf. Huang et al.'s conditioning discussion). The guarded wrappers here
never pass a non-finite operand to LAPACK and retry a failed factorization
with bounded, escalating diagonal jitter ``S + (ρ + δ_k)I`` (δ doubling),
recording every recovery as a structured event.

The sentinels (:func:`ensure_finite`) are the driver's phase-boundary
checks: pure host-side validation that charges **no** simulated kernel
time, so resilient and non-resilient runs produce identical timelines when
nothing goes wrong.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.cholesky import cholesky_factor, cholesky_solve
from repro.resilience.events import (
    CHOLESKY_JITTER,
    CHOLESKY_RECOVERED,
    NONFINITE_INPUT,
    SENTINEL_REPAIR,
    SENTINEL_WARN,
    EventLog,
    ResilienceError,
)
from repro.resilience.policy import ResilienceContext, ResiliencePolicy

__all__ = [
    "guarded_cholesky",
    "guarded_spd_inverse",
    "sanitize_nonfinite",
    "ensure_finite",
]


def _diag_scale(s: np.ndarray) -> float:
    """Characteristic diagonal magnitude used to scale the initial jitter."""
    rank = s.shape[0]
    trace = float(np.trace(s))
    return max(abs(trace) / max(rank, 1), 1.0)


def _spd_deficit(s: np.ndarray, rho: float) -> float:
    """Shift that provably restores positive definiteness of ``s + ρI``.

    ``δ > -λ_min(s) - ρ`` guarantees SPD; the small relative margin covers
    factorization round-off. Eigenvalues of the R×R system matrix are cheap
    next to one retried DPOTRF. Returns 0 when ρ alone should suffice (the
    failure was round-off level; the caller's doubling handles it).
    """
    try:
        lam_min = float(np.linalg.eigvalsh(s)[0])
    except np.linalg.LinAlgError:  # pragma: no cover - eigvalsh rarely fails
        return 0.0
    deficit = -lam_min - rho
    if deficit <= 0.0:
        return 0.0
    return deficit * (1.0 + 1e-6) + 1e-12 * _diag_scale(s)


def sanitize_nonfinite(arr: np.ndarray, fill: float = 0.0) -> tuple[np.ndarray, int]:
    """Replace NaN/±Inf entries with *fill*; returns (clean copy, #bad).

    When the array is already finite it is returned as-is (no copy)."""
    arr = np.asarray(arr, dtype=np.float64)
    bad = ~np.isfinite(arr)
    n_bad = int(bad.sum())
    if n_bad == 0:
        return arr, 0
    out = arr.copy()
    out[bad] = fill
    return out, n_bad


def guarded_cholesky(
    spd: np.ndarray,
    *,
    rho: float = 0.0,
    policy: ResiliencePolicy | None = None,
    events: EventLog | None = None,
    phase: str = "SOLVE",
    mode: int | None = None,
    iteration: int | None = None,
    chol=None,
):
    """Factor ``spd + (ρ + δ)I`` with bounded escalating jitter.

    Returns ``(L, shift)`` where ``shift = ρ + δ`` is the total diagonal
    loading actually applied (``δ = 0`` on the clean path, so a healthy
    input costs exactly one factorization and behaves bit-identically to
    :func:`~repro.linalg.cholesky.cholesky_factor`).

    Parameters
    ----------
    spd:
        Nominally-SPD R×R matrix. Non-finite entries are zeroed (and
        recorded) before anything reaches LAPACK.
    rho:
        Diagonal loading already required by the caller (ADMM's ρ); applied
        on every attempt, including the first.
    policy / events:
        Escalation bounds and the event sink. Defaults: fresh policy, no
        recording.
    chol:
        The factorization callable, ``matrix -> L``. Defaults to
        :func:`cholesky_factor`; the executor-aware caller passes
        ``ex.cholesky`` so retried attempts are charged simulated time like
        any real re-launch would be.

    Raises
    ------
    ResilienceError
        If the matrix stays non-positive-definite after
        ``policy.max_jitter_attempts`` escalations.
    """
    policy = policy or ResiliencePolicy()
    chol = chol or cholesky_factor
    s = np.asarray(spd, dtype=np.float64)
    s, n_bad = sanitize_nonfinite(s)
    if n_bad:
        if events is not None:
            events.record(
                NONFINITE_INPUT, phase, mode=mode, iteration=iteration,
                detail=f"zeroed {n_bad} non-finite entries of the {s.shape[0]}x"
                       f"{s.shape[1]} system matrix before factorization",
                bad_entries=n_bad,
            )
        # A sanitized matrix is symmetric only if the damage was; restore it.
        s = 0.5 * (s + s.T)

    rank = s.shape[0]
    eye = np.eye(rank, dtype=np.float64)
    delta = 0.0
    scale = _diag_scale(s)
    for attempt in range(policy.max_jitter_attempts + 1):
        try:
            l_factor = chol(s + (rho + delta) * eye)
        except np.linalg.LinAlgError:
            if events is not None:
                events.record(
                    CHOLESKY_JITTER, phase, mode=mode, iteration=iteration,
                    detail=f"attempt {attempt}: factorization failed with "
                           f"shift {rho + delta:.3e}; escalating jitter",
                    attempt=attempt, shift=rho + delta,
                )
            if delta == 0.0:
                delta = max(scale * policy.jitter_init, _spd_deficit(s, rho))
            else:
                delta *= 2.0
            continue
        if attempt and events is not None:
            events.record(
                CHOLESKY_RECOVERED, phase, mode=mode, iteration=iteration,
                detail=f"factorization recovered after {attempt} jitter "
                       f"escalation(s) with total shift {rho + delta:.3e}",
                attempts=attempt, shift=rho + delta,
            )
        return l_factor, rho + delta
    raise ResilienceError(
        f"Cholesky failed after {policy.max_jitter_attempts} jitter "
        f"escalations (final shift {rho + delta:.3e}); matrix is too "
        f"indefinite to repair",
        events=events,
    )


def guarded_spd_inverse(
    spd: np.ndarray,
    *,
    rho: float = 0.0,
    policy: ResiliencePolicy | None = None,
    events: EventLog | None = None,
    **event_kw,
):
    """Explicit ``(spd + shift·I)⁻¹`` through the guarded factorization.

    Returns ``(inverse, shift)``; the cuADMM pre-inversion analogue of
    :func:`guarded_cholesky`.
    """
    l_factor, shift = guarded_cholesky(
        spd, rho=rho, policy=policy, events=events, **event_kw
    )
    inv = cholesky_solve(l_factor, np.eye(l_factor.shape[0], dtype=np.float64))
    return 0.5 * (inv + inv.T), shift


def ensure_finite(
    arr,
    ctx: ResilienceContext | None,
    *,
    phase: str,
    what: str,
    mode: int | None = None,
    iteration: int | None = None,
):
    """Phase-boundary sentinel: validate (and per policy repair) an array.

    Returns the array — repaired (bad entries zeroed) under the ``repair``
    policy, untouched under ``warn``. Raises :class:`ResilienceError`
    under ``raise``. With ``ctx is None`` (resilience off) this is a no-op,
    preserving historical behavior. Charges no simulated kernel time.
    """
    if ctx is None:
        return arr
    a = np.asarray(arr)
    if a.dtype.kind != "f" or np.isfinite(a).all():
        return arr
    n_bad = int((~np.isfinite(a)).sum())
    policy = ctx.policy.sentinel
    if policy == "raise":
        ctx.events.record(
            NONFINITE_INPUT, phase, mode=mode, iteration=iteration,
            detail=f"{what} contains {n_bad} non-finite entries",
            bad_entries=n_bad,
        )
        raise ResilienceError(
            f"{what} contains {n_bad} non-finite entries after phase {phase} "
            f"(sentinel policy 'raise')",
            events=ctx.events,
        )
    if policy == "warn":
        ctx.events.record(
            SENTINEL_WARN, phase, mode=mode, iteration=iteration,
            detail=f"{what} contains {n_bad} non-finite entries (left in place)",
            bad_entries=n_bad,
        )
        return arr
    repaired, _ = sanitize_nonfinite(a)
    ctx.events.record(
        SENTINEL_REPAIR, phase, mode=mode, iteration=iteration,
        detail=f"zeroed {n_bad} non-finite entries of {what}",
        bad_entries=n_bad,
    )
    return repaired
