"""Deterministic fault injection for resilience testing.

A :class:`FaultInjector` corrupts intermediate arrays at chosen cSTF phases
with chosen probabilities, driven entirely by one seeded
:class:`numpy.random.Generator` — so a fault campaign is exactly
reproducible from its seed, and the injector's RNG state can be
checkpointed alongside the run (a resumed faulty run replays the *same*
remaining faults).

Fault kinds:

- ``"nan"`` / ``"inf"`` — overwrite ``count`` random entries.
- ``"perturb"`` — multiply ``count`` random entries by ``magnitude``
  (finite but wildly wrong values; exercises divergence detection rather
  than NaN sentinels).
- ``"indefinite"`` — subtract ``magnitude × diag-scale × I`` from a square
  matrix, destroying positive definiteness (exercises the guarded
  Cholesky); falls back to ``"perturb"`` on non-square targets.

Beyond the numeric kinds, the ``"EXECUTE"`` phase targets the *execution
layer* itself (the PR 4 host engine) rather than any array:

- ``"worker_crash"`` — one shard worker raises mid-shard; the engine must
  re-execute that shard serially, bit-identically.
- ``"slow_shard"`` — one shard worker sleeps ``magnitude`` seconds (capped
  at 1s), turning it into a straggler that trips the per-shard timeout.
- ``"corrupt_plan"`` — a cached plan-cache entry is deliberately corrupted
  before lookup; the cache must detect, evict, and replan.
- ``"kill_worker"`` — a *real* process kill: on the ``processes`` backend
  the targeted shard worker SIGKILLs itself mid-task; the watchdog must
  detect the dead process, respawn it, and redo the shard serially. On
  thread backends (no process to kill) it degrades to ``worker_crash``.
- ``"corrupt_store"`` — the on-disk plan-store entry the next dispatch
  would read is damaged in place; the store must quarantine it on load
  and the cache must replan.

Resource-pressure kinds (the PR 10 budget layer) simulate the faults that
kill long factorizations on real hosts:

- ``"oom_worker"`` — one shard worker dies as if OOM-killed by the host:
  a real SIGKILL on the ``processes`` backend (the watchdog must respawn
  and redo the shard), a ``MemoryError`` on thread backends.
- ``"disk_full"`` — the next persistence write (plan store, checkpoint,
  or JSONL sink, drawn independently per target) fails with a synthetic
  ENOSPC; the run must skip-store / keep the last checkpoint / degrade
  the sink and keep computing.
- ``"shm_exhausted"`` — the next shared-memory lease fails as if /dev/shm
  were full; the dispatch must fall back to pipe transport.

Execution faults are drawn from the same seeded generator as the numeric
kinds, so a chaos campaign (``scripts/run_fault_suite.py``'s chaos stage)
is exactly reproducible from its seed.

Used by the ``faults``/``chaos``-marked test suites to prove every
recovery path in :mod:`repro.resilience` and :mod:`repro.engine` actually
fires; see ``scripts/run_fault_suite.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.resilience.events import FAULT_INJECTED, EventLog
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "InjectedWorkerCrash",
    "INJECTABLE_PHASES",
    "NUMERIC_PHASES",
]


class InjectedWorkerCrash(RuntimeError):
    """The exception an injected ``worker_crash`` fault raises mid-shard."""

#: Driver phases at which the injector can corrupt an intermediate array.
NUMERIC_PHASES = ("GRAM", "MTTKRP", "UPDATE", "NORMALIZE")

#: All injectable phases; the EXECUTE pseudo-phase targets the host
#: execution layer (worker crashes, stragglers, plan corruption) instead
#: of arrays.
INJECTABLE_PHASES = NUMERIC_PHASES + ("EXECUTE",)

_KINDS = ("nan", "inf", "perturb", "indefinite")
_EXEC_KINDS = (
    "worker_crash", "slow_shard", "corrupt_plan", "kill_worker",
    "corrupt_store", "oom_worker", "disk_full", "shm_exhausted",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault pattern: where, what, how often, how hard."""

    phase: str
    kind: str = "nan"
    probability: float = 1.0
    magnitude: float = 1e6
    count: int = 1

    def __post_init__(self):
        object.__setattr__(self, "phase", str(self.phase).upper())
        require(
            self.phase in INJECTABLE_PHASES,
            f"fault phase must be one of {INJECTABLE_PHASES}, got {self.phase!r}",
        )
        if self.phase == "EXECUTE":
            require(
                self.kind in _EXEC_KINDS,
                f"EXECUTE fault kind must be one of {_EXEC_KINDS}, got {self.kind!r}",
            )
        else:
            require(
                self.kind in _KINDS,
                f"fault kind must be one of {_KINDS}, got {self.kind!r}",
            )
        require(0.0 <= self.probability <= 1.0, "probability must be in [0, 1]")
        require(self.count >= 1, "count must be >= 1")


class FaultInjector:
    """Seeded, phase-targeted corruption of intermediate arrays.

    Parameters
    ----------
    specs:
        One or more :class:`FaultSpec` (a single spec may be passed bare).
    seed:
        Seed for the injector's private generator. Determinism contract:
        the *k*-th call to :meth:`inject` always draws the same randomness
        for a given seed, independent of the arrays' contents.
    """

    def __init__(self, specs, seed=0):
        if isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs = list(specs)
        require(bool(self.specs), "need at least one FaultSpec")
        for s in self.specs:
            require(isinstance(s, FaultSpec), f"expected FaultSpec, got {type(s).__name__}")
        self.rng = as_generator(seed)
        self.injected = 0

    # ------------------------------------------------------------------ #
    # RNG state (for checkpoint/resume of faulty campaigns)
    # ------------------------------------------------------------------ #
    def rng_state(self) -> dict:
        return self.rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state

    # ------------------------------------------------------------------ #
    def inject(
        self,
        phase: str,
        array,
        *,
        mode: int | None = None,
        iteration: int | None = None,
        events: EventLog | None = None,
    ):
        """Return *array*, possibly corrupted per the matching specs.

        Non-ndarray inputs (symbolic placeholders) pass through untouched,
        but the RNG is still advanced per matching spec so concrete and
        symbolic campaigns stay in lockstep.
        """
        phase = str(phase).upper()
        out = array
        for spec in self.specs:
            if spec.phase != phase or spec.phase == "EXECUTE":
                continue
            fire = bool(self.rng.random() < spec.probability)
            if not fire or not isinstance(out, np.ndarray):
                if fire:
                    # Burn the position draws so the stream stays aligned.
                    self.rng.integers(0, 2**31, size=spec.count)
                continue
            out = self._corrupt(out, spec)
            self.injected += 1
            if events is not None:
                events.record(
                    FAULT_INJECTED, phase, mode=mode, iteration=iteration,
                    detail=f"injected {spec.kind} fault "
                           f"(count={spec.count}, magnitude={spec.magnitude:g})",
                    fault_kind=spec.kind, count=spec.count,
                )
        return out

    def _corrupt(self, array: np.ndarray, spec: FaultSpec) -> np.ndarray:
        out = np.array(array, dtype=np.float64, copy=True)
        if spec.kind == "indefinite" and out.ndim == 2 and out.shape[0] == out.shape[1]:
            # Keep the draw count identical to the element-wise kinds.
            self.rng.integers(0, 2**31, size=spec.count)
            rank = out.shape[0]
            scale = max(abs(float(np.trace(out))) / rank, 1.0)
            out -= spec.magnitude * scale * np.eye(rank)
            return out
        flat_positions = self.rng.integers(0, 2**31, size=spec.count) % max(out.size, 1)
        flat = out.ravel()
        if spec.kind == "nan":
            flat[flat_positions] = np.nan
        elif spec.kind == "inf":
            flat[flat_positions] = np.inf
        else:  # "perturb", and "indefinite" on non-square arrays
            flat[flat_positions] = flat[flat_positions] * spec.magnitude + spec.magnitude
        return out

    # ------------------------------------------------------------------ #
    # Execution-layer faults (the chaos harness for the host engine)
    # ------------------------------------------------------------------ #
    def draw_shard_faults(
        self,
        n_shards: int,
        *,
        mode: int | None = None,
        events: EventLog | None = None,
    ) -> dict[str, int]:
        """Which execution faults fire for an upcoming *n_shards* launch.

        Returns ``{kind: shard_index}`` for every firing ``worker_crash`` /
        ``slow_shard`` / ``kill_worker`` / ``oom_worker`` spec. Must be
        called from the dispatching (main) thread *before* workers launch,
        so the RNG stream order — and with it the whole chaos campaign —
        stays deterministic.
        """
        fired: dict[str, int] = {}
        for spec in self.specs:
            if spec.phase != "EXECUTE" or spec.kind not in (
                "worker_crash", "slow_shard", "kill_worker", "oom_worker"
            ):
                continue
            if not (self.rng.random() < spec.probability):
                continue
            shard = int(self.rng.integers(0, 2**31)) % max(int(n_shards), 1)
            fired[spec.kind] = shard
            self.injected += 1
            if events is not None:
                events.record(
                    FAULT_INJECTED, "EXECUTE", mode=mode,
                    detail=f"injected {spec.kind} on shard {shard} of {n_shards}",
                    fault_kind=spec.kind, shard=shard,
                )
        return fired

    def slow_shard_delay(self) -> float:
        """Straggler sleep for an injected ``slow_shard``, in seconds.

        Interprets the spec's ``magnitude`` as the delay, capped at one
        second so a default-magnitude spec cannot hang a run.
        """
        for spec in self.specs:
            if spec.phase == "EXECUTE" and spec.kind == "slow_shard":
                return min(float(spec.magnitude), 1.0)
        return 0.05

    def draw_plan_fault(
        self, *, mode: int | None = None, events: EventLog | None = None
    ) -> bool:
        """Whether a ``corrupt_plan`` fault fires for the next plan lookup."""
        fired = False
        for spec in self.specs:
            if spec.phase != "EXECUTE" or spec.kind != "corrupt_plan":
                continue
            if self.rng.random() < spec.probability:
                fired = True
                self.injected += 1
                if events is not None:
                    events.record(
                        FAULT_INJECTED, "EXECUTE", mode=mode,
                        detail="corrupted a cached plan before lookup",
                        fault_kind=spec.kind,
                    )
        return fired

    def draw_store_fault(
        self, *, mode: int | None = None, events: EventLog | None = None
    ) -> bool:
        """Whether a ``corrupt_store`` fault fires for the next dispatch."""
        fired = False
        for spec in self.specs:
            if spec.phase != "EXECUTE" or spec.kind != "corrupt_store":
                continue
            if self.rng.random() < spec.probability:
                fired = True
                self.injected += 1
                if events is not None:
                    events.record(
                        FAULT_INJECTED, "EXECUTE", mode=mode,
                        detail="corrupted the on-disk plan-store entry "
                               "before lookup",
                        fault_kind=spec.kind,
                    )
        return fired

    def draw_disk_full(
        self,
        target: str,
        *,
        mode: int | None = None,
        iteration: int | None = None,
        events: EventLog | None = None,
    ) -> bool:
        """Whether a ``disk_full`` fault fires for the next *target* write.

        *target* names the persistence surface about to write
        (``"store"`` / ``"checkpoint"`` / ``"sink"``) so each surface draws
        independently from the shared stream — one campaign can starve all
        three at different moments, deterministically.
        """
        fired = False
        for spec in self.specs:
            if spec.phase != "EXECUTE" or spec.kind != "disk_full":
                continue
            if self.rng.random() < spec.probability:
                fired = True
                self.injected += 1
                if events is not None:
                    events.record(
                        FAULT_INJECTED, "EXECUTE", mode=mode,
                        iteration=iteration,
                        detail=f"injected ENOSPC on the next {target} write",
                        fault_kind=spec.kind, target=target,
                    )
        return fired

    def draw_shm_fault(
        self, *, mode: int | None = None, events: EventLog | None = None
    ) -> bool:
        """Whether a ``shm_exhausted`` fault fires for the next dispatch's
        shared-memory lease (the pool then fails it as if /dev/shm were
        full, forcing the pipe-transport downgrade)."""
        fired = False
        for spec in self.specs:
            if spec.phase != "EXECUTE" or spec.kind != "shm_exhausted":
                continue
            if self.rng.random() < spec.probability:
                fired = True
                self.injected += 1
                if events is not None:
                    events.record(
                        FAULT_INJECTED, "EXECUTE", mode=mode,
                        detail="exhausted /dev/shm for the next segment lease",
                        fault_kind=spec.kind,
                    )
        return fired

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(specs={len(self.specs)}, injected={self.injected})"
