"""Deterministic fault injection for resilience testing.

A :class:`FaultInjector` corrupts intermediate arrays at chosen cSTF phases
with chosen probabilities, driven entirely by one seeded
:class:`numpy.random.Generator` — so a fault campaign is exactly
reproducible from its seed, and the injector's RNG state can be
checkpointed alongside the run (a resumed faulty run replays the *same*
remaining faults).

Fault kinds:

- ``"nan"`` / ``"inf"`` — overwrite ``count`` random entries.
- ``"perturb"`` — multiply ``count`` random entries by ``magnitude``
  (finite but wildly wrong values; exercises divergence detection rather
  than NaN sentinels).
- ``"indefinite"`` — subtract ``magnitude × diag-scale × I`` from a square
  matrix, destroying positive definiteness (exercises the guarded
  Cholesky); falls back to ``"perturb"`` on non-square targets.

Used by the ``faults``-marked test suite to prove every recovery path in
:mod:`repro.resilience` actually fires; see ``scripts/run_fault_suite.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.resilience.events import FAULT_INJECTED, EventLog
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["FaultSpec", "FaultInjector", "INJECTABLE_PHASES"]

#: Driver phases at which the injector can corrupt an intermediate.
INJECTABLE_PHASES = ("GRAM", "MTTKRP", "UPDATE", "NORMALIZE")

_KINDS = ("nan", "inf", "perturb", "indefinite")


@dataclass(frozen=True)
class FaultSpec:
    """One fault pattern: where, what, how often, how hard."""

    phase: str
    kind: str = "nan"
    probability: float = 1.0
    magnitude: float = 1e6
    count: int = 1

    def __post_init__(self):
        object.__setattr__(self, "phase", str(self.phase).upper())
        require(
            self.phase in INJECTABLE_PHASES,
            f"fault phase must be one of {INJECTABLE_PHASES}, got {self.phase!r}",
        )
        require(self.kind in _KINDS, f"fault kind must be one of {_KINDS}, got {self.kind!r}")
        require(0.0 <= self.probability <= 1.0, "probability must be in [0, 1]")
        require(self.count >= 1, "count must be >= 1")


class FaultInjector:
    """Seeded, phase-targeted corruption of intermediate arrays.

    Parameters
    ----------
    specs:
        One or more :class:`FaultSpec` (a single spec may be passed bare).
    seed:
        Seed for the injector's private generator. Determinism contract:
        the *k*-th call to :meth:`inject` always draws the same randomness
        for a given seed, independent of the arrays' contents.
    """

    def __init__(self, specs, seed=0):
        if isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs = list(specs)
        require(bool(self.specs), "need at least one FaultSpec")
        for s in self.specs:
            require(isinstance(s, FaultSpec), f"expected FaultSpec, got {type(s).__name__}")
        self.rng = as_generator(seed)
        self.injected = 0

    # ------------------------------------------------------------------ #
    # RNG state (for checkpoint/resume of faulty campaigns)
    # ------------------------------------------------------------------ #
    def rng_state(self) -> dict:
        return self.rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state

    # ------------------------------------------------------------------ #
    def inject(
        self,
        phase: str,
        array,
        *,
        mode: int | None = None,
        iteration: int | None = None,
        events: EventLog | None = None,
    ):
        """Return *array*, possibly corrupted per the matching specs.

        Non-ndarray inputs (symbolic placeholders) pass through untouched,
        but the RNG is still advanced per matching spec so concrete and
        symbolic campaigns stay in lockstep.
        """
        phase = str(phase).upper()
        out = array
        for spec in self.specs:
            if spec.phase != phase:
                continue
            fire = bool(self.rng.random() < spec.probability)
            if not fire or not isinstance(out, np.ndarray):
                if fire:
                    # Burn the position draws so the stream stays aligned.
                    self.rng.integers(0, 2**31, size=spec.count)
                continue
            out = self._corrupt(out, spec)
            self.injected += 1
            if events is not None:
                events.record(
                    FAULT_INJECTED, phase, mode=mode, iteration=iteration,
                    detail=f"injected {spec.kind} fault "
                           f"(count={spec.count}, magnitude={spec.magnitude:g})",
                    fault_kind=spec.kind, count=spec.count,
                )
        return out

    def _corrupt(self, array: np.ndarray, spec: FaultSpec) -> np.ndarray:
        out = np.array(array, dtype=np.float64, copy=True)
        if spec.kind == "indefinite" and out.ndim == 2 and out.shape[0] == out.shape[1]:
            # Keep the draw count identical to the element-wise kinds.
            self.rng.integers(0, 2**31, size=spec.count)
            rank = out.shape[0]
            scale = max(abs(float(np.trace(out))) / rank, 1.0)
            out -= spec.magnitude * scale * np.eye(rank)
            return out
        flat_positions = self.rng.integers(0, 2**31, size=spec.count) % max(out.size, 1)
        flat = out.ravel()
        if spec.kind == "nan":
            flat[flat_positions] = np.nan
        elif spec.kind == "inf":
            flat[flat_positions] = np.inf
        else:  # "perturb", and "indefinite" on non-square arrays
            flat[flat_positions] = flat[flat_positions] * spec.magnitude + spec.magnitude
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(specs={len(self.specs)}, injected={self.injected})"
