"""Numerical-resilience layer: guarded solves, divergence recovery,
checkpoint/resume, and deterministic fault injection.

Long constrained-factorization campaigns fail in practice for exactly the
reasons the AO-ADMM literature warns about: per-mode subproblems go
ill-conditioned when factors lose rank, a single NaN propagates through
every Gram cache in one outer iteration, and an interrupted paper-scale run
loses hours of work. This package makes the stack survive those events:

- :mod:`~repro.resilience.guards` — guarded Cholesky/SPD-inverse with
  escalating diagonal jitter, plus phase-boundary finiteness sentinels.
- :mod:`~repro.resilience.events` — structured recovery events, the shared
  :class:`EventLog`, and :class:`ResilienceError`.
- :mod:`~repro.resilience.policy` — the :class:`ResiliencePolicy` knobs and
  the per-run context threaded through update methods.
- :mod:`~repro.resilience.checkpoint` — atomic checkpoint/resume of the AO
  loop (bit-identical continuation).
- :mod:`~repro.resilience.faults` — the seeded fault-injection harness the
  ``faults``/``chaos``/``procfaults`` test suites use to prove every
  recovery path fires (numeric corruption plus the ``EXECUTE`` faults
  targeting the host engine: worker crashes, real process kills,
  stragglers, corrupted plans, corrupted plan-store entries).
- :mod:`~repro.resilience.supervisor` — unattended-run supervision:
  seeded-backoff retries, wall-clock deadlines (between attempts and
  cooperatively at AO iteration boundaries), checkpoint auto-resume,
  and the graceful-degradation ladder
  (process → sharded → chunked → serial engine → seed kernels).
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.events import EventLog, ResilienceError, ResilienceEvent
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedWorkerCrash
from repro.resilience.supervisor import (
    DeadlineInterrupt,
    RunSupervisor,
    SupervisorConfig,
    supervised_cstf,
)
from repro.resilience.guards import (
    ensure_finite,
    guarded_cholesky,
    guarded_spd_inverse,
    sanitize_nonfinite,
)
from repro.resilience.policy import ResilienceContext, ResiliencePolicy

__all__ = [
    "Checkpoint",
    "CheckpointCorrupt",
    "DeadlineInterrupt",
    "EventLog",
    "FaultInjector",
    "FaultSpec",
    "InjectedWorkerCrash",
    "ResilienceContext",
    "ResilienceError",
    "ResilienceEvent",
    "ResiliencePolicy",
    "RunSupervisor",
    "SupervisorConfig",
    "supervised_cstf",
    "ensure_finite",
    "guarded_cholesky",
    "guarded_spd_inverse",
    "load_checkpoint",
    "sanitize_nonfinite",
    "save_checkpoint",
]
