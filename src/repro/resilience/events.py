"""Structured resilience events, the event log, and the error type.

Every recovery action anywhere in the stack — a jittered Cholesky retry, an
ADMM rollback, a sentinel repair, an injected fault, a checkpoint write —
is recorded as one :class:`ResilienceEvent` on the run's shared
:class:`EventLog`. The log is surfaced on
:class:`~repro.core.cstf.CstfResult` so a campaign's operator can audit
exactly what the resilience layer did, and it travels inside
:class:`ResilienceError` when a run cannot be saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResilienceEvent", "EventLog", "ResilienceError"]


# Canonical event kinds (informal enum; free-form kinds are allowed).
NONFINITE_INPUT = "nonfinite_input"
SENTINEL_REPAIR = "sentinel_repair"
SENTINEL_WARN = "sentinel_warn"
CHOLESKY_JITTER = "cholesky_jitter"
CHOLESKY_RECOVERED = "cholesky_recovered"
ADMM_DIVERGENCE = "admm_divergence"
ADMM_RHO_RESCALE = "admm_rho_rescale"
ADMM_RESTART = "admm_restart"
ADMM_GIVEUP = "admm_giveup"
FAULT_INJECTED = "fault_injected"
CHECKPOINT_SAVED = "checkpoint_saved"
CHECKPOINT_RESUMED = "checkpoint_resumed"
CHECKPOINT_CORRUPT = "checkpoint_corrupt"
SLICE_SKIPPED = "slice_skipped"

# Execution-resilience kinds (shard fault tolerance + run supervision).
SHARD_RETRY = "shard_retry"
SHARD_TIMEOUT = "shard_timeout"
WORKER_LOST = "worker_lost"
PLAN_REPAIRED = "plan_repaired"
RUN_RETRY = "run_retry"
EXECUTION_DEGRADED = "execution_degraded"
FORMAT_FALLBACK = "format_fallback"
DEADLINE_EXCEEDED = "deadline_exceeded"

# Resource-pressure kinds (memory/disk budgets and their degradations).
WORKER_RECYCLED = "worker_recycled"
TRANSPORT_DOWNGRADED = "transport_downgraded"
CHECKPOINT_SKIPPED = "checkpoint_skipped"
STORE_SKIPPED = "store_skipped"


@dataclass(frozen=True)
class ResilienceEvent:
    """One recovery (or injection) action taken by the resilience layer.

    Attributes
    ----------
    kind:
        Machine-readable action tag, e.g. ``"cholesky_jitter"`` or
        ``"sentinel_repair"`` (see the module-level constants).
    phase:
        The cSTF phase the event occurred in (``GRAM``/``MTTKRP``/``UPDATE``/
        ``NORMALIZE``/``SOLVE``/``STREAM``/``CHECKPOINT``).
    mode:
        Tensor mode being updated, when applicable.
    iteration:
        Outer AO iteration (or stream step), when applicable.
    detail:
        Human-readable one-liner describing what happened.
    data:
        Small numeric payload (shift magnitudes, residuals, attempt counts).
    """

    kind: str
    phase: str
    mode: int | None = None
    iteration: int | None = None
    detail: str = ""
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        loc = self.phase
        if self.mode is not None:
            loc += f"/mode{self.mode}"
        if self.iteration is not None:
            loc += f"@it{self.iteration}"
        return f"[{self.kind}] {loc}: {self.detail}"


class EventLog:
    """Append-only list of :class:`ResilienceEvent` with query helpers."""

    def __init__(self):
        self.events: list[ResilienceEvent] = []
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Register a ``(ResilienceEvent) -> None`` observer called on every
        record — the bridge that mirrors resilience actions into an active
        telemetry session as instant trace events."""
        self._listeners.append(listener)

    def record(
        self,
        kind: str,
        phase: str,
        *,
        mode: int | None = None,
        iteration: int | None = None,
        detail: str = "",
        **data,
    ) -> ResilienceEvent:
        ev = ResilienceEvent(
            kind=kind, phase=phase, mode=mode, iteration=iteration,
            detail=detail, data=data,
        )
        self.events.append(ev)
        for listener in self._listeners:
            listener(ev)
        return ev

    def of_kind(self, kind: str) -> list[ResilienceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog({self.counts()})"


class ResilienceError(RuntimeError):
    """A failure the resilience layer detected but could not (or, per
    policy, was told not to) repair.

    Carries the run's event log so the caller sees the full recovery history
    leading up to the failure, not just the terminal symptom.
    """

    def __init__(self, message: str, events=None):
        super().__init__(message)
        if isinstance(events, EventLog):
            events = list(events)
        self.events: list[ResilienceEvent] = list(events or [])

    def __str__(self) -> str:
        base = super().__str__()
        if not self.events:
            return base
        tail = "; ".join(str(e) for e in self.events[-3:])
        return f"{base} (events: {len(self.events)}; last: {tail})"
