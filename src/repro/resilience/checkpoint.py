"""Atomic checkpoint/resume of a cSTF campaign.

A checkpoint captures *everything* the AO loop needs to continue a run
bit-identically: the Kruskal factors and weights, the cached Gram matrices,
the update method's per-mode state arrays (ADMM's dual variables), the fit
trace, the outer-iteration counter, and — when a fault injector is active —
its RNG state. Writes are atomic (write to a ``.tmp`` sibling, ``fsync``,
then :func:`os.replace`), so a run killed mid-write never leaves a torn
checkpoint behind; a resumed run continues exactly where the last completed
write left off.

All arrays round-trip through ``.npz`` in binary, so
``cstf(..., max_iters=10)`` and ``cstf(..., max_iters=5)`` →
``cstf(..., resume_from=ck, max_iters=10)`` produce *identical* floats.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.utils.validation import require

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint"]

CHECKPOINT_VERSION = 1
_STATE_PREFIX = "state__"


@dataclass
class Checkpoint:
    """In-memory image of a saved cSTF run."""

    iteration: int
    factors: list[np.ndarray]
    weights: np.ndarray
    grams: list[np.ndarray]
    fits: list[float]
    state_arrays: dict = field(default_factory=dict)
    """Update-method state: ``name -> ndarray`` or ``name -> [ndarray, ...]``."""

    rng_state: dict | None = None
    """Serialized ``Generator.bit_generator.state`` of the fault injector."""

    meta: dict = field(default_factory=dict)
    """Run identity used to validate a resume: shape, rank, update name."""

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(int(d) for d in self.meta.get("shape", ()))

    @property
    def rank(self) -> int:
        return int(self.meta.get("rank", self.weights.shape[0]))

    @property
    def telemetry_state(self) -> dict | None:
        """Checkpointed :class:`~repro.obs.MetricsRegistry` image (or None
        for checkpoints written by untraced runs / older versions)."""
        return self.meta.get("telemetry")


def save_checkpoint(
    path,
    *,
    iteration: int,
    factors,
    weights,
    grams,
    fits,
    state_arrays: dict | None = None,
    rng_state: dict | None = None,
    telemetry_state: dict | None = None,
    meta: dict | None = None,
) -> Path:
    """Atomically write a checkpoint; returns the final path.

    The archive is first written to ``<path>.tmp`` and moved into place with
    :func:`os.replace` only after the bytes are flushed, so readers never
    observe a partial file even if the process dies mid-save.
    """
    path = Path(path)
    meta = dict(meta or {})
    meta.setdefault("format_version", CHECKPOINT_VERSION)
    meta["iteration"] = int(iteration)
    meta["n_modes"] = len(list(factors))
    if rng_state is not None:
        meta["rng_state"] = rng_state
    if telemetry_state is not None:
        # The metrics-registry image rides in the JSON metadata: it is
        # small, structured, and must survive the same atomic-write
        # guarantees as the numerics it annotates.
        meta["telemetry"] = telemetry_state

    arrays: dict[str, np.ndarray] = {
        "meta_json": np.array(json.dumps(meta, default=_json_default)),
        "weights": np.asarray(weights, dtype=np.float64),
        "fits": np.asarray(list(fits), dtype=np.float64),
    }
    for n, f in enumerate(factors):
        arrays[f"factor_{n}"] = np.asarray(f, dtype=np.float64)
    for n, g in enumerate(grams):
        arrays[f"gram_{n}"] = np.asarray(g, dtype=np.float64)
    state_keys = []
    for key, value in (state_arrays or {}).items():
        if isinstance(value, np.ndarray):
            arrays[f"{_STATE_PREFIX}{key}"] = value
            state_keys.append({"key": key, "list": False})
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, np.ndarray) for v in value
        ):
            for i, v in enumerate(value):
                arrays[f"{_STATE_PREFIX}{key}__{i}"] = v
            state_keys.append({"key": key, "list": True, "len": len(value)})
        # Non-array state (scalars, residual traces) is reconstructible or
        # diagnostic-only and is intentionally not persisted.
    meta["state_keys"] = state_keys
    arrays["meta_json"] = np.array(json.dumps(meta, default=_json_default))

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    require(path.exists(), f"checkpoint {path} does not exist")
    with np.load(path, allow_pickle=False) as data:
        require("meta_json" in data, f"{path} is not a cSTF checkpoint")
        meta = json.loads(str(data["meta_json"]))
        require(
            meta.get("format_version") == CHECKPOINT_VERSION,
            f"unsupported checkpoint version {meta.get('format_version')!r}",
        )
        n_modes = int(meta["n_modes"])
        factors = [np.array(data[f"factor_{n}"]) for n in range(n_modes)]
        grams = [np.array(data[f"gram_{n}"]) for n in range(n_modes)]
        state_arrays: dict = {}
        for entry in meta.get("state_keys", []):
            key = entry["key"]
            if entry.get("list"):
                state_arrays[key] = [
                    np.array(data[f"{_STATE_PREFIX}{key}__{i}"])
                    for i in range(int(entry["len"]))
                ]
            else:
                state_arrays[key] = np.array(data[f"{_STATE_PREFIX}{key}"])
        return Checkpoint(
            iteration=int(meta["iteration"]),
            factors=factors,
            weights=np.array(data["weights"]),
            grams=grams,
            fits=[float(x) for x in np.array(data["fits"])],
            state_arrays=state_arrays,
            rng_state=meta.get("rng_state"),
            meta=meta,
        )


def _json_default(obj):
    """JSON fallback for NumPy scalars inside RNG state dicts."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__} in checkpoint metadata")
