"""Atomic checkpoint/resume of a cSTF campaign.

A checkpoint captures *everything* the AO loop needs to continue a run
bit-identically: the Kruskal factors and weights, the cached Gram matrices,
the update method's per-mode state arrays (ADMM's dual variables), the fit
trace, the outer-iteration counter, and — when a fault injector is active —
its RNG state. Writes are atomic (write to a ``.tmp`` sibling, ``fsync``,
then :func:`os.replace`), so a run killed mid-write never leaves a torn
checkpoint behind; a resumed run continues exactly where the last completed
write left off.

Torn-write protection goes two layers deeper than atomic rename:

- every save first *rotates* the previous checkpoint to ``<name>.prev``,
  so one generation of known-good state always survives the new write;
- the payload carries a SHA-1 checksum in its metadata, and
  :func:`load_checkpoint` verifies it (plus the structural invariants) —
  a checkpoint that fails validation triggers a
  :class:`CheckpointCorrupt` warning and a transparent fallback to the
  rotated ``.prev`` generation. Only when *both* generations are
  unreadable does the load raise
  :class:`~repro.resilience.events.ResilienceError`.

All arrays round-trip through ``.npz`` in binary, so
``cstf(..., max_iters=10)`` and ``cstf(..., max_iters=5)`` →
``cstf(..., resume_from=ck, max_iters=10)`` produce *identical* floats.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.events import ResilienceError
from repro.utils.validation import require

__all__ = ["Checkpoint", "CheckpointCorrupt", "save_checkpoint", "load_checkpoint"]


class CheckpointCorrupt(RuntimeWarning):
    """A checkpoint failed validation and a fallback generation was used."""

CHECKPOINT_VERSION = 1
_STATE_PREFIX = "state__"


@dataclass
class Checkpoint:
    """In-memory image of a saved cSTF run."""

    iteration: int
    factors: list[np.ndarray]
    weights: np.ndarray
    grams: list[np.ndarray]
    fits: list[float]
    state_arrays: dict = field(default_factory=dict)
    """Update-method state: ``name -> ndarray`` or ``name -> [ndarray, ...]``."""

    rng_state: dict | None = None
    """Serialized ``Generator.bit_generator.state`` of the fault injector."""

    meta: dict = field(default_factory=dict)
    """Run identity used to validate a resume: shape, rank, update name."""

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(int(d) for d in self.meta.get("shape", ()))

    @property
    def rank(self) -> int:
        return int(self.meta.get("rank", self.weights.shape[0]))

    @property
    def telemetry_state(self) -> dict | None:
        """Checkpointed :class:`~repro.obs.MetricsRegistry` image (or None
        for checkpoints written by untraced runs / older versions)."""
        return self.meta.get("telemetry")


def save_checkpoint(
    path,
    *,
    iteration: int,
    factors,
    weights,
    grams,
    fits,
    state_arrays: dict | None = None,
    rng_state: dict | None = None,
    telemetry_state: dict | None = None,
    meta: dict | None = None,
) -> Path:
    """Atomically write a checkpoint; returns the final path.

    The archive is first written to ``<path>.tmp`` and moved into place with
    :func:`os.replace` only after the bytes are flushed, so readers never
    observe a partial file even if the process dies mid-save.
    """
    path = Path(path)
    meta = dict(meta or {})
    meta.setdefault("format_version", CHECKPOINT_VERSION)
    meta["iteration"] = int(iteration)
    meta["n_modes"] = len(list(factors))
    if rng_state is not None:
        meta["rng_state"] = rng_state
    if telemetry_state is not None:
        # The metrics-registry image rides in the JSON metadata: it is
        # small, structured, and must survive the same atomic-write
        # guarantees as the numerics it annotates.
        meta["telemetry"] = telemetry_state

    arrays: dict[str, np.ndarray] = {
        "meta_json": np.array(json.dumps(meta, default=_json_default)),
        "weights": np.asarray(weights, dtype=np.float64),
        "fits": np.asarray(list(fits), dtype=np.float64),
    }
    for n, f in enumerate(factors):
        arrays[f"factor_{n}"] = np.asarray(f, dtype=np.float64)
    for n, g in enumerate(grams):
        arrays[f"gram_{n}"] = np.asarray(g, dtype=np.float64)
    state_keys = []
    for key, value in (state_arrays or {}).items():
        if isinstance(value, np.ndarray):
            arrays[f"{_STATE_PREFIX}{key}"] = value
            state_keys.append({"key": key, "list": False})
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, np.ndarray) for v in value
        ):
            for i, v in enumerate(value):
                arrays[f"{_STATE_PREFIX}{key}__{i}"] = v
            state_keys.append({"key": key, "list": True, "len": len(value)})
        # Non-array state (scalars, residual traces) is reconstructible or
        # diagnostic-only and is intentionally not persisted.
    meta["state_keys"] = state_keys
    meta["checksum"] = _payload_digest(arrays)
    arrays["meta_json"] = np.array(json.dumps(meta, default=_json_default))

    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError:
        # ENOSPC (or any write failure) before the rotation below: both
        # existing generations are untouched — clean up the partial temp
        # file and let the caller decide to skip this checkpoint.
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    if path.exists():
        # Keep one known-good generation: the checkpoint being replaced
        # becomes <name>.prev, the load-time fallback for torn writes.
        os.replace(path, _prev_path(path))
    os.replace(tmp, path)
    return path


def _prev_path(path: Path) -> Path:
    return path.with_name(path.name + ".prev")


def _payload_digest(arrays: dict) -> str:
    """SHA-1 over every payload array (name, dtype, shape, bytes)."""
    h = hashlib.sha1()
    for name in sorted(arrays):
        if name == "meta_json":
            continue
        arr = np.asarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(tuple(arr.shape)).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def load_checkpoint(path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Falls back to the rotated ``<name>.prev`` generation — with a
    :class:`CheckpointCorrupt` warning naming what failed — when the
    primary file is missing, torn, or fails checksum/structure
    validation. Raises :class:`~repro.resilience.events.ResilienceError`
    when no generation is loadable.
    """
    path = Path(path)
    prev = _prev_path(path)
    if not path.exists():
        if prev.exists():
            warnings.warn(
                f"checkpoint {path} is missing; falling back to the rotated "
                f"previous generation {prev}",
                CheckpointCorrupt,
                stacklevel=2,
            )
            return _read_checkpoint(prev)
        require(path.exists(), f"checkpoint {path} does not exist")
    try:
        return _read_checkpoint(path)
    except Exception as exc:
        if prev.exists():
            warnings.warn(
                f"checkpoint {path} is corrupt ({type(exc).__name__}: {exc}); "
                f"falling back to the rotated previous generation {prev}",
                CheckpointCorrupt,
                stacklevel=2,
            )
            try:
                return _read_checkpoint(prev)
            except Exception as prev_exc:
                raise ResilienceError(
                    f"checkpoint {path} is corrupt "
                    f"({type(exc).__name__}: {exc}) and so is its previous "
                    f"generation {prev} "
                    f"({type(prev_exc).__name__}: {prev_exc})"
                ) from prev_exc
        raise ResilienceError(
            f"checkpoint {path} is corrupt and no previous generation "
            f"exists: {type(exc).__name__}: {exc}"
        ) from exc


def _read_checkpoint(path: Path) -> Checkpoint:
    with np.load(path, allow_pickle=False) as data:
        require("meta_json" in data, f"{path} is not a cSTF checkpoint")
        meta = json.loads(str(data["meta_json"]))
        require(
            meta.get("format_version") == CHECKPOINT_VERSION,
            f"unsupported checkpoint version {meta.get('format_version')!r}",
        )
        stored = meta.get("checksum")
        if stored is not None:
            payload = {name: data[name] for name in data.files}
            digest = _payload_digest(payload)
            require(
                digest == stored,
                f"{path} payload checksum mismatch "
                f"(stored {stored[:12]}…, computed {digest[:12]}…)",
            )
        n_modes = int(meta["n_modes"])
        factors = [np.array(data[f"factor_{n}"]) for n in range(n_modes)]
        grams = [np.array(data[f"gram_{n}"]) for n in range(n_modes)]
        state_arrays: dict = {}
        for entry in meta.get("state_keys", []):
            key = entry["key"]
            if entry.get("list"):
                state_arrays[key] = [
                    np.array(data[f"{_STATE_PREFIX}{key}__{i}"])
                    for i in range(int(entry["len"]))
                ]
            else:
                state_arrays[key] = np.array(data[f"{_STATE_PREFIX}{key}"])
        return Checkpoint(
            iteration=int(meta["iteration"]),
            factors=factors,
            weights=np.array(data["weights"]),
            grams=grams,
            fits=[float(x) for x in np.array(data["fits"])],
            state_arrays=state_arrays,
            rng_state=meta.get("rng_state"),
            meta=meta,
        )


def _json_default(obj):
    """JSON fallback for NumPy scalars inside RNG state dicts."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__} in checkpoint metadata")
