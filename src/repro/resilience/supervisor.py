"""Run supervision: retries, deadlines, and the graceful-degradation ladder.

:class:`RunSupervisor` wraps :func:`~repro.core.cstf.cstf` the way a
campaign driver would run it unattended. A run that crashes is retried
with seeded exponential backoff plus jitter; when retries at the current
execution tier are exhausted the supervisor steps down the degradation
ladder instead of giving up::

    process engine → sharded engine → chunked engine → serial engine → seed kernels

(the ``process engine`` rung exists only when the run starts on the
``processes`` execution backend; stepping down re-runs the same sharded
configuration on in-process threads, losing crash isolation but not bits).
Memory pressure gets its own intermediate rungs: a tier that exhausts its
retries on ``MemoryError`` with more than two shards first *halves its
shard count* — fewer simultaneous accumulators — and only then continues
the normal descent. Disjoint-row shards reduce to the same sums at any
shard count, so pressure rungs stay bit-identical too.
Every path below the starting rung is bit-identical to it (the engine's
rtol=0 guarantee), so degrading trades wall-clock for robustness and
nothing else. A :class:`~repro.engine.driver.PlanBuildError` (a format
conversion that cannot be built at all) triggers the orthogonal *format*
fallback instead: the run is re-dispatched with ``mttkrp_format="coo"``,
the one format that needs no conversion.

If the wrapped config checkpoints (``checkpoint_every``/``checkpoint_path``)
and a checkpoint file exists when an attempt crashes, the next attempt
resumes from it automatically — combined with the checkpoint layer's
bit-identical resume, a supervised crashy run converges to the same
factors as an uninterrupted one.

Everything the supervisor does is auditable: retries are ``run_retry``
events (counter ``resilience.retries``), ladder steps and format
fallbacks are ``execution_degraded``/``format_fallback`` events (counter
``resilience.degradations``), and a blown deadline is a
``deadline_exceeded`` event inside the raised
:class:`~repro.resilience.events.ResilienceError`. The supervisor's
events are prepended to ``CstfResult.events`` on success.

The wall clock and the backoff sleep are injectable (``clock``/``sleep``)
so the retry schedule is testable without real waiting; the jitter comes
from a private seeded generator, so a supervised campaign's retry timing
is reproducible from ``SupervisorConfig.seed``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace

from repro.obs import current_telemetry
from repro.resilience.events import (
    DEADLINE_EXCEEDED,
    EXECUTION_DEGRADED,
    FORMAT_FALLBACK,
    RUN_RETRY,
    EventLog,
    ResilienceError,
)
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = [
    "SupervisorConfig",
    "RunSupervisor",
    "supervised_cstf",
    "DeadlineInterrupt",
]

_PHASE = "SUPERVISE"


class DeadlineInterrupt(Exception):
    """Raised by the supervisor's in-run deadline guard at an AO iteration
    boundary (via ``CstfConfig.on_iteration``) to stop a running attempt
    cooperatively — after the driver has checkpointed the completed
    iterate, when checkpointing is configured."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the run supervisor.

    Attributes
    ----------
    max_retries:
        Retries *per ladder rung* before stepping down (``0`` = degrade on
        the first failure). Once the bottom rung (seed kernels) exhausts
        its retries, the supervisor raises :class:`ResilienceError`.
    deadline:
        Total wall-clock budget in seconds across all attempts (``0``
        disables). Checked between attempts, *and* cooperatively inside a
        running attempt at every completed AO iteration (via
        ``CstfConfig.on_iteration``): a long-running attempt that crosses
        the budget stops at the next iteration boundary with
        :class:`DeadlineInterrupt`, checkpointing the completed iterate
        first when checkpointing is configured. The backoff sleep is
        capped to the remaining budget.
    backoff_base / backoff_max:
        Backoff before retry *k* at a rung is
        ``min(backoff_max, backoff_base * 2**k)`` seconds, scaled by the
        jitter draw.
    jitter:
        Uniform jitter fraction: the delay is multiplied by
        ``1 + jitter * u`` with ``u ~ U[0, 1)`` from the seeded generator.
    seed:
        Seed of the jitter generator (campaign-reproducible backoff).
    degrade:
        Enable the degradation ladder and the COO format fallback. When
        ``False`` the supervisor only retries at the starting tier.
    resume:
        Auto-resume from ``config.checkpoint_path`` when the file exists
        after a crashed attempt.
    """

    max_retries: int = 3
    deadline: float = 0.0
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    degrade: bool = True
    resume: bool = True

    def __post_init__(self):
        require(int(self.max_retries) >= 0, "max_retries must be >= 0")
        object.__setattr__(self, "max_retries", int(self.max_retries))
        require(float(self.deadline) >= 0.0, "deadline must be >= 0")
        object.__setattr__(self, "deadline", float(self.deadline))
        require(self.backoff_base >= 0.0, "backoff_base must be >= 0")
        require(self.backoff_max >= self.backoff_base,
                "backoff_max must be >= backoff_base")
        require(0.0 <= self.jitter <= 1.0, "jitter must be in [0, 1]")


def _ladder(engine):
    """Degradation rungs from a resolved engine config, top tier first.

    Each rung is ``(name, engine_config_or_None)``; the first rung is the
    configuration the run starts at.
    """
    from repro.engine.config import EngineConfig

    rungs = []
    if engine is not None:
        if getattr(engine, "backend", "threads") == "processes" and engine.shards > 1:
            # Top rung: isolated worker processes. One step down is the
            # same sharded configuration on in-process threads — loses
            # crash isolation, keeps the parallel numerics bit-identical.
            rungs.append(("process engine", engine))
            engine = replace(engine, backend="threads")
        if engine.shards > 1:
            rungs.append(("sharded engine", engine))
            chunk = engine.chunk if engine.chunk > 0 else EngineConfig().chunk
            rungs.append(("chunked engine", replace(engine, shards=1, chunk=chunk)))
            rungs.append(("serial engine", replace(engine, shards=1, chunk=0)))
        elif engine.chunk > 0:
            rungs.append(("chunked engine", engine))
            rungs.append(("serial engine", replace(engine, shards=1, chunk=0)))
        else:
            rungs.append(("serial engine", engine))
    rungs.append(("seed kernels", None))
    return rungs


class RunSupervisor:
    """Retry / degrade / deadline supervision around one cstf run.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.CstfConfig` of the run being
        supervised (used as the top of the degradation ladder).
    supervisor:
        A :class:`SupervisorConfig` (defaults applied when ``None``).
    clock / sleep:
        Injectable monotonic clock and sleep for deterministic tests.
    """

    def __init__(self, config, supervisor: SupervisorConfig | None = None, *,
                 clock=time.monotonic, sleep=time.sleep):
        self.config = config
        self.sup = supervisor if supervisor is not None else SupervisorConfig()
        self.clock = clock
        self.sleep = sleep
        self.rng = as_generator(self.sup.seed)
        self.events = EventLog()
        self.retries = 0
        self.degradations = 0

    # ------------------------------------------------------------------ #
    def _tel(self):
        tel = self.config.telemetry
        if hasattr(tel, "counter"):
            return tel
        return current_telemetry()

    def _backoff(self, attempt: int, *, start: float | None = None) -> float:
        """Jittered exponential delay before retry *attempt*, deadline-aware.

        When *start* is given and a deadline is configured, the delay is
        capped to the remaining wall-clock budget — a supervisor must
        never sleep through its own deadline (the jitter draw still
        happens, so capping does not shift the seeded schedule of later
        retries).
        """
        delay = min(self.sup.backoff_max, self.sup.backoff_base * (2.0 ** attempt))
        delay *= 1.0 + self.sup.jitter * float(self.rng.random())
        if start is not None and self.sup.deadline > 0.0:
            remaining = self.sup.deadline - (self.clock() - start)
            delay = max(0.0, min(delay, remaining))
        return delay

    def _checkpoint_available(self) -> bool:
        path = self.config.checkpoint_path
        return (
            self.sup.resume
            and path is not None
            and os.path.exists(os.fspath(path))
        )

    def _deadline_guard(self, start: float):
        """The ``on_iteration`` callback enforcing the in-run deadline.

        Chains to any user-provided callback first (its exceptions win),
        then raises :class:`DeadlineInterrupt` once the total budget is
        crossed — the driver checkpoints the completed iterate before the
        interrupt propagates back here.
        """
        inner = self.config.on_iteration

        def guard(iteration: int) -> None:
            if inner is not None:
                inner(iteration)
            elapsed = self.clock() - start
            if elapsed >= self.sup.deadline:
                raise DeadlineInterrupt(
                    f"outer iteration {iteration} completed {elapsed:.3f}s "
                    f"into a {self.sup.deadline:g}s deadline"
                )

        return guard

    def _check_deadline(self, start: float, context: str) -> None:
        if self.sup.deadline <= 0.0:
            return
        elapsed = self.clock() - start
        if elapsed >= self.sup.deadline:
            self.events.record(
                DEADLINE_EXCEEDED, _PHASE,
                detail=f"wall-clock deadline of {self.sup.deadline:g}s exceeded "
                       f"after {elapsed:.3f}s ({context})",
                deadline=self.sup.deadline, elapsed=elapsed,
            )
            raise ResilienceError(
                f"supervised run blew its {self.sup.deadline:g}s deadline "
                f"({context})",
                self.events,
            )

    # ------------------------------------------------------------------ #
    def run(self, tensor):
        """Run ``cstf(tensor, config)`` under supervision; see the module
        docstring for the retry/degrade/deadline semantics."""
        from repro.core.cstf import cstf
        from repro.engine.driver import PlanBuildError

        tel = self._tel()
        rungs = _ladder(self.config.engine)
        rung = 0
        fmt = self.config.mttkrp_format
        attempt = 0          # retries consumed at the current rung
        resume_from = self.config.resume_from
        start = self.clock()

        while True:
            name, engine = rungs[rung]
            cfg = replace(
                self.config, engine=engine, mttkrp_format=fmt,
                resume_from=resume_from,
            )
            if self.sup.deadline > 0.0:
                cfg = replace(cfg, on_iteration=self._deadline_guard(start))
            try:
                result = cstf(tensor, cfg)
            except DeadlineInterrupt as exc:
                elapsed = self.clock() - start
                checkpointed = (
                    self.config.checkpoint_path is not None
                    and os.path.exists(os.fspath(self.config.checkpoint_path))
                )
                self.events.record(
                    DEADLINE_EXCEEDED, _PHASE,
                    detail=f"in-run deadline guard stopped the attempt at an "
                           f"iteration boundary ({exc})"
                           + (f"; partial iterate checkpointed to "
                              f"{self.config.checkpoint_path}"
                              if checkpointed else ""),
                    deadline=self.sup.deadline, elapsed=elapsed,
                    checkpointed=checkpointed,
                )
                raise ResilienceError(
                    f"supervised run blew its {self.sup.deadline:g}s deadline "
                    f"(stopped cooperatively at an iteration boundary)",
                    self.events,
                ) from exc
            except PlanBuildError as exc:
                if not self.sup.degrade or fmt == "coo":
                    raise ResilienceError(
                        f"{fmt} plan build failed and no format fallback is "
                        f"available: {exc}",
                        self.events,
                    ) from exc
                # Format fallback is orthogonal to the ladder: the
                # conversion itself is broken, so re-dispatch through the
                # conversion-free COO format at the same rung.
                self.degradations += 1
                tel.counter("resilience.degradations")
                self.events.record(
                    FORMAT_FALLBACK, _PHASE,
                    detail=f"{fmt} plan build failed "
                           f"({type(exc).__name__}: {exc}); falling back to "
                           f"mttkrp_format='coo'",
                    from_format=fmt,
                )
                fmt = "coo"
                self._check_deadline(start, "after format fallback")
                continue
            except Exception as exc:
                if resume_from is not None and "checkpoint" in str(exc).lower():
                    # The resume itself is what failed (e.g. both the
                    # checkpoint and its rotation are torn): restart clean
                    # rather than replaying the same broken load.
                    resume_from = None
                elif self._checkpoint_available():
                    resume_from = self.config.checkpoint_path
                if attempt < self.sup.max_retries:
                    attempt += 1
                    self.retries += 1
                    tel.counter("resilience.retries")
                    delay = self._backoff(attempt - 1, start=start)
                    self.events.record(
                        RUN_RETRY, _PHASE,
                        detail=f"attempt {attempt}/{self.sup.max_retries} at "
                               f"tier '{name}' after {type(exc).__name__}: "
                               f"{exc}; backing off {delay:.3f}s"
                               + (f"; resuming from {resume_from}"
                                  if resume_from is not None else ""),
                        tier=name, attempt=attempt, delay=delay,
                    )
                    self._check_deadline(start, f"retrying tier '{name}'")
                    if delay > 0.0:
                        self.sleep(delay)
                    continue
                if self.sup.degrade and rung + 1 < len(rungs):
                    pressure = (
                        isinstance(exc, MemoryError)
                        and engine is not None
                        and getattr(engine, "shards", 1) > 2
                    )
                    if pressure:
                        # Memory pressure: before abandoning this tier,
                        # retry it with half the workers — fewer shards
                        # means fewer simultaneous accumulators, and the
                        # result stays bit-identical (disjoint-row shards
                        # reduce to the same sums at any shard count).
                        halved = replace(engine, shards=engine.shards // 2)
                        rungs.insert(
                            rung + 1,
                            (f"{name} @ {halved.shards} shards", halved),
                        )
                    rung += 1
                    attempt = 0
                    self.degradations += 1
                    tel.counter("resilience.degradations")
                    self.events.record(
                        EXECUTION_DEGRADED, _PHASE,
                        detail=f"tier '{name}' exhausted its "
                               f"{self.sup.max_retries} retries "
                               f"({type(exc).__name__}: {exc}); "
                               + (f"halving shard count under memory "
                                  f"pressure: degrading to "
                                  if pressure else "degrading to ")
                               + f"'{rungs[rung][0]}'",
                        from_tier=name, to_tier=rungs[rung][0],
                    )
                    self._check_deadline(start, f"degrading from '{name}'")
                    continue
                raise ResilienceError(
                    f"supervised run failed at the bottom tier '{name}' after "
                    f"{self.retries} retries and {self.degradations} "
                    f"degradations: {type(exc).__name__}: {exc}",
                    self.events,
                ) from exc

            if len(self.events):
                result.events = list(self.events) + list(result.events)
            return result


def supervised_cstf(tensor, config=None, *, supervisor=None, clock=time.monotonic,
                    sleep=time.sleep, **overrides):
    """Run :func:`~repro.core.cstf.cstf` under a :class:`RunSupervisor`.

    ``config``/``overrides`` build the :class:`~repro.core.config.CstfConfig`
    exactly like :func:`~repro.core.cstf.cstf`; ``supervisor`` is a
    :class:`SupervisorConfig` (or dict of its fields).
    """
    from repro.core.config import CstfConfig

    if config is None:
        config = CstfConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or keyword overrides, not both")
    if isinstance(supervisor, dict):
        supervisor = SupervisorConfig(**supervisor)
    return RunSupervisor(config, supervisor, clock=clock, sleep=sleep).run(tensor)
