"""Resilience policy knobs and the per-run context threaded through updates.

A :class:`ResiliencePolicy` says *how aggressively* to recover; a
:class:`ResilienceContext` bundles one policy with one
:class:`~repro.resilience.events.EventLog` for a single run. The driver
creates the context and passes it to update methods through their ``state``
dict (key ``"resilience"``), so the :class:`UpdateMethod` interface is
unchanged and updates invoked without a driver keep their historical
fail-fast behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.events import EventLog
from repro.utils.validation import require

__all__ = ["ResiliencePolicy", "ResilienceContext", "STATE_KEY"]

#: Key under which the driver stores the context in an update's state dict.
STATE_KEY = "resilience"

_SENTINEL_POLICIES = ("raise", "repair", "warn")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tuning of every recovery mechanism (defaults are conservative).

    Attributes
    ----------
    sentinel:
        What phase-boundary sentinels do on a non-finite factor/operand:
        ``"repair"`` (zero the bad entries and log), ``"raise"`` (abort with
        :class:`ResilienceError`), or ``"warn"`` (log only and continue).
    max_jitter_attempts:
        Bounded escalation of the guarded Cholesky: retries with
        ``S + (ρ+δ_k)I``, δ doubling each attempt, before giving up.
    jitter_init:
        Initial δ as a fraction of the matrix's diagonal scale
        (``max(trace/R, 1)``).
    max_admm_failures:
        Rollback-and-rescale attempts inside one ADMM update before falling
        back to a fresh restart (zero duals, sanitized warm start).
    rho_rescale:
        Multiplier applied to ρ on each ADMM divergence recovery.
    divergence_threshold:
        Magnitude-growth factor (relative to the warm start and RHS scale)
        beyond which a still-finite ADMM iterate counts as diverged.
    """

    sentinel: str = "repair"
    max_jitter_attempts: int = 6
    jitter_init: float = 1e-8
    max_admm_failures: int = 3
    rho_rescale: float = 2.0
    divergence_threshold: float = 1e8

    def __post_init__(self):
        require(
            self.sentinel in _SENTINEL_POLICIES,
            f"sentinel policy must be one of {_SENTINEL_POLICIES}, got {self.sentinel!r}",
        )
        require(self.max_jitter_attempts >= 1, "max_jitter_attempts must be >= 1")
        require(self.jitter_init > 0.0, "jitter_init must be positive")
        require(self.max_admm_failures >= 0, "max_admm_failures must be >= 0")
        require(self.rho_rescale > 1.0, "rho_rescale must be > 1")
        require(self.divergence_threshold > 0.0, "divergence_threshold must be positive")

    @classmethod
    def resolve(cls, spec) -> "ResiliencePolicy | None":
        """Coerce a config value into a policy.

        ``None`` → default policy; a policy instance passes through;
        ``"off"`` → ``None`` (resilience disabled, historical fail-fast
        behavior); any sentinel-policy name (``"raise"``/``"repair"``/
        ``"warn"``) → default policy with that sentinel behavior.
        """
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        key = str(spec).lower()
        if key == "off":
            return None
        require(
            key in _SENTINEL_POLICIES,
            f"resilience must be a ResiliencePolicy, 'off', or one of "
            f"{_SENTINEL_POLICIES}; got {spec!r}",
        )
        return cls(sentinel=key)


@dataclass
class ResilienceContext:
    """One run's policy plus its shared event log."""

    policy: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    events: EventLog = field(default_factory=EventLog)

    @staticmethod
    def from_state(state) -> "ResilienceContext | None":
        """Fetch the context a driver stashed in an update's state dict."""
        if isinstance(state, dict):
            ctx = state.get(STATE_KEY)
            if isinstance(ctx, ResilienceContext):
                return ctx
        return None
