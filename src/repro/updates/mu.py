"""MU: multiplicative updates for nonnegative factorization (Lee & Seung).

The classic NMF-style rule lifted to tensors::

    H ← H * M / (H S + ε)

One GEMM plus two elementwise kernels per mode visit — fully parallel and
trivially GPU-friendly, but with slower per-iteration progress than ADMM.
Nonnegativity is preserved automatically because every term is nonnegative
(given a nonnegative initialization and tensor).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.machine.executor import Executor
from repro.machine.symbolic import is_symbolic
from repro.updates.base import UpdateMethod, register_update
from repro.utils.validation import check_positive_int

__all__ = ["MuUpdate"]

_EPS = 1e-16


class MuUpdate(UpdateMethod):
    """Multiplicative nonnegative update, ``iters`` applications per visit."""

    name = "mu"
    nonnegative = True

    def __init__(self, iters: int = 1):
        self.iters = check_positive_int(iters, "iters")

    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        for _ in range(self.iters):
            hs = ex.gemm(h, s_mat, name="dgemm_hs")
            ratio = ex.elementwise_div(m_mat, hs, eps=_EPS, name="mu_ratio")
            h = ex.hadamard(h, ratio, name="mu_scale")
            if not is_symbolic(h):
                # Keep strictly positive so Gram matrices stay full-rank.
                h = np.maximum(h, _EPS)
        return h


register_update("mu", MuUpdate)
