"""KL-divergence (Poisson) multiplicative updates for sparse count tensors.

The related work the paper builds on ([8] Hong, Kolda & Duersch; also
CP-APR) generalizes CP to non-Gaussian losses; the most used case for the
count data FROSTT tensors actually contain is the Poisson / KL objective

    min_{H ≥ 0}  Σ_i [ x̂_i - x_i · log(x̂_i) ],   x̂ = ⟦H⁽¹⁾, …, H⁽ᴺ⁾⟧.

The classic multiplicative rule (Lee & Seung's KL rule lifted to CP) is

    H⁽ⁿ⁾ ← H⁽ⁿ⁾ ∘ M⁽ⁿ⁾(X / X̂) / (𝟙ᵀ-colsum term),

where the numerator is an MTTKRP of the *ratio-weighted* tensor (values
``x / x̂`` at the stored coordinates — computable sparsely because terms
with ``x = 0`` vanish), and the denominator for entry ``(i, r)`` is
``∏_{m≠n} (Σ_j H⁽ᵐ⁾_{jr})`` — a rank-1 row vector.

Unlike the Frobenius updates, this method needs the model values at the
nonzeros each iteration — an extra TTV-class sparse kernel charged to the
UPDATE phase. It therefore does not fit the (M, S) interface and plugs into
the driver through its own ``needs_tensor`` contract.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.tensor.coo import SparseTensor
from repro.updates.base import UpdateMethod, register_update
from repro.utils.validation import check_positive_int

__all__ = ["KlMuUpdate", "kl_divergence"]

_EPS = 1e-12


def kl_divergence(tensor: SparseTensor, factors, weights=None) -> float:
    """Generalized KL divergence ``Σ x̂ - x log x̂`` up to the constant
    ``Σ x log x - x`` (so 0 is not the floor; differences are meaningful).

    ``Σ x̂`` is computed in closed form as ``∏-free`` rank-1 sums:
    ``Σ_r ∏_m (Σ_i H⁽ᵐ⁾_ir)``; the log term runs over the nonzeros only.
    """
    from repro.core.kruskal import KruskalTensor

    model = KruskalTensor(list(factors), weights)
    colsum = np.ones(model.rank)
    for f in model.factors:
        colsum = colsum * np.asarray(f).sum(axis=0)
    total_model = float(np.dot(model.weights, colsum))
    xhat = np.maximum(model.values_at(tensor.indices), _EPS)
    return total_model - float(np.dot(tensor.values, np.log(xhat)))


class KlMuUpdate(UpdateMethod):
    """Poisson-loss multiplicative update (needs tensor access per call)."""

    name = "mu_kl"
    nonnegative = True
    needs_tensor = True

    def __init__(self, iters: int = 1):
        self.iters = check_positive_int(iters, "iters")

    def init_state(self, shape: tuple[int, ...], rank: int) -> dict[str, Any]:
        return {"factors": None}

    def update_with_tensor(
        self,
        ex: Executor,
        mode: int,
        tensor: SparseTensor,
        factors: list[np.ndarray],
        h,
        state: dict[str, Any],
    ):
        """KL-MU rule for *mode*, given all current factors and the tensor."""
        rank = h.shape[1]
        nnz = tensor.nnz
        ndim = tensor.ndim
        symbolic = is_symbolic(h)

        for _ in range(self.iters):
            # Model values at the nonzeros (TTV-class sparse kernel).
            ex.record(
                "kl_model_values",
                flops=nnz * rank * (ndim + 1),
                reads=nnz * (ndim + 1 + rank),
                writes=nnz,
                parallel_work=nnz * rank,
                traffic_kind="gather",
            )
            # Ratio-weighted MTTKRP (numerator).
            ex.record(
                "kl_ratio_mttkrp",
                flops=nnz * rank * ndim,
                reads=nnz * (1 + ndim) + nnz * (ndim - 1) * rank,
                writes=h.shape[0] * rank,
                parallel_work=nnz * rank,
                traffic_kind="gather",
            )
            # Column sums of the other factors + elementwise scale.
            other_rows = sum(f.shape[0] for m, f in enumerate(factors) if m != mode)
            n = h.shape[0] * rank
            ex.record(
                "kl_mu_scale",
                flops=other_rows * rank + 3 * n,
                reads=other_rows * rank + 2 * n,
                writes=n,
                parallel_work=n,
            )
            if symbolic:
                continue

            from repro.core.kruskal import KruskalTensor

            work = [np.asarray(f, dtype=np.float64) for f in factors]
            work[mode] = np.asarray(h, dtype=np.float64)
            xhat = np.maximum(
                KruskalTensor(work).values_at(tensor.indices), _EPS
            )
            ratio_tensor = SparseTensor(
                tensor.indices, tensor.values / xhat, tensor.shape
            )
            numerator = mttkrp_coo(ratio_tensor, work, mode)
            denom = np.ones(rank)
            for m, f in enumerate(work):
                if m != mode:
                    denom = denom * f.sum(axis=0)
            h = np.maximum(work[mode] * numerator / np.maximum(denom, _EPS), _EPS)
        if symbolic:
            return SymArray(h.shape)
        return h

    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        raise NotImplementedError(
            "KlMuUpdate needs tensor access; use update_with_tensor (the "
            "driver dispatches on the needs_tensor attribute)"
        )


register_update("mu_kl", KlMuUpdate)
