"""Constraint update methods — the paper's primary optimization target.

Each class implements one "update" of Algorithm 1 line 10: given the MTTKRP
output ``M``, the Hadamard-of-Grams ``S``, and the current factor ``H``,
produce the constrained new factor. All device work flows through a
:class:`repro.machine.Executor`, so each method carries its exact kernel
sequence for the cost model:

- :class:`~repro.updates.admm.AdmmUpdate` — Algorithm 2 with independently
  togglable *operation fusion* and *pre-inversion*; ``cuadmm()`` is the
  both-on configuration of Algorithm 3.
- :class:`~repro.updates.hals.HalsUpdate` — hierarchical ALS (rank-wise
  nonnegative updates, Cichocki & Phan).
- :class:`~repro.updates.mu.MuUpdate` — multiplicative updates (Lee &
  Seung).
- :class:`~repro.updates.als.AlsUpdate` — unconstrained least squares
  (plain CP-ALS through the same machinery).
- :class:`~repro.updates.apg.ApgUpdate` — accelerated proximal gradient
  (the related-work extension [36]).
"""

from repro.updates.base import UpdateMethod, get_update, UPDATE_REGISTRY
from repro.updates.admm import AdmmUpdate, cuadmm
from repro.updates.hals import HalsUpdate
from repro.updates.mu import MuUpdate
from repro.updates.als import AlsUpdate
from repro.updates.apg import ApgUpdate
from repro.updates.blocked_admm import BlockedAdmmUpdate
from repro.updates.mu_kl import KlMuUpdate, kl_divergence
from repro.updates.anls import AnlsBppUpdate

__all__ = [
    "UpdateMethod",
    "get_update",
    "UPDATE_REGISTRY",
    "AdmmUpdate",
    "cuadmm",
    "HalsUpdate",
    "MuUpdate",
    "AlsUpdate",
    "ApgUpdate",
    "BlockedAdmmUpdate",
    "KlMuUpdate",
    "kl_divergence",
    "AnlsBppUpdate",
]
