"""ADMM and cuADMM constraint updates (Algorithms 2 and 3 of the paper).

One class covers the whole design space of Section 4.3 through two flags:

``fuse_ops``
    Operation fusion (OF). Off: the auxiliary variable, proximity step,
    dual update, and convergence reductions are issued as individual
    cuBLAS-style kernels (DCOPY/DGEAM/prox/reductions) with intermediate
    global-memory round trips. On: the three custom fused kernels of
    Section 4.3.1 are used instead.

``preinvert``
    Pre-inversion (PI). Off: every inner iteration applies ``(S+ρI)⁻¹``
    via two serialized triangular solves. On: the explicit inverse is
    computed once before the loop (line 4 of Algorithm 3) and each inner
    iteration performs a single GEMM.

The numerical iterates are identical in all four configurations (up to
floating-point round-off) — only the kernel sequence, and therefore the
simulated cost, changes. ``AdmmUpdate()`` is the baseline; :func:`cuadmm`
returns the both-flags-on configuration.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.linalg.proximal import get_proximal
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.obs import current_telemetry
from repro.resilience.events import (
    ADMM_DIVERGENCE,
    ADMM_GIVEUP,
    ADMM_RESTART,
    ADMM_RHO_RESCALE,
    NONFINITE_INPUT,
)
from repro.resilience.guards import guarded_cholesky, sanitize_nonfinite
from repro.resilience.policy import ResilienceContext
from repro.updates.base import UpdateMethod, register_update
from repro.utils.validation import check_positive_int, require

__all__ = ["AdmmUpdate", "cuadmm"]


class AdmmUpdate(UpdateMethod):
    """AO-ADMM factor update with togglable GPU optimizations.

    Parameters
    ----------
    constraint:
        Name of (or instance of) a proximity operator from
        :mod:`repro.linalg.proximal`; default nonnegativity.
    inner_iters:
        Fixed inner-iteration count. The paper fixes 10 (Section 5.1:
        "ADMM converges in approximately 10 iterations for all practical
        purposes"); the tolerance check can end the loop earlier.
    tol:
        Convergence tolerance ε for the primal and dual residual ratios
        (Algorithm 2 line 9). Ignored in symbolic (paper-scale analytic)
        mode, where the loop always runs ``inner_iters`` times.
    fuse_ops, preinvert:
        The OF and PI optimizations described in the module docstring.
    """

    nonnegative = True

    def __init__(
        self,
        constraint="nonneg",
        inner_iters: int = 10,
        tol: float = 0.0,
        fuse_ops: bool = False,
        preinvert: bool = False,
        constraint_params: dict | None = None,
        record_residuals: bool = False,
    ):
        self.prox = get_proximal(constraint, **(constraint_params or {}))
        self.inner_iters = check_positive_int(inner_iters, "inner_iters")
        require(tol >= 0.0, "tol must be non-negative")
        self.tol = float(tol)
        self.fuse_ops = bool(fuse_ops)
        self.preinvert = bool(preinvert)
        self.record_residuals = bool(record_residuals)
        self.nonnegative = self.prox.name in ("nonneg", "nonneg_l1", "simplex", "box")
        suffix = {
            (False, False): "",
            (True, False): "+OF",
            (False, True): "+PI",
            (True, True): "+OF+PI",
        }[(self.fuse_ops, self.preinvert)]
        self.name = f"admm{suffix}" if suffix != "+OF+PI" else "cuadmm"

    # ------------------------------------------------------------------ #
    def init_state(self, shape: tuple[int, ...], rank: int) -> dict[str, Any]:
        """Allocate one dual variable U per mode (zeros, warm-started)."""
        return {
            "dual": [np.zeros((dim, rank), dtype=np.float64) for dim in shape],
        }

    def _dual(self, state: dict[str, Any], mode: int, h):
        """Fetch the dual variable, matching symbolic/concrete mode of *h*."""
        if is_symbolic(h):
            return SymArray(h.shape)
        if not state:
            raise ValueError("ADMM requires state from init_state()")
        return state["dual"][mode]

    # ------------------------------------------------------------------ #
    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        symbolic = is_symbolic(m_mat, s_mat, h)
        rank = h.shape[1]
        tel = current_telemetry()
        u = self._dual(state, mode, h)
        # Resilience context arrives through the driver's state dict; update
        # calls without one (direct use, historical tests) keep fail-fast
        # semantics. Symbolic mode never needs recovery — no numerics run.
        ctx = None if symbolic else ResilienceContext.from_state(state)
        s_arr = None

        # Preconditioning ρ = trace(S)/R and diagonal loading S + ρI — one
        # tiny R×R kernel, identical record in symbolic and concrete mode.
        ex.record(
            "diag_load",
            flops=rank * rank + rank,
            reads=rank * rank,
            writes=rank * rank,
            parallel_work=rank * rank,
        )
        if symbolic:
            rho = 1.0
            l_factor = ex.cholesky(SymArray((rank, rank)))
        else:
            s_arr = np.asarray(s_mat, dtype=np.float64)
            if ctx is not None:
                s_arr, n_bad = sanitize_nonfinite(s_arr)
                if n_bad:
                    ctx.events.record(
                        NONFINITE_INPUT, "UPDATE", mode=mode,
                        detail=f"zeroed {n_bad} non-finite entries of S before "
                               f"diagonal loading",
                        bad_entries=n_bad,
                    )
                    s_arr = 0.5 * (s_arr + s_arr.T)
            rho = float(np.trace(s_arr)) / rank
            rho = rho if math.isfinite(rho) and rho > 0.0 else 1.0
            l_factor, rho = self._factorize(ex, s_arr, rho, ctx, mode)
        g_inv = ex.spd_inverse(l_factor) if self.preinvert else None

        residuals: list[tuple[float, float]] = []
        h0 = h  # pristine warm start, used by the fresh-restart fallback
        last_good = (h, u)
        failures = 0
        it = 0
        ref_scale = 0.0
        if ctx is not None:
            # Scale reference for blow-up detection: the warm start and the
            # RHS bound any sane iterate's magnitude. Computed once, from
            # finite entries only (NaN/Inf operands must not poison the
            # reference they are judged against).
            ref_scale = 1.0 + _finite_max(h0) + _finite_max(m_mat)
        while it < self.inner_iters:
            solver_error = None
            try:
                if self.fuse_ops:
                    h_new, u_new, r_primal, r_dual = self._iter_fused(
                        ex, m_mat, h, u, rho, l_factor, g_inv
                    )
                else:
                    h_new, u_new, r_primal, r_dual = self._iter_generic(
                        ex, m_mat, h, u, rho, l_factor, g_inv
                    )
            except (ValueError, FloatingPointError, np.linalg.LinAlgError) as exc:
                if ctx is None:
                    raise
                # SciPy's finiteness checks fire *inside* the triangular
                # solve when the RHS carries NaN/Inf — same root cause as a
                # diverged iterate, so it takes the same escalation path.
                solver_error = exc
                h_new = u_new = None
                r_primal = r_dual = float("nan")
            if ctx is not None and (
                solver_error is not None
                or self._diverged(h_new, u_new, r_primal, r_dual, ctx, ref_scale)
            ):
                failures += 1
                cause = (
                    f"solver raised {type(solver_error).__name__}"
                    if solver_error is not None
                    else f"inner iterate diverged (r_primal={r_primal:.3e}, "
                         f"r_dual={r_dual:.3e})"
                )
                ctx.events.record(
                    ADMM_DIVERGENCE, "UPDATE", mode=mode,
                    detail=f"{cause}; failure {failures}",
                    r_primal=r_primal, r_dual=r_dual, failures=failures,
                )
                if failures <= ctx.policy.max_admm_failures:
                    # ρ-rescale (Liavas & Sidiropoulos' standard remedy) and
                    # roll back to the last finite iterate; the failed
                    # iteration is retried, not counted.
                    rho *= ctx.policy.rho_rescale
                    ctx.events.record(
                        ADMM_RHO_RESCALE, "UPDATE", mode=mode,
                        detail=f"rescaled rho to {rho:.3e} and rolled back",
                        rho=rho,
                    )
                    l_factor, rho = self._factorize(ex, s_arr, rho, ctx, mode)
                    g_inv = ex.spd_inverse(l_factor) if self.preinvert else None
                    h, u = last_good
                    continue
                if failures == ctx.policy.max_admm_failures + 1:
                    # Fresh restart: sanitized warm start, zero duals,
                    # one more ρ escalation, inner count reset.
                    h_restart, _ = sanitize_nonfinite(np.asarray(h0, dtype=np.float64))
                    if self.nonnegative:
                        h_restart = np.maximum(h_restart, 0.0)
                    u_restart = np.zeros_like(h_restart)
                    rho *= ctx.policy.rho_rescale
                    l_factor, rho = self._factorize(ex, s_arr, rho, ctx, mode)
                    g_inv = ex.spd_inverse(l_factor) if self.preinvert else None
                    ctx.events.record(
                        ADMM_RESTART, "UPDATE", mode=mode,
                        detail=f"fresh restart with zero duals and rho={rho:.3e}",
                        rho=rho,
                    )
                    h, u = h_restart, u_restart
                    last_good = (h, u)
                    it = 0
                    continue
                # Even the restart diverged (e.g. M itself is corrupt):
                # return the last finite iterate rather than garbage and let
                # the driver's sentinel decide what to do.
                ctx.events.record(
                    ADMM_GIVEUP, "UPDATE", mode=mode,
                    detail="divergence persisted after restart; returning the "
                           "last finite iterate",
                    failures=failures,
                )
                h, u = last_good
                break
            h, u = h_new, u_new
            last_good = (h, u)
            it += 1
            if self.record_residuals:
                residuals.append((r_primal, r_dual))
            if math.isfinite(r_primal) and math.isfinite(r_dual):
                # Inner-loop convergence telemetry (NaN residuals of the
                # symbolic mode are skipped — no numerics ran).
                tel.observe("admm.r_primal", r_primal, mode=mode)
                tel.observe("admm.r_dual", r_dual, mode=mode)
            # Every inner iteration ends with the convergence scalars being
            # read back by the host loop — a stream synchronization that no
            # amount of kernel fusion removes. This fixed latency is what
            # caps the optimization gains on small factor matrices (the
            # ≈1.0–1.3× NIPS/Enron bars of Figure 4).
            ex.record("host_readback_sync", reads=4, writes=0, parallel_work=1, launches=4)
            # NaN residuals (symbolic mode) never satisfy the test, so the
            # loop runs the fixed count — matching the paper's methodology.
            if self.tol > 0.0 and r_primal < self.tol and r_dual < self.tol:
                break

        tel.observe("admm.inner_iters", it, mode=mode)
        tel.observe("admm.rho", rho, mode=mode)
        if failures:
            tel.counter("admm.failures", failures)
        if not symbolic:
            state["dual"][mode] = u
        if self.record_residuals:
            # Section 5.1 reproduction hook: the per-inner-iteration primal
            # and dual residual ratios of the last update call.
            state["residuals"] = residuals
        return h

    # ------------------------------------------------------------------ #
    def _factorize(self, ex: Executor, s_arr, rho: float, ctx, mode: int):
        """Factor ``S + ρI``; guarded (jitter escalation) when a resilience
        context is present, historical fail-fast otherwise."""
        rank = s_arr.shape[0]
        if ctx is None:
            return ex.cholesky(s_arr + rho * np.eye(rank)), rho
        return guarded_cholesky(
            s_arr, rho=rho, policy=ctx.policy, events=ctx.events,
            phase="UPDATE", mode=mode, chol=ex.cholesky,
        )

    @staticmethod
    def _diverged(
        h_new, u_new, r_primal: float, r_dual: float, ctx, ref_scale: float
    ) -> bool:
        """Blow-up test: any non-finite iterate/residual, or iterate
        magnitudes a ``divergence_threshold`` factor beyond the scale the
        warm start and RHS justify (finite but headed for overflow).

        Residual *ratios* are deliberately not thresholded — their
        denominators legitimately approach zero on sparse factors (a mostly
        zero H or a freshly zeroed dual), which would flag healthy updates.
        """
        if not (math.isfinite(r_primal) and math.isfinite(r_dual)):
            return True
        if not (np.isfinite(h_new).all() and np.isfinite(u_new).all()):
            return True
        thresh = ctx.policy.divergence_threshold
        return bool(
            max(np.abs(h_new).max(initial=0.0), np.abs(u_new).max(initial=0.0))
            > thresh * ref_scale
        )

    # ------------------------------------------------------------------ #
    def _solve(self, ex: Executor, h_aux, l_factor, g_inv):
        """Apply ``(S + ρI)⁻¹`` on the right of the I×R auxiliary matrix."""
        if self.preinvert:
            # H̄ = H̃ (LLᵀ)⁻¹ — a single GEMM (the inverse is symmetric).
            return ex.gemm(h_aux, g_inv, name="dgemm_apply_inverse")
        # Two serialized triangular solves on R×I right-hand sides; the
        # transposes are layout flags on DTRSM, not data movement.
        return ex.cholesky_solve(l_factor, h_aux.T).T

    def _iter_generic(self, ex: Executor, m_mat, h, u, rho, l_factor, g_inv):
        """One inner iteration as discrete cuBLAS-style kernels."""
        h_prev = ex.copy(h, name="dcopy_hprev")
        t_sum = ex.add(h, u, name="dgeam_h_plus_u")
        h_aux = ex.geam(1.0, m_mat, rho, t_sum, name="dgeam_aux")
        h_bar = self._solve(ex, h_aux, l_factor, g_inv)
        t_arg = ex.sub(h_bar, u, name="dgeam_prox_arg")
        h_new = ex.prox(self.prox, t_arg, rho)
        dh = ex.sub(h_new, h_bar, name="dgeam_dh")
        u_new = ex.add(u, dh, name="dgeam_dual")
        r_primal_num = ex.norm_sq(dh, name="norm_primal")
        h_norm = ex.norm_sq(h_new, name="norm_h")
        d_prev = ex.sub(h_new, h_prev, name="dgeam_dprev")
        r_dual_num = ex.norm_sq(d_prev, name="norm_dual")
        u_norm = ex.norm_sq(u_new, name="norm_u")
        r_primal = r_primal_num / max(h_norm, 1e-30)
        r_dual = r_dual_num / max(u_norm, 1e-30)
        return h_new, u_new, r_primal, r_dual

    def _iter_fused(self, ex: Executor, m_mat, h, u, rho, l_factor, g_inv):
        """One inner iteration with the cuADMM fused kernels."""
        h_prev = h  # No DCOPY: the fused dual kernel reads the old H in place.
        h_aux = ex.fused_auxiliary(m_mat, h, u, rho)
        h_bar = self._solve(ex, h_aux, l_factor, g_inv)
        h_new = ex.fused_prox_primal(self.prox, h_bar, u, rho)
        u_new, r_primal_num, h_norm, r_dual_num, u_norm = ex.fused_dual_update(
            u, h_new, h_bar, h_prev
        )
        r_primal = r_primal_num / max(h_norm, 1e-30)
        r_dual = r_dual_num / max(u_norm, 1e-30)
        return h_new, u_new, r_primal, r_dual


def _finite_max(arr) -> float:
    """Largest finite magnitude in *arr* (0.0 when none exist)."""
    a = np.asarray(arr, dtype=np.float64)
    finite = a[np.isfinite(a)]
    return float(np.abs(finite).max()) if finite.size else 0.0


def cuadmm(constraint="nonneg", inner_iters: int = 10, tol: float = 0.0, **kwargs) -> AdmmUpdate:
    """The fully optimized cuADMM configuration (Algorithm 3: OF + PI)."""
    return AdmmUpdate(
        constraint=constraint,
        inner_iters=inner_iters,
        tol=tol,
        fuse_ops=True,
        preinvert=True,
        **kwargs,
    )


register_update("admm", AdmmUpdate)
register_update("cuadmm", cuadmm)
register_update("admm_of", lambda **kw: AdmmUpdate(fuse_ops=True, **kw))
register_update("admm_pi", lambda **kw: AdmmUpdate(preinvert=True, **kw))
