"""Unconstrained least-squares update (plain CP-ALS).

Solves ``H S = M`` exactly via Cholesky — no constraint applied. Included so
the framework also covers unconstrained STF, letting the benchmarks isolate
the *cost of constraints* (the paper's Figure 1 argument is precisely that
the constrained update adds a bottleneck that unconstrained CP-ALS lacks).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.updates.base import UpdateMethod, register_update

__all__ = ["AlsUpdate"]


class AlsUpdate(UpdateMethod):
    """Exact unconstrained solve ``H = M (S + λI)⁻¹`` with tiny ridge λ."""

    name = "als"
    nonnegative = False

    def __init__(self, ridge: float = 1e-12):
        self.ridge = float(ridge)

    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        rank = h.shape[1]
        ex.record(
            "diag_load",
            flops=rank * rank + rank,
            reads=rank * rank,
            writes=rank * rank,
            parallel_work=rank * rank,
        )
        if is_symbolic(m_mat, s_mat, h):
            s_loaded = SymArray((rank, rank))
        else:
            s_arr = np.asarray(s_mat, dtype=np.float64)
            s_loaded = s_arr + max(self.ridge, 1e-12 * max(np.trace(s_arr), 1.0)) * np.eye(rank)
        l_factor = ex.cholesky(s_loaded)
        return ex.cholesky_solve(l_factor, m_mat.T).T


register_update("als", AlsUpdate)
