"""Update-method interface and registry (the AUNTF plug-in point).

The paper's ``AUNTF_GPU`` class accepts any alternating update scheme that
maps ``(M, S, H) -> H_new``; this module defines the corresponding Python
interface. Methods may keep per-mode state across AO iterations (ADMM's
dual variables warm-start, APG's momentum), managed through
:meth:`UpdateMethod.init_state`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.machine.executor import Executor

__all__ = ["UpdateMethod", "UPDATE_REGISTRY", "get_update", "register_update"]


class UpdateMethod(ABC):
    """One alternating update scheme (ADMM / HALS / MU / ...)."""

    #: Registry key and display name; set by subclasses.
    name: str = "abstract"

    #: Whether the scheme enforces nonnegativity (used by tests and drivers
    #: to pick valid workloads).
    nonnegative: bool = True

    def init_state(self, shape: tuple[int, ...], rank: int) -> dict[str, Any]:
        """Create the per-tensor mutable state (one entry per mode).

        The default is stateless; ADMM overrides this to allocate its dual
        variables.
        """
        return {}

    @abstractmethod
    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        """Produce the new factor for *mode*.

        Parameters
        ----------
        ex:
            Device executor; every kernel must go through it.
        mode:
            Mode being updated.
        m_mat:
            MTTKRP output ``M ∈ R^{I×R}`` (or :class:`SymArray`).
        s_mat:
            Hadamard of the other modes' Gram matrices, ``S ∈ R^{R×R}``.
        h:
            Current factor ``H ∈ R^{I×R}``.
        state:
            The dict created by :meth:`init_state`; mutated in place.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


UPDATE_REGISTRY: dict[str, Callable[..., UpdateMethod]] = {}


def register_update(key: str, factory: Callable[..., UpdateMethod]) -> None:
    """Register an update-method factory under *key* (lowercase)."""
    UPDATE_REGISTRY[key.lower()] = factory


def get_update(method, **kwargs) -> UpdateMethod:
    """Resolve an update method by name, or pass an instance through."""
    if isinstance(method, UpdateMethod):
        return method
    key = str(method).lower()
    if key not in UPDATE_REGISTRY:
        raise KeyError(f"unknown update method {method!r}; available: {sorted(UPDATE_REGISTRY)}")
    return UPDATE_REGISTRY[key](**kwargs)
