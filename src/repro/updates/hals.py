"""HALS: hierarchical alternating least squares (Cichocki & Phan, 2009).

HALS updates the factor one *rank* (column) at a time, holding the other
columns fixed, with a closed-form nonnegative solution per column::

    h_r ← max( h_r + (m_r - H s_r) / s_rr , 0 )

The rank-wise sweep has R dependent steps (column r+1 reads the just-updated
column r through ``H s_r``), so on the device it issues R small GEMV-class
kernels per sweep — less fusion-friendly than ADMM, which is why the paper
treats it as a flexibility demonstration (Section 5.4) rather than the
primary path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.updates.base import UpdateMethod, register_update
from repro.utils.validation import check_positive_int

__all__ = ["HalsUpdate"]

_EPS = 1e-16


class HalsUpdate(UpdateMethod):
    """Rank-wise nonnegative HALS update.

    Parameters
    ----------
    sweeps:
        Number of full passes over the R columns per mode visit (PLANC
        uses 1).
    """

    name = "hals"
    nonnegative = True

    def __init__(self, sweeps: int = 1):
        self.sweeps = check_positive_int(sweeps, "sweeps")

    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        rows, rank = h.shape
        if is_symbolic(m_mat, s_mat, h):
            # Charge the identical kernel sequence without numerics.
            for _ in range(self.sweeps):
                for _r in range(rank):
                    ex.gemv(SymArray((rows, rank)), SymArray((rank,)), name="dgemv_hals")
                    ex.record(
                        "hals_column_update",
                        flops=4 * rows,
                        reads=3 * rows,
                        writes=rows,
                        parallel_work=rows,
                    )
            return SymArray((rows, rank))

        h = np.array(h, dtype=np.float64, copy=True)
        m_arr = np.asarray(m_mat, dtype=np.float64)
        s_arr = np.asarray(s_mat, dtype=np.float64)
        for _ in range(self.sweeps):
            for r in range(rank):
                hs = ex.gemv(h, s_arr[:, r], name="dgemv_hals")
                # Fused column kernel: h_r += (m_r - H s_r)/s_rr, clipped.
                ex.record(
                    "hals_column_update",
                    flops=4 * rows,
                    reads=3 * rows,
                    writes=rows,
                    parallel_work=rows,
                )
                denom = max(float(s_arr[r, r]), _EPS)
                h[:, r] = np.maximum(h[:, r] + (m_arr[:, r] - hs) / denom, _EPS)
        return h


register_update("hals", HalsUpdate)
