"""APG: accelerated proximal gradient update (Zhang et al. [36]).

An extension beyond the paper's three evaluated schemes, implementing the
related-work alternative: Nesterov-accelerated projected gradient descent on
the per-mode subproblem ``min_{H≥0} ½‖H S^{1/2} - ...‖²`` with gradient
``H S - M`` and step ``1/L``, ``L = λ_max(S)``::

    H_k   = prox( Y_k - (Y_k S - M)/L )
    t_k+1 = (1 + √(1+4 t_k²))/2
    Y_k+1 = H_k + ((t_k - 1)/t_k+1)(H_k - H_k-1)

Momentum state persists across AO iterations like ADMM's dual variables.
"""

from __future__ import annotations

from typing import Any

import math

import numpy as np

from repro.linalg.proximal import get_proximal
from repro.machine.executor import Executor
from repro.machine.symbolic import is_symbolic
from repro.updates.base import UpdateMethod, register_update
from repro.utils.validation import check_positive_int

__all__ = ["ApgUpdate"]


class ApgUpdate(UpdateMethod):
    """Accelerated proximal gradient with per-mode momentum restart."""

    name = "apg"
    nonnegative = True

    def __init__(self, constraint="nonneg", inner_iters: int = 10, constraint_params=None):
        self.prox = get_proximal(constraint, **(constraint_params or {}))
        self.inner_iters = check_positive_int(inner_iters, "inner_iters")
        self.nonnegative = self.prox.name in ("nonneg", "nonneg_l1", "simplex", "box")

    def init_state(self, shape: tuple[int, ...], rank: int) -> dict[str, Any]:
        return {"t": [1.0] * len(shape)}

    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        rank = h.shape[1]
        # Lipschitz constant L = λ_max(S): an R×R eigen-range estimate; tiny
        # work, charged as one small kernel.
        ex.record(
            "lipschitz_estimate",
            flops=2.0 * rank**3,
            reads=rank * rank,
            writes=1,
            parallel_work=rank * rank,
            serial_steps=rank,
            compute_efficiency=ex.device.trsm_efficiency,
            utilization_exempt=True,
        )
        if is_symbolic(m_mat, s_mat, h):
            lip = 1.0
        else:
            lip = float(np.linalg.eigvalsh(np.asarray(s_mat, dtype=np.float64))[-1])
            lip = max(lip, 1e-12)

        t = state["t"][mode] if state else 1.0
        y = ex.copy(h, name="dcopy_apg_y")
        h_prev = h
        for _ in range(self.inner_iters):
            grad_lin = ex.gemm(y, s_mat, name="dgemm_apg_grad")
            step = ex.geam(1.0, y, -1.0 / lip, grad_lin, name="dgeam_apg_step")
            residual = ex.geam(1.0, step, 1.0 / lip, m_mat, name="dgeam_apg_m")
            h_new = ex.prox(self.prox, residual, lip)
            t_new = (1.0 + math.sqrt(1.0 + 4.0 * t * t)) / 2.0
            beta = (t - 1.0) / t_new
            diff = ex.sub(h_new, h_prev, name="dgeam_apg_diff")
            y = ex.geam(1.0, h_new, beta, diff, name="dgeam_apg_momentum")
            h_prev = h_new
            t = t_new
        if state:
            state["t"][mode] = t
        return h_prev


register_update("apg", ApgUpdate)
