"""Blocked AO-ADMM (Smith, Beri & Karypis, ICPP '17).

The CPU-side counterpart of cuADMM's operation fusion: because the ADMM
inner loop is *row-separable* once ``L = chol(S+ρI)`` is fixed, the factor
can be processed in row blocks sized to the cache — all 10 inner iterations
run on a block while its ``H/U/M`` tiles stay resident, so DRAM sees each
matrix roughly once per update call instead of once per inner iteration.

The paper's Section 4.2 notes this blockwise reformulation is effective on
shared-memory CPUs but *not* on GPUs (which want large uniform kernels) —
this class models exactly that: the traffic saving is real on the CPU's
cache hierarchy and pointless on a GPU, where per-block kernel launches
dominate.

Numerics are identical to :class:`~repro.updates.admm.AdmmUpdate` (verified
by tests): blocking changes the memory schedule, not the math.
"""

from __future__ import annotations

from math import ceil
from typing import Any

from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.obs import current_telemetry
from repro.resilience.events import ADMM_RESTART, ADMM_RHO_RESCALE, CHOLESKY_JITTER
from repro.resilience.policy import ResilienceContext
from repro.updates.admm import AdmmUpdate
from repro.updates.base import register_update
from repro.utils.validation import check_positive_int

__all__ = ["BlockedAdmmUpdate"]


class BlockedAdmmUpdate(AdmmUpdate):
    """Cache-blocked CPU ADMM (row blocks, inner loop per block).

    Parameters are those of :class:`AdmmUpdate` plus ``block_rows``, the
    rows per cache block. The default (8192) keeps a block's three R=32
    tiles (H, U, M) within ~6 MB — comfortably inside a server CPU's LLC
    share per core group.
    """

    def __init__(self, block_rows: int = 8192, **kwargs):
        kwargs.setdefault("fuse_ops", False)
        kwargs.setdefault("preinvert", False)
        super().__init__(**kwargs)
        self.block_rows = check_positive_int(block_rows, "block_rows")
        self.name = "blocked_admm"

    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        symbolic = is_symbolic(m_mat, s_mat, h)
        rows, rank = h.shape
        n_blocks = max(1, ceil(rows / self.block_rows))

        # The numerical result is the plain ADMM result (row separability):
        # run the parent update for the numbers and the *logical* kernel
        # stream, on a silent executor so nothing is double-charged. The
        # resilience context (if the driver installed one) rides along in
        # `state`, so guarded factorization and divergence recovery apply to
        # the blocked path identically.
        ctx = None if symbolic else ResilienceContext.from_state(state)
        events_before = len(ctx.events) if ctx is not None else 0
        silent = Executor(ex.device)
        out = super().update(silent, mode, m_mat, s_mat, h, state)
        # The parent call recorded the convergence metrics (residuals, ρ,
        # inner-iteration counts); only the blocked schedule itself is new.
        current_telemetry().observe("blocked_admm.blocks", n_blocks, mode=mode)

        # Charge the blocked schedule: factorization once, then per block
        # all inner iterations with cache-resident re-accesses. Logical
        # traffic equals the generic schedule; compulsory (DRAM) traffic is
        # one read of M/H/U and one write of H/U per update call.
        ex.record(
            "diag_load",
            flops=rank * rank + rank,
            reads=rank * rank,
            writes=rank * rank,
            parallel_work=rank * rank,
        )
        sym_s = SymArray((rank, rank))
        ex.cholesky(sym_s)
        if ctx is not None:
            # Every recovery on the silent executor re-ran DPOTRF (jittered
            # retries, ρ-rescales, restarts); charge those re-factorizations
            # on the real timeline too so faulty runs are not under-billed.
            recovery_kinds = (ADMM_RHO_RESCALE, ADMM_RESTART, CHOLESKY_JITTER)
            extra = sum(
                1 for e in list(ctx.events)[events_before:]
                if e.kind in recovery_kinds
            )
            for _ in range(extra):
                ex.cholesky(sym_s)

        n = float(rows) * rank
        logical_words = self.inner_iters * 26.0 * n  # the generic schedule's traffic
        compulsory_words = 5.0 * n  # read M,H,U once; write H,U once
        block_ws_words = 3.0 * min(self.block_rows, rows) * rank
        ex.record(
            "blocked_admm_inner",
            flops=self.inner_iters * (19.0 * n + 2.0 * n * rank),
            reads=logical_words * 0.75,
            writes=logical_words * 0.25,
            parallel_work=n,
            unique_words=compulsory_words,
            working_set_words=block_ws_words,
            launches=n_blocks,
            # Triangular solves per block per iteration are small and hot in
            # cache; their serialization cost is captured here.
            serial_steps=2 * rank * self.inner_iters,
            compute_efficiency=ex.device.trsm_efficiency
            if not self.preinvert
            else ex.device.gemm_efficiency,
        )
        # Convergence reductions still synchronize once per inner iteration.
        ex.record(
            "host_readback_sync",
            reads=4.0 * self.inner_iters,
            writes=0,
            parallel_work=1,
            launches=self.inner_iters,
        )
        if symbolic:
            return SymArray((rows, rank))
        return out


register_update("blocked_admm", BlockedAdmmUpdate)
