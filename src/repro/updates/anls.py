"""ANLS-BPP update: PLANC's exact nonnegative least-squares solver.

PLANC's default alternating update solves each mode's constrained
subproblem *exactly* with block-principal-pivoting NNLS (Kim & Park), in
contrast to ADMM's inexact inner iterations. Per update call:

- one R×R factorization per active passive-set group,
- a handful of batched solves (the pivoting loop), each a TRSM-class
  kernel on the grouped right-hand sides,
- gradient evaluations ``H S − M`` (GEMM-class).

On the cost side, BPP's pivoting loop is data-dependent; we charge the
observed number of pivoting rounds (concrete mode) or the typical 3 rounds
(symbolic mode — BPP converges in a handful of exchanges in practice).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.linalg.nnls import nnls_bpp
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.updates.base import UpdateMethod, register_update
from repro.utils.validation import check_positive_int

__all__ = ["AnlsBppUpdate"]

#: Pivoting rounds charged in symbolic mode (typical BPP behaviour).
_TYPICAL_ROUNDS = 3


class AnlsBppUpdate(UpdateMethod):
    """Exact NNLS update via block principal pivoting."""

    name = "anls_bpp"
    nonnegative = True

    def __init__(self, max_pivot_iters: int = 100):
        self.max_pivot_iters = check_positive_int(max_pivot_iters, "max_pivot_iters")

    def _charge(self, ex: Executor, rows: int, rank: int, rounds: int) -> None:
        n = float(rows) * rank
        for _ in range(max(rounds, 1)):
            # Grouped Cholesky factorizations (a few small R'×R' systems).
            ex.cholesky(SymArray((rank, rank)))
            # Batched solve over all rows + gradient GEMM + pivot bookkeeping.
            ex.record(
                "bpp_batched_solve",
                flops=2.0 * n * rank,
                reads=n + rank * rank,
                writes=n,
                parallel_work=n,
                serial_steps=2 * rank,
                compute_efficiency=ex.device.trsm_efficiency,
                utilization_exempt=True,
            )
            ex.gemm(SymArray((rows, rank)), SymArray((rank, rank)), name="dgemm_bpp_grad")
            ex.record(
                "bpp_pivot_scan",
                flops=4.0 * n,
                reads=3.0 * n,
                writes=n / 8.0,  # bitmask updates
                parallel_work=n,
            )

    def update(self, ex: Executor, mode: int, m_mat, s_mat, h, state: dict[str, Any]):
        rows, rank = h.shape
        if is_symbolic(m_mat, s_mat, h):
            self._charge(ex, rows, rank, _TYPICAL_ROUNDS)
            return SymArray((rows, rank))

        s_arr = np.asarray(s_mat, dtype=np.float64)
        m_arr = np.asarray(m_mat, dtype=np.float64)
        # Count actual pivoting rounds for faithful cost accounting.
        rounds = _count_pivot_rounds(s_arr, m_arr, self.max_pivot_iters)
        self._charge(ex, rows, rank, rounds)
        return nnls_bpp(s_arr, m_arr, max_iters=self.max_pivot_iters)


def _count_pivot_rounds(s_arr: np.ndarray, m_arr: np.ndarray, max_iters: int) -> int:
    """Run a lightweight replica of the pivot loop to count its rounds."""
    rows, rank = m_arr.shape
    from repro.linalg.nnls import _solve_groups

    passive = np.ones((rows, rank), dtype=bool)
    x = _solve_groups(s_arr, m_arr, passive)
    y = x @ s_arr - m_arr
    for rounds in range(1, max_iters + 1):
        bad = (passive & (x < -1e-12)) | (~passive & (y < -1e-12))
        if not bad.any():
            return rounds
        passive ^= bad
        x = _solve_groups(s_arr, m_arr, passive)
        y = x @ s_arr - m_arr
    return max_iters


register_update("anls_bpp", AnlsBppUpdate)
