"""CPU baselines the paper compares against.

- :mod:`repro.baselines.splatt` — SPLATT-like cSTF: CSF trees (one per
  mode), generic AO-ADMM, 26-core Ice Lake CPU model. The comparator of
  Figures 5–8.
- :mod:`repro.baselines.planc` — PLANC-like constrained TF: the dense
  driver behind Figure 1's DenseTF bars, and the ALTO-based sparse CPU
  configuration ("modified PLANC", Section 4) behind Figures 1 (SparseTF),
  3, 9 and 10.
"""

from repro.baselines.splatt import splatt_cstf
from repro.baselines.planc import planc_dense_tf, planc_sparse_tf

__all__ = ["splatt_cstf", "planc_dense_tf", "planc_sparse_tf"]
