"""SPLATT-like CPU baseline: CSF MTTKRP + AO-ADMM on the Ice Lake model.

SPLATT (Smith & Karypis) is the CPU state of the art for cSTF with ADMM and
the paper's headline comparator (Figures 5 and 6). This baseline reproduces
its algorithmic shape:

- one CSF tree per mode (the ``ALLMODE`` policy) driving the tree-walk
  MTTKRP;
- the accelerated AO-ADMM of Smith et al. (ICPP '17): generic ADMM (no GPU
  fusion, Cholesky solves in the inner loop — efficient on CPUs, whose
  ``trsm_efficiency`` is high) with dual-variable warm starting;
- 2-norm column normalization.

Same driver, numerics and phase accounting as the GPU framework — only the
device model, storage format, and update configuration differ, so speedup
comparisons isolate exactly what the paper's do.
"""

from __future__ import annotations

from repro.core.config import CstfConfig
from repro.core.cstf import CstfResult, cstf
from repro.updates.admm import AdmmUpdate

__all__ = ["splatt_cstf"]


def splatt_cstf(
    tensor,
    rank: int = 32,
    max_iters: int = 10,
    inner_iters: int = 10,
    constraint="nonneg",
    device="cpu",
    seed=0,
    compute_fit: bool = False,
    tol: float = 0.0,
) -> CstfResult:
    """Run the SPLATT-like baseline on *tensor* (concrete or TensorStats).

    Parameters mirror :func:`repro.core.cstf.cstf`; the storage format
    (CSF), device (CPU) and update (generic ADMM) are fixed by the baseline
    definition — pass a different ``device`` only for ablations.
    """
    config = CstfConfig(
        rank=rank,
        max_iters=max_iters,
        tol=tol,
        update=AdmmUpdate(constraint=constraint, inner_iters=inner_iters),
        device=device,
        mttkrp_format="csf",
        normalize="2",
        compute_fit=compute_fit,
        seed=seed,
    )
    return cstf(tensor, config)
