"""PLANC-like CPU baseline: dense constrained TF and the "modified PLANC"
sparse configuration.

PLANC (Eswar et al., TOMS '21) is the CPU library the paper starts from:

- :func:`planc_dense_tf` reproduces its *dense* constrained factorization
  (Figure 1, DenseTF bars): dense MTTKRP as a big GEMM against the
  materialized Khatri-Rao product — the regime where MTTKRP dwarfs the
  update because the tensor has ``∏Iₙ`` elements vs ``ΣIₙ·R`` factor
  entries.
- :func:`planc_sparse_tf` reproduces the paper's Section 4 modification:
  PLANC's update machinery driven by the ALTO sparse MTTKRP on the CPU —
  the configuration profiled in Figures 1 (SparseTF) and 3, and the MU/HALS
  comparator of Figures 9 and 10.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import CstfConfig
from repro.core.cstf import CstfResult, cstf
from repro.core.kruskal import KruskalTensor
from repro.core.trace import PHASE_GRAM, PHASE_MTTKRP, PHASE_NORMALIZE, PHASE_UPDATE
from repro.kernels.mttkrp import mttkrp_dense
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray
from repro.tensor.dense import DenseTensor
from repro.updates.base import get_update
from repro.utils.rng import as_generator
from repro.utils.validation import check_rank, check_shape

__all__ = ["planc_dense_tf", "planc_sparse_tf"]


def planc_sparse_tf(
    tensor,
    rank: int = 32,
    update="admm",
    max_iters: int = 10,
    device="cpu",
    seed=0,
    compute_fit: bool = False,
    update_params: dict | None = None,
) -> CstfResult:
    """The paper's modified-PLANC sparse CPU configuration (ALTO format)."""
    config = CstfConfig(
        rank=rank,
        max_iters=max_iters,
        update=update,
        device=device,
        mttkrp_format="alto",
        normalize="max",
        compute_fit=compute_fit,
        seed=seed,
        update_params=update_params or {},
    )
    return cstf(tensor, config)


def _charge_dense_mttkrp(ex: Executor, shape, rank: int, mode: int) -> None:
    """Dense MTTKRP as PLANC runs it: materialize the Khatri-Rao product of
    the other factors (∏_{m≠n} Iₘ × R), then one GEMM with the matricized
    tensor. Traffic is dominated by streaming the ∏Iₙ tensor elements."""
    total = math.prod(shape)
    rest = total / shape[mode]
    # KRP materialization: reads the factors, writes rest×R.
    ex.record(
        "dense_krp",
        flops=rest * rank * (len(shape) - 2 if len(shape) > 2 else 1),
        reads=sum(shape[m] for m in range(len(shape)) if m != mode) * rank + rest * rank,
        writes=rest * rank,
        parallel_work=rest * rank,
    )
    # X_(n) @ KRP.
    ex.record(
        "dense_mttkrp_gemm",
        flops=2.0 * total * rank,
        reads=total + rest * rank,
        writes=shape[mode] * rank,
        parallel_work=shape[mode] * rank,
        compute_efficiency=ex.device.gemm_efficiency,
    )


def planc_dense_tf(
    tensor,
    rank: int = 32,
    update="admm",
    max_iters: int = 10,
    device="cpu",
    seed=0,
    update_params: dict | None = None,
) -> CstfResult:
    """Dense constrained tensor factorization (Figure 1's DenseTF).

    *tensor* may be a :class:`DenseTensor`/ndarray (concrete) or a plain
    shape tuple (analytic: kernel sequence replayed on shape-only arrays).
    Returns a :class:`CstfResult` with the standard four-phase timeline.
    """
    rank = check_rank(rank)
    analytic = isinstance(tensor, (tuple, list))
    if analytic:
        shape = check_shape(tensor)
        data = None
    else:
        data = tensor if isinstance(tensor, DenseTensor) else DenseTensor(np.asarray(tensor))
        shape = data.shape

    upd = get_update(update, **(update_params or {}))
    ex = Executor(device)
    ndim = len(shape)

    if analytic:
        factors = [SymArray((dim, rank)) for dim in shape]
        weights = SymArray((rank,))
    else:
        rng = as_generator(seed)
        factors = [np.asarray(rng.random((dim, rank)), dtype=np.float64) for dim in shape]
        weights = np.ones(rank, dtype=np.float64)
    state = upd.init_state(tuple(shape), rank)

    with ex.phase(PHASE_GRAM):
        grams = [ex.gram(f) for f in factors]

    for _ in range(max_iters):
        for mode in range(ndim):
            with ex.phase(PHASE_GRAM):
                picked = [g for m, g in enumerate(grams) if m != mode]
                s_mat = picked[0] if len(picked) == 1 else picked[0]
                if len(picked) == 1:
                    s_mat = ex.copy(picked[0], name="dcopy_gram")
                else:
                    for g in picked[1:]:
                        s_mat = ex.hadamard(s_mat, g, name="hadamard_gram")
            with ex.phase(PHASE_MTTKRP):
                _charge_dense_mttkrp(ex, shape, rank, mode)
                if analytic:
                    m_mat = SymArray((shape[mode], rank))
                else:
                    m_mat = mttkrp_dense(data, factors, mode)
            with ex.phase(PHASE_UPDATE):
                h_start = ex.col_scale(factors[mode], weights, name="col_scale_lambda")
                h_new = upd.update(ex, mode, m_mat, s_mat, h_start, state)
            with ex.phase(PHASE_NORMALIZE):
                factors[mode], weights = ex.normalize_columns(h_new, kind="max")
            with ex.phase(PHASE_GRAM):
                grams[mode] = ex.gram(factors[mode])

    kruskal = None if analytic else KruskalTensor(factors, weights)
    return CstfResult(kruskal=kruskal, executor=ex, iterations=max_iters, converged=False)
