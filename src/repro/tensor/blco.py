"""BLCO: Blocked Linearized COOrdinate format (Nguyen et al., ICS '22).

BLCO is the state-of-the-art GPU sparse-tensor format for MTTKRP, and the one
the paper's cSTF-GPU framework uses. Each nonzero is stored as a single
fixed-width linearized index (concatenated per-mode bit fields). Tensors
whose total index bits exceed the word budget are split into *blocks*: the
overflowing high-order bits form a block key shared by every nonzero in the
block, and only the low-order bits are stored per nonzero.

This mirrors the real format's trade-off: a small per-block header plus a
dense stream of word-sized indices that GPU threads can decode with two
shift/mask instructions per mode — which is what
:func:`repro.kernels.mttkrp_blco.mttkrp_blco` emulates block-by-block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor import linearize as lin
from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_axis, require

__all__ = ["BlcoBlock", "BlcoTensor", "split_bit_widths"]

#: Default in-block index budget, matching the 48-bit effective element index
#: the BLCO GPU kernels use on 64-bit words (the remainder is metadata).
DEFAULT_BIT_BUDGET = 48


def split_bit_widths(widths: list[int], budget: int) -> tuple[list[int], list[int]]:
    """Split per-mode bit widths into (low, high) so ``sum(low) <= budget``.

    High bits are stripped one at a time from the mode with the widest
    remaining low field (ties to the lower mode id), which balances block
    counts across long modes the way the BLCO generator does.
    """
    require(budget >= 1, f"bit budget must be >= 1, got {budget}")
    low = list(widths)
    high = [0] * len(widths)
    while sum(low) > budget:
        mode = max(range(len(low)), key=lambda m: (low[m], -m))
        if low[mode] == 0:  # pragma: no cover - cannot happen while sum>budget
            raise ValueError("cannot satisfy bit budget")
        low[mode] -= 1
        high[mode] += 1
    return low, high


@dataclass(frozen=True)
class BlcoBlock:
    """One BLCO block: a shared high-bit coordinate plus packed low bits."""

    key: int
    """Packed high-order bits identifying the block."""

    high: np.ndarray
    """Per-mode high-bit values (``ndim`` int64); the block's coordinate
    origin is ``high << low_width`` in every mode."""

    linear: np.ndarray
    """``(block_nnz,)`` packed low-order linearized indices."""

    values: np.ndarray
    """``(block_nnz,)`` float64 values."""

    @property
    def nnz(self) -> int:
        return self.values.shape[0]


class BlcoTensor:
    """Sparse tensor in blocked linearized coordinate format."""

    __slots__ = ("_shape", "_low", "_high", "_offsets", "_blocks")

    def __init__(self, shape, low_widths, high_widths, blocks):
        self._shape = tuple(int(d) for d in shape)
        self._low = list(low_widths)
        self._high = list(high_widths)
        self._offsets = lin.concat_bit_offsets(self._low)
        self._blocks = list(blocks)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, tensor: SparseTensor, bit_budget: int = DEFAULT_BIT_BUDGET) -> "BlcoTensor":
        """Encode a COO tensor, splitting into blocks as the budget requires."""
        widths = lin.mode_bit_widths(tensor.shape)
        low, high = split_bit_widths(widths, bit_budget)
        low_off = lin.concat_bit_offsets(low)
        high_off = lin.concat_bit_offsets(high)

        idx = tensor.indices
        nnz = tensor.nnz
        low_coords = np.empty_like(idx) if nnz else np.zeros((0, len(widths)), dtype=np.int64)
        key = np.zeros(nnz, dtype=np.int64)
        for mode in range(len(widths)):
            col = idx[:, mode] if nnz else np.zeros(0, dtype=np.int64)
            mask = (np.int64(1) << low[mode]) - 1
            if nnz:
                low_coords[:, mode] = col & mask
            if high[mode]:
                key |= (col >> low[mode]) << high_off[mode]

        linear = lin.encode_concat(low_coords, low, low_off)

        blocks: list[BlcoBlock] = []
        if nnz:
            order = np.lexsort((linear, key))
            key = key[order]
            linear = linear[order]
            values = tensor.values[order]
            starts = np.flatnonzero(np.concatenate(([True], key[1:] != key[:-1])))
            bounds = np.append(starts, nnz)
            for b, start in enumerate(starts):
                stop = bounds[b + 1]
                k = int(key[start])
                high_vals = np.array(
                    [
                        (k >> high_off[m]) & ((1 << high[m]) - 1) if high[m] else 0
                        for m in range(len(widths))
                    ],
                    dtype=np.int64,
                )
                blocks.append(
                    BlcoBlock(
                        key=k,
                        high=high_vals,
                        linear=np.ascontiguousarray(linear[start:stop]),
                        values=np.ascontiguousarray(values[start:stop]),
                    )
                )
        return cls(tensor.shape, low, high, blocks)

    def to_coo(self) -> SparseTensor:
        """Decode back to canonical COO form."""
        if not self._blocks:
            return SparseTensor(
                np.zeros((0, self.ndim), dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                self._shape,
            )
        chunks_idx = []
        chunks_val = []
        for block in self._blocks:
            coords = lin.decode_concat(block.linear, self._low, self._offsets)
            for mode in range(self.ndim):
                if self._high[mode]:
                    coords[:, mode] |= block.high[mode] << self._low[mode]
            chunks_idx.append(coords)
            chunks_val.append(block.values)
        return SparseTensor(np.vstack(chunks_idx), np.concatenate(chunks_val), self._shape)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def blocks(self) -> list[BlcoBlock]:
        return self._blocks

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def nnz(self) -> int:
        return int(sum(b.nnz for b in self._blocks))

    @property
    def low_widths(self) -> list[int]:
        """Per-mode bit widths stored in the packed in-block index."""
        return list(self._low)

    @property
    def high_widths(self) -> list[int]:
        """Per-mode bit widths folded into the block key."""
        return list(self._high)

    def block_mode_indices(self, block: BlcoBlock, mode: int) -> np.ndarray:
        """Full coordinates along *mode* for one block (two shifts + or)."""
        mode = check_axis(mode, self.ndim)
        width = self._low[mode]
        mask = (np.int64(1) << width) - 1
        out = (block.linear >> self._offsets[mode]) & mask
        if self._high[mode]:
            out = out | (block.high[mode] << width)
        return out

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self._shape)
        return (
            f"BlcoTensor(shape={dims}, nnz={self.nnz}, blocks={self.num_blocks}, "
            f"low_bits={sum(self._low)})"
        )
