"""Canonical coordinate (COO) sparse tensor.

``SparseTensor`` is the interchange representation of the library: every
other format (CSF, ALTO, BLCO) is constructed from a ``SparseTensor`` and can
reproduce one. Indices are stored as one ``(nnz, ndim)`` int64 array and
values as one float64 vector, mirroring the FROSTT ``.tns`` layout.

Duplicate coordinates are coalesced on construction (values summed), matching
the semantics of every sparse tensor library the paper compares against.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.utils.validation import check_axis, check_shape, require

__all__ = ["SparseTensor"]


class SparseTensor:
    """An N-mode sparse tensor in coordinate format.

    Parameters
    ----------
    indices:
        Integer array of shape ``(nnz, ndim)``; row *r* holds the coordinates
        of the *r*-th stored element.
    values:
        Float array of shape ``(nnz,)``.
    shape:
        Tensor dimensions. Every index must satisfy ``0 <= idx < dim``.

    Notes
    -----
    The constructor copies, validates, coalesces duplicates, and sorts the
    entries lexicographically (mode 0 slowest). Sorted order is a class
    invariant that downstream formats (CSF construction, segment reductions)
    rely on.
    """

    __slots__ = ("_indices", "_values", "_shape")

    def __init__(self, indices, values, shape):
        shape = check_shape(shape, min_modes=1)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if indices.ndim == 1 and len(shape) == 1:
            indices = indices[:, None]
        require(indices.ndim == 2, f"indices must be 2-D (nnz, ndim), got ndim={indices.ndim}")
        require(
            indices.shape[1] == len(shape),
            f"indices have {indices.shape[1]} coordinate columns but shape has "
            f"{len(shape)} modes",
        )
        require(
            values.ndim == 1 and values.shape[0] == indices.shape[0],
            f"values must be 1-D with one entry per index row "
            f"({values.shape} vs {indices.shape[0]} rows)",
        )
        require(
            bool(np.isfinite(values).all()),
            "tensor values must be finite (NaN/inf would silently poison "
            "Gram matrices and fits)",
        )
        if indices.shape[0]:
            lo = indices.min(axis=0)
            hi = indices.max(axis=0)
            require(bool((lo >= 0).all()), f"negative coordinates present (min per mode {lo})")
            require(
                bool((hi < np.asarray(shape)).all()),
                f"coordinates out of bounds: max per mode {hi} for shape {shape}",
            )
        indices, values = _coalesce(indices, values, shape)
        self._indices = indices
        self._values = values
        self._shape = shape

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def indices(self) -> np.ndarray:
        """``(nnz, ndim)`` int64 coordinates, lexicographically sorted."""
        return self._indices

    @property
    def values(self) -> np.ndarray:
        """``(nnz,)`` float64 values, aligned with :attr:`indices`."""
        return self._values

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nnz(self) -> int:
        return self._values.shape[0]

    @property
    def density(self) -> float:
        """nnz divided by the product of the dimensions (may underflow to 0.0
        only for astronomically large shapes; computed in floats)."""
        total = 1.0
        for d in self._shape:
            total *= float(d)
        return self.nnz / total

    def norm(self) -> float:
        """Frobenius norm of the tensor."""
        return float(np.linalg.norm(self._values))

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, array, tol: float = 0.0) -> "SparseTensor":
        """Extract entries with ``|x| > tol`` from a dense array."""
        array = np.asarray(array, dtype=np.float64)
        mask = np.abs(array) > tol
        coords = np.argwhere(mask)
        return cls(coords, array[mask], array.shape)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float64 array (use only at test scale)."""
        out = np.zeros(self._shape, dtype=np.float64)
        out[tuple(self._indices.T)] = self._values
        return out

    def mode_indices(self, mode: int) -> np.ndarray:
        """The coordinate column for *mode* (negative modes allowed)."""
        mode = check_axis(mode, self.ndim)
        return self._indices[:, mode]

    # ------------------------------------------------------------------ #
    # Structural transforms
    # ------------------------------------------------------------------ #
    def permute_modes(self, order: Iterable[int]) -> "SparseTensor":
        """Return a tensor with modes re-ordered according to *order*."""
        order = [check_axis(o, self.ndim) for o in order]
        require(sorted(order) == list(range(self.ndim)), f"invalid permutation {order}")
        new_shape = tuple(self._shape[o] for o in order)
        return SparseTensor(self._indices[:, order], self._values, new_shape)

    def sorted_by_mode(self, mode: int) -> "SparseTensor":
        """Return entries sorted with *mode* as the major key.

        Ties are broken by the remaining modes in their natural order, which
        gives the fiber-major ordering CSF construction expects.
        """
        mode = check_axis(mode, self.ndim)
        keys = [self._indices[:, m] for m in reversed(range(self.ndim)) if m != mode]
        keys.append(self._indices[:, mode])
        perm = np.lexsort(keys)
        out = SparseTensor.__new__(SparseTensor)
        out._indices = self._indices[perm]
        out._values = self._values[perm]
        out._shape = self._shape
        return out

    def scale_values(self, factor: float) -> "SparseTensor":
        """Return a copy with all values multiplied by *factor*."""
        out = SparseTensor.__new__(SparseTensor)
        out._indices = self._indices
        out._values = self._values * float(factor)
        out._shape = self._shape
        return out

    # ------------------------------------------------------------------ #
    # Statistics used by the cost models
    # ------------------------------------------------------------------ #
    def mode_fiber_counts(self, mode: int) -> np.ndarray:
        """Number of nonzeros per index along *mode* (length ``shape[mode]``).

        Drives load-balance statistics in the machine model and CSF slice
        construction.
        """
        mode = check_axis(mode, self.ndim)
        return np.bincount(self._indices[:, mode], minlength=self._shape[mode])

    def distinct_mode_indices(self, mode: int) -> int:
        """Count of distinct coordinates appearing along *mode*.

        Equals the number of factor-matrix rows actually touched by an
        MTTKRP, which determines the cache working set in the machine model.
        """
        mode = check_axis(mode, self.ndim)
        if self.nnz == 0:
            return 0
        return int(np.unique(self._indices[:, mode]).size)

    # ------------------------------------------------------------------ #
    # Comparison / repr
    # ------------------------------------------------------------------ #
    def allclose(self, other: "SparseTensor", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Structural and numerical equality up to tolerance."""
        if not isinstance(other, SparseTensor):
            return NotImplemented
        return (
            self._shape == other._shape
            and self._indices.shape == other._indices.shape
            and bool(np.array_equal(self._indices, other._indices))
            and bool(np.allclose(self._values, other._values, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self._shape)
        return f"SparseTensor(shape={dims}, nnz={self.nnz}, density={self.density:.3e})"


def _coalesce(indices: np.ndarray, values: np.ndarray, shape: tuple[int, ...]):
    """Sort lexicographically (mode 0 slowest) and sum duplicate coordinates."""
    if indices.shape[0] == 0:
        return indices.reshape(0, len(shape)), values
    perm = np.lexsort(tuple(indices[:, m] for m in reversed(range(len(shape)))))
    indices = indices[perm]
    values = values[perm]
    if indices.shape[0] > 1:
        dup = np.all(indices[1:] == indices[:-1], axis=1)
        if dup.any():
            # Group boundaries: first row plus every row that differs from its
            # predecessor.
            starts = np.flatnonzero(np.concatenate(([True], ~dup)))
            sums = np.add.reduceat(values, starts)
            indices = indices[starts]
            values = sums
    return np.ascontiguousarray(indices), np.ascontiguousarray(values)
