"""Bit-level index linearization shared by the ALTO and BLCO formats.

Both linearized formats replace the ``(nnz, ndim)`` coordinate matrix with a
single integer per nonzero:

- **ALTO** *interleaves* the bits of the per-mode indices adaptively — each
  successive bit position is granted to the mode with the most index bits
  still unassigned — so that spatially close nonzeros in *any* mode stay
  close in the linearized order (Helal et al., ICS '21).
- **BLCO** *concatenates* per-mode bit fields into a fixed word budget and
  splits the tensor into blocks when the total bit count exceeds the budget
  (Nguyen et al., ICS '22).

All encoders/decoders here are fully vectorized over the nonzeros and are
exact inverses of each other, which the property-based tests verify for
arbitrary shapes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_shape, require

__all__ = [
    "bit_width",
    "mode_bit_widths",
    "alto_bit_positions",
    "pack_bits",
    "unpack_bits",
    "concat_bit_offsets",
    "encode_concat",
    "decode_concat",
]

#: Maximum total bits we allow in a single int64 linearized index. One bit is
#: reserved for the sign, one more as headroom for intermediate shifts.
MAX_LINEAR_BITS = 62


def bit_width(dim: int) -> int:
    """Bits needed to represent indices ``0..dim-1`` (0 for a singleton mode)."""
    require(dim >= 1, f"dimension must be >= 1, got {dim}")
    return int(dim - 1).bit_length()


def mode_bit_widths(shape) -> list[int]:
    """Per-mode bit widths for *shape*."""
    shape = check_shape(shape)
    return [bit_width(d) for d in shape]


def alto_bit_positions(shape) -> list[np.ndarray]:
    """Adaptive interleaved bit layout for ALTO.

    Returns, for each mode, the array of bit positions (in the linearized
    word, LSB = 0) holding that mode's index bits, ordered from the mode's
    own LSB upward.

    The adaptive rule: walk linear bit positions from 0 upward and give each
    position to the mode with the most unassigned bits remaining (ties go to
    the lower mode id). Long modes therefore receive more, and lower, bits —
    preserving their locality in the linear order, which is the property the
    ALTO paper exploits.
    """
    widths = mode_bit_widths(shape)
    total = sum(widths)
    require(
        total <= MAX_LINEAR_BITS,
        f"shape {tuple(shape)} needs {total} index bits; ALTO linearization "
        f"supports at most {MAX_LINEAR_BITS} (use BLCO blocking instead)",
    )
    remaining = list(widths)
    positions: list[list[int]] = [[] for _ in widths]
    for pos in range(total):
        mode = max(range(len(widths)), key=lambda m: (remaining[m], -m))
        positions[mode].append(pos)
        remaining[mode] -= 1
    return [np.asarray(p, dtype=np.int64) for p in positions]


def pack_bits(indices: np.ndarray, positions: list[np.ndarray]) -> np.ndarray:
    """Scatter per-mode index bits into linearized words.

    Parameters
    ----------
    indices:
        ``(nnz, ndim)`` int64 coordinates.
    positions:
        Output of :func:`alto_bit_positions` (or any bijective layout).
    """
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape[0], dtype=np.int64)
    for mode, pos in enumerate(positions):
        col = indices[:, mode]
        for bit, target in enumerate(pos):
            out |= ((col >> bit) & 1) << int(target)
    return out


def unpack_bits(linear: np.ndarray, positions: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns ``(nnz, ndim)`` coordinates."""
    linear = np.asarray(linear, dtype=np.int64)
    ndim = len(positions)
    out = np.zeros((linear.shape[0], ndim), dtype=np.int64)
    for mode, pos in enumerate(positions):
        col = out[:, mode]
        for bit, source in enumerate(pos):
            col |= ((linear >> int(source)) & 1) << bit
    return out


def concat_bit_offsets(widths) -> list[int]:
    """Bit offset of each mode's field in a concatenated layout.

    Mode ``ndim-1`` occupies the least-significant bits; mode 0 the most
    significant. This matches row-major (C) coordinate order, so sorting by
    the concatenated key equals the lexicographic sort COO already maintains
    whenever dimensions are exact powers of two.
    """
    offsets = [0] * len(widths)
    acc = 0
    for mode in range(len(widths) - 1, -1, -1):
        offsets[mode] = acc
        acc += widths[mode]
    return offsets


def encode_concat(indices: np.ndarray, widths, offsets=None) -> np.ndarray:
    """Concatenated-field linearization (the BLCO in-block layout)."""
    widths = list(widths)
    require(
        sum(widths) <= MAX_LINEAR_BITS,
        f"{sum(widths)} total bits exceed the {MAX_LINEAR_BITS}-bit budget",
    )
    if offsets is None:
        offsets = concat_bit_offsets(widths)
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape[0], dtype=np.int64)
    for mode, (width, off) in enumerate(zip(widths, offsets)):
        if width == 0:
            continue
        out |= indices[:, mode] << off
    return out


def decode_concat(linear: np.ndarray, widths, offsets=None) -> np.ndarray:
    """Inverse of :func:`encode_concat`."""
    widths = list(widths)
    if offsets is None:
        offsets = concat_bit_offsets(widths)
    linear = np.asarray(linear, dtype=np.int64)
    out = np.zeros((linear.shape[0], len(widths)), dtype=np.int64)
    for mode, (width, off) in enumerate(zip(widths, offsets)):
        if width == 0:
            continue
        mask = (np.int64(1) << width) - 1
        out[:, mode] = (linear >> off) & mask
    return out
