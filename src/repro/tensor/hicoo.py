"""HiCOO: Hierarchical COOrdinate format (Li et al., SC '18).

One of the alternative compressed sparse-tensor formats the paper's Section
2.3 surveys alongside CSF/ALTO/BLCO. HiCOO groups nonzeros into aligned
B×B×…×B blocks: block coordinates are stored once per block (wide
integers), while element coordinates inside a block need only
``log2(B)``-bit offsets — compressing index storage and giving blocked
kernels natural cache tiles.

Layout (mirroring the original paper's arrays):

- ``bptr``   — start of each block's nonzeros (CSR-style, length nblocks+1)
- ``bindices`` — ``(nblocks, ndim)`` block coordinates (int64)
- ``eindices`` — ``(nnz, ndim)`` element offsets inside the block (uint8-
  capable; stored int16 for safety with block bits ≤ 15)
- ``values`` — nonzero values aligned with ``eindices``
"""

from __future__ import annotations

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_axis, check_positive_int, require

__all__ = ["HicooTensor"]


class HicooTensor:
    """Sparse tensor in HiCOO (blocked hierarchical coordinate) format."""

    __slots__ = ("_shape", "_block_bits", "_bptr", "_bindices", "_eindices", "_values")

    def __init__(self, shape, block_bits, bptr, bindices, eindices, values):
        self._shape = tuple(int(d) for d in shape)
        self._block_bits = check_positive_int(block_bits, "block_bits")
        require(self._block_bits <= 15, "block_bits must fit int16 offsets")
        self._bptr = np.ascontiguousarray(bptr, dtype=np.int64)
        self._bindices = np.ascontiguousarray(bindices, dtype=np.int64)
        self._eindices = np.ascontiguousarray(eindices, dtype=np.int16)
        self._values = np.ascontiguousarray(values, dtype=np.float64)
        require(
            self._bptr.ndim == 1 and self._bptr.size == self._bindices.shape[0] + 1,
            "bptr must have one entry per block plus a terminator",
        )
        require(
            int(self._bptr[-1]) == self._values.shape[0],
            "bptr terminator must equal nnz",
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, tensor: SparseTensor, block_bits: int = 7) -> "HicooTensor":
        """Encode a COO tensor with 2^block_bits-sized cubic blocks."""
        block_bits = check_positive_int(block_bits, "block_bits")
        idx = tensor.indices
        nnz = tensor.nnz
        ndim = tensor.ndim
        if nnz == 0:
            return cls(
                tensor.shape, block_bits,
                np.zeros(1, dtype=np.int64),
                np.zeros((0, ndim), dtype=np.int64),
                np.zeros((0, ndim), dtype=np.int16),
                np.zeros(0, dtype=np.float64),
            )

        blocks = idx >> block_bits
        offsets = idx & ((1 << block_bits) - 1)
        # Sort by block coordinates (lexicographic), then by offset.
        keys = tuple(offsets[:, m] for m in reversed(range(ndim))) + tuple(
            blocks[:, m] for m in reversed(range(ndim))
        )
        order = np.lexsort(keys)
        blocks = blocks[order]
        offsets = offsets[order]
        values = tensor.values[order]

        change = np.zeros(nnz, dtype=bool)
        change[0] = True
        change[1:] = (blocks[1:] != blocks[:-1]).any(axis=1)
        starts = np.flatnonzero(change)
        bptr = np.append(starts, nnz).astype(np.int64)
        return cls(tensor.shape, block_bits, bptr, blocks[starts], offsets, values)

    def to_coo(self) -> SparseTensor:
        """Decode back to canonical COO form."""
        if self.nnz == 0:
            return SparseTensor(
                np.zeros((0, self.ndim), dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                self._shape,
            )
        counts = np.diff(self._bptr)
        base = np.repeat(self._bindices << self._block_bits, counts, axis=0)
        coords = base + self._eindices.astype(np.int64)
        return SparseTensor(coords, self._values, self._shape)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nnz(self) -> int:
        return self._values.shape[0]

    @property
    def num_blocks(self) -> int:
        return self._bindices.shape[0]

    @property
    def block_bits(self) -> int:
        return self._block_bits

    @property
    def values(self) -> np.ndarray:
        return self._values

    def block_nnz(self) -> np.ndarray:
        """Nonzeros per block (load-balance statistic)."""
        return np.diff(self._bptr)

    def block_slice(self, b: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(block_coords, element_offsets, values) of block *b*."""
        require(0 <= b < self.num_blocks, f"block {b} out of range")
        lo, hi = int(self._bptr[b]), int(self._bptr[b + 1])
        return self._bindices[b], self._eindices[lo:hi], self._values[lo:hi]

    def mode_indices_of_block(self, b: int, mode: int) -> np.ndarray:
        """Full coordinates along *mode* for block *b*."""
        mode = check_axis(mode, self.ndim)
        bcoord, offsets, _ = self.block_slice(b)
        return (bcoord[mode] << self._block_bits) + offsets[:, mode].astype(np.int64)

    def index_storage_bytes(self) -> int:
        """Bytes spent on index metadata — the HiCOO compression metric."""
        return int(
            self._bptr.nbytes + self._bindices.nbytes + self._eindices.nbytes
        )

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self._shape)
        return (
            f"HicooTensor(shape={dims}, nnz={self.nnz}, blocks={self.num_blocks}, "
            f"B=2^{self._block_bits})"
        )
