"""Reproducible synthetic sparse-tensor workload generators.

Three generators cover every workload the experiments need:

- :func:`random_sparse` — unstructured random tensors with a chosen value
  distribution (the stress-test workload).
- :func:`planted_nonneg_cp` — tensors sampled from a known nonnegative CP
  model plus noise, used by convergence/recovery tests (the factorization
  should recover the planted factors).
- :func:`scaled_frostt_analogue` — a random tensor with prescribed dims and
  nnz plus heavy-tailed (log-normal) values and skewed index distributions,
  standing in for the FROSTT datasets of Table 2 (see
  :mod:`repro.data.frostt` for the registry that drives it).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int, check_rank, check_shape, require

__all__ = [
    "random_sparse",
    "planted_nonneg_cp",
    "planted_sparse_cp",
    "scaled_frostt_analogue",
]


def _sample_coords(shape, nnz, rng, skew: float = 0.0) -> np.ndarray:
    """Sample *nnz* distinct coordinates (vectorized, oversample + coalesce).

    ``skew > 0`` draws indices from a Zipf-like distribution (realistic for
    FROSTT data, whose mode histograms are heavy-tailed); ``skew == 0`` is
    uniform.
    """
    total = 1.0
    for d in shape:
        total *= float(d)
    require(nnz <= total, f"cannot place {nnz} distinct nonzeros in a {shape} tensor")

    collected = np.zeros((0, len(shape)), dtype=np.int64)
    want = nnz
    for attempt in range(64):
        draw = max(int(want * (1.3 + 0.5 * attempt)) + 16, 16)
        if attempt >= 8:
            # A heavy skew can stall the collection at high densities (the
            # popular cells keep repeating); finish the tail uniformly.
            skew = 0.0
        cols = []
        for d in shape:
            if skew > 0.0 and d > 1:
                # Inverse-CDF sample of a truncated power law on [0, d).
                u = rng.random(draw)
                x = (1.0 - u) ** (-1.0 / skew) - 1.0
                col = np.minimum((x % d).astype(np.int64), d - 1)
            else:
                col = rng.integers(0, d, size=draw, dtype=np.int64)
            cols.append(col)
        batch = np.column_stack(cols)
        collected = np.unique(np.vstack([collected, batch]), axis=0)
        if collected.shape[0] >= nnz:
            break
        want = nnz - collected.shape[0]
    require(collected.shape[0] >= nnz, "coordinate sampling failed to converge")
    pick = rng.permutation(collected.shape[0])[:nnz]
    return collected[np.sort(pick)]


def random_sparse(
    shape,
    nnz: int,
    seed=None,
    value_dist: str = "uniform",
    nonneg: bool = True,
) -> SparseTensor:
    """Generate an unstructured random sparse tensor.

    Parameters
    ----------
    shape:
        Tensor dimensions.
    nnz:
        Number of distinct nonzero entries.
    value_dist:
        ``"uniform"`` (values in (0, 1]), ``"lognormal"`` (heavy-tailed, like
        count data), or ``"normal"``.
    nonneg:
        If True, values are made strictly positive (required by the
        nonnegative-factorization workloads).
    """
    shape = check_shape(shape)
    nnz = check_positive_int(nnz, "nnz")
    rng = as_generator(seed)
    coords = _sample_coords(shape, nnz, rng)
    if value_dist == "uniform":
        values = rng.random(nnz) + 1e-9
    elif value_dist == "lognormal":
        values = rng.lognormal(mean=0.0, sigma=1.0, size=nnz)
    elif value_dist == "normal":
        values = rng.normal(size=nnz)
    else:
        raise ValueError(f"unknown value_dist {value_dist!r}")
    if nonneg:
        values = np.abs(values) + 1e-9
    return SparseTensor(coords, values, shape)


def planted_nonneg_cp(
    shape,
    rank: int,
    nnz: int,
    noise: float = 0.0,
    factor_sparsity: float = 0.0,
    seed=None,
) -> tuple[SparseTensor, list[np.ndarray]]:
    """Sample a sparse tensor from a planted nonnegative CP model.

    Factors are drawn i.i.d. from an exponential distribution (optionally
    with a fraction ``factor_sparsity`` of entries zeroed), *nnz* coordinates
    are sampled, and each stored value is the CP model evaluated at that
    coordinate plus optional Gaussian noise clipped at zero.

    Returns
    -------
    (tensor, factors):
        The sparse tensor and the list of planted factor matrices
        ``H^(n) ∈ R^{I_n × R}``.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    nnz = check_positive_int(nnz, "nnz")
    require(0.0 <= factor_sparsity < 1.0, "factor_sparsity must be in [0, 1)")
    require(noise >= 0.0, "noise must be non-negative")
    rng = as_generator(seed)

    factors = []
    for dim in shape:
        f = rng.exponential(scale=1.0, size=(dim, rank))
        if factor_sparsity > 0.0:
            mask = rng.random((dim, rank)) < factor_sparsity
            f[mask] = 0.0
            # Guarantee no all-zero row, which would make recovery ill-posed.
            dead = ~f.any(axis=1)
            f[dead, rng.integers(0, rank, size=int(dead.sum()))] = rng.exponential(
                scale=1.0, size=int(dead.sum())
            )
        factors.append(f)

    coords = _sample_coords(shape, nnz, rng)
    values = np.ones(nnz, dtype=np.float64)
    acc = np.ones((nnz, rank), dtype=np.float64)
    for mode, f in enumerate(factors):
        acc *= f[coords[:, mode]]
    values = acc.sum(axis=1)
    if noise > 0.0:
        values = values + rng.normal(scale=noise * max(values.std(), 1e-12), size=nnz)
    values = np.maximum(values, 1e-12)
    return SparseTensor(coords, values, shape), factors


def planted_sparse_cp(
    shape,
    rank: int,
    factor_sparsity: float = 0.6,
    seed=None,
    tol: float = 1e-12,
) -> tuple[SparseTensor, list[np.ndarray]]:
    """An *exactly* low-rank sparse tensor: all nonzeros of a sparse-factor
    CP model.

    Unlike :func:`planted_nonneg_cp` (which samples coordinates and
    implicitly zeros the rest, making exact recovery impossible), this
    builds the full reconstruction of a CP model with sparse nonnegative
    factors and keeps every entry above *tol* — so a rank-R factorization
    can reach fit ≈ 1 and recover the planted factors. Densifies internally:
    test scale only.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    require(0.0 <= factor_sparsity < 1.0, "factor_sparsity must be in [0, 1)")
    rng = as_generator(seed)
    factors = []
    for dim in shape:
        f = rng.exponential(scale=1.0, size=(dim, rank))
        mask = rng.random((dim, rank)) < factor_sparsity
        f[mask] = 0.0
        factors.append(f)
    dense = np.zeros(shape, dtype=np.float64)
    for r in range(rank):
        block = np.array(1.0)
        for f in factors:
            block = np.multiply.outer(block, f[:, r])
        dense += block
    tensor = SparseTensor.from_dense(dense, tol=tol)
    require(tensor.nnz > 0, "planted model produced an all-zero tensor; lower factor_sparsity")
    return tensor, factors


def scaled_frostt_analogue(shape, nnz: int, seed=None, skew: float = 1.1) -> SparseTensor:
    """A FROSTT-like workload: skewed index histograms, log-normal values.

    Real FROSTT tensors (Table 2 of the paper) have heavy-tailed mode
    histograms — a few indices account for much of the data — and positive
    count-like values. This generator reproduces both properties at a scale
    chosen by the dataset registry.
    """
    shape = check_shape(shape)
    nnz = check_positive_int(nnz, "nnz")
    rng = as_generator(seed)
    coords = _sample_coords(shape, nnz, rng, skew=skew)
    values = rng.lognormal(mean=0.0, sigma=1.2, size=nnz) + 1e-9
    return SparseTensor(coords, values, shape)
