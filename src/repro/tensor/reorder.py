"""Index reordering for locality: the preprocessing the blocked formats love.

Sparse tensor kernels are at the mercy of the index labeling: with FROSTT
data the hot indices are scattered, so blocked formats (HiCOO) fragment
into many sparse blocks and linearized formats (ALTO/BLCO) lose spatial
coherence. Relabeling indices so frequently co-occurring ones are close
(Li et al.'s Lexi-order is the canonical example) densifies blocks and
tightens working sets.

Implemented schemes:

- :func:`frequency_reorder` — per-mode relabeling by descending fiber count
  (the "hot indices first" heuristic): hot rows cluster at the front of
  every factor matrix, turning the skewed head of the histogram into a
  contiguous cache-resident region.
- :func:`random_reorder` — the adversarial baseline (destroys locality),
  for measuring how much an ordering matters.
- :class:`Relabeling` — the invertible per-mode permutations, so factor
  matrices can be mapped back to original index space after factorizing a
  reordered tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["Relabeling", "frequency_reorder", "random_reorder"]


@dataclass(frozen=True)
class Relabeling:
    """Per-mode permutations ``new_index = perm[old_index]``."""

    perms: tuple[np.ndarray, ...]

    def apply(self, tensor: SparseTensor) -> SparseTensor:
        """Relabel a tensor's coordinates."""
        require(len(self.perms) == tensor.ndim, "mode count mismatch")
        idx = np.empty_like(tensor.indices)
        for m, perm in enumerate(self.perms):
            require(perm.shape[0] == tensor.shape[m], f"mode {m} length mismatch")
            idx[:, m] = perm[tensor.indices[:, m]]
        return SparseTensor(idx, tensor.values, tensor.shape)

    def inverse(self) -> "Relabeling":
        """The relabeling that undoes this one."""
        inv = []
        for perm in self.perms:
            p = np.empty_like(perm)
            p[perm] = np.arange(perm.shape[0])
            inv.append(p)
        return Relabeling(tuple(inv))

    def map_factors_back(self, factors) -> list[np.ndarray]:
        """Rows of factors fitted on the reordered tensor, in original order.

        ``factor_orig[i] = factor_new[perm[i]]``.
        """
        require(len(factors) == len(self.perms), "mode count mismatch")
        return [np.asarray(f)[perm] for f, perm in zip(factors, self.perms)]


def frequency_reorder(tensor: SparseTensor) -> tuple[SparseTensor, Relabeling]:
    """Relabel every mode by descending nonzero frequency.

    Returns the reordered tensor and the relabeling used (apply
    ``relabeling.map_factors_back`` to recover original-space factors).
    """
    perms = []
    for m in range(tensor.ndim):
        counts = tensor.mode_fiber_counts(m)
        # Hot indices get the smallest new labels; stable for ties.
        order = np.argsort(-counts, kind="stable")
        perm = np.empty(tensor.shape[m], dtype=np.int64)
        perm[order] = np.arange(tensor.shape[m])
        perms.append(perm)
    relabeling = Relabeling(tuple(perms))
    return relabeling.apply(tensor), relabeling


def random_reorder(tensor: SparseTensor, seed=0) -> tuple[SparseTensor, Relabeling]:
    """Adversarial random relabeling of every mode."""
    rng = as_generator(seed)
    perms = tuple(
        np.asarray(rng.permutation(dim), dtype=np.int64) for dim in tensor.shape
    )
    relabeling = Relabeling(perms)
    return relabeling.apply(tensor), relabeling
