"""CSF: Compressed Sparse Fiber format (Smith & Karypis, SPLATT).

CSF stores a sparse tensor as a forest: level 0 holds the distinct indices of
the root mode, each subsequent level the distinct index prefixes one mode
deeper, and the leaves hold the nonzero values. The SPLATT library — the
CPU state-of-the-art baseline the paper compares against — performs MTTKRP by
walking this tree, so fibers sharing index prefixes are visited once.

Like SPLATT's ``ALLMODE`` configuration, the baseline builds one CSF tree per
target mode (root = target mode, remaining modes in natural order). The
per-level node counts feed the machine cost model: tree traversal touches
``sum(level sizes)`` pointers instead of ``nnz * ndim`` raw coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_axis, require

__all__ = ["CsfTensor"]


class CsfTensor:
    """Compressed-sparse-fiber view of a sparse tensor, rooted at one mode.

    Attributes
    ----------
    mode_order:
        Permutation of modes from root (level 0) to leaf (level N-1).
    fids:
        Per level, the index (in that level's mode) of each node.
    fptr:
        Per level ``l < N-1``, an array of length ``len(fids[l]) + 1`` giving
        the child ranges of each node in level ``l+1``.
    values:
        Nonzero values aligned with the leaf level.
    """

    __slots__ = ("_shape", "_mode_order", "_fids", "_fptr", "_values")

    def __init__(self, shape, mode_order, fids, fptr, values):
        self._shape = tuple(int(d) for d in shape)
        self._mode_order = tuple(int(m) for m in mode_order)
        require(
            sorted(self._mode_order) == list(range(len(self._shape))),
            f"mode_order {mode_order} is not a permutation of the modes",
        )
        self._fids = [np.ascontiguousarray(f, dtype=np.int64) for f in fids]
        self._fptr = [np.ascontiguousarray(p, dtype=np.int64) for p in fptr]
        self._values = np.ascontiguousarray(values, dtype=np.float64)
        require(len(self._fids) == len(self._shape), "one fids array per level required")
        require(len(self._fptr) == len(self._shape) - 1, "one fptr array per inner level")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, tensor: SparseTensor, root_mode: int = 0, mode_order=None) -> "CsfTensor":
        """Build the CSF tree rooted at *root_mode*.

        ``mode_order`` overrides the default ordering (root mode followed by
        the remaining modes in natural order), e.g. to sort modes by length
        the way SPLATT's heuristic does.
        """
        ndim = tensor.ndim
        root_mode = check_axis(root_mode, ndim)
        if mode_order is None:
            mode_order = [root_mode] + [m for m in range(ndim) if m != root_mode]
        else:
            mode_order = [check_axis(m, ndim) for m in mode_order]
            require(
                sorted(mode_order) == list(range(ndim)),
                f"mode_order {mode_order} is not a permutation",
            )
            require(mode_order[0] == root_mode, "mode_order must start with root_mode")

        idx = tensor.indices[:, mode_order]
        nnz = idx.shape[0]
        if nnz == 0:
            fids = [np.zeros(0, dtype=np.int64) for _ in range(ndim)]
            fptr = [np.zeros(1, dtype=np.int64) for _ in range(ndim - 1)]
            return cls(tensor.shape, mode_order, fids, fptr, tensor.values)

        perm = np.lexsort(tuple(idx[:, m] for m in reversed(range(ndim))))
        idx = idx[perm]
        values = tensor.values[perm]

        # changed[l][r] is True when row r starts a new node at level l, i.e.
        # any of the first l+1 sorted coordinates differ from row r-1.
        node_positions: list[np.ndarray] = []
        changed = np.zeros(nnz, dtype=bool)
        changed[0] = True
        for level in range(ndim):
            col = idx[:, level]
            changed[1:] |= col[1:] != col[:-1]
            node_positions.append(np.flatnonzero(changed).copy())

        fids = [idx[node_positions[level], level] for level in range(ndim)]
        fptr = []
        for level in range(ndim - 1):
            parents = node_positions[level]
            children = node_positions[level + 1]
            ptr = np.searchsorted(children, parents)
            fptr.append(np.append(ptr, children.size).astype(np.int64))
        return cls(tensor.shape, mode_order, fids, fptr, values)

    def to_coo(self) -> SparseTensor:
        """Expand the tree back into canonical COO form."""
        ndim = self.ndim
        nnz = self.nnz
        coords_sorted = np.empty((nnz, ndim), dtype=np.int64)
        # Walk levels top-down, repeating each node's index across its span.
        counts = self.leaf_counts()
        for level in range(ndim):
            coords_sorted[:, level] = np.repeat(self._fids[level], counts[level])
        coords = np.empty_like(coords_sorted)
        for pos, mode in enumerate(self._mode_order):
            coords[:, mode] = coords_sorted[:, pos]
        return SparseTensor(coords, self._values, self._shape)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nnz(self) -> int:
        return self._values.shape[0]

    @property
    def mode_order(self) -> tuple[int, ...]:
        return self._mode_order

    @property
    def fids(self) -> list[np.ndarray]:
        return self._fids

    @property
    def fptr(self) -> list[np.ndarray]:
        return self._fptr

    @property
    def values(self) -> np.ndarray:
        return self._values

    def level_sizes(self) -> list[int]:
        """Node count at every level (monotone non-decreasing)."""
        return [int(f.size) for f in self._fids]

    def leaf_counts(self) -> list[np.ndarray]:
        """For each level, the number of leaves under each node."""
        ndim = self.ndim
        counts: list[np.ndarray] = [np.ones(self.nnz, dtype=np.int64)] * 1
        counts = [None] * ndim  # type: ignore[list-item]
        counts[ndim - 1] = np.ones(self._fids[ndim - 1].size, dtype=np.int64)
        for level in range(ndim - 2, -1, -1):
            child = counts[level + 1]
            csum = np.concatenate(([0], np.cumsum(child)))
            ptr = self._fptr[level]
            counts[level] = csum[ptr[1:]] - csum[ptr[:-1]]
        return counts  # type: ignore[return-value]

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self._shape)
        return (
            f"CsfTensor(shape={dims}, nnz={self.nnz}, root=mode{self._mode_order[0]}, "
            f"levels={self.level_sizes()})"
        )
