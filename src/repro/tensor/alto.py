"""ALTO: Adaptive Linearized Tensor Order (Helal et al., ICS '21).

ALTO stores each nonzero as a single bit-interleaved linearized index plus its
value, sorted by the linearized order. The adaptive interleaving keeps
nonzeros that are close in *any* mode close in memory, which raises factor-row
reuse during MTTKRP — the property the CPU baseline in the paper (modified
PLANC) relies on.

The class delinearizes on demand (``mode_indices``) so the MTTKRP kernel can
gather factor rows; the machine cost model separately charges the smaller
footprint of the linearized layout (one int64 word per nonzero instead of
``ndim``).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import linearize as lin
from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_axis

__all__ = ["AltoTensor"]


class AltoTensor:
    """Sparse tensor in ALTO (adaptive linearized) format."""

    __slots__ = ("_linear", "_values", "_shape", "_positions")

    def __init__(self, linear, values, shape, positions=None):
        self._shape = tuple(int(d) for d in shape)
        self._positions = positions if positions is not None else lin.alto_bit_positions(self._shape)
        self._linear = np.ascontiguousarray(linear, dtype=np.int64)
        self._values = np.ascontiguousarray(values, dtype=np.float64)
        if self._linear.shape != self._values.shape:
            raise ValueError(
                f"linear indices and values disagree in length "
                f"({self._linear.shape} vs {self._values.shape})"
            )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, tensor: SparseTensor) -> "AltoTensor":
        """Encode a COO tensor; entries are re-sorted by linearized index."""
        positions = lin.alto_bit_positions(tensor.shape)
        linear = lin.pack_bits(tensor.indices, positions)
        order = np.argsort(linear, kind="stable")
        return cls(linear[order], tensor.values[order], tensor.shape, positions)

    def to_coo(self) -> SparseTensor:
        """Decode back to canonical COO form."""
        coords = lin.unpack_bits(self._linear, self._positions)
        return SparseTensor(coords, self._values, self._shape)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nnz(self) -> int:
        return self._values.shape[0]

    @property
    def linear_indices(self) -> np.ndarray:
        return self._linear

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def bit_positions(self) -> list[np.ndarray]:
        """Per-mode bit positions of the adaptive layout."""
        return self._positions

    def index_bits(self) -> int:
        """Total bits used by the linearized index."""
        return int(sum(len(p) for p in self._positions))

    def mode_indices(self, mode: int) -> np.ndarray:
        """Delinearize the coordinates of a single mode (vectorized)."""
        mode = check_axis(mode, self.ndim)
        pos = self._positions[mode]
        out = np.zeros(self.nnz, dtype=np.int64)
        for bit, source in enumerate(pos):
            out |= ((self._linear >> int(source)) & 1) << bit
        return out

    def all_mode_indices(self) -> np.ndarray:
        """Delinearize every mode at once: ``(nnz, ndim)``."""
        return lin.unpack_bits(self._linear, self._positions)

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self._shape)
        return f"AltoTensor(shape={dims}, nnz={self.nnz}, bits={self.index_bits()})"
