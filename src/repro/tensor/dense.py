"""Dense tensors with Kolda-style matricization.

The PLANC-like dense baseline (Figure 1, "DenseTF" bars) operates on dense
tensors, and every sparse MTTKRP kernel is tested against the dense
unfold-times-Khatri-Rao oracle implemented here.

Matricization convention
------------------------
``matricize(X, n)`` lays out the mode-*n* fibers of ``X`` as columns, with
the column index enumerating the remaining modes in increasing mode order,
last mode fastest (C order). Under this convention the matching Khatri-Rao
product for MTTKRP is taken over the factors of the remaining modes in
increasing order::

    M^(n) = X_(n) @ khatri_rao(H^(0), ..., H^(n-1), H^(n+1), ..., H^(N-1))

which is exactly what :func:`repro.kernels.mttkrp.mttkrp_dense` computes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_axis, check_shape

__all__ = ["DenseTensor", "matricize", "fold"]


def matricize(array: np.ndarray, mode: int) -> np.ndarray:
    """Unfold *array* along *mode* into a ``(shape[mode], prod(rest))`` matrix."""
    array = np.asarray(array)
    mode = check_axis(mode, array.ndim)
    return np.moveaxis(array, mode, 0).reshape(array.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, shape) -> np.ndarray:
    """Inverse of :func:`matricize`: rebuild the tensor of *shape*."""
    shape = check_shape(shape)
    mode = check_axis(mode, len(shape))
    rest = [d for m, d in enumerate(shape) if m != mode]
    moved = np.asarray(matrix).reshape([shape[mode]] + rest)
    return np.moveaxis(moved, 0, mode)


class DenseTensor:
    """Thin wrapper coupling a dense ndarray with tensor-algebra helpers."""

    __slots__ = ("_data",)

    def __init__(self, data):
        self._data = np.ascontiguousarray(data, dtype=np.float64)
        check_shape(self._data.shape, min_modes=1)

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    def norm(self) -> float:
        return float(np.linalg.norm(self._data))

    def matricize(self, mode: int) -> np.ndarray:
        return matricize(self._data, mode)

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"DenseTensor(shape={dims})"
