"""Sparse and dense tensor substrates.

This subpackage implements every tensor storage format the paper depends on:

- :class:`~repro.tensor.coo.SparseTensor` — canonical coordinate (COO) form,
  the interchange format all others convert from/to.
- :class:`~repro.tensor.csf.CsfTensor` — compressed sparse fiber (SPLATT's
  CPU format, Smith et al.).
- :class:`~repro.tensor.alto.AltoTensor` — adaptive linearized tensor order
  (Helal et al., ICS '21), bit-interleaved linearized indices.
- :class:`~repro.tensor.blco.BlcoTensor` — blocked linearized coordinates
  (Nguyen et al., ICS '22), the state-of-the-art GPU MTTKRP format the paper
  builds on.
- :class:`~repro.tensor.hicoo.HicooTensor` — hierarchical COO (Li et al.,
  SC '18), the block-compressed alternative surveyed in Section 2.3.
- :class:`~repro.tensor.dense.DenseTensor` — dense tensors with Kolda-style
  matricization, used by the PLANC-like dense baseline and as the oracle in
  tests.

:mod:`repro.tensor.synthetic` generates reproducible random and planted
low-rank sparse tensors, including scaled analogues of the FROSTT datasets.
"""

from repro.tensor.coo import SparseTensor
from repro.tensor.dense import DenseTensor, fold, matricize
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.csf import CsfTensor
from repro.tensor.hicoo import HicooTensor
from repro.tensor.synthetic import (
    random_sparse,
    planted_nonneg_cp,
    planted_sparse_cp,
    scaled_frostt_analogue,
)

__all__ = [
    "SparseTensor",
    "DenseTensor",
    "fold",
    "matricize",
    "AltoTensor",
    "BlcoTensor",
    "CsfTensor",
    "HicooTensor",
    "random_sparse",
    "planted_nonneg_cp",
    "planted_sparse_cp",
    "scaled_frostt_analogue",
]
