"""Sparse tensor algebra helpers: arithmetic, slicing, stacking.

Conveniences used by the streaming pipeline and the examples: COO tensors
are immutable, so these return new tensors. All operations coalesce
duplicates through the :class:`SparseTensor` constructor.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_axis, require

__all__ = ["add", "subtract", "mode_slice", "stack_along_new_mode", "drop_mode_index"]


def add(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Element-wise sum of two same-shape sparse tensors."""
    require(a.shape == b.shape, f"shape mismatch: {a.shape} vs {b.shape}")
    return SparseTensor(
        np.vstack([a.indices, b.indices]),
        np.concatenate([a.values, b.values]),
        a.shape,
    )


def subtract(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Element-wise difference ``a - b``."""
    return add(a, b.scale_values(-1.0))


def mode_slice(tensor: SparseTensor, mode: int, index: int) -> SparseTensor:
    """Extract the hyperslice at ``mode == index`` (that mode is removed).

    The inverse of one step of :func:`stack_along_new_mode`; used to split a
    temporal tensor into the per-step slabs the streaming driver ingests.
    """
    mode = check_axis(mode, tensor.ndim)
    require(tensor.ndim >= 2, "cannot slice a 1-mode tensor")
    require(0 <= index < tensor.shape[mode], f"index {index} out of range")
    mask = tensor.indices[:, mode] == index
    keep = [m for m in range(tensor.ndim) if m != mode]
    return SparseTensor(
        tensor.indices[mask][:, keep],
        tensor.values[mask],
        tuple(tensor.shape[m] for m in keep),
    )


def stack_along_new_mode(slices, position: int = -1) -> SparseTensor:
    """Stack same-shape tensors along a fresh mode at *position*.

    ``stack_along_new_mode(slabs)`` builds the (spatial..., time) tensor the
    batch driver refits, from the slabs a stream ingested.
    """
    slices = list(slices)
    require(bool(slices), "need at least one slice")
    base_shape = slices[0].shape
    for s in slices:
        require(s.shape == base_shape, "all slices must share a shape")
    ndim_out = len(base_shape) + 1
    position = position % ndim_out
    idx_chunks, val_chunks = [], []
    for t, s in enumerate(slices):
        col = np.full((s.nnz, 1), t, dtype=np.int64)
        idx = np.hstack([s.indices[:, :position], col, s.indices[:, position:]])
        idx_chunks.append(idx)
        val_chunks.append(s.values)
    shape = base_shape[:position] + (len(slices),) + base_shape[position:]
    return SparseTensor(np.vstack(idx_chunks), np.concatenate(val_chunks), shape)


def drop_mode_index(tensor: SparseTensor, mode: int, index: int) -> SparseTensor:
    """Remove all entries at ``mode == index`` and compact that coordinate.

    Useful for scrubbing a corrupted sensor/day from a dataset before
    factorization; the mode's length shrinks by one.
    """
    mode = check_axis(mode, tensor.ndim)
    require(0 <= index < tensor.shape[mode], f"index {index} out of range")
    require(tensor.shape[mode] >= 2, "cannot drop the only index of a mode")
    mask = tensor.indices[:, mode] != index
    idx = tensor.indices[mask].copy()
    above = idx[:, mode] > index
    idx[above, mode] -= 1
    shape = tuple(
        d - 1 if m == mode else d for m, d in enumerate(tensor.shape)
    )
    return SparseTensor(idx, tensor.values[mask], shape)
