"""The cSTF core: Kruskal model, configuration, and the AO driver.

:func:`repro.core.cstf.cstf` implements Algorithm 1 of the paper — the
alternating-optimization loop whose four phases (GRAM, MTTKRP, UPDATE,
NORMALIZE) the evaluation figures break down. It runs in two modes:

- **concrete** — a real :class:`~repro.tensor.coo.SparseTensor`; factors are
  NumPy arrays, the fit is tracked, and simulated device time is charged per
  kernel.
- **analytic** — a :class:`~repro.machine.analytic.TensorStats` (paper-scale
  metadata); the identical kernel sequence is replayed on shape-only arrays
  so Figures 5–8 can be evaluated at FROSTT scale.
"""

from repro.core.kruskal import KruskalTensor, factor_match_score
from repro.core.postprocess import (
    component_similarity,
    component_strengths,
    effective_rank,
    prune_components,
    top_indices,
)
from repro.core.config import CstfConfig
from repro.core.multistart import MultiStartResult, cstf_multistart
from repro.core.cstf import CstfResult, cstf
from repro.core.trace import PHASE_FIT, PHASE_GRAM, PHASE_MTTKRP, PHASE_NORMALIZE, PHASE_UPDATE, PHASES

__all__ = [
    "KruskalTensor",
    "factor_match_score",
    "component_similarity",
    "component_strengths",
    "effective_rank",
    "prune_components",
    "top_indices",
    "CstfConfig",
    "MultiStartResult",
    "cstf_multistart",
    "CstfResult",
    "cstf",
    "PHASES",
    "PHASE_GRAM",
    "PHASE_MTTKRP",
    "PHASE_UPDATE",
    "PHASE_NORMALIZE",
    "PHASE_FIT",
]
