"""Phase names of the cSTF iteration, matching the paper's breakdowns.

Figures 1 and 3 of the paper decompose a cSTF iteration into exactly four
phases; the constants here are the timeline keys used everywhere. The FIT
phase covers the optional objective evaluation, which the paper's timed
region excludes — benchmark drivers disable it or report it separately.
"""

PHASE_GRAM = "GRAM"
PHASE_MTTKRP = "MTTKRP"
PHASE_UPDATE = "UPDATE"
PHASE_NORMALIZE = "NORMALIZE"
PHASE_FIT = "FIT"

#: The paper's four timed phases, in presentation order.
PHASES = (PHASE_GRAM, PHASE_MTTKRP, PHASE_UPDATE, PHASE_NORMALIZE)
