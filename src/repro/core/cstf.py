"""The cSTF driver: Algorithm 1 (AO-ADMM) with full phase instrumentation.

Per outer iteration and mode ``n`` the driver performs the paper's four
phases:

1. **GRAM** — ``S⁽ⁿ⁾ = ⊛_{m≠n} G⁽ᵐ⁾`` from cached Gram matrices, plus the
   refresh ``G⁽ⁿ⁾ = H⁽ⁿ⁾ᵀH⁽ⁿ⁾`` after the update (lines 8 and 12).
2. **MTTKRP** — ``M⁽ⁿ⁾`` through the configured sparse format's kernel
   (line 9); cost charged analytically from the tensor statistics so the
   simulated time reflects the device, not the host's NumPy speed.
3. **UPDATE** — the constraint update (line 10), e.g. ADMM/cuADMM.
4. **NORMALIZE** — column normalization with λ absorption (line 11).

The same code path serves concrete tensors and paper-scale
:class:`~repro.machine.analytic.TensorStats` (symbolic factors).
"""

from __future__ import annotations

import errno
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import CstfConfig
from repro.core.kruskal import KruskalTensor
from repro.core.trace import (
    PHASE_FIT,
    PHASE_GRAM,
    PHASE_MTTKRP,
    PHASE_NORMALIZE,
    PHASE_UPDATE,
)
from repro.kernels.mttkrp_alto import mttkrp_alto
from repro.kernels.mttkrp_blco import mttkrp_blco
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray
from repro.obs import resolve_telemetry
from repro.resilience.checkpoint import (
    CheckpointCorrupt,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.events import (
    CHECKPOINT_CORRUPT,
    CHECKPOINT_RESUMED,
    CHECKPOINT_SAVED,
    CHECKPOINT_SKIPPED,
    ResilienceEvent,
)
from repro.resilience.guards import ensure_finite
from repro.resilience.policy import STATE_KEY, ResilienceContext, ResiliencePolicy
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.coo import SparseTensor
from repro.tensor.csf import CsfTensor
from repro.updates.base import get_update
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["CstfResult", "cstf"]


@dataclass
class CstfResult:
    """Everything a cSTF run produces.

    ``kruskal`` is ``None`` for analytic (paper-scale) runs, where only the
    simulated timeline is meaningful.
    """

    kruskal: KruskalTensor | None
    executor: Executor
    iterations: int
    converged: bool
    fits: list[float] = field(default_factory=list)

    events: list[ResilienceEvent] = field(default_factory=list)
    """Every recovery/injection/checkpoint action taken during the run."""

    start_iteration: int = 0
    """Outer iteration the run (re)started from; nonzero after a resume."""

    telemetry: object = None
    """The run's :class:`~repro.obs.RunRecord` when telemetry was enabled
    (spans, simulated kernel stream, resilience events, metrics summary);
    ``None`` for untraced runs."""

    @property
    def timeline(self):
        return self.executor.timeline

    @property
    def fit(self) -> float | None:
        return self.fits[-1] if self.fits else None

    @property
    def recoveries(self) -> int:
        """Number of resilience events excluding checkpoint bookkeeping."""
        skip = (CHECKPOINT_SAVED, CHECKPOINT_RESUMED)
        return sum(1 for e in self.events if e.kind not in skip)

    def per_iteration_seconds(self) -> float:
        """Simulated seconds per outer iteration over the four timed phases
        (iterations executed by *this* process, for resumed runs)."""
        timed = sum(
            self.timeline.seconds(p)
            for p in (PHASE_GRAM, PHASE_MTTKRP, PHASE_UPDATE, PHASE_NORMALIZE)
        )
        return timed / max(self.iterations - self.start_iteration, 1)


class _ConcreteMttkrp:
    """Holds the per-format structures and computes M plus its cost."""

    def __init__(self, tensor: SparseTensor, fmt: str):
        self.fmt = fmt
        self.stats = TensorStats.from_coo(tensor)
        self.ndim = tensor.ndim
        if fmt == "coo":
            self.data = tensor
        elif fmt == "alto":
            self.data = AltoTensor.from_coo(tensor)
        elif fmt == "blco":
            self.data = BlcoTensor.from_coo(tensor)
        elif fmt == "csf":
            self.data = [CsfTensor.from_coo(tensor, root_mode=m) for m in range(tensor.ndim)]
        else:  # pragma: no cover - config validates
            raise ValueError(fmt)

    def compute(self, ex: Executor, factors, mode: int, rank: int):
        charge_mttkrp(ex, self.stats, rank, mode, self.fmt)
        if self.fmt == "coo":
            return mttkrp_coo(self.data, factors, mode)
        if self.fmt == "alto":
            return mttkrp_alto(self.data, factors, mode)
        if self.fmt == "blco":
            return mttkrp_blco(self.data, factors, mode)
        return mttkrp_csf(self.data[mode], factors, mode)


class _SymbolicMttkrp:
    """Charges MTTKRP cost from statistics; returns shape-only results."""

    def __init__(self, stats: TensorStats, fmt: str):
        self.fmt = fmt
        self.stats = stats
        self.ndim = stats.ndim

    def compute(self, ex: Executor, factors, mode: int, rank: int):
        charge_mttkrp(ex, self.stats, rank, mode, self.fmt)
        return SymArray((self.stats.shape[mode], rank))


def _init_factors(shape, rank, nonneg: bool, seed, init_factors=None):
    if init_factors is not None:
        factors = _coerce_init(shape, rank, init_factors)
        if nonneg:
            factors = [np.maximum(f, 0.0) for f in factors]
        return factors
    rng = as_generator(seed)
    factors = []
    for dim in shape:
        f = rng.random((dim, rank))
        if not nonneg:
            f = f - 0.5
        factors.append(np.asarray(f, dtype=np.float64))
    return factors


def _coerce_init(shape, rank, init):
    """Validate a warm start (list of factors or a KruskalTensor)."""
    if isinstance(init, KruskalTensor):
        if init.shape != tuple(shape) or init.rank != rank:
            raise ValueError(
                f"warm-start model {init.shape}/rank {init.rank} does not match "
                f"tensor {tuple(shape)}/rank {rank}"
            )
        # Fold λ into the first factor so the model is preserved exactly.
        factors = [np.array(f, dtype=np.float64) for f in init.factors]
        factors[0] = factors[0] * init.weights[None, :]
        return factors
    factors = [np.array(f, dtype=np.float64) for f in init]
    if len(factors) != len(shape):
        raise ValueError(f"expected {len(shape)} warm-start factors, got {len(factors)}")
    for n, (f, dim) in enumerate(zip(factors, shape)):
        if f.shape != (dim, rank):
            raise ValueError(
                f"warm-start factor {n} has shape {f.shape}, expected {(dim, rank)}"
            )
    return factors


def cstf(tensor, config: CstfConfig | None = None, **overrides) -> CstfResult:
    """Run constrained sparse tensor factorization (Algorithm 1).

    Parameters
    ----------
    tensor:
        A :class:`SparseTensor` (concrete run) or
        :class:`~repro.machine.analytic.TensorStats` (analytic, paper-scale
        run; the fit and factors are not produced).
    config / overrides:
        A :class:`CstfConfig`, or keyword overrides of its fields.

    Returns
    -------
    CstfResult
        Factors (as a :class:`KruskalTensor`), fit trace, and the simulated
        device timeline.
    """
    if config is None:
        config = CstfConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or keyword overrides, not both")

    # Telemetry is resolved once per run and installed as the ambient
    # session so deep call sites (MTTKRP kernels, ADMM inner loops) can
    # self-instrument; the default resolves to a no-op with zero overhead.
    tel = resolve_telemetry(config.telemetry)
    with tel.activate(), tel.span("run"):
        result = _cstf_run(tensor, config, tel)
    tel.flush()
    return result


def _cstf_run(tensor, config: CstfConfig, tel) -> CstfResult:
    analytic = isinstance(tensor, TensorStats)
    update = get_update(config.update, **config.update_params)
    ex = Executor(config.device)
    tel.attach_executor(ex)
    rank = config.rank
    shape = tensor.shape
    tel.set_meta(
        kind="cstf", device=ex.device.name, rank=rank,
        update=getattr(update, "name", str(config.update)),
        mttkrp_format=config.mttkrp_format, analytic=analytic,
    )

    # Resilience plumbing: one policy + event log per run, threaded to the
    # update methods through their state dict. Analytic (symbolic) runs have
    # no numerics to guard.
    policy = ResiliencePolicy.resolve(config.resilience)
    ctx = ResilienceContext(policy) if (policy is not None and not analytic) else None
    if ctx is not None:
        tel.attach_events(ctx.events)
    injector = config.fault_injector
    require(
        injector is None or not analytic,
        "fault injection requires a concrete tensor (analytic runs have no numerics)",
    )

    checkpoint = None
    if config.resume_from is not None:
        require(not analytic, "resume_from requires a concrete tensor")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", CheckpointCorrupt)
            checkpoint = load_checkpoint(config.resume_from)
        for w in caught:
            # A torn primary generation fell back to the rotated .prev:
            # surface the degradation on the run's event log (and keep the
            # warning visible to callers outside this capture).
            if not issubclass(w.category, CheckpointCorrupt):
                warnings.warn_explicit(
                    w.message, w.category, w.filename, w.lineno
                )
                continue
            if ctx is not None:
                ctx.events.record(
                    CHECKPOINT_CORRUPT, "CHECKPOINT",
                    detail=str(w.message),
                )
        require(
            checkpoint.shape == tuple(shape),
            f"checkpoint shape {checkpoint.shape} does not match tensor {tuple(shape)}",
        )
        require(
            checkpoint.rank == rank,
            f"checkpoint rank {checkpoint.rank} does not match config rank {rank}",
        )
        if tel.enabled:
            # Continue the interrupted run's telemetry: cumulative counters
            # and histograms resume without a gap (iteration indices follow
            # from the restored outer-iteration counter).
            tel.metrics.load_state(checkpoint.telemetry_state)
            tel.counter("cstf.resumes")

    if analytic:
        mttkrp_engine = _SymbolicMttkrp(tensor, config.mttkrp_format)
        factors = [SymArray((dim, rank)) for dim in shape]
        weights = SymArray((rank,))
    else:
        if not isinstance(tensor, SparseTensor):
            raise TypeError(
                f"tensor must be SparseTensor or TensorStats, got {type(tensor).__name__}"
            )
        if config.engine is not None:
            from repro.engine.driver import EngineMttkrp

            mttkrp_engine = EngineMttkrp(
                tensor, config.mttkrp_format, config.engine,
                events=ctx.events if ctx is not None else None,
                injector=injector,
            )
        else:
            mttkrp_engine = _ConcreteMttkrp(tensor, config.mttkrp_format)
        if checkpoint is not None:
            factors = [np.array(f, dtype=np.float64) for f in checkpoint.factors]
            weights = np.array(checkpoint.weights, dtype=np.float64)
        else:
            factors = _init_factors(
                shape, rank, update.nonnegative, config.seed, config.init_factors
            )
            weights = np.ones(rank, dtype=np.float64)

    # Analytic runs must not allocate concrete per-mode state (dual
    # variables at paper scale would be gigabytes); updates detect symbolic
    # operands and synthesize shape-only state on the fly.
    state = {} if analytic else update.init_state(tuple(shape), rank)
    if checkpoint is not None:
        # Restore the update method's array state (ADMM duals) and, for
        # resumed fault campaigns, the injector's RNG stream.
        state.update(checkpoint.state_arrays)
        if injector is not None and checkpoint.rng_state is not None:
            injector.set_rng_state(checkpoint.rng_state)
    if ctx is not None:
        state[STATE_KEY] = ctx
    ndim = len(shape)

    # Gram λ-rescale (engine opt-in): compute the Gram on the *unnormalized*
    # update result and rescale it by the column norms instead of running a
    # separate norm pass. λ² is exactly diag(G) under normalize="2", so the
    # norm computation comes for free; numerically equivalent but not
    # bit-identical to the seed path, hence opt-in and disabled under fault
    # injection (an injected factor would desynchronize the cached Gram).
    gram_rescale = (
        not analytic
        and config.engine is not None
        and config.engine.gram_rescale
        and config.normalize == "2"
        and injector is None
    )

    if checkpoint is not None:
        # The Gram cache resumes from the checkpoint verbatim — recomputing
        # it would give the same bits, but the saved arrays are the record.
        grams = [np.array(g, dtype=np.float64) for g in checkpoint.grams]
        if ctx is not None:
            ctx.events.record(
                CHECKPOINT_RESUMED, "CHECKPOINT", iteration=checkpoint.iteration,
                detail=f"resumed from {config.resume_from} at outer iteration "
                       f"{checkpoint.iteration}",
            )
    else:
        # Initial Gram cache (line 4 of Algorithm 1).
        with ex.phase(PHASE_GRAM), tel.span("gram_init"):
            grams = [ex.gram(f) for f in factors]

    fits: list[float] = list(checkpoint.fits) if checkpoint is not None else []
    converged = False
    start_iteration = checkpoint.iteration if checkpoint is not None else 0
    iterations = start_iteration
    events = ctx.events if ctx is not None else None
    for _ in range(start_iteration, config.max_iters):
        iterations += 1
        iter_span = tel.open_span("outer_iter", iteration=iterations)
        tel.counter("cstf.outer_iterations")
        for mode in range(ndim):
            needs_tensor = getattr(update, "needs_tensor", False)
            if not needs_tensor:
                with ex.phase(PHASE_GRAM), tel.span("gram", mode=mode):
                    s_mat = _gram_chain(ex, grams, mode, rank, analytic)
                if injector is not None:
                    s_mat = injector.inject(
                        PHASE_GRAM, s_mat, mode=mode, iteration=iterations,
                        events=events,
                    )
                with ex.phase(PHASE_MTTKRP), tel.span("mttkrp", mode=mode):
                    m_mat = mttkrp_engine.compute(ex, factors, mode, rank)
                if injector is not None:
                    m_mat = injector.inject(
                        PHASE_MTTKRP, m_mat, mode=mode, iteration=iterations,
                        events=events,
                    )
                # Phase-boundary sentinel (host-side; charges no device time).
                m_mat = ensure_finite(
                    m_mat, ctx, phase=PHASE_MTTKRP, what="MTTKRP result",
                    mode=mode, iteration=iterations,
                )
            with ex.phase(PHASE_UPDATE), tel.span("update", mode=mode):
                # The update solves for the unnormalized factor H·diag(λ);
                # reapply the weights to warm-start from the current model.
                h_start = ex.col_scale(factors[mode], weights, name="col_scale_lambda")
                if needs_tensor:
                    # Generalized-loss updates (e.g. KL-MU) work directly on
                    # the tensor instead of the (M, S) sufficient statistics.
                    h_new = update.update_with_tensor(
                        ex, mode, tensor, factors, h_start, state
                    )
                else:
                    h_new = update.update(ex, mode, m_mat, s_mat, h_start, state)
            if injector is not None:
                h_new = injector.inject(
                    PHASE_UPDATE, h_new, mode=mode, iteration=iterations,
                    events=events,
                )
            h_new = ensure_finite(
                h_new, ctx, phase=PHASE_UPDATE, what=f"mode-{mode} factor update",
                mode=mode, iteration=iterations,
            )
            g_unnorm = None
            if gram_rescale:
                # DSYRK on the unnormalized factor; its diagonal doubles as
                # the squared column norms the normalize step needs.
                with ex.phase(PHASE_GRAM), tel.span("gram", mode=mode, refresh=True):
                    g_unnorm = ex.gram(h_new)
            with ex.phase(PHASE_NORMALIZE), tel.span("normalize", mode=mode):
                if gram_rescale:
                    lam = np.sqrt(np.diagonal(g_unnorm).copy())
                    lam = np.where(lam > 0.0, lam, 1.0)
                    factors[mode] = ex.col_scale(
                        h_new, 1.0 / lam, name="col_scale_normalize"
                    )
                    weights = lam
                else:
                    factors[mode], weights = ex.normalize_columns(
                        h_new, kind=config.normalize
                    )
            if injector is not None:
                factors[mode] = injector.inject(
                    PHASE_NORMALIZE, factors[mode], mode=mode,
                    iteration=iterations, events=events,
                )
            factors[mode] = ensure_finite(
                factors[mode], ctx, phase=PHASE_NORMALIZE,
                what=f"normalized mode-{mode} factor", mode=mode,
                iteration=iterations,
            )
            weights = ensure_finite(
                weights, ctx, phase=PHASE_NORMALIZE, what="weight vector λ",
                mode=mode, iteration=iterations,
            )
            if gram_rescale:
                with ex.phase(PHASE_GRAM), tel.span("gram_rescale", mode=mode):
                    inv = 1.0 / weights
                    grams[mode] = g_unnorm * np.outer(inv, inv)
                    ex.record(
                        "gram_rescale",
                        flops=2.0 * rank * rank,
                        reads=float(rank * rank),
                        writes=float(rank * rank),
                        parallel_work=float(rank * rank),
                    )
                tel.counter("engine.gram.rescales")
            else:
                with ex.phase(PHASE_GRAM), tel.span("gram", mode=mode, refresh=True):
                    grams[mode] = ex.gram(factors[mode])

        if not analytic and config.compute_fit:
            with ex.phase(PHASE_FIT), tel.span("fit", iteration=iterations) as fit_span:
                model = KruskalTensor([f.copy() for f in factors], weights.copy())
                fits.append(model.fit(tensor))
                _charge_fit(ex, tensor, rank)
                if fit_span is not None:
                    # Stamp the value on the span so trace consumers (the
                    # run doctor's oscillation detector) can read the fit
                    # trajectory without the metrics summary.
                    fit_span.attrs["fit"] = fits[-1]
            tel.observe("cstf.fit", fits[-1])
            if len(fits) >= 2:
                tel.observe("cstf.fit_delta", fits[-1] - fits[-2])
            tel.gauge("cstf.last_fit", fits[-1])
            if (
                config.tol > 0.0
                and len(fits) >= 2
                and abs(fits[-1] - fits[-2]) < config.tol
            ):
                converged = True

        if injector is not None and tel.enabled and injector.draw_disk_full(
            "sink", iteration=iterations,
            events=ctx.events if ctx is not None else None,
        ):
            # The telemetry sink's turn to hit ENOSPC: arm the real
            # degradation path (null sink + obs.sink.dropped) and carry on.
            arm = getattr(tel, "inject_sink_failure", None)
            if arm is not None:
                arm()

        if (
            config.checkpoint_every > 0
            and not analytic
            and iterations % config.checkpoint_every == 0
        ):
            with tel.span("checkpoint", iteration=iterations):
                _write_checkpoint(config, update, shape, rank, iterations,
                                  factors, weights, grams, fits, state, ctx, tel)
        tel.close_span(iter_span)
        if config.on_iteration is not None:
            try:
                config.on_iteration(iterations)
            except BaseException:
                # Cooperative interruption (the supervisor's in-run deadline
                # guard, a campaign driver's stop signal): the just-completed
                # iterate is checkpointed before the interrupt propagates, so
                # the interrupted run resumes bit-identically.
                if config.checkpoint_path is not None and not analytic:
                    _write_checkpoint(config, update, shape, rank, iterations,
                                      factors, weights, grams, fits, state,
                                      ctx, tel)
                raise
        if converged:
            break

    kruskal = None if analytic else KruskalTensor(factors, weights)
    return CstfResult(
        kruskal=kruskal,
        executor=ex,
        iterations=iterations,
        converged=converged,
        fits=fits,
        events=list(ctx.events) if ctx is not None else [],
        start_iteration=start_iteration,
        telemetry=tel.record if tel.enabled else None,
    )


def _write_checkpoint(config, update, shape, rank, iteration, factors, weights,
                      grams, fits, state, ctx, tel) -> None:
    """Persist the AO-loop state atomically and log the save.

    Persistence never fails a run that can still compute: a write
    ``OSError`` (ENOSPC and friends) is recorded as a ``checkpoint_skipped``
    event and swallowed — ``save_checkpoint`` rotates generations only
    after the temp write succeeds, so the last completed checkpoint (and
    its ``.prev``) survive intact.
    """
    injector = config.fault_injector
    state_arrays = {k: v for k, v in state.items() if k != STATE_KEY}
    events = ctx.events if ctx is not None else None
    try:
        if injector is not None and injector.draw_disk_full(
            "checkpoint", iteration=iteration, events=events
        ):
            raise OSError(errno.ENOSPC, "injected disk_full fault")
        save_checkpoint(
            config.checkpoint_path,
            iteration=iteration,
            factors=factors,
            weights=weights,
            grams=grams,
            fits=fits,
            state_arrays=state_arrays,
            rng_state=injector.rng_state() if injector is not None else None,
            telemetry_state=tel.metrics.state_dict() if tel.enabled else None,
            meta={
                "shape": [int(d) for d in shape],
                "rank": int(rank),
                "update": getattr(update, "name", str(config.update)),
            },
        )
    except OSError as exc:
        tel.counter("resilience.checkpoint.skips")
        if ctx is not None:
            ctx.events.record(
                CHECKPOINT_SKIPPED, "CHECKPOINT", iteration=iteration,
                detail=f"checkpoint write to {config.checkpoint_path} failed "
                       f"({type(exc).__name__}: {exc}); keeping the last "
                       f"completed checkpoint and continuing",
                error=str(exc),
            )
        return
    if ctx is not None:
        ctx.events.record(
            CHECKPOINT_SAVED, "CHECKPOINT", iteration=iteration,
            detail=f"checkpoint written to {config.checkpoint_path} "
                   f"after outer iteration {iteration}",
        )


def _gram_chain(ex: Executor, grams, skip: int, rank: int, analytic: bool):
    """Hadamard chain over the cached Grams, excluding *skip* (line 8)."""
    picked = [g for m, g in enumerate(grams) if m != skip]
    if len(picked) == 1:
        return ex.copy(picked[0], name="dcopy_gram")
    out = picked[0]
    for g in picked[1:]:
        out = ex.hadamard(out, g, name="hadamard_gram")
    return out


def _charge_fit(ex: Executor, tensor: SparseTensor, rank: int) -> None:
    """Charge the fit evaluation: a TTV-like pass over the nonzeros plus the
    R×R norm form. Reported under the FIT phase, outside the paper's timed
    region."""
    nnz = float(tensor.nnz)
    ndim = tensor.ndim
    ex.record(
        "fit_inner_product",
        flops=nnz * rank * (ndim + 1),
        reads=nnz * (ndim + 1) + nnz * ndim * rank * 0.2,
        writes=1,
        parallel_work=nnz,
        traffic_kind="gather",
    )
