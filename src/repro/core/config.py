"""Configuration of a cSTF run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive_int, check_rank, require

__all__ = ["CstfConfig"]

_FORMATS = ("coo", "csf", "alto", "blco")
_NORMS = ("2", "max")


@dataclass
class CstfConfig:
    """All knobs of the AO driver (paper defaults where applicable).

    Attributes
    ----------
    rank:
        Factorization rank R (the paper evaluates 16/32/64; default 32).
    max_iters:
        Outer AO iterations.
    tol:
        Stop when the fit improves by less than this between outer
        iterations (0 disables; analytic mode always runs ``max_iters``).
    update:
        Update-method name or instance (see :mod:`repro.updates`).
    device:
        Device preset name or :class:`~repro.machine.spec.DeviceSpec`.
    mttkrp_format:
        Sparse format for the MTTKRP phase: ``blco`` (GPU default),
        ``csf`` (SPLATT), ``alto`` (modified-PLANC CPU), or ``coo``.
    normalize:
        Column-norm convention, ``"max"`` (PLANC nonneg convention) or
        ``"2"``.
    compute_fit:
        Track the model fit each outer iteration (concrete mode only).
    seed:
        Factor initialization seed.
    """

    rank: int = 32
    max_iters: int = 10
    tol: float = 0.0
    update: object = "cuadmm"
    device: object = "a100"
    mttkrp_format: str = "blco"
    normalize: str = "max"
    compute_fit: bool = True
    seed: object = 0
    update_params: dict = field(default_factory=dict)
    init_factors: object = None
    """Optional warm start: a list of ``Iₙ×R`` arrays (or a
    :class:`~repro.core.kruskal.KruskalTensor`) used instead of random
    initialization. Weights of a KruskalTensor are folded into the factors."""

    def __post_init__(self):
        self.rank = check_rank(self.rank)
        self.max_iters = check_positive_int(self.max_iters, "max_iters")
        require(self.tol >= 0.0, "tol must be non-negative")
        require(
            self.mttkrp_format in _FORMATS,
            f"mttkrp_format must be one of {_FORMATS}, got {self.mttkrp_format!r}",
        )
        require(
            self.normalize in _NORMS,
            f"normalize must be one of {_NORMS}, got {self.normalize!r}",
        )
