"""Configuration of a cSTF run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive_int, check_rank, require

__all__ = ["CstfConfig"]

_FORMATS = ("coo", "csf", "alto", "blco")
_NORMS = ("2", "max")


@dataclass
class CstfConfig:
    """All knobs of the AO driver (paper defaults where applicable).

    Attributes
    ----------
    rank:
        Factorization rank R (the paper evaluates 16/32/64; default 32).
    max_iters:
        Outer AO iterations.
    tol:
        Stop when the fit improves by less than this between outer
        iterations (0 disables; analytic mode always runs ``max_iters``).
    update:
        Update-method name or instance (see :mod:`repro.updates`).
    device:
        Device preset name or :class:`~repro.machine.spec.DeviceSpec`.
    mttkrp_format:
        Sparse format for the MTTKRP phase: ``blco`` (GPU default),
        ``csf`` (SPLATT), ``alto`` (modified-PLANC CPU), or ``coo``.
    normalize:
        Column-norm convention, ``"max"`` (PLANC nonneg convention) or
        ``"2"``.
    compute_fit:
        Track the model fit each outer iteration (concrete mode only).
    seed:
        Factor initialization seed.
    resilience:
        Numerical-resilience policy: ``None`` (default policy, sentinel
        ``"repair"``), a :class:`~repro.resilience.ResiliencePolicy`, one of
        ``"raise"``/``"repair"``/``"warn"`` (default policy with that
        sentinel behavior), or ``"off"`` (historical fail-fast behavior).
    telemetry:
        Run telemetry (see :mod:`repro.obs`): ``"auto"`` (default — join an
        ambient :func:`~repro.obs.telemetry_session` if one is active, else
        fully off with zero overhead), ``"off"`` (force off), ``"on"``
        (record in memory, surfaced as ``CstfResult.telemetry``), or a
        :class:`~repro.obs.Telemetry` instance (e.g. with a JSONL sink).
        Telemetry never touches the numerics; ``"on"``/``"off"`` runs are
        bit-identical.
    checkpoint_every:
        Write an atomic checkpoint every K outer iterations (0 disables).
        Requires ``checkpoint_path``.
    checkpoint_path:
        Destination file for checkpoints (``.npz``).
    resume_from:
        Path of a checkpoint to continue from; the resumed run reproduces
        the uninterrupted run bit-identically. Concrete tensors only.
    fault_injector:
        A :class:`~repro.resilience.FaultInjector` corrupting intermediates
        at chosen phases (testing only).
    on_iteration:
        Optional ``(iteration:int) -> None`` callback invoked after every
        completed outer AO iteration — the cooperative interruption point.
        An exception it raises stops the run *at an iteration boundary*;
        when checkpointing is configured, the just-completed iterate is
        checkpointed before the exception propagates (used by the run
        supervisor's in-run deadline guard).
    engine:
        Host execution engine for the concrete hot paths (see
        :mod:`repro.engine`): ``None``/``"off"`` (default — seed kernels),
        ``"on"``/``"cached"`` (per-tensor plan cache + chunked execution),
        ``"sharded"`` (plan cache + threaded shards), a dict of
        :class:`~repro.engine.EngineConfig` fields, or an ``EngineConfig``.
        Apart from the opt-in ``gram_rescale`` knob, engine runs are
        bit-identical to seed runs and charge identical simulated device
        costs; only host wall-clock changes. Ignored for analytic runs.
    """

    rank: int = 32
    max_iters: int = 10
    tol: float = 0.0
    update: object = "cuadmm"
    device: object = "a100"
    mttkrp_format: str = "blco"
    normalize: str = "max"
    compute_fit: bool = True
    seed: object = 0
    update_params: dict = field(default_factory=dict)
    init_factors: object = None
    """Optional warm start: a list of ``Iₙ×R`` arrays (or a
    :class:`~repro.core.kruskal.KruskalTensor`) used instead of random
    initialization. Weights of a KruskalTensor are folded into the factors."""

    resilience: object = None
    telemetry: object = "auto"
    checkpoint_every: int = 0
    checkpoint_path: object = None
    resume_from: object = None
    fault_injector: object = None
    engine: object = None
    on_iteration: object = None

    def __post_init__(self):
        from repro.engine.config import resolve_engine

        self.engine = resolve_engine(self.engine)
        require(
            self.on_iteration is None or callable(self.on_iteration),
            "on_iteration must be callable (or None)",
        )
        require(
            self.engine is None
            or not self.engine.gram_rescale
            or self.normalize == "2",
            'engine.gram_rescale requires normalize="2" (λ² is diag(G) only '
            "under the Euclidean column-norm convention)",
        )
        self.rank = check_rank(self.rank)
        self.max_iters = check_positive_int(self.max_iters, "max_iters")
        require(self.tol >= 0.0, "tol must be non-negative")
        self.checkpoint_every = int(self.checkpoint_every)
        require(self.checkpoint_every >= 0, "checkpoint_every must be >= 0")
        require(
            self.checkpoint_every == 0 or self.checkpoint_path is not None,
            "checkpoint_every > 0 requires checkpoint_path",
        )
        require(
            self.mttkrp_format in _FORMATS,
            f"mttkrp_format must be one of {_FORMATS}, got {self.mttkrp_format!r}",
        )
        require(
            self.normalize in _NORMS,
            f"normalize must be one of {_NORMS}, got {self.normalize!r}",
        )
        require(
            self.telemetry in ("auto", "off", "on", None, True, False)
            or hasattr(self.telemetry, "span"),
            f"telemetry must be 'auto', 'off', 'on', or a Telemetry instance, "
            f"got {self.telemetry!r}",
        )
