"""Post-processing of fitted CP models: the analysis step after Algorithm 1.

The paper motivates cSTF by interpretability ("imposing such constraints …
results in a more interpretable output for domain scientists"); these
helpers turn a fitted :class:`~repro.core.kruskal.KruskalTensor` into that
interpretable output:

- :func:`top_indices` — the strongest indices per component per mode (the
  "topic words" of a component);
- :func:`component_strengths` — each component's share of the model energy;
- :func:`effective_rank` — how many components carry meaningful weight;
- :func:`component_similarity` — cross-component congruence (detecting
  duplicated/split components, a common over-ranking symptom);
- :func:`prune_components` — drop weak components and renormalize.
"""

from __future__ import annotations

import numpy as np

from repro.core.kruskal import KruskalTensor
from repro.kernels.gram import gram, hadamard_of_grams
from repro.utils.validation import check_axis, check_positive_int, require

__all__ = [
    "top_indices",
    "component_strengths",
    "effective_rank",
    "component_similarity",
    "prune_components",
]


def top_indices(model: KruskalTensor, mode: int, component: int, k: int = 5) -> np.ndarray:
    """The *k* indices with the largest loading in one component/mode."""
    mode = check_axis(mode, model.ndim)
    require(0 <= component < model.rank, f"component {component} out of range")
    k = check_positive_int(k, "k")
    column = model.factors[mode][:, component]
    k = min(k, column.shape[0])
    return np.argsort(column)[::-1][:k]


def component_strengths(model: KruskalTensor) -> np.ndarray:
    """Energy ‖λ_r · a_r ∘ b_r ∘ …‖ per component, normalized to sum 1.

    For a normalized model this is λ-driven; for raw factors the column
    norms are folded in.
    """
    energy = np.abs(model.weights).astype(np.float64).copy()
    for f in model.factors:
        energy *= np.linalg.norm(f, axis=0)
    total = energy.sum()
    if total <= 0:
        return np.zeros(model.rank)
    return energy / total


def effective_rank(model: KruskalTensor, threshold: float = 0.01) -> int:
    """Number of components holding more than *threshold* of the energy."""
    require(0.0 < threshold < 1.0, "threshold must be in (0, 1)")
    return int((component_strengths(model) > threshold).sum())


def component_similarity(model: KruskalTensor) -> np.ndarray:
    """R×R congruence matrix: products of per-mode cosine similarities.

    Off-diagonal entries near 1 flag duplicated components (the model rank
    exceeds the data's CP rank — the over-ranking diagnostic).
    """
    normed = model.normalized()
    out = np.ones((model.rank, model.rank))
    for f in normed.factors:
        out *= np.abs(f.T @ f)
    np.fill_diagonal(out, 1.0)
    return out


def prune_components(model: KruskalTensor, keep: int | None = None,
                     threshold: float | None = None) -> KruskalTensor:
    """Keep the strongest components (by energy share).

    Exactly one of *keep* (component count) or *threshold* (energy share)
    must be given. The result preserves the kept components' contribution
    exactly (weights and factors unchanged, just selected).
    """
    require(
        (keep is None) != (threshold is None),
        "give exactly one of keep= or threshold=",
    )
    strengths = component_strengths(model)
    if keep is not None:
        keep = check_positive_int(keep, "keep")
        require(keep <= model.rank, f"cannot keep {keep} of {model.rank} components")
        selected = np.sort(np.argsort(strengths)[::-1][:keep])
    else:
        require(0.0 < threshold < 1.0, "threshold must be in (0, 1)")
        selected = np.flatnonzero(strengths > threshold)
        require(selected.size > 0, "threshold prunes every component")
    return KruskalTensor(
        [f[:, selected] for f in model.factors], model.weights[selected]
    )


def _model_energy(model: KruskalTensor) -> float:
    chain = hadamard_of_grams([gram(f) for f in model.factors])
    return float(model.weights @ chain @ model.weights)
