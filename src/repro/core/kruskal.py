"""Kruskal (CP) tensors: weighted sums of rank-1 outer products.

``X̂ = Σ_r λ_r · h⁽¹⁾_r ∘ ... ∘ h⁽ᴺ⁾_r`` — the model both the constrained
and unconstrained factorizations produce. Fit against sparse tensors is
computed without densifying via the standard inner-product expansion::

    ‖X - X̂‖² = ‖X‖² - 2⟨X, X̂⟩ + ‖X̂‖²

with ``⟨X, X̂⟩`` a sum over the nonzeros and ``‖X̂‖² = λᵀ(⊛ₘ G⁽ᵐ⁾)λ``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.gram import gram, hadamard_of_grams
from repro.tensor.coo import SparseTensor
from repro.utils.validation import require

__all__ = ["KruskalTensor", "factor_match_score"]


class KruskalTensor:
    """A rank-R CP model: factor list plus weight vector λ."""

    __slots__ = ("factors", "weights")

    def __init__(self, factors, weights=None):
        self.factors = [np.ascontiguousarray(f, dtype=np.float64) for f in factors]
        require(len(self.factors) >= 1, "need at least one factor")
        rank = self.factors[0].shape[1]
        for n, f in enumerate(self.factors):
            require(f.ndim == 2 and f.shape[1] == rank, f"factor {n} rank mismatch")
        if weights is None:
            weights = np.ones(rank, dtype=np.float64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        require(self.weights.shape == (rank,), "weights must be length-R")

    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        return self.factors[0].shape[1]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(f.shape[0] for f in self.factors)

    @property
    def ndim(self) -> int:
        return len(self.factors)

    # ------------------------------------------------------------------ #
    def full(self) -> np.ndarray:
        """Dense reconstruction (test scale only)."""
        rank = self.rank
        out = np.zeros(self.shape, dtype=np.float64)
        for r in range(rank):
            component = self.weights[r]
            block = np.array(component, dtype=np.float64)
            for f in self.factors:
                block = np.multiply.outer(block, f[:, r])
            out += block
        return out

    def values_at(self, indices: np.ndarray) -> np.ndarray:
        """Model values at ``(n, ndim)`` coordinates, vectorized."""
        indices = np.asarray(indices, dtype=np.int64)
        acc = np.broadcast_to(self.weights, (indices.shape[0], self.rank)).copy()
        for mode, f in enumerate(self.factors):
            acc *= f[indices[:, mode]]
        return acc.sum(axis=1)

    def norm_sq(self) -> float:
        """``‖X̂‖² = λᵀ (⊛ₘ HᵐᵀHᵐ) λ`` — O(N·I·R²), no densification."""
        chain = hadamard_of_grams([gram(f) for f in self.factors])
        return float(self.weights @ chain @ self.weights)

    def inner_with_sparse(self, tensor: SparseTensor) -> float:
        """``⟨X, X̂⟩`` over the stored nonzeros."""
        require(tensor.shape == self.shape, "tensor/model shape mismatch")
        return float(np.dot(tensor.values, self.values_at(tensor.indices)))

    def residual_norm_sq(self, tensor: SparseTensor) -> float:
        """``‖X - X̂‖²`` (clipped at zero against round-off)."""
        return max(
            tensor.norm() ** 2 - 2.0 * self.inner_with_sparse(tensor) + self.norm_sq(), 0.0
        )

    def fit(self, tensor: SparseTensor) -> float:
        """The standard CP fit ``1 - ‖X - X̂‖ / ‖X‖`` (1 is exact)."""
        denom = tensor.norm()
        require(denom > 0.0, "cannot compute fit against an all-zero tensor")
        return 1.0 - float(np.sqrt(self.residual_norm_sq(tensor))) / denom

    def normalized(self) -> "KruskalTensor":
        """Equivalent model with unit-2-norm columns, norms folded into λ."""
        new_factors = []
        lam = self.weights.copy()
        for f in self.factors:
            norms = np.linalg.norm(f, axis=0)
            norms = np.where(norms > 0.0, norms, 1.0)
            new_factors.append(f / norms)
            lam = lam * norms
        return KruskalTensor(new_factors, lam)

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"KruskalTensor(shape={dims}, rank={self.rank})"


def factor_match_score(a: KruskalTensor, b: KruskalTensor) -> float:
    """Factor match score between two CP models (1.0 = same up to
    permutation and scaling).

    Components are greedily matched by the product of per-mode cosine
    similarities; the score is the mean matched congruence. Standard
    recovery metric for planted-factor tests.
    """
    require(a.shape == b.shape, "models must share a shape")
    require(a.rank == b.rank, "models must share a rank")
    an = a.normalized()
    bn = b.normalized()
    rank = a.rank

    congruence = np.ones((rank, rank), dtype=np.float64)
    for fa, fb in zip(an.factors, bn.factors):
        congruence *= np.abs(fa.T @ fb)

    remaining = set(range(rank))
    total = 0.0
    for r in range(rank):
        cols = sorted(remaining)
        scores = congruence[r, cols]
        best = int(np.argmax(scores))
        total += float(scores[best])
        remaining.discard(cols[best])
    return total / rank
