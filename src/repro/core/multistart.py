"""Multi-start factorization: restarts against CP's non-convexity.

CP-ALS-family algorithms converge to local optima that depend on the
initialization; production practice is a handful of restarts keeping the
best fit. This wrapper runs ``n_starts`` independent seeds (derived from a
single master seed, so the whole sweep is reproducible), returns the best
result, and reports the spread — a useful robustness diagnostic on real
data (a wide spread flags an unstable rank choice).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import CstfConfig
from repro.core.cstf import CstfResult, cstf
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_positive_int, require

__all__ = ["MultiStartResult", "cstf_multistart"]


@dataclass(frozen=True)
class MultiStartResult:
    """Best-of-N factorization plus the per-start diagnostics."""

    best: CstfResult
    fits: tuple[float, ...]
    best_index: int

    @property
    def spread(self) -> float:
        """max − min final fit across starts (0 = perfectly stable)."""
        return max(self.fits) - min(self.fits)

    def total_simulated_seconds(self) -> float:
        # Only the winner's executor is retained; the sweep cost is the
        # winner's cost times the number of starts (identical configs).
        return self.best.timeline.total_seconds() * len(self.fits)


def cstf_multistart(
    tensor,
    config: CstfConfig | None = None,
    n_starts: int = 4,
    master_seed=0,
    **overrides,
) -> MultiStartResult:
    """Run ``n_starts`` independently-seeded factorizations; keep the best.

    Accepts the same configuration as :func:`repro.core.cstf.cstf`; the
    config's own ``seed`` is ignored in favor of streams derived from
    *master_seed*. Requires fit tracking (it is the selection criterion).
    """
    if config is None:
        config = CstfConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or keyword overrides, not both")
    check_positive_int(n_starts, "n_starts")
    require(config.compute_fit, "multi-start needs compute_fit=True to rank starts")
    require(config.init_factors is None, "multi-start and warm start are exclusive")

    seeds = [int(g.integers(0, 2**63 - 1)) for g in spawn_generators(master_seed, n_starts)]
    best: CstfResult | None = None
    best_idx = -1
    fits: list[float] = []
    for i, seed in enumerate(seeds):
        result = cstf(tensor, replace(config, seed=seed))
        fits.append(result.fit if result.fit is not None else float("-inf"))
        if best is None or fits[-1] > fits[best_idx]:
            best = result
            best_idx = i
    assert best is not None
    return MultiStartResult(best=best, fits=tuple(fits), best_index=best_idx)
