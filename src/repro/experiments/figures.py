"""Drivers reproducing every table and figure of the paper's evaluation.

All paper-scale evaluations run the *analytic* path: the genuine kernel
sequences replayed on shape-only arrays with costs charged from the Table 2
statistics (see :mod:`repro.machine.analytic`). The scaled-tensor concrete
path is exercised by the test suite, which also checks that concrete and
analytic charging agree at equal shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.breakdown import phase_fractions
from repro.analysis.roofline import admm_arithmetic_intensity_limit
from repro.analysis.speedup import SpeedupSeries, speedup_series
from repro.baselines.planc import planc_dense_tf, planc_sparse_tf
from repro.baselines.splatt import splatt_cstf
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.trace import PHASE_MTTKRP, PHASE_UPDATE
from repro.data.frostt import FROSTT_TABLE2, get_dataset
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray
from repro.updates.admm import AdmmUpdate
from repro.updates.base import get_update

__all__ = [
    "fig1_dense_vs_sparse_breakdown",
    "fig3_cstf_breakdown",
    "fig4_cuadmm_optimizations",
    "fig5_6_end_to_end_speedup",
    "fig7_8_kernel_speedups",
    "fig9_10_mu_hals_speedup",
    "table2_datasets",
    "eq345_arithmetic_intensity",
    "time_update_symbolic",
]

#: The paper's dense synthetic tensor for Figure 1.
FIG1_DENSE_SHAPE = (400, 200, 100, 50)


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def time_update_symbolic(update, rows: int, rank: int, device) -> float:
    """Simulated seconds for one update call on an I×R factor, no data.

    The state dict is left empty: update methods synthesize shape-only
    state when operands are symbolic.
    """
    ex = Executor(device)
    m_mat = SymArray((rows, rank))
    s_mat = SymArray((rank, rank))
    h = SymArray((rows, rank))
    with ex.phase(PHASE_UPDATE):
        update.update(ex, 0, m_mat, s_mat, h, {})
    return ex.timeline.seconds(PHASE_UPDATE)


def _gpu_config(rank: int, device, update="cuadmm", update_params=None) -> CstfConfig:
    return CstfConfig(
        rank=rank,
        max_iters=1,
        update=update,
        device=device,
        mttkrp_format="blco",
        compute_fit=False,
        update_params=update_params or {},
    )


# --------------------------------------------------------------------- #
# Figure 1 — dense vs sparse constrained TF breakdown (PLANC, CPU, ADMM)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BreakdownResult:
    label: str
    fractions: dict[str, float]
    seconds: dict[str, float]

    @property
    def dominant(self) -> str:
        return max(self.fractions, key=self.fractions.get)


def fig1_dense_vs_sparse_breakdown(rank: int = 32) -> list[BreakdownResult]:
    """Figure 1: DenseTF (synthetic 400×200×100×50) vs SparseTF (Delicious)
    execution-time breakdown under the ADMM update on the CPU.

    Shape target: MTTKRP dominates DenseTF; UPDATE dominates SparseTF.
    """
    dense = planc_dense_tf(FIG1_DENSE_SHAPE, rank=rank, update="admm", device="cpu")
    sparse = planc_sparse_tf(
        get_dataset("delicious").stats(), rank=rank, update="admm", device="cpu", max_iters=1
    )
    out = []
    for label, result in (("DenseTF", dense), ("SparseTF", sparse)):
        tl = result.timeline
        out.append(
            BreakdownResult(
                label=label,
                fractions=phase_fractions(tl),
                seconds={p: tl.seconds(p) for p in tl.phase_seconds},
            )
        )
    return out


# --------------------------------------------------------------------- #
# Figure 3 — cSTF breakdown on the three largest tensors (CPU baseline)
# --------------------------------------------------------------------- #
def fig3_cstf_breakdown(rank: int = 32, names=("flickr", "delicious", "nell1")):
    """Figure 3: phase breakdown of the modified-PLANC CPU cSTF on the
    three tensors with the most nonzeros.

    Shape target: the ADMM UPDATE phase dominates on all three.
    """
    out = []
    for name in names:
        result = planc_sparse_tf(
            get_dataset(name).stats(), rank=rank, update="admm", device="cpu", max_iters=1
        )
        tl = result.timeline
        out.append(
            BreakdownResult(
                label=name,
                fractions=phase_fractions(tl),
                seconds={p: tl.seconds(p) for p in tl.phase_seconds},
            )
        )
    return out


# --------------------------------------------------------------------- #
# Figure 4 — cuADMM optimization speedups per mode
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig4Mode:
    dataset: str
    mode: int
    rows: int
    baseline_seconds: float
    speedup_of: float
    speedup_pi: float
    speedup_both: float


def fig4_cuadmm_optimizations(
    rank: int = 32,
    device="h100",
    names=("nips", "enron", "flickr", "delicious", "amazon"),
    inner_iters: int = 1,
) -> list[Fig4Mode]:
    """Figure 4: speedup of OF, PI, and OF+PI over baseline GPU ADMM, for a
    single ADMM iteration, per mode of five representative tensors.

    Shape targets: PI ≥ OF on large modes; OF+PI ≥ max(OF, PI); speedup
    grows with factor-matrix size (≈1.0–1.3× small/medium, up to ≈1.8×
    large).
    """
    variants = {
        "baseline": AdmmUpdate(inner_iters=inner_iters),
        "of": AdmmUpdate(inner_iters=inner_iters, fuse_ops=True),
        "pi": AdmmUpdate(inner_iters=inner_iters, preinvert=True),
        "both": AdmmUpdate(inner_iters=inner_iters, fuse_ops=True, preinvert=True),
    }
    out = []
    for name in names:
        ds = get_dataset(name)
        for mode, rows in enumerate(ds.dims):
            times = {
                key: time_update_symbolic(upd, rows, rank, device)
                for key, upd in variants.items()
            }
            out.append(
                Fig4Mode(
                    dataset=ds.name,
                    mode=mode + 1,
                    rows=rows,
                    baseline_seconds=times["baseline"],
                    speedup_of=times["baseline"] / times["of"],
                    speedup_pi=times["baseline"] / times["pi"],
                    speedup_both=times["baseline"] / times["both"],
                )
            )
    return out


# --------------------------------------------------------------------- #
# Figures 5 & 6 — end-to-end per-iteration speedup vs SPLATT
# --------------------------------------------------------------------- #
def fig5_6_end_to_end_speedup(device="a100", rank: int = 32, inner_iters: int = 10) -> SpeedupSeries:
    """Figures 5 (A100) and 6 (H100): per-iteration end-to-end speedup of
    the GPU cSTF framework (BLCO + cuADMM) over CPU SPLATT (CSF + ADMM)
    across the 10 Table 2 tensors.

    Shape targets: geometric mean well above 1; largest speedups on
    long-mode tensors; H100 ≥ A100.
    """
    labels, cpu_times, gpu_times = [], [], []
    for ds in FROSTT_TABLE2:
        stats = ds.stats()
        cpu = splatt_cstf(stats, rank=rank, max_iters=1, inner_iters=inner_iters)
        gpu = cstf(
            stats,
            _gpu_config(rank, device, update="cuadmm", update_params={"inner_iters": inner_iters}),
        )
        labels.append(ds.name)
        cpu_times.append(cpu.per_iteration_seconds())
        gpu_times.append(gpu.per_iteration_seconds())
    return speedup_series(labels, cpu_times, gpu_times)


# --------------------------------------------------------------------- #
# Figures 7 & 8 — MTTKRP vs ADMM kernel speedups
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelSpeedup:
    dataset: str
    mttkrp_speedup: float
    admm_speedup: float


def fig7_8_kernel_speedups(device="a100", rank: int = 32, inner_iters: int = 10) -> list[KernelSpeedup]:
    """Figures 7 (A100) and 8 (H100): per-tensor speedup of the GPU MTTKRP
    (BLCO) over CPU MTTKRP (CSF), against the speedup of GPU cuADMM over
    CPU ADMM.

    Shape target: roughly inverse relation — tensors with long modes get
    large ADMM speedups but small MTTKRP speedups, and vice versa (VAST may
    be an outlier, as in the paper).
    """
    out = []
    for ds in FROSTT_TABLE2:
        stats = ds.stats()
        cpu = splatt_cstf(stats, rank=rank, max_iters=1, inner_iters=inner_iters)
        gpu = cstf(
            stats,
            _gpu_config(rank, device, update="cuadmm", update_params={"inner_iters": inner_iters}),
        )
        out.append(
            KernelSpeedup(
                dataset=ds.name,
                mttkrp_speedup=cpu.timeline.seconds(PHASE_MTTKRP)
                / gpu.timeline.seconds(PHASE_MTTKRP),
                admm_speedup=cpu.timeline.seconds(PHASE_UPDATE)
                / gpu.timeline.seconds(PHASE_UPDATE),
            )
        )
    return out


# --------------------------------------------------------------------- #
# Figures 9 & 10 — MU and HALS speedups vs PLANC
# --------------------------------------------------------------------- #
def fig9_10_mu_hals_speedup(device="a100", rank: int = 32) -> dict[str, SpeedupSeries]:
    """Figures 9 (A100) and 10 (H100): per-iteration speedup of the GPU
    framework running MU and HALS over the modified-PLANC CPU library.

    Shape target: geometric means of the same order as the ADMM speedups.
    """
    out: dict[str, SpeedupSeries] = {}
    for method in ("mu", "hals"):
        labels, cpu_times, gpu_times = [], [], []
        for ds in FROSTT_TABLE2:
            stats = ds.stats()
            cpu = planc_sparse_tf(stats, rank=rank, update=method, device="cpu", max_iters=1)
            gpu = cstf(stats, _gpu_config(rank, device, update=method))
            labels.append(ds.name)
            cpu_times.append(cpu.per_iteration_seconds())
            gpu_times.append(gpu.per_iteration_seconds())
        out[method] = speedup_series(labels, cpu_times, gpu_times)
    return out


# --------------------------------------------------------------------- #
# Tables and equations
# --------------------------------------------------------------------- #
def table2_datasets() -> list[dict]:
    """Table 2: the dataset roster with dims, nnz, and density."""
    return [
        {
            "name": ds.name,
            "dims": ds.dims,
            "nnz": ds.nnz,
            "density": ds.density,
            "group": ds.group,
        }
        for ds in FROSTT_TABLE2
    ]


def eq345_arithmetic_intensity(ranks=(16, 32, 64)) -> dict[int, float]:
    """Equations 3–5: the I≫R arithmetic-intensity limits per rank.

    Paper values: 0.29 (R=16), 0.47 (R=32), 0.83 (R=64) flop/byte.
    """
    return {r: admm_arithmetic_intensity_limit(r) for r in ranks}
