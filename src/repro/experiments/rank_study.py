"""Rank study: the paper's full R ∈ {16, 32, 64} evaluation grid.

Section 5.1 states every experiment ran at ranks 16, 32 and 64, though the
figures show R = 32. This driver evaluates the end-to-end GPU-vs-SPLATT
speedup at all three ranks, plus the rank's effect on the ADMM arithmetic
intensity (Eq. 5) — the mechanism that makes higher ranks slightly more
GPU-favorable (more flops per byte moves ADMM up the roofline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.roofline import admm_arithmetic_intensity_limit
from repro.analysis.speedup import SpeedupSeries, speedup_series
from repro.baselines.splatt import splatt_cstf
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.data.frostt import FROSTT_TABLE2

__all__ = ["RankStudyRow", "rank_study"]

PAPER_RANKS = (16, 32, 64)


@dataclass(frozen=True)
class RankStudyRow:
    rank: int
    arithmetic_intensity: float
    series: SpeedupSeries

    @property
    def gmean(self) -> float:
        return self.series.gmean


def rank_study(device="a100", ranks=PAPER_RANKS, datasets=None) -> list[RankStudyRow]:
    """End-to-end speedup vs SPLATT at each rank of the paper's grid."""
    names = datasets or [d.name for d in FROSTT_TABLE2]
    picked = [d for d in FROSTT_TABLE2 if d.name in names]
    out = []
    for rank in ranks:
        labels, cpu_times, gpu_times = [], [], []
        for ds in picked:
            stats = ds.stats()
            cpu = splatt_cstf(stats, rank=rank, max_iters=1)
            gpu = cstf(
                stats,
                CstfConfig(
                    rank=rank, max_iters=1, update="cuadmm", device=device,
                    mttkrp_format="blco", compute_fit=False,
                ),
            )
            labels.append(ds.name)
            cpu_times.append(cpu.per_iteration_seconds())
            gpu_times.append(gpu.per_iteration_seconds())
        out.append(
            RankStudyRow(
                rank=rank,
                arithmetic_intensity=admm_arithmetic_intensity_limit(rank),
                series=speedup_series(labels, cpu_times, gpu_times),
            )
        )
    return out
