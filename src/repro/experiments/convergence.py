"""Convergence quality study: fit vs. simulated device time per update.

The paper evaluates per-iteration *speed*; this companion study adds the
*quality* axis the update methods trade against: for a planted nonnegative
problem, track the model fit against cumulative simulated GPU seconds for
ADMM, cuADMM, HALS, MU and APG. Expected picture (consistent with the
AO-ADMM literature the paper cites):

- cuADMM reaches any given fit in the least simulated time (same iterates
  as ADMM, cheaper iterations);
- HALS is competitive per unit time at small ranks;
- MU needs many more iterations for the same fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.tensor.synthetic import planted_sparse_cp

__all__ = ["ConvergenceCurve", "convergence_study"]


@dataclass(frozen=True)
class ConvergenceCurve:
    update: str
    fits: tuple[float, ...]
    seconds_per_iteration: float

    def time_to_fit(self, target: float) -> float | None:
        """Simulated seconds until the fit first reaches *target*."""
        for i, fit in enumerate(self.fits, start=1):
            if fit >= target:
                return i * self.seconds_per_iteration
        return None

    @property
    def final_fit(self) -> float:
        return self.fits[-1]


def convergence_study(
    shape=(60, 48, 36),
    rank: int = 4,
    max_iters: int = 40,
    device="a100",
    updates=("admm", "cuadmm", "hals", "mu", "apg"),
    seed: int = 17,
) -> dict[str, ConvergenceCurve]:
    """Fit trajectories on a shared planted problem, one curve per update."""
    tensor, _ = planted_sparse_cp(shape, rank=rank, factor_sparsity=0.5, seed=seed)
    out = {}
    for update in updates:
        result = cstf(
            tensor,
            CstfConfig(
                rank=rank, max_iters=max_iters, update=update, device=device,
                mttkrp_format="blco", compute_fit=True, seed=1,
            ),
        )
        out[update] = ConvergenceCurve(
            update=update,
            fits=tuple(result.fits),
            seconds_per_iteration=result.per_iteration_seconds(),
        )
    return out
