"""Sensitivity of the reproduction's conclusions to the model constants.

The machine model has calibrated constants that Table 1 does not publish
(efficiency fractions, overheads, saturation work). A reproduction whose
conclusions flip when those constants wiggle would be fragile; this driver
perturbs each constant by a factor (default ±50 %) and re-evaluates the
headline result (the Figure 5 geometric-mean speedup), reporting the spread
and whether any qualitative conclusion (GPU wins overall; GPU wins on the
large group) ever flips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.speedup import geometric_mean
from repro.baselines.splatt import splatt_cstf
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.data.frostt import FROSTT_TABLE2
from repro.machine.spec import get_device

__all__ = ["SensitivityRow", "sensitivity_study", "TUNABLE_FIELDS"]

#: The calibrated (non-Table-1) constants of each device spec.
TUNABLE_FIELDS = (
    "launch_overhead",
    "sync_overhead",
    "saturation_work",
    "gemm_efficiency",
    "trsm_efficiency",
    "stream_efficiency",
    "gather_efficiency",
    "random_efficiency",
)


@dataclass(frozen=True)
class SensitivityRow:
    field: str
    factor: float
    device: str
    """Which side was perturbed: ``gpu`` or ``cpu``."""

    gmean: float
    gpu_wins_overall: bool
    large_group_wins: bool


def _gmean_speedup(gpu_spec, cpu_spec, rank: int, datasets) -> tuple[float, bool, bool]:
    speedups = {}
    for ds in datasets:
        stats = ds.stats()
        cpu = splatt_cstf(stats, rank=rank, max_iters=1, device=cpu_spec)
        gpu = cstf(
            stats,
            CstfConfig(rank=rank, max_iters=1, update="cuadmm", device=gpu_spec,
                       mttkrp_format="blco", compute_fit=False),
        )
        speedups[ds.name] = cpu.per_iteration_seconds() / gpu.per_iteration_seconds()
    gmean = geometric_mean(speedups.values())
    large = [speedups[n] for n in ("flickr", "delicious", "nell1", "amazon")
             if n in speedups]
    return gmean, gmean > 1.0, all(x > 1.0 for x in large) if large else True


def sensitivity_study(
    gpu="a100",
    rank: int = 32,
    factors=(0.5, 2.0),
    fields=TUNABLE_FIELDS,
    datasets=None,
) -> list[SensitivityRow]:
    """Perturb each constant on each device side; re-evaluate Figure 5."""
    gpu_spec = get_device(gpu)
    cpu_spec = get_device("cpu")
    picked = (
        [d for d in FROSTT_TABLE2 if d.name in datasets]
        if datasets
        else list(FROSTT_TABLE2)
    )
    rows = []
    for field in fields:
        for factor in factors:
            for side, base in (("gpu", gpu_spec), ("cpu", cpu_spec)):
                value = getattr(base, field) * factor
                # Efficiencies are fractions in (0, 1].
                if field.endswith("efficiency"):
                    value = min(value, 1.0)
                perturbed = base.with_(**{field: value})
                g = perturbed if side == "gpu" else gpu_spec
                c = perturbed if side == "cpu" else cpu_spec
                gmean, wins, large = _gmean_speedup(g, c, rank, picked)
                rows.append(
                    SensitivityRow(
                        field=field, factor=factor, device=side,
                        gmean=gmean, gpu_wins_overall=wins, large_group_wins=large,
                    )
                )
    return rows
