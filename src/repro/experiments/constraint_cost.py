"""The cost of constraints: unconstrained vs constrained STF.

The paper's opening claim (Section 1, Figure 1) is that *adding constraints
creates an additional bottleneck*: unconstrained STF is MTTKRP-bound, while
cSTF's update phase rivals or dwarfs MTTKRP on real sparse tensors. This
driver quantifies the claim directly: per-iteration time of unconstrained
CP-ALS vs generic ADMM vs cuADMM on the same tensors, on both devices.

The derived quantity ``constraint_overhead`` = (constrained time) /
(unconstrained time) is the price of interpretability; cuADMM's purpose is
to shrink it on GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.data.frostt import FROSTT_TABLE2
from repro.machine.spec import get_device

__all__ = ["ConstraintCostRow", "constraint_cost_study"]


@dataclass(frozen=True)
class ConstraintCostRow:
    dataset: str
    device: str
    als_seconds: float
    admm_seconds: float
    cuadmm_seconds: float

    @property
    def admm_overhead(self) -> float:
        """Constrained (generic ADMM) time over unconstrained time."""
        return self.admm_seconds / self.als_seconds

    @property
    def cuadmm_overhead(self) -> float:
        """Constrained (cuADMM) time over unconstrained time."""
        return self.cuadmm_seconds / self.als_seconds

    @property
    def optimization_recovery(self) -> float:
        """Fraction of the constraint overhead cuADMM eliminates."""
        if self.admm_seconds <= self.als_seconds:
            return 0.0
        return (self.admm_seconds - self.cuadmm_seconds) / (
            self.admm_seconds - self.als_seconds
        )


def _per_iteration(stats, rank, device, update):
    spec = get_device(device)
    fmt = "blco" if spec.kind == "gpu" else "csf"
    res = cstf(
        stats,
        CstfConfig(
            rank=rank, max_iters=1, update=update, device=spec,
            mttkrp_format=fmt, compute_fit=False,
            update_params={"inner_iters": 10} if update in ("admm", "cuadmm") else {},
        ),
    )
    return res.per_iteration_seconds()


def constraint_cost_study(
    device="h100", rank: int = 32, datasets=("nips", "enron", "delicious", "amazon")
) -> list[ConstraintCostRow]:
    """Per-iteration ALS vs ADMM vs cuADMM for the chosen tensors."""
    picked = [d for d in FROSTT_TABLE2 if d.name in datasets]
    out = []
    for ds in picked:
        stats = ds.stats()
        out.append(
            ConstraintCostRow(
                dataset=ds.name,
                device=str(device),
                als_seconds=_per_iteration(stats, rank, device, "als"),
                admm_seconds=_per_iteration(stats, rank, device, "admm"),
                cuadmm_seconds=_per_iteration(stats, rank, device, "cuadmm"),
            )
        )
    return out
