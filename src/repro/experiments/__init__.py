"""Experiment drivers: one function per table/figure of the paper.

Each driver returns a plain data structure (dataclasses/dicts of numbers)
that the benchmark harness prints and asserts shape targets on, and that
the examples render. See DESIGN.md §4 for the experiment ↔ module ↔ bench
mapping.
"""

from repro.experiments.figures import (
    fig1_dense_vs_sparse_breakdown,
    fig3_cstf_breakdown,
    fig4_cuadmm_optimizations,
    fig5_6_end_to_end_speedup,
    fig7_8_kernel_speedups,
    fig9_10_mu_hals_speedup,
    table2_datasets,
    eq345_arithmetic_intensity,
)

__all__ = [
    "fig1_dense_vs_sparse_breakdown",
    "fig3_cstf_breakdown",
    "fig4_cuadmm_optimizations",
    "fig5_6_end_to_end_speedup",
    "fig7_8_kernel_speedups",
    "fig9_10_mu_hals_speedup",
    "table2_datasets",
    "eq345_arithmetic_intensity",
]
