"""Cholesky factorization, triangular solves, and explicit SPD inversion.

ADMM (Algorithm 2) factors ``S + ρI = LLᵀ`` once per mode update and applies
``(LLᵀ)⁻¹`` every inner iteration via forward/backward substitution. cuADMM
(Algorithm 3, pre-inversion) instead computes the explicit inverse once so
the inner loop needs only a GEMM — same flop count, far better suited to
wide parallel hardware. Both paths live here; the machine model charges them
differently (serialized TRSM vs. streaming GEMM).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.utils.validation import require

__all__ = ["cholesky_factor", "cholesky_solve", "spd_inverse"]


def cholesky_factor(spd: np.ndarray) -> np.ndarray:
    """Lower-triangular ``L`` with ``spd = L Lᵀ``.

    Raises :class:`numpy.linalg.LinAlgError` if *spd* is not positive
    definite. Diagonal loading (``S + ρI``, Section 4.3.2 of the paper)
    makes this rare in the ADMM setting, but it *does* happen in practice:
    a Gram chain built from rank-deficient or numerically damaged factors
    can carry negative eigenvalues larger than ρ, and a single non-finite
    entry anywhere upstream lands here as a LAPACK failure. Long-running
    campaigns should go through
    :func:`repro.resilience.guarded_cholesky`, which sanitizes non-finite
    inputs and retries with bounded escalating diagonal jitter instead of
    aborting the run.
    """
    spd = np.asarray(spd, dtype=np.float64)
    require(spd.ndim == 2 and spd.shape[0] == spd.shape[1], "matrix must be square")
    return np.linalg.cholesky(spd)


def cholesky_solve(L: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L Lᵀ) X = rhs`` by forward then backward substitution."""
    L = np.asarray(L, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    y = scipy.linalg.solve_triangular(L, rhs, lower=True)
    return scipy.linalg.solve_triangular(L.T, y, lower=False)


def spd_inverse(L: np.ndarray) -> np.ndarray:
    """Explicit ``(L Lᵀ)⁻¹`` computed by solving against the identity.

    This is the pre-inversion step of cuADMM (line 4 of Algorithm 3): one
    Cholesky solve with R right-hand sides, after which every inner
    iteration's solve becomes a single matrix multiply.
    """
    L = np.asarray(L, dtype=np.float64)
    eye = np.eye(L.shape[0], dtype=np.float64)
    inv = cholesky_solve(L, eye)
    # Symmetrize to wash out the last bit of substitution round-off; the
    # inverse of an SPD matrix is SPD.
    return 0.5 * (inv + inv.T)
