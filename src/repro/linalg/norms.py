"""Norms and residuals shared by convergence checks and fit computation."""

from __future__ import annotations

import numpy as np

__all__ = ["fro_norm_sq", "relative_residual"]


def fro_norm_sq(array: np.ndarray) -> float:
    """Squared Frobenius norm (sum of squared entries)."""
    array = np.asarray(array, dtype=np.float64)
    return float(np.dot(array.ravel(), array.ravel()))


def relative_residual(delta_sq: float, ref_sq: float, floor: float = 1e-30) -> float:
    """``delta² / max(ref², floor)`` — the ADMM stopping ratio.

    The floor keeps the ratio finite when the reference norm is zero (e.g.
    an all-zero dual variable on the first inner iteration), in which case
    the residual is treated as large rather than dividing by zero.
    """
    return float(delta_sq) / max(float(ref_sq), floor)
