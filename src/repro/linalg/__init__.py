"""Dense linear-algebra helpers used by the update methods.

- :mod:`repro.linalg.cholesky` — Cholesky factorization, triangular solves,
  and the explicit SPD inverse used by cuADMM's pre-inversion.
- :mod:`repro.linalg.proximal` — proximity operators for the constraints the
  framework supports (nonnegativity, L1 sparsity, ridge, box, simplex).
- :mod:`repro.linalg.norms` — squared Frobenius norms and relative residuals.
"""

from repro.linalg.cholesky import cholesky_factor, cholesky_solve, spd_inverse
from repro.linalg.proximal import ProximalOperator, get_proximal, PROXIMAL_REGISTRY
from repro.linalg.norms import fro_norm_sq, relative_residual

__all__ = [
    "cholesky_factor",
    "cholesky_solve",
    "spd_inverse",
    "ProximalOperator",
    "get_proximal",
    "PROXIMAL_REGISTRY",
    "fro_norm_sq",
    "relative_residual",
]
