"""Nonnegative least squares by Block Principal Pivoting (Kim & Park 2011).

PLANC — the library the paper modifies — is built around ANLS-BPP: each
alternating step solves the *exact* nonnegativity-constrained least-squares
subproblem rather than an iterative approximation. The subproblem per
factor row ``h`` is

    min_{h ≥ 0} ½ hᵀ S h − hᵀ m,

whose KKT conditions partition the R variables into a passive set F
(``h_F > 0``, gradient 0) and an active set G (``h_G = 0``, gradient ≥ 0).
BPP searches over partitions: solve the unconstrained system on F, compute
the gradient on G, and swap every infeasible variable — with the standard
backup rule (exchange a single variable) when the full exchange cycles.

This implementation is vectorized across the ``I`` rows: rows sharing a
passive set are solved in one batched Cholesky solve, which is exactly the
"grouping" optimization production NNLS codes (including PLANC) use.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.cholesky import cholesky_factor, cholesky_solve
from repro.utils.validation import check_positive_int, require

__all__ = ["nnls_bpp"]


def _solve_groups(s_mat: np.ndarray, m_mat: np.ndarray, passive: np.ndarray) -> np.ndarray:
    """Solve ``S_FF x_F = m_F`` for every row, batched by passive set."""
    rows, rank = m_mat.shape
    x = np.zeros((rows, rank))
    if rows == 0:
        return x
    # Group rows by passive-set signature.
    signatures = passive @ (1 << np.arange(rank, dtype=np.int64))
    order = np.argsort(signatures, kind="stable")
    sorted_sig = signatures[order]
    starts = np.flatnonzero(np.concatenate(([True], sorted_sig[1:] != sorted_sig[:-1])))
    bounds = np.append(starts, rows)
    for b, start in enumerate(starts):
        members = order[start:bounds[b + 1]]
        mask = passive[members[0]]
        if not mask.any():
            continue
        sub = s_mat[np.ix_(mask, mask)]
        rhs = m_mat[members][:, mask].T
        ridge = 1e-12 * max(np.trace(sub), 1.0)
        l_factor = cholesky_factor(sub + ridge * np.eye(int(mask.sum())))
        sol = cholesky_solve(l_factor, rhs).T
        block = np.zeros((members.size, rank))
        block[:, mask] = sol
        x[members] = block
    return x


def nnls_bpp(
    s_mat: np.ndarray,
    m_mat: np.ndarray,
    max_iters: int = 100,
    tol: float = 1e-12,
) -> np.ndarray:
    """Solve ``min_{H≥0} ½ tr(H S Hᵀ) − tr(H Mᵀ)`` row-wise by BPP.

    Parameters
    ----------
    s_mat:
        SPD ``R×R`` Gram matrix (the Hadamard-of-Grams of Algorithm 1).
    m_mat:
        ``I×R`` right-hand side (the MTTKRP output).
    max_iters:
        Outer pivoting iterations (each may flip many variables at once).

    Returns
    -------
    ``I×R`` nonnegative matrix satisfying the KKT conditions to *tol*.
    """
    s_mat = np.asarray(s_mat, dtype=np.float64)
    m_mat = np.asarray(m_mat, dtype=np.float64)
    require(s_mat.ndim == 2 and s_mat.shape[0] == s_mat.shape[1], "S must be square")
    require(m_mat.ndim == 2 and m_mat.shape[1] == s_mat.shape[0], "M must be I×R")
    check_positive_int(max_iters, "max_iters")
    rows, rank = m_mat.shape

    # Start all-passive (the unconstrained solution), the usual warm start.
    passive = np.ones((rows, rank), dtype=bool)
    x = _solve_groups(s_mat, m_mat, passive)
    y = x @ s_mat - m_mat  # gradient

    # Kim-Park safeguards per row: full exchange while improving, then
    # single-variable (Murty) exchange to guarantee termination.
    alpha = np.full(rows, 3, dtype=np.int64)
    beta = np.full(rows, rank + 1, dtype=np.int64)

    for _ in range(max_iters):
        infeasible_x = passive & (x < -tol)
        infeasible_y = (~passive) & (y < -tol)
        bad = infeasible_x | infeasible_y
        bad_rows = np.flatnonzero(bad.any(axis=1))
        if bad_rows.size == 0:
            break
        n_bad = bad[bad_rows].sum(axis=1)

        improved = n_bad < beta[bad_rows]
        # Rows that improved: record progress, full exchange.
        rec = bad_rows[improved]
        beta[rec] = n_bad[improved]
        alpha[rec] = 3
        # Rows that did not improve but still have budget: full exchange.
        stalled = bad_rows[~improved]
        budget = alpha[stalled] > 0
        alpha[stalled[budget]] -= 1
        full_rows = np.concatenate([rec, stalled[budget]])
        passive[full_rows] ^= bad[full_rows]
        # Exhausted rows: flip only the highest-index infeasible variable.
        murty = stalled[~budget]
        if murty.size:
            flip_col = rank - 1 - np.argmax(bad[murty][:, ::-1], axis=1)
            passive[murty, flip_col] ^= True

        x = _solve_groups(s_mat, m_mat, passive)
        y = x @ s_mat - m_mat

    out = np.where(passive, x, 0.0)
    return np.maximum(out, 0.0)
