"""Proximity operators for constrained factorization.

The ADMM primal update (line 7 of Algorithm 2) is
``H = argmin_H r(H) + ρ/2 ||H - (H̃ᵀ - U)||²`` — i.e. the proximity operator
of the regularizer ``r`` evaluated at ``H̃ᵀ - U`` with step ``1/ρ``. The
choice of ``r`` is the framework's constraint plug-in point; every operator
here is element-wise separable (or row-separable for the simplex), which is
what lets cuADMM fuse it with the dual update.

Registered operators
--------------------
``nonneg``      projection onto the nonnegative orthant (the paper's focus)
``unconstrained`` identity (plain CP-ALS through the ADMM machinery)
``l1``          soft-thresholding (sparsity), weight ``alpha``
``ridge``       L2 shrinkage, weight ``alpha``
``nonneg_l1``   soft-threshold then clip at zero (sparse + nonnegative)
``box``         projection onto ``[lo, hi]``
``simplex``     row-wise projection onto the probability simplex
``smooth``      quadratic smoothness along the mode index (columns solve a
                tridiagonal system), weight ``alpha`` — the "smoothness"
                constraint Section 3.2 credits ADMM with supporting
``smooth_nonneg`` smoothness followed by clipping at zero
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.utils.validation import require

__all__ = ["ProximalOperator", "get_proximal", "PROXIMAL_REGISTRY", "project_simplex_rows"]


@dataclass(frozen=True)
class ProximalOperator:
    """A named proximity operator ``prox_{r/ρ}``.

    ``fn(x, rho)`` must return an array of the same shape; ``elementwise``
    marks operators that are separable per element, which cuADMM's fused
    kernels require (the simplex projection is row-separable instead and
    falls back to the unfused path in the cost model).
    """

    name: str
    fn: Callable[[np.ndarray, float], np.ndarray]
    elementwise: bool = True
    params: dict = field(default_factory=dict)

    def __call__(self, x: np.ndarray, rho: float) -> np.ndarray:
        require(rho > 0.0, f"rho must be positive, got {rho}")
        return self.fn(np.asarray(x, dtype=np.float64), float(rho))


def _prox_nonneg(x, rho):
    return np.maximum(x, 0.0)


def _prox_identity(x, rho):
    return x.copy()


def _make_prox_l1(alpha: float):
    def fn(x, rho):
        thresh = alpha / rho
        return np.sign(x) * np.maximum(np.abs(x) - thresh, 0.0)

    return fn


def _make_prox_ridge(alpha: float):
    def fn(x, rho):
        return x * (rho / (rho + alpha))

    return fn


def _make_prox_nonneg_l1(alpha: float):
    def fn(x, rho):
        return np.maximum(x - alpha / rho, 0.0)

    return fn


def _make_prox_box(lo: float, hi: float):
    require(lo <= hi, f"box bounds inverted: [{lo}, {hi}]")

    def fn(x, rho):
        return np.clip(x, lo, hi)

    return fn


def project_simplex_rows(x: np.ndarray) -> np.ndarray:
    """Euclidean projection of each row onto the probability simplex.

    Vectorized over rows (Duchi et al. 2008): sort descending, find the
    largest prefix whose shifted mean stays below the sorted values, shift
    and clip.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        return project_simplex_rows(x[None, :])[0]
    n = x.shape[1]
    sorted_desc = -np.sort(-x, axis=1)
    cumsum = np.cumsum(sorted_desc, axis=1) - 1.0
    arange = np.arange(1, n + 1, dtype=np.float64)
    cond = sorted_desc - cumsum / arange > 0.0
    # rho_idx: last position where cond holds (guaranteed >= 1 position).
    rho_idx = n - 1 - np.argmax(cond[:, ::-1], axis=1)
    theta = cumsum[np.arange(x.shape[0]), rho_idx] / (rho_idx + 1.0)
    return np.maximum(x - theta[:, None], 0.0)


def _prox_simplex(x, rho):
    return project_simplex_rows(x)


def _make_prox_smooth(alpha: float, nonneg: bool = False):
    """Proximity of ``(alpha/2)·‖D h‖²`` column-wise (D = first differences).

    Solves ``(I + (alpha/rho) DᵀD) h = v`` per column — a symmetric
    tridiagonal system, solved for all columns at once with the banded
    solver. Encourages slowly-varying factor columns (temporal/spatial
    smoothness); optionally composed with the nonnegative projection
    (exact for this pair up to the standard proximal-composition
    approximation used in practice).
    """

    def fn(x, rho):
        import scipy.linalg

        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        if n == 1:
            out = x.copy()
        else:
            lam = alpha / rho
            # DᵀD is tridiagonal with diag (1, 2, ..., 2, 1) and off-diag -1.
            diag = 1.0 + lam * np.concatenate(([1.0], np.full(n - 2, 2.0), [1.0]))
            off = np.full(n - 1, -lam)
            ab = np.zeros((3, n))
            ab[0, 1:] = off
            ab[1] = diag
            ab[2, :-1] = off
            out = scipy.linalg.solve_banded((1, 1), ab, x)
        if nonneg:
            out = np.maximum(out, 0.0)
        return out

    return fn


PROXIMAL_REGISTRY: dict[str, Callable[..., ProximalOperator]] = {
    "nonneg": lambda: ProximalOperator("nonneg", _prox_nonneg),
    "unconstrained": lambda: ProximalOperator("unconstrained", _prox_identity),
    "l1": lambda alpha=0.1: ProximalOperator("l1", _make_prox_l1(alpha), params={"alpha": alpha}),
    "ridge": lambda alpha=0.1: ProximalOperator(
        "ridge", _make_prox_ridge(alpha), params={"alpha": alpha}
    ),
    "nonneg_l1": lambda alpha=0.1: ProximalOperator(
        "nonneg_l1", _make_prox_nonneg_l1(alpha), params={"alpha": alpha}
    ),
    "box": lambda lo=0.0, hi=1.0: ProximalOperator(
        "box", _make_prox_box(lo, hi), params={"lo": lo, "hi": hi}
    ),
    "simplex": lambda: ProximalOperator("simplex", _prox_simplex, elementwise=False),
    "smooth": lambda alpha=1.0: ProximalOperator(
        "smooth", _make_prox_smooth(alpha), elementwise=False, params={"alpha": alpha}
    ),
    "smooth_nonneg": lambda alpha=1.0: ProximalOperator(
        "smooth_nonneg",
        _make_prox_smooth(alpha, nonneg=True),
        elementwise=False,
        params={"alpha": alpha},
    ),
}


def get_proximal(constraint, **params) -> ProximalOperator:
    """Resolve a constraint name (or pass through an operator instance)."""
    if isinstance(constraint, ProximalOperator):
        return constraint
    if constraint not in PROXIMAL_REGISTRY:
        raise KeyError(
            f"unknown constraint {constraint!r}; available: {sorted(PROXIMAL_REGISTRY)}"
        )
    return PROXIMAL_REGISTRY[constraint](**params)
