"""Decision model for CPU / GPU / heterogeneous cSTF execution.

Strategy space (per outer iteration, tensor resident on both hosts):

- ``cpu``  — the whole iteration on the CPU (SPLATT-style: CSF + ADMM).
- ``gpu``  — fully GPU-resident (the paper's framework: BLCO + cuADMM);
  no per-iteration transfers, the paper's headline configuration.
- ``het:mttkrp=cpu`` — MTTKRP on the CPU, the dense phases (GRAM, UPDATE,
  NORMALIZE) on the GPU. Pays PCIe transfers of the MTTKRP output M and
  the updated factor H every mode. Wins when the GPU MTTKRP is poisoned
  (e.g. atomic contention on a very short mode — VAST) while the update
  still wants the GPU's bandwidth.
- ``het:update=cpu`` — the mirror split: MTTKRP on the GPU, update phases
  on the CPU. Wins for tensors whose factor matrices are tiny (update is
  launch-bound on the GPU) but whose nonzero stream is large.

The predictor reuses the exact cost-model code paths the simulator charges
(`estimate_phases` runs one analytic iteration per device), so the decision
is consistent with what the simulation would measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.trace import PHASE_GRAM, PHASE_MTTKRP, PHASE_NORMALIZE, PHASE_UPDATE, PHASES
from repro.machine.analytic import TensorStats
from repro.machine.counters import WORD_BYTES
from repro.machine.spec import get_device
from repro.utils.validation import check_rank, require

__all__ = [
    "TransferModel",
    "PhaseEstimate",
    "ExecutionPlan",
    "estimate_phases",
    "plan_execution",
]


@dataclass(frozen=True)
class TransferModel:
    """Host↔device interconnect (PCIe 4.0 ×16 by default).

    The paper's Section 1 motivates full GPU residency precisely by the
    cost of "the slower PCIe or NVLink interconnect"; this model prices it.
    """

    bandwidth: float = 25e9
    """Sustained bytes/second."""

    latency: float = 10e-6
    """Per-transfer fixed cost (driver + DMA setup)."""

    def seconds(self, words: float) -> float:
        require(words >= 0, "words must be non-negative")
        if words == 0:
            return 0.0
        return self.latency + words * WORD_BYTES / self.bandwidth


@dataclass(frozen=True)
class PhaseEstimate:
    """Predicted per-iteration seconds per phase on one device."""

    device: str
    update: str
    mttkrp_format: str
    seconds: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())


def estimate_phases(
    stats: TensorStats,
    rank: int,
    device,
    update: str | None = None,
    mttkrp_format: str | None = None,
    inner_iters: int = 10,
) -> PhaseEstimate:
    """Predict per-phase iteration time by running one analytic iteration.

    Defaults follow the paper's per-device configurations: GPUs use BLCO +
    cuADMM; the CPU uses CSF + generic ADMM (the SPLATT baseline).
    """
    spec = get_device(device)
    if update is None:
        update = "cuadmm" if spec.kind == "gpu" else "admm"
    if mttkrp_format is None:
        mttkrp_format = "blco" if spec.kind == "gpu" else "csf"
    result = cstf(
        stats,
        CstfConfig(
            rank=check_rank(rank),
            max_iters=1,
            update=update,
            device=spec,
            mttkrp_format=mttkrp_format,
            compute_fit=False,
            update_params={"inner_iters": inner_iters} if update in ("admm", "cuadmm") else {},
        ),
    )
    return PhaseEstimate(
        device=spec.name,
        update=update,
        mttkrp_format=mttkrp_format,
        seconds={p: result.timeline.seconds(p) for p in PHASES},
    )


@dataclass(frozen=True)
class ExecutionPlan:
    """The chosen strategy plus every evaluated alternative."""

    strategy: str
    """``"cpu"``, ``"gpu"``, ``"het:mttkrp=cpu"``, or ``"het:update=cpu"``."""

    placement: dict[str, str]
    """Phase name → device name."""

    predicted_seconds: float
    """Per-iteration prediction including transfers."""

    transfer_seconds: float
    alternatives: dict[str, float] = field(default_factory=dict)
    """Strategy → predicted seconds for everything considered."""

    host_shards: int = 1
    """Engine worker shards assumed for the CPU MTTKRP estimates (see
    :mod:`repro.engine`); 1 = the serial seed path."""

    @property
    def is_heterogeneous(self) -> bool:
        return self.strategy.startswith("het:")

    def advantage(self) -> float:
        """Speedup of the chosen strategy over the best pure strategy."""
        pure = min(self.alternatives["cpu"], self.alternatives["gpu"])
        return pure / self.predicted_seconds


def _per_iteration_transfer_words(stats: TensorStats, rank: int) -> float:
    """Heterogeneous splits ship M to the update device and H back, every
    mode: 2 · ΣIₙ · R words per outer iteration."""
    return 2.0 * sum(stats.shape) * rank


def plan_execution(
    stats: TensorStats,
    rank: int,
    gpu="a100",
    cpu="cpu",
    transfer: TransferModel | None = None,
    inner_iters: int = 10,
    host_shards: int = 1,
    shard_efficiency: float = 0.85,
) -> ExecutionPlan:
    """Pick the fastest of CPU-only, GPU-only, and the two per-phase splits.

    ``host_shards`` exposes the engine's sharded CPU MTTKRP path (see
    :mod:`repro.engine`) to the decision: the CPU MTTKRP estimate is
    divided by ``1 + (host_shards - 1) · shard_efficiency`` — linear
    scaling discounted for reduction and imbalance overheads — which can
    flip a ``gpu`` decision to ``het:mttkrp=cpu`` on contention-poisoned
    modes. The default (1 shard) reproduces the serial decision exactly.
    """
    require(host_shards >= 1, "host_shards must be >= 1")
    require(0.0 < shard_efficiency <= 1.0, "shard_efficiency must be in (0, 1]")
    transfer = transfer or TransferModel()
    gpu_est = estimate_phases(stats, rank, gpu, inner_iters=inner_iters)
    cpu_est = estimate_phases(stats, rank, cpu, inner_iters=inner_iters)

    shard_speedup = 1.0 + (host_shards - 1) * shard_efficiency
    cpu_mttkrp = cpu_est.seconds[PHASE_MTTKRP] / shard_speedup
    dense_phases = (PHASE_GRAM, PHASE_UPDATE, PHASE_NORMALIZE)
    gpu_dense = sum(gpu_est.seconds[p] for p in dense_phases)
    cpu_dense = sum(cpu_est.seconds[p] for p in dense_phases)
    cpu_total = cpu_est.total - cpu_est.seconds[PHASE_MTTKRP] + cpu_mttkrp
    xfer = (2 * stats.ndim) * transfer.latency + transfer.seconds(
        _per_iteration_transfer_words(stats, rank)
    )

    candidates: dict[str, tuple[float, float, dict[str, str]]] = {
        "cpu": (cpu_total, 0.0, {p: cpu_est.device for p in PHASES}),
        "gpu": (gpu_est.total, 0.0, {p: gpu_est.device for p in PHASES}),
        "het:mttkrp=cpu": (
            cpu_mttkrp + gpu_dense + xfer,
            xfer,
            {
                PHASE_MTTKRP: cpu_est.device,
                **{p: gpu_est.device for p in dense_phases},
            },
        ),
        "het:update=cpu": (
            gpu_est.seconds[PHASE_MTTKRP] + cpu_dense + xfer,
            xfer,
            {
                PHASE_MTTKRP: gpu_est.device,
                **{p: cpu_est.device for p in dense_phases},
            },
        ),
    }

    best = min(candidates, key=lambda k: candidates[k][0])
    seconds, xfer_s, placement = candidates[best]
    return ExecutionPlan(
        strategy=best,
        placement=placement,
        predicted_seconds=seconds,
        transfer_seconds=xfer_s,
        alternatives={k: v[0] for k, v in candidates.items()},
        host_shards=host_shards,
    )
