"""Execution planning: the paper's Section 7 future work, implemented.

    "For future work, we plan to create decision models to dynamically
    determine whether to execute computations on the CPU, on the GPU, or on
    both (heterogeneously), providing flexibility and maximizing the overall
    performance and resource utilization based on the characteristics of
    the data."

:mod:`repro.scheduler.decision` predicts per-phase, per-device iteration
costs from a tensor's :class:`~repro.machine.analytic.TensorStats` using
the same cost model the simulator charges, adds host↔device transfer costs
over the PCIe model, and picks the fastest of CPU-only, GPU-only, or a
heterogeneous per-phase split.
"""

from repro.scheduler.decision import (
    ExecutionPlan,
    PhaseEstimate,
    TransferModel,
    estimate_phases,
    plan_execution,
)
from repro.scheduler.hybrid import HybridResult, run_planned

__all__ = [
    "ExecutionPlan",
    "PhaseEstimate",
    "TransferModel",
    "estimate_phases",
    "plan_execution",
    "HybridResult",
    "run_planned",
]
