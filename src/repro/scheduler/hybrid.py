"""Heterogeneous execution: run a cSTF iteration across two devices.

Executes the plan chosen by :func:`repro.scheduler.decision.plan_execution`
end-to-end: the MTTKRP phase runs on one device's executor, the dense
phases on the other's, and every host↔device crossing is charged to the
transfer model. Works concretely (real numerics) and analytically
(TensorStats), like the single-device driver.

This validates the decision model's predictions against an actual
simulated run — the benchmark asserts that the planner's predicted times
match the executed hybrid within the model's own accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CstfConfig
from repro.core.cstf import CstfResult, cstf
from repro.core.trace import PHASE_MTTKRP, PHASES
from repro.machine.analytic import TensorStats
from repro.machine.spec import get_device
from repro.obs import current_telemetry
from repro.scheduler.decision import ExecutionPlan, TransferModel, plan_execution
from repro.utils.validation import check_rank

__all__ = ["HybridResult", "run_planned"]


@dataclass(frozen=True)
class HybridResult:
    """Outcome of executing an :class:`ExecutionPlan`."""

    plan: ExecutionPlan
    phase_seconds: dict[str, float]
    transfer_seconds: float
    result: CstfResult
    """The underlying run (factors/fit when concrete; placement per plan)."""

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values()) + self.transfer_seconds


def run_planned(
    tensor,
    rank: int,
    plan: ExecutionPlan | None = None,
    gpu="a100",
    cpu="cpu",
    transfer: TransferModel | None = None,
    max_iters: int = 1,
    inner_iters: int = 10,
    seed=0,
) -> HybridResult:
    """Execute *tensor*'s factorization according to *plan* (or plan now).

    For pure strategies this delegates to the standard driver on the chosen
    device. For heterogeneous strategies, the run executes on the device
    hosting the *update* phases (which owns the factors and numerics), the
    MTTKRP phase's simulated cost is replaced by the MTTKRP device's cost,
    and per-mode transfers are charged.
    """
    rank = check_rank(rank)
    transfer = transfer or TransferModel()
    stats = tensor if isinstance(tensor, TensorStats) else TensorStats.from_coo(tensor)
    tel = current_telemetry()
    if plan is None:
        with tel.span("scheduler.plan", rank=rank):
            plan = plan_execution(stats, rank, gpu=gpu, cpu=cpu, transfer=transfer,
                                  inner_iters=inner_iters)
    # Decision telemetry: the chosen strategy plus every alternative's
    # predicted cost, so prediction error is auditable after the fact.
    tel.event(
        "scheduler_decision", "SCHED",
        detail=f"chose {plan.strategy} "
               f"({plan.advantage():.2f}x vs best pure strategy)",
        data={"strategy": plan.strategy,
              "predicted_seconds": plan.predicted_seconds,
              **{f"alt.{k}": v for k, v in plan.alternatives.items()}},
    )
    tel.gauge("scheduler.predicted_seconds", plan.predicted_seconds)

    gpu_spec, cpu_spec = get_device(gpu), get_device(cpu)

    def _config(device, fmt, update):
        return CstfConfig(
            rank=rank, max_iters=max_iters, update=update, device=device,
            mttkrp_format=fmt, compute_fit=False, seed=seed,
            update_params={"inner_iters": inner_iters},
        )

    if plan.strategy == "gpu":
        result = cstf(tensor, _config(gpu_spec, "blco", "cuadmm"))
        phase_seconds = {p: result.timeline.seconds(p) for p in PHASES}
        return HybridResult(plan, phase_seconds, 0.0, result)
    if plan.strategy == "cpu":
        result = cstf(tensor, _config(cpu_spec, "csf", "admm"))
        phase_seconds = {p: result.timeline.seconds(p) for p in PHASES}
        return HybridResult(plan, phase_seconds, 0.0, result)

    # Heterogeneous: dense phases define the "home" device and numerics.
    if plan.strategy == "het:mttkrp=cpu":
        home = cstf(tensor, _config(gpu_spec, "blco", "cuadmm"))
        away = cstf(stats, _config(cpu_spec, "csf", "admm"))
    elif plan.strategy == "het:update=cpu":
        home = cstf(tensor, _config(cpu_spec, "csf", "admm"))
        away = cstf(stats, _config(gpu_spec, "blco", "cuadmm"))
    else:  # pragma: no cover - plan_execution only emits the four above
        raise ValueError(f"unknown strategy {plan.strategy!r}")

    phase_seconds = {p: home.timeline.seconds(p) for p in PHASES}
    phase_seconds[PHASE_MTTKRP] = away.timeline.seconds(PHASE_MTTKRP)
    xfer = max_iters * (
        (2 * stats.ndim) * transfer.latency
        + transfer.seconds(2.0 * sum(stats.shape) * rank)
    )
    return HybridResult(plan, phase_seconds, xfer, home)
