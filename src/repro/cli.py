"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print the Table 2 registry.
``devices``
    Print the modeled hardware roster (Table 1).
``factorize``
    Factorize a ``.tns`` file or a scaled analogue of a registered dataset
    and report the fit plus the simulated phase breakdown.
``plan``
    Run the CPU/GPU/heterogeneous decision model for a registered dataset
    at paper scale.
``report``
    Regenerate the paper's headline speedup figures (5/6) for one device.
``analyze``
    Structural report of a registered dataset: size group, balance,
    contention risk, and the update-vs-MTTKRP-bound prediction.
``trace``
    Convert a telemetry JSONL stream (``--trace-out`` of ``factorize`` or
    the scripts) into a Chrome/Perfetto trace JSON.
``perf``
    Trace analysis: phase/kernel attribution, hotspots, critical path, and
    the fusion/pre-inversion traffic accounting, from a telemetry JSONL
    file or a fresh in-process run.
``doctor``
    Diagnose a run: ranked findings (ADMM stalls, ρ thrash, fit
    oscillation, BLCO imbalance, checkpoint gaps) with evidence span IDs.
``diff``
    Compare a BENCH result (``scripts/run_bench_suite.py``) against the
    committed baselines in ``benchmarks/baselines/``; exits non-zero on
    regression, making it the CI performance gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.breakdown import phase_fractions
from repro.analysis.reporting import format_table
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.trace import PHASES
from repro.data.frostt import FROSTT_TABLE2, get_dataset
from repro.data.tns import read_tns
from repro.machine.spec import A100, H100, ICELAKE_XEON

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="cSTF-Py: constrained sparse tensor factorization (ICPP '24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table 2 dataset registry")
    sub.add_parser("devices", help="print the modeled hardware roster")

    fac = sub.add_parser("factorize", help="factorize a .tns file or dataset analogue")
    fac.add_argument("input", help="path to a .tns file, or a dataset name (e.g. 'uber')")
    fac.add_argument("--rank", type=int, default=32)
    fac.add_argument("--update", default="cuadmm",
                     help="admm | cuadmm | admm_of | admm_pi | hals | mu | als | apg")
    fac.add_argument("--device", default="a100", help="a100 | h100 | cpu")
    fac.add_argument("--format", dest="mttkrp_format", default="blco",
                     help="blco | csf | alto | coo")
    fac.add_argument("--iters", type=int, default=10)
    fac.add_argument("--tol", type=float, default=0.0)
    fac.add_argument("--seed", type=int, default=0)
    fac.add_argument("--nnz", type=int, default=50_000,
                     help="target nonzeros for dataset analogues")
    fac.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome trace of the simulated kernels")
    fac.add_argument("--telemetry", action="store_true",
                     help="collect run telemetry (spans + metrics) and print a summary")
    fac.add_argument("--max-retries", type=int, default=None, metavar="N",
                     help="supervise the run: retry up to N times per "
                          "degradation tier on a crash (enables the "
                          "processes->sharded->chunked->serial->seed ladder)")
    fac.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="supervised wall-clock budget across all attempts "
                          "(0 or unset = no deadline; implies supervision)")
    fac.add_argument("--trace-out", default=None, metavar="PATH",
                     help="stream telemetry to a JSONL file (implies --telemetry); "
                          "convert with 'repro trace'")
    _add_engine_args(fac)

    plan = sub.add_parser("plan", help="choose CPU/GPU/heterogeneous execution")
    plan.add_argument("dataset", help="registered dataset name")
    plan.add_argument("--rank", type=int, default=32)
    plan.add_argument("--gpu", default="a100")
    plan.add_argument("--host-shards", type=int, default=1,
                      help="engine worker shards assumed for the CPU MTTKRP "
                           "estimate (default: 1 = serial seed path)")

    rep = sub.add_parser("report", help="regenerate the Figure 5/6 speedup table")
    rep.add_argument("--device", default="a100")
    rep.add_argument("--rank", type=int, default=32)

    ana = sub.add_parser("analyze", help="structural report of a dataset")
    ana.add_argument("dataset", help="registered dataset name")
    ana.add_argument("--rank", type=int, default=32)

    trc = sub.add_parser("trace", help="convert telemetry JSONL to a Chrome trace")
    trc.add_argument("jsonl", help="telemetry JSONL file (from --trace-out)")
    trc.add_argument("--out", default="trace.json", metavar="PATH",
                     help="output Chrome-trace path (default: trace.json)")

    wat = sub.add_parser("watch", help="live run monitor: tail a run's "
                                       "telemetry JSONL and refresh in place")
    wat.add_argument("jsonl", help="telemetry JSONL file another process is "
                                   "writing (from --trace-out); opened "
                                   "read-only, never modified")
    wat.add_argument("--interval", type=float, default=0.5, metavar="SECONDS",
                     help="poll/redraw interval (default: 0.5)")
    wat.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                     help="stop after this many seconds (default: until the "
                          "run's summary line or Ctrl-C)")
    wat.add_argument("--once", action="store_true",
                     help="render one frame from the current file contents "
                          "and exit")
    wat.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen "
                          "(log-friendly)")

    def add_run_source(p):
        p.add_argument("source",
                       help="telemetry JSONL file (*.jsonl), or a .tns file / "
                            "dataset name to factorize in-process with telemetry on")
        p.add_argument("--rank", type=int, default=32)
        p.add_argument("--update", default="cuadmm")
        p.add_argument("--device", default="a100")
        p.add_argument("--format", dest="mttkrp_format", default="blco")
        p.add_argument("--iters", type=int, default=10)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--nnz", type=int, default=50_000,
                       help="target nonzeros for dataset analogues")
        _add_engine_args(p)

    perf = sub.add_parser("perf", help="trace analysis: attribution, hotspots, "
                                       "critical path, traffic claims")
    add_run_source(perf)
    perf.add_argument("--top", type=int, default=10,
                      help="number of kernel hotspots to show (default: 10)")

    doc = sub.add_parser("doctor", help="diagnose a run: ranked findings with "
                                        "evidence span IDs")
    add_run_source(doc)

    dif = sub.add_parser("diff", help="compare a BENCH result against committed "
                                      "baselines; non-zero exit on regression")
    dif.add_argument("bench", help="BENCH_*.json from scripts/run_bench_suite.py")
    dif.add_argument("--baselines", default="benchmarks/baselines", metavar="DIR",
                     help="baseline store directory (default: benchmarks/baselines)")
    dif.add_argument("--tolerance", type=float, default=None,
                     help="override the relative tolerance band for every metric")
    return parser


def _add_engine_args(p) -> None:
    p.add_argument("--engine", default="off",
                   choices=["off", "on", "sharded", "processes"],
                   help="host execution engine: off (seed kernels), on "
                        "(plan cache + chunked execution), sharded "
                        "(+ threads), processes (+ isolated crash-tolerant "
                        "worker processes)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="engine worker shards (implies --engine)")
    p.add_argument("--backend", default=None,
                   choices=["serial", "threads", "processes"],
                   help="shard dispatch backend (implies --engine; "
                        "default: threads)")
    p.add_argument("--plan-store", default=None, metavar="DIR",
                   help="persist MTTKRP plans to an on-disk, crash-safe, "
                        "content-addressed store in DIR (implies --engine; "
                        "serves coo-format plans, pair with --format coo)")
    p.add_argument("--plan-store-bytes", type=int, default=None, metavar="N",
                   help="bound the plan store to N bytes with LRU eviction "
                        "(requires --plan-store; 0 = unbounded)")
    p.add_argument("--shm", default=None, choices=["auto", "on", "off"],
                   help="processes-backend shard transport (implies "
                        "--engine): auto (default; zero-copy shared-memory "
                        "segments where available, pipe fallback), on "
                        "(require shared memory), off (pickle over pipes)")
    p.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                   help="resource-pressure memory budget in bytes (implies "
                        "--engine): processes-backend workers breaching it "
                        "are recycled at shard boundaries, and the "
                        "shared-memory transport trims/downgrades instead "
                        "of exceeding it (0 = unbounded)")
    p.add_argument("--disk-budget", type=int, default=None, metavar="BYTES",
                   help="resource-pressure disk budget in bytes (implies "
                        "--engine): default on-disk bound for the plan "
                        "store when --plan-store-bytes is unset "
                        "(0 = unbounded)")


def _engine_setting(args):
    """Map the engine flags to the ``CstfConfig.engine`` setting."""
    from repro.engine.config import default_shards

    overrides = {}
    if getattr(args, "shards", None) is not None:
        overrides["shards"] = args.shards
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
        if args.backend != "serial" and "shards" not in overrides:
            overrides["shards"] = default_shards()
    if getattr(args, "plan_store", None) is not None:
        overrides["plan_store"] = args.plan_store
        if getattr(args, "plan_store_bytes", None) is not None:
            overrides["plan_store_bytes"] = args.plan_store_bytes
    if getattr(args, "shm", None) is not None:
        overrides["shm"] = args.shm
    if getattr(args, "memory_budget", None) is not None:
        overrides["memory_budget_bytes"] = args.memory_budget
    if getattr(args, "disk_budget", None) is not None:
        overrides["disk_budget_bytes"] = args.disk_budget
    if overrides:
        return overrides
    engine = getattr(args, "engine", "off")
    return None if engine == "off" else engine


def _cmd_datasets(out) -> int:
    rows = [
        [d.name, " x ".join(f"{x:,}" for x in d.dims), f"{d.nnz:,}", f"{d.density:.1e}", d.group]
        for d in FROSTT_TABLE2
    ]
    print(format_table(["name", "dims", "nnz", "density", "group"], rows,
                       title="Table 2 datasets"), file=out)
    return 0


def _cmd_devices(out) -> int:
    rows = [
        [d.name, d.kind, f"{d.peak_flops / 1e12:.1f} TF/s",
         f"{d.mem_bandwidth / 1e9:.0f} GB/s", f"{d.cache_bytes / 1e6:.1f} MB"]
        for d in (A100, H100, ICELAKE_XEON)
    ]
    print(format_table(["device", "kind", "fp64 peak", "bandwidth", "cache"], rows,
                       title="Modeled hardware (Table 1)"), file=out)
    return 0


def _cmd_factorize(args, out) -> int:
    if args.input.endswith(".tns"):
        tensor = read_tns(args.input)
        label = args.input
    else:
        dataset = get_dataset(args.input)
        tensor = dataset.load_scaled(seed=args.seed, target_nnz=args.nnz)
        label = f"{dataset.name} (scaled analogue)"
    print(f"factorizing {label}: {tensor}", file=out)

    telemetry = "auto"
    if args.telemetry or args.trace_out:
        from repro.obs import Telemetry

        telemetry = Telemetry(jsonl_path=args.trace_out)
    config = CstfConfig(
        rank=args.rank, max_iters=args.iters, tol=args.tol, update=args.update,
        device=args.device, mttkrp_format=args.mttkrp_format, seed=args.seed,
        telemetry=telemetry, engine=_engine_setting(args),
    )
    supervised = args.max_retries is not None or args.deadline is not None
    if args.trace:
        # Tracing needs retained records; run the update stack through a
        # recording executor by monkey-free reconstruction: rerun via cstf
        # then export from a dedicated traced executor is not possible, so
        # trace the whole run by enabling record retention on the driver's
        # executor via the traced wrapper below.
        result = _factorize_traced(tensor, config, args.trace, out)
    elif supervised:
        from repro.resilience.supervisor import RunSupervisor, SupervisorConfig

        sup = RunSupervisor(
            config,
            SupervisorConfig(
                max_retries=args.max_retries if args.max_retries is not None else 3,
                deadline=args.deadline if args.deadline is not None else 0.0,
            ),
        )
        result = sup.run(tensor)
        if sup.retries or sup.degradations:
            print(f"supervisor: {sup.retries} retries, "
                  f"{sup.degradations} degradations "
                  f"({'; '.join(e.kind for e in sup.events)})", file=out)
    else:
        result = cstf(tensor, config)
    print(f"fit: {result.fit:.4f} after {result.iterations} iterations "
          f"(converged={result.converged})", file=out)
    fractions = phase_fractions(result.timeline)
    rows = [
        [p, f"{result.timeline.seconds(p) * 1e3:.3f} ms", f"{100 * fractions[p]:.1f}%"]
        for p in PHASES
    ]
    print(format_table(["phase", "simulated time", "share"], rows,
                       title=f"simulated {result.executor.device.name} breakdown"), file=out)
    if result.telemetry is not None:
        rec = result.telemetry
        if telemetry != "auto":
            # Close the session so the JSONL stream ends with its summary
            # line (the metrics snapshot `repro doctor` replays) and the
            # file handle is released.
            telemetry.close()
        print(f"telemetry: {len(rec.spans)} spans, {len(rec.kernels)} kernels, "
              f"{len(rec.events)} events", file=out)
        if args.trace_out:
            print(f"telemetry JSONL written to {args.trace_out} "
                  f"(convert with: repro trace {args.trace_out})", file=out)
    return 0


def _factorize_traced(tensor, config, trace_path, out):
    """Run cstf with kernel-record retention and export a Chrome trace.

    The driver constructs its own executor, so tracing substitutes a
    record-retaining factory for the duration of the run.
    """
    from unittest import mock

    from repro.machine.executor import Executor
    from repro.machine.traceviz import write_chrome_trace

    captured = {}

    def recording_executor(device="a100", keep_records=False):
        ex = Executor(device, keep_records=True)
        captured.setdefault("ex", ex)
        return ex

    with mock.patch("repro.core.cstf.Executor", recording_executor):
        result = cstf(tensor, config)
    write_chrome_trace(captured["ex"], trace_path)
    print(f"chrome trace written to {trace_path}", file=out)
    return result


def _cmd_analyze(args, out) -> int:
    from repro.analysis.dataset_report import analyze

    ds = get_dataset(args.dataset)
    report = analyze(ds.stats(), rank=args.rank)
    rows = [
        ["dims", " x ".join(f"{d:,}" for d in report.shape)],
        ["nnz", f"{report.nnz:,}"],
        ["factor rows (ΣIₙ)", f"{report.factor_rows:,}"],
        ["nnz per factor row", f"{report.nnz_per_factor_row:.2f}"],
        ["size group (Fig 4)", report.size_group()],
        ["mode imbalance", f"{report.mode_imbalance:.1f}x"],
        ["contention risk", f"{report.contention_risk:.1f}"],
        ["factor working set", f"{report.factor_working_set_mb:.1f} MB (R={args.rank})"],
        ["predicted bottleneck", "UPDATE" if report.update_bound() else "MTTKRP"],
    ]
    print(format_table(["property", "value"], rows,
                       title=f"structural report: {ds.name}"), file=out)
    return 0


def _cmd_plan(args, out) -> int:
    from repro.scheduler.decision import plan_execution

    stats = get_dataset(args.dataset).stats()
    plan = plan_execution(stats, rank=args.rank, gpu=args.gpu,
                          host_shards=args.host_shards)
    rows = [[k, f"{v * 1e3:.2f} ms"] for k, v in sorted(plan.alternatives.items())]
    title = f"execution plan for {args.dataset} (R={args.rank})"
    if plan.host_shards > 1:
        title += f", {plan.host_shards} host shards"
    print(format_table(["strategy", "predicted s/iter"], rows, title=title), file=out)
    print(f"chosen: {plan.strategy} "
          f"({plan.advantage():.2f}x vs best pure strategy)", file=out)
    for phase, device in plan.placement.items():
        print(f"  {phase:10s} -> {device}", file=out)
    return 0


def _cmd_report(args, out) -> int:
    from repro.experiments.figures import fig5_6_end_to_end_speedup

    series = fig5_6_end_to_end_speedup(device=args.device, rank=args.rank)
    print(
        format_table(
            ["tensor", "CPU s/iter", "GPU s/iter", "speedup"],
            series.as_rows(),
            title=f"end-to-end speedup vs SPLATT ({args.device}, R={args.rank})",
        ),
        file=out,
    )
    return 0


def _err(msg: str) -> None:
    print(msg, file=sys.stderr)


def _cmd_trace(args, out) -> int:
    from pathlib import Path

    from repro.obs import validate_jsonl, write_telemetry_chrome_trace

    if not Path(args.jsonl).exists():
        _err(f"repro trace: file not found: {args.jsonl}")
        return 2
    errors = validate_jsonl(args.jsonl)
    if errors:
        for err in errors[:20]:
            _err(f"invalid telemetry: {err}")
        return 1
    trace = write_telemetry_chrome_trace(args.jsonl, args.out)
    print(f"chrome trace written to {args.out} "
          f"({len(trace['traceEvents'])} events) — open in ui.perfetto.dev "
          f"or chrome://tracing", file=out)
    return 0


# --------------------------------------------------------------------- #
# perf / doctor / diff — the consumer-side analysis verbs
# --------------------------------------------------------------------- #
def _load_analysis_record(args, out):
    """Resolve the shared ``source`` argument of perf/doctor to a RunRecord.

    ``*.jsonl`` sources are loaded and schema-validated; anything else is a
    ``.tns`` file or registered dataset name, factorized in-process with
    telemetry forced on (no files involved). Returns None after printing to
    stderr when the source cannot be resolved.
    """
    from pathlib import Path

    from repro.obs.analysis import load_run

    if args.source.endswith(".jsonl"):
        if not Path(args.source).exists():
            _err(f"repro: trace file not found: {args.source}")
            return None
        try:
            return load_run(args.source, validate=True)
        except ValueError as exc:
            _err(f"repro: invalid telemetry stream: {exc}")
            return None

    if args.source.endswith(".tns"):
        if not Path(args.source).exists():
            _err(f"repro: tensor file not found: {args.source}")
            return None
        tensor = read_tns(args.source)
        label = args.source
    else:
        try:
            dataset = get_dataset(args.source)
        except (KeyError, ValueError) as exc:
            _err(f"repro: unknown dataset {args.source!r}: {exc}")
            return None
        tensor = dataset.load_scaled(seed=args.seed, target_nnz=args.nnz)
        label = f"{dataset.name} (scaled analogue)"

    from repro.obs import Telemetry

    config = CstfConfig(
        rank=args.rank, max_iters=args.iters, update=args.update,
        device=args.device, mttkrp_format=args.mttkrp_format, seed=args.seed,
        telemetry=Telemetry(), engine=_engine_setting(args),
    )
    print(f"analyzing in-process run of {label}", file=out)
    return cstf(tensor, config).telemetry


def _cmd_watch(args, out) -> int:
    import os as _os

    from repro.obs.watch import watch_run

    if not _os.path.exists(args.jsonl):
        _err(f"repro watch: no such file: {args.jsonl}")
        return 2
    watch_run(
        args.jsonl,
        interval=args.interval,
        duration=args.duration,
        once=args.once,
        clear=not args.no_clear,
        out=out,
    )
    return 0


def _cmd_perf(args, out) -> int:
    from repro.obs.analysis import analyze_trace, fusion_report, preinversion_report

    record = _load_analysis_record(args, out)
    if record is None:
        return 2
    ta = analyze_trace(record)

    rows = [
        [r["phase"], f"{r['seconds'] * 1e3:.3f} ms", f"{100 * r['share']:.1f}%"]
        for r in ta.phase_table()
    ]
    print(format_table(["phase", "simulated time", "share"], rows,
                       title="phase attribution"), file=out)

    rows = []
    for stat in ta.kernel_hotspots(args.top):
        bound = "memory" if ta.memory_bound(stat) else "compute"
        rows.append(
            [stat.name, str(stat.calls), f"{stat.seconds * 1e3:.3f} ms",
             f"{stat.bytes / 1e6:.1f} MB", f"{stat.arithmetic_intensity:.2f}", bound]
        )
    print(format_table(
        ["kernel", "calls", "time", "bytes", "flop/byte", "bound"],
        rows, title=f"top {len(rows)} kernel hotspots"), file=out)

    path = ta.critical_path()
    if path:
        print("critical path (inclusive host time):", file=out)
        for depth, node in enumerate(path):
            print(f"  {'  ' * depth}{node.label()}  "
                  f"{node.inclusive * 1e3:.3f} ms", file=out)

    try:
        full = fusion_report(record)
        formation = fusion_report(record, formation_only=True)
    except ValueError as exc:
        print(f"fusion accounting: n/a ({exc})", file=out)
    else:
        plan = "fused" if full.fused else "unfused"
        print(f"fusion traffic ({plan} run, modeled counterfactual):", file=out)
        print(f"  auxiliary formation: fused/unfused bytes = "
              f"{formation.ratio:.3f} (paper claim ~2/3)", file=out)
        print(f"  full auxiliary step: fused/unfused bytes = "
              f"{full.ratio:.3f}", file=out)

    try:
        pre = preinversion_report(record)
    except ValueError:
        pass
    else:
        state = "on" if pre.preinverted else "off"
        print(f"pre-inversion {state}: {pre.triangular_solves} triangular solves, "
              f"{pre.apply_inverse_gemms} apply-inverse GEMMs "
              f"({pre.solves_per_update:.1f} solves per update call)", file=out)

    summary = record.metrics_summary or {}
    counters = summary.get("counters", {})
    hits = counters.get("engine.plan.hits", 0)
    misses = counters.get("engine.plan.misses", 0)
    if hits or misses:
        rate = hits / (hits + misses)
        print(f"engine plan cache: {int(hits)} hits, {int(misses)} misses "
              f"({100 * rate:.1f}% hit rate)", file=out)
        rescales = counters.get("engine.gram.rescales", 0)
        if rescales:
            print(f"engine gram rescales: {int(rescales)} "
                  f"(rank-one λ-rescale instead of full Gram GEMMs)", file=out)
        gauges = summary.get("gauges", {})
        workers = gauges.get("engine.shard.workers")
        if workers:
            imbalance = gauges.get("engine.shard.imbalance", 0.0)
            print(f"engine sharding: {int(workers)} workers, "
                  f"{imbalance:.3f} load imbalance (max/mean; 1.0 = balanced)", file=out)
    s_hits = counters.get("engine.store.hits", 0)
    s_misses = counters.get("engine.store.misses", 0)
    if s_hits or s_misses or counters.get("engine.store.writes", 0):
        probes = s_hits + s_misses
        rate = f" ({100 * s_hits / probes:.1f}% hit rate)" if probes else ""
        print(f"plan store: {int(s_hits)} hits, {int(s_misses)} misses, "
              f"{int(counters.get('engine.store.writes', 0))} writes, "
              f"{int(counters.get('engine.store.evictions', 0))} evictions, "
              f"{int(counters.get('engine.store.quarantined', 0))} quarantined"
              f"{rate}", file=out)
    batches = counters.get("obs.overhead.batches", 0)
    if batches:
        ship = counters.get("obs.overhead.worker_s", 0.0)
        merge = counters.get("obs.overhead.merge_s", 0.0)
        print(f"telemetry shipping: {int(batches)} worker batches, "
              f"{int(counters.get('obs.overhead.spans', 0))} spans, "
              f"self-cost {1e3 * (ship + merge):.2f} ms "
              f"(worker {1e3 * ship:.2f} ms + merge {1e3 * merge:.2f} ms)",
              file=out)
    return 0


def _cmd_doctor(args, out) -> int:
    from repro.obs.analysis import diagnose

    record = _load_analysis_record(args, out)
    if record is None:
        return 2
    findings = diagnose(record)
    if not findings:
        print("no findings: run looks healthy", file=out)
        return 0
    for f in findings:
        print(f"[{f.severity}] {f.code}: {f.summary}", file=out)
        span_ids = f.evidence.get("span_ids")
        if span_ids:
            shown = ", ".join(f"#{i}" for i in span_ids[:8])
            more = f" (+{len(span_ids) - 8} more)" if len(span_ids) > 8 else ""
            print(f"    evidence spans: {shown}{more}", file=out)
    errors = sum(1 for f in findings if f.severity == "error")
    print(f"{len(findings)} finding(s), {errors} error(s)", file=out)
    return 1 if errors else 0


def _cmd_diff(args, out) -> int:
    import json
    from pathlib import Path

    from repro.obs.analysis import BaselineStore, diff_against_store, validate_bench

    path = Path(args.bench)
    if not path.exists():
        _err(f"repro diff: bench file not found: {args.bench}")
        return 2
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        _err(f"repro diff: {args.bench} is not valid JSON: {exc}")
        return 2
    errors = validate_bench(doc)
    if errors:
        for err in errors[:10]:
            _err(f"repro diff: invalid bench document: {err}")
        return 2

    store = BaselineStore(args.baselines)
    report = diff_against_store(doc["groups"], store, tolerance=args.tolerance)

    rows = []
    for d in report.deltas:
        rows.append([
            d.status,
            d.name,
            "-" if d.baseline is None else f"{d.baseline:.4f}",
            "-" if d.current is None else f"{d.current:.4f}",
            "-" if d.ratio is None else f"{d.ratio:.3f}x",
        ])
    if rows:
        print(format_table(["status", "metric", "baseline", "current", "ratio"],
                           rows, title=f"diff vs {args.baselines}"), file=out)
    for key in report.new_groups:
        print(f"new group (no baseline yet): {key}", file=out)
    counts = report.counts()
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items())) or "no metrics"
    print(f"result: {summary}", file=out)
    if report.regressions:
        _err(f"repro diff: {len(report.regressions)} regression(s) beyond tolerance")
    return report.exit_code


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets(out)
    if args.command == "devices":
        return _cmd_devices(out)
    if args.command == "factorize":
        return _cmd_factorize(args, out)
    if args.command == "plan":
        return _cmd_plan(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "watch":
        return _cmd_watch(args, out)
    if args.command == "perf":
        return _cmd_perf(args, out)
    if args.command == "doctor":
        return _cmd_doctor(args, out)
    if args.command == "diff":
        return _cmd_diff(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
