"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print the Table 2 registry.
``devices``
    Print the modeled hardware roster (Table 1).
``factorize``
    Factorize a ``.tns`` file or a scaled analogue of a registered dataset
    and report the fit plus the simulated phase breakdown.
``plan``
    Run the CPU/GPU/heterogeneous decision model for a registered dataset
    at paper scale.
``report``
    Regenerate the paper's headline speedup figures (5/6) for one device.
``analyze``
    Structural report of a registered dataset: size group, balance,
    contention risk, and the update-vs-MTTKRP-bound prediction.
``trace``
    Convert a telemetry JSONL stream (``--trace-out`` of ``factorize`` or
    the scripts) into a Chrome/Perfetto trace JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.breakdown import phase_fractions
from repro.analysis.reporting import format_table
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.trace import PHASES
from repro.data.frostt import FROSTT_TABLE2, get_dataset
from repro.data.tns import read_tns
from repro.machine.spec import A100, H100, ICELAKE_XEON

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="cSTF-Py: constrained sparse tensor factorization (ICPP '24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table 2 dataset registry")
    sub.add_parser("devices", help="print the modeled hardware roster")

    fac = sub.add_parser("factorize", help="factorize a .tns file or dataset analogue")
    fac.add_argument("input", help="path to a .tns file, or a dataset name (e.g. 'uber')")
    fac.add_argument("--rank", type=int, default=32)
    fac.add_argument("--update", default="cuadmm",
                     help="admm | cuadmm | admm_of | admm_pi | hals | mu | als | apg")
    fac.add_argument("--device", default="a100", help="a100 | h100 | cpu")
    fac.add_argument("--format", dest="mttkrp_format", default="blco",
                     help="blco | csf | alto | coo")
    fac.add_argument("--iters", type=int, default=10)
    fac.add_argument("--tol", type=float, default=0.0)
    fac.add_argument("--seed", type=int, default=0)
    fac.add_argument("--nnz", type=int, default=50_000,
                     help="target nonzeros for dataset analogues")
    fac.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome trace of the simulated kernels")
    fac.add_argument("--telemetry", action="store_true",
                     help="collect run telemetry (spans + metrics) and print a summary")
    fac.add_argument("--trace-out", default=None, metavar="PATH",
                     help="stream telemetry to a JSONL file (implies --telemetry); "
                          "convert with 'repro trace'")

    plan = sub.add_parser("plan", help="choose CPU/GPU/heterogeneous execution")
    plan.add_argument("dataset", help="registered dataset name")
    plan.add_argument("--rank", type=int, default=32)
    plan.add_argument("--gpu", default="a100")

    rep = sub.add_parser("report", help="regenerate the Figure 5/6 speedup table")
    rep.add_argument("--device", default="a100")
    rep.add_argument("--rank", type=int, default=32)

    ana = sub.add_parser("analyze", help="structural report of a dataset")
    ana.add_argument("dataset", help="registered dataset name")
    ana.add_argument("--rank", type=int, default=32)

    trc = sub.add_parser("trace", help="convert telemetry JSONL to a Chrome trace")
    trc.add_argument("jsonl", help="telemetry JSONL file (from --trace-out)")
    trc.add_argument("--out", default="trace.json", metavar="PATH",
                     help="output Chrome-trace path (default: trace.json)")
    return parser


def _cmd_datasets(out) -> int:
    rows = [
        [d.name, " x ".join(f"{x:,}" for x in d.dims), f"{d.nnz:,}", f"{d.density:.1e}", d.group]
        for d in FROSTT_TABLE2
    ]
    print(format_table(["name", "dims", "nnz", "density", "group"], rows,
                       title="Table 2 datasets"), file=out)
    return 0


def _cmd_devices(out) -> int:
    rows = [
        [d.name, d.kind, f"{d.peak_flops / 1e12:.1f} TF/s",
         f"{d.mem_bandwidth / 1e9:.0f} GB/s", f"{d.cache_bytes / 1e6:.1f} MB"]
        for d in (A100, H100, ICELAKE_XEON)
    ]
    print(format_table(["device", "kind", "fp64 peak", "bandwidth", "cache"], rows,
                       title="Modeled hardware (Table 1)"), file=out)
    return 0


def _cmd_factorize(args, out) -> int:
    if args.input.endswith(".tns"):
        tensor = read_tns(args.input)
        label = args.input
    else:
        dataset = get_dataset(args.input)
        tensor = dataset.load_scaled(seed=args.seed, target_nnz=args.nnz)
        label = f"{dataset.name} (scaled analogue)"
    print(f"factorizing {label}: {tensor}", file=out)

    telemetry = "auto"
    if args.telemetry or args.trace_out:
        from repro.obs import Telemetry

        telemetry = Telemetry(jsonl_path=args.trace_out)
    config = CstfConfig(
        rank=args.rank, max_iters=args.iters, tol=args.tol, update=args.update,
        device=args.device, mttkrp_format=args.mttkrp_format, seed=args.seed,
        telemetry=telemetry,
    )
    if args.trace:
        # Tracing needs retained records; run the update stack through a
        # recording executor by monkey-free reconstruction: rerun via cstf
        # then export from a dedicated traced executor is not possible, so
        # trace the whole run by enabling record retention on the driver's
        # executor via the traced wrapper below.
        result = _factorize_traced(tensor, config, args.trace, out)
    else:
        result = cstf(tensor, config)
    print(f"fit: {result.fit:.4f} after {result.iterations} iterations "
          f"(converged={result.converged})", file=out)
    fractions = phase_fractions(result.timeline)
    rows = [
        [p, f"{result.timeline.seconds(p) * 1e3:.3f} ms", f"{100 * fractions[p]:.1f}%"]
        for p in PHASES
    ]
    print(format_table(["phase", "simulated time", "share"], rows,
                       title=f"simulated {result.executor.device.name} breakdown"), file=out)
    if result.telemetry is not None:
        rec = result.telemetry
        print(f"telemetry: {len(rec.spans)} spans, {len(rec.kernels)} kernels, "
              f"{len(rec.events)} events", file=out)
        if args.trace_out:
            print(f"telemetry JSONL written to {args.trace_out} "
                  f"(convert with: repro trace {args.trace_out})", file=out)
    return 0


def _factorize_traced(tensor, config, trace_path, out):
    """Run cstf with kernel-record retention and export a Chrome trace.

    The driver constructs its own executor, so tracing substitutes a
    record-retaining factory for the duration of the run.
    """
    from unittest import mock

    from repro.machine.executor import Executor
    from repro.machine.traceviz import write_chrome_trace

    captured = {}

    def recording_executor(device="a100", keep_records=False):
        ex = Executor(device, keep_records=True)
        captured.setdefault("ex", ex)
        return ex

    with mock.patch("repro.core.cstf.Executor", recording_executor):
        result = cstf(tensor, config)
    write_chrome_trace(captured["ex"], trace_path)
    print(f"chrome trace written to {trace_path}", file=out)
    return result


def _cmd_analyze(args, out) -> int:
    from repro.analysis.dataset_report import analyze

    ds = get_dataset(args.dataset)
    report = analyze(ds.stats(), rank=args.rank)
    rows = [
        ["dims", " x ".join(f"{d:,}" for d in report.shape)],
        ["nnz", f"{report.nnz:,}"],
        ["factor rows (ΣIₙ)", f"{report.factor_rows:,}"],
        ["nnz per factor row", f"{report.nnz_per_factor_row:.2f}"],
        ["size group (Fig 4)", report.size_group()],
        ["mode imbalance", f"{report.mode_imbalance:.1f}x"],
        ["contention risk", f"{report.contention_risk:.1f}"],
        ["factor working set", f"{report.factor_working_set_mb:.1f} MB (R={args.rank})"],
        ["predicted bottleneck", "UPDATE" if report.update_bound() else "MTTKRP"],
    ]
    print(format_table(["property", "value"], rows,
                       title=f"structural report: {ds.name}"), file=out)
    return 0


def _cmd_plan(args, out) -> int:
    from repro.scheduler.decision import plan_execution

    stats = get_dataset(args.dataset).stats()
    plan = plan_execution(stats, rank=args.rank, gpu=args.gpu)
    rows = [[k, f"{v * 1e3:.2f} ms"] for k, v in sorted(plan.alternatives.items())]
    print(format_table(["strategy", "predicted s/iter"], rows,
                       title=f"execution plan for {args.dataset} (R={args.rank})"), file=out)
    print(f"chosen: {plan.strategy} "
          f"({plan.advantage():.2f}x vs best pure strategy)", file=out)
    for phase, device in plan.placement.items():
        print(f"  {phase:10s} -> {device}", file=out)
    return 0


def _cmd_report(args, out) -> int:
    from repro.experiments.figures import fig5_6_end_to_end_speedup

    series = fig5_6_end_to_end_speedup(device=args.device, rank=args.rank)
    print(
        format_table(
            ["tensor", "CPU s/iter", "GPU s/iter", "speedup"],
            series.as_rows(),
            title=f"end-to-end speedup vs SPLATT ({args.device}, R={args.rank})",
        ),
        file=out,
    )
    return 0


def _cmd_trace(args, out) -> int:
    from repro.obs import validate_jsonl, write_telemetry_chrome_trace

    errors = validate_jsonl(args.jsonl)
    if errors:
        for err in errors[:20]:
            print(f"invalid telemetry: {err}", file=out)
        return 1
    trace = write_telemetry_chrome_trace(args.jsonl, args.out)
    print(f"chrome trace written to {args.out} "
          f"({len(trace['traceEvents'])} events) — open in ui.perfetto.dev "
          f"or chrome://tracing", file=out)
    return 0


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets(out)
    if args.command == "devices":
        return _cmd_devices(out)
    if args.command == "factorize":
        return _cmd_factorize(args, out)
    if args.command == "plan":
        return _cmd_plan(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
