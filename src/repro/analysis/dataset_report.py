"""Per-dataset structural reports: the statistics behind the paper's story.

For a tensor (or its paper-scale statistics), derive the quantities that
predict where it lands in the evaluation figures:

- **factor rows** ΣIₙ — the UPDATE phase's size (big → big GPU ADMM gains);
- **nnz / ΣIₙ** — the MTTKRP-vs-UPDATE balance of Figure 1's argument;
- **mode imbalance** max/min dim — VAST-style contention risk;
- **fiber statistics** (per-mode mean nonzeros per index and the Gini
  coefficient of the fiber histogram) — load-balance skew;
- **working-set bytes** per rank — the cache-fit boundary that separates
  the small/medium/large groups of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.analytic import TensorStats
from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_rank

__all__ = ["DatasetReport", "analyze"]


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a nonneg histogram (0 = balanced, →1 = skewed)."""
    counts = np.sort(np.asarray(counts, dtype=np.float64))
    total = counts.sum()
    if total <= 0 or counts.size <= 1:
        return 0.0
    cum = np.cumsum(counts)
    # Standard formula: 1 - 2 * area under the Lorenz curve.
    lorenz_area = float((cum / total).sum() / counts.size) - 0.5 / counts.size
    return max(0.0, 1.0 - 2.0 * lorenz_area)


@dataclass(frozen=True)
class DatasetReport:
    shape: tuple[int, ...]
    nnz: int
    factor_rows: int
    nnz_per_factor_row: float
    mode_imbalance: float
    contention_risk: float
    """nnz / (shortest mode × 32): the serialized atomic chain length of the
    BLCO accumulate — ≫1 flags a VAST-style outlier mode."""

    fiber_gini: tuple[float, ...]
    """Per-mode Gini of the nonzeros-per-index histogram (NaN when only
    statistics, not data, are available)."""

    factor_working_set_mb: float
    """H+U+M bytes at the given rank — the Figure 4 size-group axis."""

    def size_group(self) -> str:
        """The Figure 4 grouping by factor-matrix size."""
        if self.factor_rows < 50_000:
            return "small"
        if self.factor_rows < 1_000_000:
            return "medium"
        return "large"

    def update_bound(self) -> bool:
        """Heuristic for Figure 1/3: with ten 26-pass ADMM inner iterations
        against a single nnz-driven MTTKRP pass, the update dominates when
        its traffic (≈260·ΣIₙ·R words) exceeds the MTTKRP's (≈(N−1)·R·nnz)."""
        ndim = len(self.shape)
        return 260.0 * self.factor_rows > (ndim - 1) * self.nnz * 1.0


def analyze(tensor, rank: int = 32) -> DatasetReport:
    """Build a report from a :class:`SparseTensor` or :class:`TensorStats`."""
    rank = check_rank(rank)
    if isinstance(tensor, SparseTensor):
        shape = tensor.shape
        nnz = tensor.nnz
        gini = tuple(
            _gini(tensor.mode_fiber_counts(m)) for m in range(tensor.ndim)
        )
    elif isinstance(tensor, TensorStats):
        shape = tensor.shape
        nnz = tensor.nnz
        gini = tuple(float("nan") for _ in shape)
    else:
        raise TypeError(f"expected SparseTensor or TensorStats, got {type(tensor).__name__}")

    factor_rows = int(sum(shape))
    return DatasetReport(
        shape=tuple(shape),
        nnz=int(nnz),
        factor_rows=factor_rows,
        nnz_per_factor_row=nnz / factor_rows,
        mode_imbalance=max(shape) / min(shape),
        contention_risk=nnz / (min(shape) * 32.0),
        fiber_gini=gini,
        factor_working_set_mb=3.0 * factor_rows * rank * 8.0 / 1e6,
    )
