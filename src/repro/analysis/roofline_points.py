"""Roofline placement of recorded kernels.

Maps each retained :class:`~repro.machine.counters.KernelRecord` to a point
(arithmetic intensity, attained GFLOP/s) under its device, plus the device's
roofline envelope — the data behind a roofline plot of a run, and the tool
that confirms the paper's Section 3.3 conclusion kernel-by-kernel (every
ADMM kernel sits on the bandwidth slope, far left of the ridge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.costmodel import kernel_seconds
from repro.machine.executor import Executor
from repro.machine.spec import DeviceSpec
from repro.utils.validation import require

__all__ = ["RooflinePoint", "roofline_points", "ridge_point"]


@dataclass(frozen=True)
class RooflinePoint:
    name: str
    phase: str
    arithmetic_intensity: float
    """flop/byte of the kernel's logical work."""

    attained_gflops: float
    """flops / simulated seconds, in GFLOP/s."""

    memory_bound: bool
    """Whether the kernel sits left of the device ridge."""


def ridge_point(spec: DeviceSpec) -> float:
    """The device balance point peak_flops / bandwidth (flop/byte)."""
    return spec.peak_flops / spec.mem_bandwidth


def roofline_points(executor: Executor, min_flops: float = 1.0) -> list[RooflinePoint]:
    """Extract roofline points from an executor with retained records.

    Kernels with fewer than *min_flops* flops (pure copies, reductions to a
    scalar) are skipped — they have no meaningful intensity.
    """
    records = executor.timeline.records
    require(
        bool(records),
        "no kernel records retained — construct the Executor with keep_records=True",
    )
    ridge = ridge_point(executor.device)
    points = []
    for rec in records:
        if rec.flops < min_flops or rec.total_bytes <= 0:
            continue
        seconds = kernel_seconds(executor.device, rec)
        ai = rec.flops / rec.total_bytes
        points.append(
            RooflinePoint(
                name=rec.name,
                phase=rec.phase,
                arithmetic_intensity=ai,
                attained_gflops=rec.flops / seconds / 1e9,
                memory_bound=ai < ridge,
            )
        )
    return points
