"""Analysis utilities: the paper's cost equations, breakdowns, speedups.

- :mod:`repro.analysis.roofline` — Equations 3–5 (ADMM work, traffic,
  arithmetic intensity).
- :mod:`repro.analysis.breakdown` — phase breakdowns in the style of
  Figures 1 and 3.
- :mod:`repro.analysis.speedup` — speedup series and geometric means in the
  style of Figures 4–10.
- :mod:`repro.analysis.reporting` — plain-text tables for the benchmark
  harness output.
"""

from repro.analysis.roofline import admm_flops, admm_words, admm_arithmetic_intensity
from repro.analysis.breakdown import phase_fractions, breakdown_row
from repro.analysis.speedup import geometric_mean, speedup_series
from repro.analysis.reporting import format_table
from repro.analysis.dataset_report import DatasetReport, analyze
from repro.analysis.roofline_points import RooflinePoint, ridge_point, roofline_points

__all__ = [
    "admm_flops",
    "admm_words",
    "admm_arithmetic_intensity",
    "phase_fractions",
    "breakdown_row",
    "geometric_mean",
    "speedup_series",
    "format_table",
    "DatasetReport",
    "analyze",
    "RooflinePoint",
    "ridge_point",
    "roofline_points",
]
