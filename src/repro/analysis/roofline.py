"""The paper's ADMM cost analysis (Section 3.3, Equations 3–5).

For one ADMM inner iteration on an I×R factor:

- Equation 3 — work:   ``W = 19·I·R + 2·I·R²`` flops
  (19·I·R from the matrix-addition-class kernels, 2·I·R² from the solve).
- Equation 4 — traffic: ``Q = 22·I·R + R²`` words
  (reads+writes of H, U, M and intermediates, plus the R×R system).
- Equation 5 — arithmetic intensity: ``AI = W / (8·Q)`` flop/byte, which
  for I ≫ R approaches ``(19 + 2R) / (22·8)`` — 0.29 / 0.47 / 0.83 at
  R = 16 / 32 / 64. The paper concludes ADMM is bandwidth-bound, hence the
  HBM-rich GPU offload.
"""

from __future__ import annotations

from repro.utils.validation import check_positive_int

__all__ = [
    "admm_flops",
    "admm_words",
    "admm_arithmetic_intensity",
    "admm_arithmetic_intensity_limit",
]

_BYTES_PER_WORD = 8  # double precision, as in the paper


def admm_flops(rows: int, rank: int) -> float:
    """Equation 3: flops of one ADMM inner iteration."""
    rows = check_positive_int(rows, "rows")
    rank = check_positive_int(rank, "rank")
    return 19.0 * rows * rank + 2.0 * rows * rank * rank


def admm_words(rows: int, rank: int) -> float:
    """Equation 4: words moved by one ADMM inner iteration."""
    rows = check_positive_int(rows, "rows")
    rank = check_positive_int(rank, "rank")
    return 22.0 * rows * rank + float(rank) * rank


def admm_arithmetic_intensity(rows: int, rank: int) -> float:
    """Equation 5: flop/byte of one ADMM inner iteration."""
    return admm_flops(rows, rank) / (_BYTES_PER_WORD * admm_words(rows, rank))


def admm_arithmetic_intensity_limit(rank: int) -> float:
    """The I ≫ R limit the paper evaluates: ``(19 + 2R) / (22·8)``."""
    rank = check_positive_int(rank, "rank")
    return (19.0 + 2.0 * rank) / (22.0 * _BYTES_PER_WORD)
