"""Phase breakdowns in the style of the paper's Figures 1 and 3."""

from __future__ import annotations

from repro.core.trace import PHASES
from repro.machine.counters import Timeline

__all__ = ["phase_fractions", "breakdown_row", "dominant_phase"]


def phase_fractions(timeline: Timeline) -> dict[str, float]:
    """Fraction of the four timed phases (FIT and anything else excluded),
    renormalized so the four sum to 1.0."""
    seconds = {p: timeline.seconds(p) for p in PHASES}
    total = sum(seconds.values())
    if total <= 0.0:
        return {p: 0.0 for p in PHASES}
    return {p: s / total for p, s in seconds.items()}


def dominant_phase(timeline: Timeline) -> str:
    """Name of the largest timed phase."""
    fractions = phase_fractions(timeline)
    return max(fractions, key=fractions.get)


def breakdown_row(label: str, timeline: Timeline) -> list[str]:
    """A formatted table row: label plus the four phase percentages."""
    fractions = phase_fractions(timeline)
    return [label] + [f"{100.0 * fractions[p]:5.1f}%" for p in PHASES]
