"""Speedup series and summary statistics (Figures 4–10)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require

__all__ = ["geometric_mean", "speedup_series", "SpeedupSeries"]


def geometric_mean(values) -> float:
    """Geometric mean of positive values — the paper's summary statistic."""
    values = [float(v) for v in values]
    require(bool(values), "geometric mean of an empty sequence")
    require(all(v > 0 for v in values), "geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class SpeedupSeries:
    """A labeled speedup series with the paper's summary statistics."""

    labels: tuple[str, ...]
    baseline_seconds: tuple[float, ...]
    optimized_seconds: tuple[float, ...]

    @property
    def speedups(self) -> tuple[float, ...]:
        return tuple(b / o for b, o in zip(self.baseline_seconds, self.optimized_seconds))

    @property
    def gmean(self) -> float:
        return geometric_mean(self.speedups)

    @property
    def max_speedup(self) -> float:
        return max(self.speedups)

    @property
    def min_speedup(self) -> float:
        return min(self.speedups)

    def as_rows(self) -> list[list[str]]:
        rows = [
            [label, f"{base:.4e}", f"{opt:.4e}", f"{base / opt:.2f}x"]
            for label, base, opt in zip(
                self.labels, self.baseline_seconds, self.optimized_seconds
            )
        ]
        rows.append(["GMean", "", "", f"{self.gmean:.2f}x"])
        return rows


def speedup_series(labels, baseline_seconds, optimized_seconds) -> SpeedupSeries:
    """Build a :class:`SpeedupSeries`, validating lengths and positivity."""
    labels = tuple(str(x) for x in labels)
    base = tuple(float(x) for x in baseline_seconds)
    opt = tuple(float(x) for x in optimized_seconds)
    require(len(labels) == len(base) == len(opt), "series lengths disagree")
    require(all(x > 0 for x in base + opt), "times must be positive")
    return SpeedupSeries(labels, base, opt)
