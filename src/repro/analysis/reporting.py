"""Plain-text tables for the benchmark harness output."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(headers, rows, title: str | None = None) -> str:
    """Render an aligned ASCII table (headers + rows of strings)."""
    headers = [str(h) for h in headers]
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(len(cell))
            else:
                widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
