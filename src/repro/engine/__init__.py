"""Host execution engine: plan cache, batched MTTKRP, sharded execution.

The engine makes the *concrete* NumPy hot paths fast without touching the
simulated machine model: per-tensor execution plans cache everything the
seed kernels recompute per call (sort permutations, segment offsets,
format conversions), execution is cache-blocked and optionally sharded
across threads, and the all-mode batched driver shares factor-row gathers
when one set of factors serves every mode. See docs/PERFORMANCE.md.

Enable per run via ``CstfConfig(engine="on" | "sharded" | EngineConfig(...))``
or on the CLI with ``repro factorize --engine on``.
"""

from repro.engine.backends import (
    ExecutionBackend,
    get_backend,
    shutdown_backends,
)
from repro.engine.batched import all_mode_krp_rows
from repro.engine.config import EngineConfig, resolve_engine
from repro.engine.driver import (
    EngineMttkrp,
    PlanBuildError,
    PreparedFactors,
    engine_mttkrp,
)
from repro.engine.execute import (
    run_plan,
    run_shards,
    run_stream,
    sharded_segment_accumulate,
    shutdown_pools,
)
from repro.engine.plan import MttkrpPlan, PlanCache, SegmentStream, get_plan_cache
from repro.engine.plan_store import PlanStore, store_key

__all__ = [
    "EngineConfig",
    "resolve_engine",
    "ExecutionBackend",
    "get_backend",
    "shutdown_backends",
    "shutdown_pools",
    "PlanStore",
    "store_key",
    "MttkrpPlan",
    "SegmentStream",
    "PlanCache",
    "get_plan_cache",
    "engine_mttkrp",
    "EngineMttkrp",
    "PlanBuildError",
    "PreparedFactors",
    "all_mode_krp_rows",
    "run_plan",
    "run_shards",
    "run_stream",
    "sharded_segment_accumulate",
]
