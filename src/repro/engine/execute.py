"""Plan execution: chunked segment reduction, serial or sharded.

The hot loop is the same fused gather→multiply→reduceat the seed kernels
perform, restructured around a cached :class:`~repro.engine.plan.MttkrpPlan`
in two ways:

- **No per-call sort or gather.** The plan's stream is already presorted
  by target row, so the per-call ``argsort`` and the full ``rows[order]``
  materialized gather of ``segment_accumulate`` disappear.
- **Cache blocking.** The per-nonzero Khatri-Rao accumulator is built and
  reduced chunk by chunk (``EngineConfig.chunk`` nonzeros, aligned to
  segment starts), so the working set stays inside the cache hierarchy
  instead of streaming an ``(nnz, R)`` matrix through memory three times.

Because chunk and shard boundaries never split a segment, and the factor
multiplies happen in the seed's ascending-mode order, every path here is
bitwise identical to the uncached kernels (IEEE multiplication and
``np.add.reduceat`` see the same operands in the same order; sharded
private accumulators cover disjoint rows, so the tree reduce adds exact
zeros).
"""

from __future__ import annotations

import concurrent.futures
import threading

import numpy as np

from repro.kernels.partition import imbalance
from repro.obs import current_telemetry

__all__ = ["run_stream", "run_plan"]

_POOLS: dict[int, concurrent.futures.ThreadPoolExecutor] = {}
_POOL_LOCK = threading.Lock()


def _pool(workers: int) -> concurrent.futures.ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
            _POOLS[workers] = pool
        return pool


def run_stream(stream, fmats, mode: int, out: np.ndarray, chunk: int) -> np.ndarray:
    """Accumulate one presorted segment stream into *out*, chunk by chunk."""
    if stream.nnz == 0:
        return out
    others = [m for m in range(len(stream.cols)) if m != mode]
    cols, values = stream.cols, stream.values
    starts, bounds, out_index = stream.starts, stream.bounds, stream.out_index
    edges = stream.chunk_edges(chunk)
    for i in range(edges.shape[0] - 1):
        a, b = int(edges[i]), int(edges[i + 1])
        lo, hi = int(bounds[a]), int(bounds[b])
        if others:
            m0 = others[0]
            acc = values[lo:hi, None] * fmats[m0][cols[m0][lo:hi]]
            for m in others[1:]:
                acc *= fmats[m][cols[m][lo:hi]]
        else:  # single-mode tensor: the Khatri-Rao product is empty
            acc = np.broadcast_to(
                values[lo:hi, None], (hi - lo, out.shape[1])
            ).copy()
        sums = np.add.reduceat(acc, starts[a:b] - lo, axis=0)
        out[out_index[a:b]] = sums
    return out


def _tree_reduce(partials: list[np.ndarray]) -> np.ndarray:
    """Pairwise in-place reduction of the shard accumulators."""
    while len(partials) > 1:
        nxt = []
        for i in range(0, len(partials) - 1, 2):
            np.add(partials[i], partials[i + 1], out=partials[i])
            nxt.append(partials[i])
        if len(partials) % 2:
            nxt.append(partials[-1])
        partials = nxt
    return partials[0]


def run_plan(plan, fmats, mode: int, out_rows: int, rank: int, cfg) -> np.ndarray:
    """Execute a cached plan: serial chunked, or sharded with a tree reduce."""
    out = np.zeros((out_rows, rank), dtype=np.float64)
    if cfg.shards <= 1 or plan.stream.n_segments <= 1:
        return run_stream(plan.stream, fmats, mode, out, cfg.chunk)

    streams = plan.shard_streams(cfg.shards)
    if len(streams) == 1:
        return run_stream(streams[0], fmats, mode, out, cfg.chunk)

    tel = current_telemetry()
    if tel.enabled:
        tel.gauge("engine.shard.workers", float(len(streams)))
        tel.gauge(
            "engine.shard.imbalance", imbalance([s.nnz for s in streams])
        )
    partials = [out] + [np.zeros_like(out) for _ in streams[1:]]
    pool = _pool(len(streams))
    futures = [
        pool.submit(run_stream, stream, fmats, mode, partial, cfg.chunk)
        for stream, partial in zip(streams, partials)
    ]
    for future in futures:
        future.result()  # re-raises worker exceptions
    return _tree_reduce(partials)
