"""Plan execution: chunked segment reduction, serial or sharded.

The hot loop is the same fused gather→multiply→reduceat the seed kernels
perform, restructured around a cached :class:`~repro.engine.plan.MttkrpPlan`
in two ways:

- **No per-call sort or gather.** The plan's stream is already presorted
  by target row, so the per-call ``argsort`` and the full ``rows[order]``
  materialized gather of ``segment_accumulate`` disappear.
- **Cache blocking.** The per-nonzero Khatri-Rao accumulator is built and
  reduced chunk by chunk (``EngineConfig.chunk`` nonzeros, aligned to
  segment starts), so the working set stays inside the cache hierarchy
  instead of streaming an ``(nnz, R)`` matrix through memory three times.

Because chunk and shard boundaries never split a segment, and the factor
multiplies happen in the seed's ascending-mode order, every path here is
bitwise identical to the uncached kernels (IEEE multiplication and
``np.add.reduceat`` see the same operands in the same order; sharded
private accumulators cover disjoint rows, so the tree reduce adds exact
zeros).

Shard fault tolerance: a worker that raises mid-shard, or one that blows
its per-shard timeout (``EngineConfig.shard_timeout``), is re-executed
*serially* on the dispatching thread into a fresh private accumulator —
deterministically bit-identical, since each shard's summation order is
private and its output rows are disjoint. Retries and timeouts are
counted (``engine.shard.retries`` / ``engine.shard.timeouts``) and logged
as ``shard_retry`` / ``shard_timeout`` resilience events. The chaos
harness drives the same paths on purpose through
:class:`~repro.resilience.faults.FaultInjector`'s ``EXECUTE`` fault kinds
(``worker_crash`` / ``slow_shard``), drawn from its seeded RNG in the
dispatching thread so campaigns replay exactly.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time

import numpy as np

from repro.kernels.partition import imbalance
from repro.obs import current_telemetry
from repro.resilience.events import SHARD_RETRY, SHARD_TIMEOUT

__all__ = ["run_stream", "run_plan", "run_shards", "sharded_segment_accumulate"]

_POOLS: dict[int, concurrent.futures.ThreadPoolExecutor] = {}
_POOL_LOCK = threading.Lock()


def _pool(workers: int) -> concurrent.futures.ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
            _POOLS[workers] = pool
        return pool


def run_stream(stream, fmats, mode: int, out: np.ndarray, chunk: int) -> np.ndarray:
    """Accumulate one presorted segment stream into *out*, chunk by chunk."""
    if stream.nnz == 0:
        return out
    others = [m for m in range(len(stream.cols)) if m != mode]
    cols, values = stream.cols, stream.values
    starts, bounds, out_index = stream.starts, stream.bounds, stream.out_index
    edges = stream.chunk_edges(chunk)
    for i in range(edges.shape[0] - 1):
        a, b = int(edges[i]), int(edges[i + 1])
        lo, hi = int(bounds[a]), int(bounds[b])
        if others:
            m0 = others[0]
            acc = values[lo:hi, None] * fmats[m0][cols[m0][lo:hi]]
            for m in others[1:]:
                acc *= fmats[m][cols[m][lo:hi]]
        else:  # single-mode tensor: the Khatri-Rao product is empty
            acc = np.broadcast_to(
                values[lo:hi, None], (hi - lo, out.shape[1])
            ).copy()
        sums = np.add.reduceat(acc, starts[a:b] - lo, axis=0)
        out[out_index[a:b]] = sums
    return out


def _tree_reduce(partials: list[np.ndarray]) -> np.ndarray:
    """Pairwise in-place reduction of the shard accumulators."""
    while len(partials) > 1:
        nxt = []
        for i in range(0, len(partials) - 1, 2):
            np.add(partials[i], partials[i + 1], out=partials[i])
            nxt.append(partials[i])
        if len(partials) % 2:
            nxt.append(partials[-1])
        partials = nxt
    return partials[0]


def _chaos_worker(stream, fmats, mode, partial, chunk, *, crash=False, delay=0.0):
    """Shard worker wrapper carrying the injected execution faults."""
    if delay > 0.0:
        time.sleep(delay)
    if crash:
        from repro.resilience.faults import InjectedWorkerCrash

        raise InjectedWorkerCrash(f"injected worker crash on mode-{mode} shard")
    return run_stream(stream, fmats, mode, partial, chunk)


def run_shards(
    streams,
    fmats,
    mode: int,
    out_rows: int,
    rank: int,
    cfg,
    *,
    faults=None,
    events=None,
) -> np.ndarray:
    """Execute per-worker shard streams with crash/straggler recovery.

    Every shard accumulates into a private ``(out_rows, rank)`` buffer and
    the buffers are tree-reduced. A shard whose worker raises, or whose
    worker misses the per-shard deadline (``cfg.shard_timeout``), is
    re-executed serially into a *fresh* buffer on this thread — the
    abandoned worker keeps writing into its orphaned private buffer, which
    never enters the reduction, so recovery is bit-identical to a clean
    run.
    """
    tel = current_telemetry()
    if tel.enabled:
        tel.gauge("engine.shard.workers", float(len(streams)))
        tel.gauge(
            "engine.shard.imbalance", imbalance([s.nnz for s in streams])
        )

    injected: dict[str, int] = {}
    delay = 0.0
    if faults is not None:
        injected = faults.draw_shard_faults(len(streams), mode=mode, events=events)
        if "slow_shard" in injected:
            delay = faults.slow_shard_delay()

    partials = [
        np.zeros((out_rows, rank), dtype=np.float64) for _ in streams
    ]
    pool = _pool(len(streams))
    launched = time.monotonic()
    futures = [
        pool.submit(
            _chaos_worker, stream, fmats, mode, partial, cfg.chunk,
            crash=injected.get("worker_crash") == i,
            delay=delay if injected.get("slow_shard") == i else 0.0,
        )
        for i, (stream, partial) in enumerate(zip(streams, partials))
    ]
    for i, future in enumerate(futures):
        budget = None
        if cfg.shard_timeout > 0.0:
            budget = max(0.0, cfg.shard_timeout - (time.monotonic() - launched))
        try:
            future.result(timeout=budget)
        except concurrent.futures.TimeoutError:
            # Straggler: abandon the in-flight worker (it finishes into its
            # orphaned buffer) and redo the shard serially, bit-identically.
            tel.counter("engine.shard.timeouts")
            if events is not None:
                events.record(
                    SHARD_TIMEOUT, "MTTKRP", mode=mode,
                    detail=f"shard {i}/{len(streams)} missed its "
                           f"{cfg.shard_timeout:g}s deadline; re-executed serially",
                    shard=i, nnz=streams[i].nnz,
                )
            partials[i] = run_stream(
                streams[i], fmats, mode,
                np.zeros((out_rows, rank), dtype=np.float64), cfg.chunk,
            )
        except Exception as exc:
            # Worker died mid-shard: deterministic serial re-execution. If
            # the shard is genuinely poisoned (e.g. a corrupted plan), the
            # serial pass raises too and the caller's plan-repair fires.
            tel.counter("engine.shard.retries")
            if events is not None:
                events.record(
                    SHARD_RETRY, "MTTKRP", mode=mode,
                    detail=f"shard {i}/{len(streams)} worker died "
                           f"({type(exc).__name__}: {exc}); re-executed serially",
                    shard=i, nnz=streams[i].nnz,
                )
            partials[i] = run_stream(
                streams[i], fmats, mode,
                np.zeros((out_rows, rank), dtype=np.float64), cfg.chunk,
            )
    return _tree_reduce(partials)


def run_plan(
    plan, fmats, mode: int, out_rows: int, rank: int, cfg, *,
    faults=None, events=None,
) -> np.ndarray:
    """Execute a cached plan: serial chunked, or sharded with a tree reduce."""
    if cfg.shards > 1 and plan.stream.n_segments > 1:
        streams = plan.shard_streams(cfg.shards)
        if len(streams) > 1:
            return run_shards(
                streams, fmats, mode, out_rows, rank, cfg,
                faults=faults, events=events,
            )
    out = np.zeros((out_rows, rank), dtype=np.float64)
    return run_stream(plan.stream, fmats, mode, out, cfg.chunk)


def sharded_segment_accumulate(
    rows: np.ndarray,
    targets: np.ndarray,
    out_rows: int,
    cfg,
    *,
    faults=None,
    events=None,
) -> np.ndarray:
    """Sharded drop-in for :func:`repro.kernels.mttkrp_coo.segment_accumulate`.

    Sorts *rows* by target (stable, like the seed), splits whole segments
    across ``cfg.shards`` workers, and reduces with the fault-tolerant
    shard path — bitwise identical to the serial seed accumulate, because
    no segment is ever split and intra-segment order is preserved. Used by
    the streaming driver's history accumulation.
    """
    from repro.engine.plan import MttkrpPlan, SegmentStream

    rank = int(rows.shape[1])
    if rows.shape[0] == 0 or cfg.shards <= 1:
        from repro.kernels.mttkrp_coo import segment_accumulate

        return segment_accumulate(rows, targets, out_rows)

    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    sorted_rows = np.ascontiguousarray(rows[order])
    n = sorted_rows.shape[0]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_targets[1:] != sorted_targets[:-1]))
    )
    # A pre-scaled stream: values of one and a single positional "factor"
    # holding the already-formed Khatri-Rao rows, so run_stream reduces
    # exactly the rows the seed accumulate would (1.0 * rows == rows,
    # bitwise). The coordinate column carries global positions, which stay
    # valid inside per-shard gathered sub-streams.
    stream = SegmentStream(
        (np.arange(n, dtype=np.int64),),
        np.ones(n, dtype=np.float64),
        starts, sorted_targets[starts],
    )
    plan = MttkrpPlan(0, out_rows, stream)
    streams = plan.shard_streams(cfg.shards)
    if len(streams) <= 1:
        out = np.zeros((out_rows, rank), dtype=np.float64)
        return run_stream(stream, [sorted_rows], None, out, cfg.chunk)
    # mode=None: the single positional column counts as an "other" mode.
    return run_shards(
        streams, [sorted_rows], None, out_rows, rank, cfg,
        faults=faults, events=events,
    )
