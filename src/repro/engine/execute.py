"""Plan execution: chunked segment reduction, serial or sharded.

The hot loop is the same fused gather→multiply→reduceat the seed kernels
perform, restructured around a cached :class:`~repro.engine.plan.MttkrpPlan`
in two ways:

- **No per-call sort or gather.** The plan's stream is already presorted
  by target row, so the per-call ``argsort`` and the full ``rows[order]``
  materialized gather of ``segment_accumulate`` disappear.
- **Cache blocking.** The per-nonzero Khatri-Rao accumulator is built and
  reduced chunk by chunk (``EngineConfig.chunk`` nonzeros, aligned to
  segment starts), so the working set stays inside the cache hierarchy
  instead of streaming an ``(nnz, R)`` matrix through memory three times.

Because chunk and shard boundaries never split a segment, and the factor
multiplies happen in the seed's ascending-mode order, every path here is
bitwise identical to the uncached kernels (IEEE multiplication and
``np.add.reduceat`` see the same operands in the same order; sharded
private accumulators cover disjoint rows, so the tree reduce adds exact
zeros).

*Where* shards run is the :mod:`repro.engine.backends` seam:
``EngineConfig.backend`` selects inline execution (``serial``), the shared
thread pool (``threads``, the default), or isolated worker processes with
real crash recovery (``processes``). All backends honor one contract — a
shard whose worker raises, misses the ``shard_timeout`` deadline, or
(process backend) dies outright is re-executed serially on the dispatching
thread into a fresh private accumulator, deterministically bit-identical,
with the recovery counted (``engine.shard.retries`` / ``.timeouts`` /
``engine.backend.workers_lost``) and logged as ``shard_retry`` /
``shard_timeout`` / ``worker_lost`` resilience events. The chaos harness
drives the same paths on purpose through
:class:`~repro.resilience.faults.FaultInjector`'s ``EXECUTE`` fault kinds
(``worker_crash`` / ``slow_shard`` / ``kill_worker``), drawn from its
seeded RNG in the dispatching thread so campaigns replay exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "run_stream",
    "run_plan",
    "run_shards",
    "sharded_segment_accumulate",
    "shutdown_pools",
]


def run_stream(stream, fmats, mode: int, out: np.ndarray, chunk: int) -> np.ndarray:
    """Accumulate one presorted segment stream into *out*, chunk by chunk."""
    if stream.nnz == 0:
        return out
    others = [m for m in range(len(stream.cols)) if m != mode]
    cols, values = stream.cols, stream.values
    starts, bounds, out_index = stream.starts, stream.bounds, stream.out_index
    edges = stream.chunk_edges(chunk)
    for i in range(edges.shape[0] - 1):
        a, b = int(edges[i]), int(edges[i + 1])
        lo, hi = int(bounds[a]), int(bounds[b])
        if others:
            m0 = others[0]
            acc = values[lo:hi, None] * fmats[m0][cols[m0][lo:hi]]
            for m in others[1:]:
                acc *= fmats[m][cols[m][lo:hi]]
        else:  # single-mode tensor: the Khatri-Rao product is empty
            acc = np.broadcast_to(
                values[lo:hi, None], (hi - lo, out.shape[1])
            ).copy()
        sums = np.add.reduceat(acc, starts[a:b] - lo, axis=0)
        out[out_index[a:b]] = sums
    return out


def run_shards(
    streams,
    fmats,
    mode: int,
    out_rows: int,
    rank: int,
    cfg,
    *,
    faults=None,
    events=None,
    plan_ref=None,
) -> np.ndarray:
    """Execute per-worker shard streams with crash/straggler recovery.

    Thin dispatcher over the backend selected by ``cfg.backend`` (see
    :mod:`repro.engine.backends`). Every shard accumulates into a private
    ``(out_rows, rank)`` buffer and the buffers are tree-reduced; failed
    shards are redone serially on this thread — bit-identical on every
    backend, because shard summation order is private and output rows are
    disjoint.
    """
    from repro.engine.backends import get_backend

    backend = get_backend(getattr(cfg, "backend", "threads"))
    return backend.run_shards(
        streams, fmats, mode, out_rows, rank, cfg,
        faults=faults, events=events, plan_ref=plan_ref,
    )


def shutdown_pools() -> None:
    """Tear down every live backend's workers (thread pools, processes).

    Kept as the historically-named lifecycle hook for the old module-global
    thread pools; delegates to
    :func:`repro.engine.backends.shutdown_backends`, which is also run
    ``atexit``. Safe to call at any point — backends respawn lazily.
    """
    from repro.engine.backends import shutdown_backends

    shutdown_backends()


def run_plan(
    plan, fmats, mode: int, out_rows: int, rank: int, cfg, *,
    faults=None, events=None,
) -> np.ndarray:
    """Execute a cached plan: serial chunked, or sharded with a tree reduce."""
    if cfg.shards > 1 and plan.stream.n_segments > 1:
        streams = plan.shard_streams(cfg.shards)
        if len(streams) > 1:
            plan_ref = None
            store_root = getattr(cfg, "plan_store", None)
            store_key = getattr(plan, "store_key", None)
            if store_root is not None and store_key is not None:
                plan_ref = (store_root, store_key)
            return run_shards(
                streams, fmats, mode, out_rows, rank, cfg,
                faults=faults, events=events, plan_ref=plan_ref,
            )
    out = np.zeros((out_rows, rank), dtype=np.float64)
    return run_stream(plan.stream, fmats, mode, out, cfg.chunk)


def sharded_segment_accumulate(
    rows: np.ndarray,
    targets: np.ndarray,
    out_rows: int,
    cfg,
    *,
    faults=None,
    events=None,
) -> np.ndarray:
    """Sharded drop-in for :func:`repro.kernels.mttkrp_coo.segment_accumulate`.

    Sorts *rows* by target (stable, like the seed), splits whole segments
    across ``cfg.shards`` workers, and reduces with the fault-tolerant
    shard path — bitwise identical to the serial seed accumulate, because
    no segment is ever split and intra-segment order is preserved. Used by
    the streaming driver's history accumulation.
    """
    from repro.engine.plan import MttkrpPlan, SegmentStream

    rank = int(rows.shape[1])
    if rows.shape[0] == 0 or cfg.shards <= 1:
        from repro.kernels.mttkrp_coo import segment_accumulate

        return segment_accumulate(rows, targets, out_rows)

    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    sorted_rows = np.ascontiguousarray(rows[order])
    n = sorted_rows.shape[0]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_targets[1:] != sorted_targets[:-1]))
    )
    # A pre-scaled stream: values of one and a single positional "factor"
    # holding the already-formed Khatri-Rao rows, so run_stream reduces
    # exactly the rows the seed accumulate would (1.0 * rows == rows,
    # bitwise). The coordinate column carries global positions, which stay
    # valid inside per-shard gathered sub-streams.
    stream = SegmentStream(
        (np.arange(n, dtype=np.int64),),
        np.ones(n, dtype=np.float64),
        starts, sorted_targets[starts],
    )
    plan = MttkrpPlan(0, out_rows, stream)
    streams = plan.shard_streams(cfg.shards)
    if len(streams) <= 1:
        out = np.zeros((out_rows, rank), dtype=np.float64)
        return run_stream(stream, [sorted_rows], None, out, cfg.chunk)
    # mode=None: the single positional column counts as an "other" mode.
    return run_shards(
        streams, [sorted_rows], None, out_rows, rank, cfg,
        faults=faults, events=events,
    )
