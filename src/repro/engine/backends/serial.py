"""Serial backend: shard streams executed inline, one after another.

The degenerate rung of the backend ladder — no workers, so nothing can
crash or straggle, and execution faults targeting workers have nothing to
hit (they are not drawn, keeping a serial run's injector RNG stream
aligned with a run that never shards). Exists so ``EngineConfig.backend``
is total: ``backend="serial"`` with ``shards > 1`` still partitions and
tree-reduces — bit-identical to every parallel backend by the shared
contract — which is what the equivalence suite leans on.
"""

from __future__ import annotations

import numpy as np

from repro.engine.backends.base import (
    ExecutionBackend,
    run_shard_captured,
    tree_reduce,
)
from repro.obs import current_telemetry

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    name = "serial"

    def run_shards(
        self, streams, fmats, mode, out_rows, rank, cfg, *,
        faults=None, events=None, plan_ref=None,
    ) -> np.ndarray:
        self._announce(streams)
        tel = current_telemetry()
        anchor = tel.current_span_id()
        partials = []
        for i, stream in enumerate(streams):
            t0 = tel.now()
            partial, batch = run_shard_captured(
                stream, fmats, mode,
                np.zeros((out_rows, rank), dtype=np.float64), cfg.chunk, i,
                enabled=tel.enabled,
            )
            self._finish_shard(
                tel, anchor, t0, i, stream.nnz, [batch],
                captured=tel.enabled, transport="inline",
            )
            partials.append(partial)
        return tree_reduce(partials)
