"""Shared-memory shard transport: the zero-copy tier of the process pool.

The process backend's baseline transport pickles every factor matrix into
every worker's task pipe and pickles each ``(out_rows, rank)`` accumulator
back — per shard, per MTTKRP dispatch. This module provides the zero-copy
alternative: the parent publishes each factor matrix **once** into a
POSIX shared-memory segment (one write, N readers) and pre-allocates one
shm accumulator per shard that the worker fills in place, so the pipes
carry only small dicts of segment names/shapes and replies shrink to a
status tuple.

Ownership is strictly parent-side. The :class:`SegmentPool` lives in the
dispatching process; workers only ever *attach* by name (read/write map,
no create, no unlink) and detach in a ``finally``. Segments are reused
across dispatches via a free list sized by capacity, stamped with a
monotonically increasing **generation** per dispatch so a respawned or
lagging worker can refuse a descriptor from an older dispatch instead of
scribbling on recycled memory. Unlinking happens in exactly three places —
:meth:`SegmentPool.flush_free` on worker respawn, :meth:`SegmentPool.close`
on backend shutdown (wired into ``shutdown_backends`` and its ``atexit``
hook), and :meth:`SegmentPool.discard` when a fault path abandons a
shard's accumulator — so a clean run leaks nothing and a crashed worker
cannot take a segment down with it.

CPython quirk this module hides: ``SharedMemory(name=...)`` *attaches*
also register with the ``resource_tracker`` (bpo-39959), so a worker that
exits — or is SIGKILLed by the chaos harness — would cause the tracker to
unlink segments the parent still owns. :func:`attach_segment` therefore
unregisters every attach immediately.
"""

from __future__ import annotations

import os

import numpy as np

from repro.obs import current_telemetry

__all__ = [
    "SegmentLease",
    "SegmentPool",
    "ShmAttachError",
    "ShmExhausted",
    "attach_segment",
    "segment_view",
    "shm_available",
]

_PROBE: bool | None = None


class ShmAttachError(RuntimeError):
    """A worker could not (or must not) map a parent-published segment.

    Raised on a failed ``SharedMemory(name=...)`` attach and on a stale
    generation tag. The worker reports it over the reply pipe like any
    in-worker exception; the parent counts ``engine.shm.attach_failures``
    and redoes the shard serially into a private buffer — bit-identical,
    because the shm accumulator was never read.
    """


class ShmExhausted(RuntimeError):
    """A segment lease could not be satisfied under /dev/shm pressure.

    Raised by :meth:`SegmentPool.lease` when the memory budget (after
    trimming every idle segment) still cannot fit the request, when the
    kernel itself refuses the allocation (a genuinely full /dev/shm), or
    when the ``shm_exhausted`` chaos fault is armed. The process backend
    catches it per dispatch and downgrades to the pipe transport
    (``transport_downgraded``) instead of failing the run.
    """


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this host (cached).

    Probes by round-tripping a tiny real segment rather than trusting the
    import: containers without a usable ``/dev/shm`` fail here, and the
    ``shm="auto"`` default then falls back to the pipe transport.
    """
    global _PROBE
    if _PROBE is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            _PROBE = True
        except Exception:  # pragma: no cover - host without /dev/shm
            _PROBE = False
    return _PROBE


def attach_segment(name: str):
    """Worker-side: map an existing segment by name, tracker-safe.

    Never creates: a worker that attaches a name the parent did not
    publish (or already unlinked) gets :class:`ShmAttachError`, not a
    fresh orphan segment.
    """
    from multiprocessing import resource_tracker, shared_memory

    # bpo-39959: attaching registers with the resource tracker, which
    # would unlink this (parent-owned, still live) segment when the worker
    # dies — and N workers attaching the same factor segment would send
    # duplicate unregisters the tracker chokes on. The parent is the sole
    # owner: suppress registration for the attach instead.
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    except Exception as exc:
        raise ShmAttachError(
            f"cannot attach shm segment {name!r}: {exc}"
        ) from exc
    finally:
        resource_tracker.register = original_register


def segment_view(seg, shape) -> np.ndarray:
    """A float64 ndarray view of the leading bytes of a segment.

    Segments are reused by capacity, so ``seg.buf`` may be larger than the
    array; the view covers exactly ``prod(shape)`` elements from offset 0.
    """
    shape = tuple(int(d) for d in shape)
    count = 1
    for dim in shape:
        count *= dim
    return np.frombuffer(seg.buf, dtype=np.float64, count=count).reshape(shape)


def _destroy(seg) -> None:
    """Unlink + unmap one segment, tolerating both late and double frees."""
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass
    try:
        seg.close()
    except BufferError:
        # A view still maps the buffer. The name is already unlinked, so
        # nothing leaks past process exit; neuter the handle so __del__
        # does not retry (and noisily fail) when the handle is collected
        # before the last view is.
        seg._buf = None
        seg._mmap = None


class SegmentLease(object):
    """One pooled segment checked out for a single dispatch."""

    __slots__ = ("seg", "capacity")

    def __init__(self, seg, capacity: int):
        self.seg = seg
        self.capacity = int(capacity)

    @property
    def name(self) -> str:
        return self.seg.name

    def view(self, shape) -> np.ndarray:
        return segment_view(self.seg, shape)


class SegmentPool:
    """Parent-owned pool of reusable shared-memory segments.

    ``lease(nbytes)`` returns the smallest free segment that fits (or
    creates one, bumping ``engine.shm.segments`` / ``engine.shm.bytes``);
    ``release`` returns it to the free list for the next dispatch. The
    pool is single-threaded by construction — one dispatcher leases and
    releases around each ``run_shards`` call — so there is no locking.

    When ``budget_bytes`` is set (> 0) the pool bounds its *live*
    /dev/shm footprint — free-list segments included — by that budget:
    a lease that would exceed it first trims idle segments
    (``engine.shm.trims``), and if the request still cannot fit raises
    :class:`ShmExhausted`. Kernel-level allocation failures (a really
    full /dev/shm) surface as :class:`ShmExhausted` too, so callers
    have exactly one pressure signal to handle.
    """

    def __init__(self, budget_bytes: int = 0):
        self._free: list[SegmentLease] = []
        self._leased: list[SegmentLease] = []
        self._generation = 0
        self._pid = os.getpid()
        self.budget_bytes = int(budget_bytes)
        # Armed by the shm_exhausted chaos fault: the next lease raises
        # ShmExhausted exactly once, exercising the pipe-downgrade path
        # without actually filling /dev/shm.
        self.fail_next_lease = False

    # ------------------------------------------------------------------ #
    def next_generation(self) -> int:
        """A fresh dispatch tag; workers refuse anything older than seen."""
        self._generation += 1
        return self._generation

    def live_bytes(self) -> int:
        """Total /dev/shm bytes the pool currently holds (free + leased)."""
        return sum(l.capacity for l in self._free) + sum(
            l.capacity for l in self._leased
        )

    def _trim(self, excess: int) -> None:
        """Destroy idle segments, largest first, to free at least *excess*."""
        freed = 0
        tel = current_telemetry()
        for lease in sorted(self._free, key=lambda l: -l.capacity):
            if freed >= excess:
                break
            self._free.remove(lease)
            freed += lease.capacity
            _destroy(lease.seg)
            tel.counter("engine.shm.trims")

    def lease(self, nbytes: int) -> SegmentLease:
        nbytes = max(int(nbytes), 1)
        if self.fail_next_lease:
            self.fail_next_lease = False
            raise ShmExhausted(
                "injected shm_exhausted fault: /dev/shm lease refused"
            )
        best = None
        for lease in self._free:
            if lease.capacity >= nbytes and (
                best is None or lease.capacity < best.capacity
            ):
                best = lease
        if best is not None:
            self._free.remove(best)
        else:
            budget = self.budget_bytes
            if budget > 0 and self.live_bytes() + nbytes > budget:
                self._trim(self.live_bytes() + nbytes - budget)
            if budget > 0 and self.live_bytes() + nbytes > budget:
                raise ShmExhausted(
                    f"memory budget of {budget} bytes cannot fit a "
                    f"{nbytes}-byte segment ({self.live_bytes()} bytes live)"
                )
            from multiprocessing import shared_memory

            try:
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
            except OSError as exc:  # pragma: no cover - host /dev/shm full
                raise ShmExhausted(
                    f"/dev/shm allocation of {nbytes} bytes failed: {exc}"
                ) from exc
            best = SegmentLease(seg, seg.size)
            tel = current_telemetry()
            tel.counter("engine.shm.segments")
            tel.counter("engine.shm.bytes", float(seg.size))
        self._leased.append(best)
        return best

    def release(self, lease: SegmentLease) -> None:
        """Return a lease to the free list (segment kept for reuse)."""
        if lease in self._leased:
            self._leased.remove(lease)
            self._free.append(lease)

    def discard(self, lease: SegmentLease) -> None:
        """Destroy a leased segment outright (fault hygiene).

        A SIGKILLed or timed-out worker may have been mid-write into its
        shm accumulator; that memory is never read and never recycled —
        the serial redo gets a fresh private buffer and the next dispatch
        gets a fresh segment.
        """
        if lease in self._leased:
            self._leased.remove(lease)
        _destroy(lease.seg)

    def flush_free(self) -> None:
        """Unlink every idle segment (respawn hygiene).

        Called when a worker is respawned: the replacement must never be
        able to attach a recycled name from a dispatch it did not see.
        In-flight leases of the current dispatch are untouched.
        """
        free, self._free = self._free, []
        for lease in free:
            _destroy(lease.seg)

    def close(self) -> None:
        """Unlink everything — free *and* leased. Idempotent."""
        self.flush_free()
        leased, self._leased = self._leased, []
        for lease in leased:
            _destroy(lease.seg)

    def segment_names(self) -> list[str]:
        """Names of every segment the pool currently owns (tests/leak checks)."""
        return [lease.name for lease in self._free + self._leased]
