"""The execution-backend seam: how sharded MTTKRP work gets dispatched.

An :class:`ExecutionBackend` owns exactly one decision — *where* the
per-shard segment streams run (inline, on a thread pool, or in isolated
worker processes) and how a worker that fails is detected and recovered.
Everything numeric is shared: every backend executes the identical
:func:`~repro.engine.execute.run_stream` per shard into a private
``(out_rows, rank)`` accumulator and tree-reduces the partials, so all
backends are bitwise identical to serial execution (disjoint output rows;
the reduce adds exact zeros).

The recovery contract every backend honors: a shard whose worker fails —
raises, misses the ``shard_timeout`` deadline, or (process backend) is
killed outright — is re-executed *serially on the dispatching thread* into
a fresh accumulator. Each shard's summation order is private, so the redo
is bit-identical to a clean run; the abandoned worker's orphaned buffer
never enters the reduction.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.partition import imbalance
from repro.obs import current_telemetry

__all__ = ["ExecutionBackend", "tree_reduce"]


def tree_reduce(partials: list[np.ndarray]) -> np.ndarray:
    """Pairwise in-place reduction of the shard accumulators."""
    while len(partials) > 1:
        nxt = []
        for i in range(0, len(partials) - 1, 2):
            np.add(partials[i], partials[i + 1], out=partials[i])
            nxt.append(partials[i])
        if len(partials) % 2:
            nxt.append(partials[-1])
        partials = nxt
    return partials[0]


class ExecutionBackend:
    """One shard-dispatch strategy; see the module docstring for the contract."""

    #: Registry name (``EngineConfig.backend`` value selecting this backend).
    name = "base"

    def run_shards(
        self,
        streams,
        fmats,
        mode: int,
        out_rows: int,
        rank: int,
        cfg,
        *,
        faults=None,
        events=None,
        plan_ref=None,
    ) -> np.ndarray:
        """Execute per-worker shard streams and tree-reduce the partials.

        ``plan_ref`` is an optional ``(plan_store_root, store_key)`` pair:
        when the dispatching side persisted the plan to an on-disk
        :class:`~repro.engine.plan_store.PlanStore`, process workers load
        (and memoize) it by key instead of receiving the shard stream over
        the task pipe.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (pools, processes, pipes). Idempotent."""

    # ------------------------------------------------------------------ #
    # Shared pre-dispatch bookkeeping
    # ------------------------------------------------------------------ #
    def _announce(self, streams) -> None:
        tel = current_telemetry()
        if tel.enabled:
            tel.counter("engine.backend.dispatches")
            tel.gauge("engine.shard.workers", float(len(streams)))
            tel.gauge(
                "engine.shard.imbalance", imbalance([s.nnz for s in streams])
            )

    @staticmethod
    def _redo_serial(stream, fmats, mode, out_rows: int, rank: int, chunk: int):
        """Deterministic serial re-execution of one lost shard."""
        from repro.engine.execute import run_stream

        return run_stream(
            stream, fmats, mode,
            np.zeros((out_rows, rank), dtype=np.float64), chunk,
        )
