"""The execution-backend seam: how sharded MTTKRP work gets dispatched.

An :class:`ExecutionBackend` owns exactly one decision — *where* the
per-shard segment streams run (inline, on a thread pool, or in isolated
worker processes) and how a worker that fails is detected and recovered.
Everything numeric is shared: every backend executes the identical
:func:`~repro.engine.execute.run_stream` per shard into a private
``(out_rows, rank)`` accumulator and tree-reduces the partials, so all
backends are bitwise identical to serial execution (disjoint output rows;
the reduce adds exact zeros).

The recovery contract every backend honors: a shard whose worker fails —
raises, misses the ``shard_timeout`` deadline, or (process backend) is
killed outright — is re-executed *serially on the dispatching thread* into
a fresh accumulator. Each shard's summation order is private, so the redo
is bit-identical to a clean run; the abandoned worker's orphaned buffer
never enters the reduction.

The observability contract is backend-independent too: every executed
shard runs through :func:`run_shard_captured`, which records a
``shard_kernel`` span (plus any counters the shard code touches) in a
local :class:`~repro.obs.worker.WorkerTelemetrySession` and returns the
drained batch alongside the partial. The dispatching side synthesizes one
``shard`` span per shard under the ambient session's current span
(:meth:`ExecutionBackend._finish_shard`) and merges the worker batch
beneath it with pid/worker attribution — so a trace has the same shape
whether the shard ran inline, on a thread, or in another process. Each
``shard`` span additionally carries a ``transport`` attr (``inline`` /
``threads`` / ``pipe`` / ``shm``) naming how that shard's inputs and
accumulator actually traveled, so traces prove which transport ran.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.partition import imbalance
from repro.obs import current_telemetry
from repro.obs.worker import WorkerTelemetrySession, merge_worker_batch

__all__ = ["ExecutionBackend", "tree_reduce", "run_shard_captured"]


def run_shard_captured(
    stream, fmats, mode, out: np.ndarray, chunk: int, shard: int, *,
    enabled: bool = True,
):
    """Execute one shard stream under a local capture session.

    Returns ``(partial, batch)``: the accumulator and the drained
    telemetry batch — a ``shard_kernel`` span plus whatever counters the
    shard code bumped — ready for :func:`~repro.obs.worker.merge_worker_batch`.
    With ``enabled=False`` the capture session is skipped entirely and the
    batch is ``None`` (the zero-overhead path when telemetry is off).

    This is the one shard entry point every backend shares: process
    workers call it in the child, the threads backend calls it on pool
    threads (whose contextvars never see the ambient session), and the
    serial backend calls it inline — identical numerics, identical trace
    shape.
    """
    from repro.engine.execute import run_stream

    if not enabled:
        return run_stream(stream, fmats, mode, out, chunk), None
    session = WorkerTelemetrySession(worker_id=shard)
    with session.activate():
        with session.span("shard_kernel", shard=shard, mode=mode, nnz=stream.nnz):
            result = run_stream(stream, fmats, mode, out, chunk)
    return result, session.drain()


def tree_reduce(partials: list[np.ndarray]) -> np.ndarray:
    """Pairwise in-place reduction of the shard accumulators.

    The empty list is a contract violation, not a silent zero: a dispatch
    always has at least one shard (``EngineConfig.shards >= 1``), and the
    shape/dtype of an empty reduction would have to be invented. Raises
    ``ValueError`` so a buggy caller fails loudly instead of with a bare
    ``IndexError`` deep in the reduce.
    """
    if not partials:
        raise ValueError("tree_reduce() requires at least one shard partial")
    while len(partials) > 1:
        nxt = []
        for i in range(0, len(partials) - 1, 2):
            np.add(partials[i], partials[i + 1], out=partials[i])
            nxt.append(partials[i])
        if len(partials) % 2:
            nxt.append(partials[-1])
        partials = nxt
    return partials[0]


class ExecutionBackend:
    """One shard-dispatch strategy; see the module docstring for the contract."""

    #: Registry name (``EngineConfig.backend`` value selecting this backend).
    name = "base"

    def run_shards(
        self,
        streams,
        fmats,
        mode: int,
        out_rows: int,
        rank: int,
        cfg,
        *,
        faults=None,
        events=None,
        plan_ref=None,
    ) -> np.ndarray:
        """Execute per-worker shard streams and tree-reduce the partials.

        ``plan_ref`` is an optional ``(plan_store_root, store_key)`` pair:
        when the dispatching side persisted the plan to an on-disk
        :class:`~repro.engine.plan_store.PlanStore`, process workers load
        (and memoize) it by key instead of receiving the shard stream over
        the task pipe.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (pools, processes, pipes). Idempotent."""

    # ------------------------------------------------------------------ #
    # Shared pre-dispatch bookkeeping
    # ------------------------------------------------------------------ #
    def _announce(self, streams) -> None:
        tel = current_telemetry()
        if tel.enabled:
            tel.counter("engine.backend.dispatches")
            tel.gauge("engine.shard.workers", float(len(streams)))
            tel.gauge(
                "engine.shard.imbalance", imbalance([s.nnz for s in streams])
            )

    @staticmethod
    def _redo_serial(stream, fmats, mode, out_rows: int, rank: int, chunk: int):
        """Deterministic serial re-execution of one lost shard."""
        from repro.engine.execute import run_stream

        return run_stream(
            stream, fmats, mode,
            np.zeros((out_rows, rank), dtype=np.float64), chunk,
        )

    @staticmethod
    def _redo_captured(
        stream, fmats, mode, out_rows: int, rank: int, chunk: int,
        shard: int, *, enabled: bool = True,
    ):
        """Captured variant of :meth:`_redo_serial`: ``(partial, batch)``."""
        return run_shard_captured(
            stream, fmats, mode,
            np.zeros((out_rows, rank), dtype=np.float64), chunk, shard,
            enabled=enabled,
        )

    # ------------------------------------------------------------------ #
    # Shared post-shard bookkeeping
    # ------------------------------------------------------------------ #
    def _finish_shard(
        self, tel, anchor: int | None, t0: float, shard: int, nnz: int,
        batches, *, redone: bool = False, captured: bool = True,
        transport: str | None = None,
    ) -> None:
        """Synthesize the parent-side ``shard`` span and merge worker batches.

        *anchor* is the ambient session's current span id at dispatch time
        (typically the driver's ``mttkrp`` span); *t0* the dispatch
        timestamp on the session clock. Shard spans overlap in time, so
        they cannot ride the LIFO span stack — :meth:`Telemetry.add_span`
        records them as already-completed spans. When *captured* shards
        ship no spans at all, the ``obs.worker.silent`` counter bumps —
        the doctor's ``silent_worker`` evidence.

        *transport* names how the shard's inputs and accumulator actually
        traveled — ``"inline"`` (same-thread execution, including every
        serial redo), ``"threads"`` (shared-address-space pool), ``"pipe"``
        (pickled over the worker pipe), or ``"shm"`` (zero-copy shared
        memory) — recorded as the shard span's ``transport`` attr so a
        trace *proves* which transport ran (``check_trace.py
        --require-transport-attr``).
        """
        if not tel.enabled:
            return
        attrs = {"shard": int(shard), "nnz": int(nnz)}
        if transport is not None:
            attrs["transport"] = str(transport)
        if redone:
            attrs["redone"] = True
        span = tel.add_span("shard", t0, tel.now() - t0, parent=anchor, attrs=attrs)
        merged = 0
        for batch in batches or ():
            merged += merge_worker_batch(tel, batch, anchor=span)
        if captured and merged == 0:
            tel.counter("obs.worker.silent")
