"""Process-pool backend: shards in isolated workers, with real crash recovery.

Workers are separate OS processes, so the failure modes are the real
thing: a worker that takes a ``SIGKILL`` (OOM killer, operator, the chaos
harness's ``kill_worker`` fault) or aborts simply *disappears* — no
exception, no return value. The dispatching side runs a watchdog around
every outstanding shard:

- **liveness** — each worker owns a private duplex pipe; while a result is
  pending the parent polls the pipe and the process in short beats. A
  worker that is no longer alive (negative exitcode = died on a signal) is
  declared lost: a ``worker_lost`` event is recorded, the
  ``engine.backend.workers_lost`` counter bumps, the worker is respawned,
  and the lost shard is re-executed serially on the dispatching thread —
  deterministically bit-identical, because each shard's summation order is
  private and its output rows are disjoint.
- **straggler deadline** — a worker that is alive but has not delivered
  within ``EngineConfig.shard_timeout`` is killed outright (its private
  accumulator dies with it) and handled the same way, as a
  ``shard_timeout``.
- **in-worker exceptions** — a worker that raises sends back an error
  marker and stays alive; the shard is redone serially (``shard_retry``),
  matching the threads backend.

Workers hold **private accumulators over disjoint output rows** (the
medium-grained factor-block partitioning of Liavas & Sidiropoulos's
distributed ADMM), so the parent-side tree reduce adds exact zeros and
every recovery path is rtol=0 against serial execution.

Task shipping: the parent's in-memory plan cache is invisible to workers,
so a task either carries its shard stream inline (pickled over the pipe)
or — when the plan was persisted to the on-disk
:class:`~repro.engine.plan_store.PlanStore` — just the store key plus the
shard coordinates. Workers memoize store loads and re-derive shard
streams with the same deterministic LPT assignment as the parent, so
repeated iterations ship only factor matrices.

Pools are lazily sized, persistent across calls, refreshed if the parent
PID changes (fork safety: a forked child never reuses inherited workers,
whose pipes it shares with the real parent), and torn down by
:meth:`shutdown` / the registry ``atexit`` hook.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np

from repro.engine.backends.base import ExecutionBackend, tree_reduce
from repro.obs import current_telemetry
from repro.obs.worker import merge_worker_batch
from repro.resilience.events import SHARD_RETRY, SHARD_TIMEOUT, WORKER_LOST

__all__ = ["ProcessBackend"]

#: Watchdog poll beat while a shard result is outstanding, in seconds.
HEARTBEAT = 0.02

#: Liveness budget for a shard when ``shard_timeout`` is disabled: the
#: watchdog still detects dead workers on every beat, it just never
#: declares a live worker a straggler.
_NO_DEADLINE = float("inf")


def _worker_main(conn, worker_id: int) -> None:
    """Worker loop: receive task dicts, answer ``("ok", partial, batch)``.

    Runs until the parent sends ``None`` or closes the pipe. Exceptions
    are answered as ``("error", message, batch)`` and do not kill the
    worker; an injected ``kill`` task dies by real ``SIGKILL`` before any
    reply, which is exactly the silence the parent's watchdog must detect.

    Telemetry: the worker installs its own
    :class:`~repro.obs.worker.WorkerTelemetrySession` as the ambient
    session the moment it starts (the parent's session never crosses the
    fork — see :mod:`repro.obs.spans`), so ``shard_kernel`` spans *and*
    everything deep code bumps — plan-store hit/miss counters, gauges —
    are captured locally. Each reply piggybacks the drained batch when the
    task asked for capture; the ``None`` shutdown sentinel is answered
    with a final ``("flush", batch)`` carrying whatever is still
    unshipped, so end-of-run traces are never truncated.
    """
    from repro.engine.execute import run_stream
    from repro.obs.worker import WorkerTelemetrySession

    session = WorkerTelemetrySession(worker_id=worker_id)
    session.push()
    store = None
    plans: dict = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            session.counter("obs.worker.flushes")
            try:
                conn.send(("flush", session.drain()))
            except (OSError, ValueError):
                pass
            return
        capture = bool(task.get("telemetry"))
        try:
            if task.get("kill"):
                os.kill(os.getpid(), signal.SIGKILL)
            if task.get("delay", 0.0) > 0.0:
                time.sleep(task["delay"])
            if task.get("crash"):
                from repro.resilience.faults import InjectedWorkerCrash

                raise InjectedWorkerCrash(
                    f"injected worker crash on mode-{task['mode']} shard"
                )
            stream = task.get("stream")
            if stream is None:
                key = task["key"]
                plan = plans.get(key)
                if plan is None:
                    if store is None or os.fspath(store.root) != task["store"]:
                        from repro.engine.plan_store import PlanStore

                        store = PlanStore(task["store"])
                        plans.clear()
                    plan = store.load(key)
                    if plan is None:
                        raise RuntimeError(
                            f"plan-store entry {key} is missing or quarantined"
                        )
                    plans[key] = plan
                stream = plan.shard_streams(task["n_shards"])[task["shard"]]
            out = np.zeros((task["out_rows"], task["rank"]), dtype=np.float64)
            if capture:
                with session.span(
                    "shard_kernel", shard=task["shard"], mode=task["mode"],
                    nnz=stream.nnz,
                ):
                    result = run_stream(
                        stream, task["fmats"], task["mode"], out, task["chunk"]
                    )
            else:
                result = run_stream(
                    stream, task["fmats"], task["mode"], out, task["chunk"]
                )
        except BaseException as exc:  # noqa: BLE001 - reported, not fatal
            try:
                conn.send((
                    "error", f"{type(exc).__name__}: {exc}",
                    session.drain() if capture else None,
                ))
            except (OSError, ValueError):
                return
        else:
            try:
                conn.send(("ok", result, session.drain() if capture else None))
            except (OSError, ValueError):
                return


class _Worker:
    """One pool slot: a process plus its private task/result pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, ctx, index: int):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, index),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def alive(self) -> bool:
        return self.proc.is_alive()

    def stop(self, grace: float = 0.2) -> dict | None:
        """Shut the worker down; returns its final telemetry flush batch.

        The ``None`` sentinel is answered by a ``("flush", batch)`` reply
        carrying everything the worker had not yet shipped; stale replies
        from abandoned shards are skipped while waiting for it. Returns
        ``None`` when the worker died before flushing.
        """
        batch = None
        try:
            if self.proc.is_alive():
                self.conn.send(None)
                deadline = time.monotonic() + grace
                while time.monotonic() < deadline:
                    if not self.conn.poll(HEARTBEAT):
                        continue
                    reply = self.conn.recv()
                    if reply and reply[0] == "flush":
                        batch = reply[1]
                        break
        except (EOFError, OSError, ValueError):
            pass
        self.proc.join(timeout=grace)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=grace)
        self.conn.close()
        self.proc.close()
        return batch

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.join(timeout=1.0)
        finally:
            self.conn.close()
            try:
                self.proc.close()
            except ValueError:  # pragma: no cover - still-running straggler
                pass


class ProcessBackend(ExecutionBackend):
    name = "processes"

    def __init__(self):
        # fork is preferred where available: worker spawn is ~ms, and the
        # child executes only repro code paths that never touch inherited
        # locks. Falls back to spawn elsewhere (workers import repro fresh).
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: list[_Worker] = []
        self._pid = os.getpid()

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_workers(self, n: int) -> list[_Worker]:
        if self._pid != os.getpid():
            # Forked child: inherited Process handles belong to the real
            # parent. Drop them unjoined and build a private pool.
            self._workers = []
            self._pid = os.getpid()
        while len(self._workers) < n:
            self._workers.append(_Worker(self._ctx, len(self._workers)))
        for i in range(n):
            if not self._workers[i].alive():
                self._respawn(i)
        return self._workers[:n]

    def _respawn(self, index: int) -> _Worker:
        try:
            self._workers[index].kill()
        except (OSError, ValueError):  # pragma: no cover - already reaped
            pass
        self._workers[index] = _Worker(self._ctx, index)
        current_telemetry().counter("engine.backend.respawns")
        return self._workers[index]

    def shutdown(self) -> None:
        workers, self._workers = self._workers, []
        tel = current_telemetry()
        for worker in workers:
            try:
                batch = worker.stop()
            except (OSError, ValueError):  # pragma: no cover - defensive
                batch = None
            # Final flush: anything a worker had not shipped yet (metrics
            # between shards, the flush counter itself) merges before the
            # process is reaped, so end-of-run traces are not truncated.
            if batch is not None:
                merge_worker_batch(tel, batch)

    # ------------------------------------------------------------------ #
    def run_shards(
        self, streams, fmats, mode, out_rows, rank, cfg, *,
        faults=None, events=None, plan_ref=None,
    ) -> np.ndarray:
        self._announce(streams)

        injected: dict[str, int] = {}
        delay = 0.0
        if faults is not None:
            injected = faults.draw_shard_faults(
                len(streams), mode=mode, events=events
            )
            if "slow_shard" in injected:
                delay = faults.slow_shard_delay()

        store_root, store_key = plan_ref if plan_ref is not None else (None, None)
        workers = self._ensure_workers(len(streams))
        fmats = [np.ascontiguousarray(f) for f in fmats]

        tel = current_telemetry()
        anchor = tel.current_span_id()
        t_dispatch = tel.now()
        launched = time.monotonic()
        pending: list[bool] = [False] * len(streams)
        partials: list[np.ndarray | None] = [None] * len(streams)
        for i, stream in enumerate(streams):
            task = {
                "mode": mode, "out_rows": out_rows, "rank": rank,
                "chunk": cfg.chunk, "fmats": fmats, "shard": i,
                "n_shards": cfg.shards,
                "telemetry": tel.enabled,
                "kill": injected.get("kill_worker") == i,
                "crash": injected.get("worker_crash") == i,
                "delay": delay if injected.get("slow_shard") == i else 0.0,
            }
            if store_root is not None and store_key is not None:
                task["stream"] = None
                task["store"] = os.fspath(store_root)
                task["key"] = store_key
            else:
                task["stream"] = stream
            pending[i] = self._send(workers, i, task)

        for i, stream in enumerate(streams):
            if not pending[i]:
                # The task could not even be delivered (worker lost between
                # launches); it was already counted — execute inline.
                partials[i], batch = self._redo_captured(
                    stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                batches, redone = [batch], True
            else:
                deadline = _NO_DEADLINE
                if cfg.shard_timeout > 0.0:
                    deadline = launched + cfg.shard_timeout
                partials[i], batches, redone = self._collect(
                    workers, i, stream, fmats, mode, out_rows, rank, cfg,
                    deadline, events,
                )
            self._finish_shard(
                tel, anchor, t_dispatch, i, stream.nnz, batches,
                redone=redone, captured=tel.enabled,
            )
        return tree_reduce(partials)

    # ------------------------------------------------------------------ #
    def _send(self, workers: list[_Worker], i: int, task: dict) -> bool:
        """Deliver one task, respawning a dead worker once. Returns whether
        the task is in flight; a failed delivery is recorded as a lost
        worker and the caller executes the shard inline."""
        for _attempt in range(2):
            worker = workers[i]
            try:
                worker.conn.send(task)
                return True
            except (OSError, ValueError):
                self._record_lost(
                    worker, i, task["mode"], None,
                    context="task delivery failed",
                )
                workers[i] = self._respawn(i)
        return False

    def _collect(
        self, workers, i, stream, fmats, mode, out_rows, rank, cfg,
        deadline, events,
    ) -> tuple:
        """Watchdog loop for one outstanding shard result.

        Returns ``(partial, batches, redone)``: the shard accumulator, the
        worker telemetry batches to merge under this shard's span (the
        piggybacked reply batch; on an in-worker exception, the failed
        attempt's batch *and* the redo's), and whether the shard was
        re-executed serially.
        """
        tel = current_telemetry()
        worker = workers[i]
        while True:
            try:
                if worker.conn.poll(HEARTBEAT):
                    status, payload, batch = worker.conn.recv()
                    if status == "ok":
                        return payload, [batch], False
                    # In-worker exception: worker survives, shard redone.
                    tel.counter("engine.shard.retries")
                    if events is not None:
                        events.record(
                            SHARD_RETRY, "MTTKRP", mode=mode,
                            detail=f"shard {i} worker raised ({payload}); "
                                   f"re-executed serially",
                            shard=i, nnz=stream.nnz,
                        )
                    partial, redo_batch = self._redo_captured(
                        stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                        enabled=tel.enabled,
                    )
                    return partial, [batch, redo_batch], True
            except (EOFError, OSError):
                # Pipe died under us: treat as a lost worker below.
                pass
            if not worker.alive():
                self._record_lost(worker, i, mode, events)
                workers[i] = self._respawn(i)
                partial, batch = self._redo_captured(
                    stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                return partial, [batch], True
            if time.monotonic() >= deadline:
                # Straggler: kill it (its private accumulator dies with it)
                # and redo the shard serially, bit-identically.
                tel.counter("engine.shard.timeouts")
                if events is not None:
                    events.record(
                        SHARD_TIMEOUT, "MTTKRP", mode=mode,
                        detail=f"shard {i} missed its {cfg.shard_timeout:g}s "
                               f"deadline; worker killed and shard "
                               f"re-executed serially",
                        shard=i, nnz=stream.nnz,
                    )
                self._respawn(i)
                workers[i] = self._workers[i]
                partial, batch = self._redo_captured(
                    stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                return partial, [batch], True

    def _record_lost(self, worker, i, mode, events, *, context=None) -> None:
        exitcode = worker.proc.exitcode
        if exitcode is not None and exitcode < 0:
            how = f"died on signal {signal.Signals(-exitcode).name}"
        elif exitcode is not None:
            how = f"exited with code {exitcode}"
        else:  # pragma: no cover - delivery race
            how = "became unreachable"
        if context:
            how = f"{how} ({context})"
        current_telemetry().counter("engine.backend.workers_lost")
        if events is not None:
            events.record(
                WORKER_LOST, "MTTKRP", mode=mode,
                detail=f"shard {i} worker process {how}; worker respawned "
                       f"and shard re-executed serially",
                shard=i, exitcode=exitcode,
            )
