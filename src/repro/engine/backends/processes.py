"""Process-pool backend: shards in isolated workers, with real crash recovery.

Workers are separate OS processes, so the failure modes are the real
thing: a worker that takes a ``SIGKILL`` (OOM killer, operator, the chaos
harness's ``kill_worker`` fault) or aborts simply *disappears* — no
exception, no return value. The dispatching side runs a watchdog around
every outstanding shard:

- **liveness** — each worker owns a private duplex pipe; while a result is
  pending the parent polls the pipe and the process in short beats. A
  worker that is no longer alive (negative exitcode = died on a signal) is
  declared lost: a ``worker_lost`` event is recorded, the
  ``engine.backend.workers_lost`` counter bumps, the worker is respawned,
  and the lost shard is re-executed serially on the dispatching thread —
  deterministically bit-identical, because each shard's summation order is
  private and its output rows are disjoint.
- **straggler deadline** — a worker that is alive but has not delivered
  within ``EngineConfig.shard_timeout`` is killed outright (its private
  accumulator dies with it) and handled the same way, as a
  ``shard_timeout``.
- **in-worker exceptions** — a worker that raises sends back an error
  marker and stays alive; the shard is redone serially (``shard_retry``),
  matching the threads backend.

Workers hold **private accumulators over disjoint output rows** (the
medium-grained factor-block partitioning of Liavas & Sidiropoulos's
distributed ADMM), so the parent-side tree reduce adds exact zeros and
every recovery path is rtol=0 against serial execution.

Task shipping: the parent's in-memory plan cache is invisible to workers,
so a task either carries its shard stream inline (pickled over the pipe)
or — when the plan was persisted to the on-disk
:class:`~repro.engine.plan_store.PlanStore` — just the store key plus the
shard coordinates. Workers memoize store loads and re-derive shard
streams with the same deterministic LPT assignment as the parent, so
repeated iterations ship only factor matrices.

Pools are lazily sized, persistent across calls, refreshed if the parent
PID changes (fork safety: a forked child never reuses inherited workers,
whose pipes it shares with the real parent), and torn down by
:meth:`shutdown` / the registry ``atexit`` hook.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np

from repro.engine.backends.base import ExecutionBackend, tree_reduce
from repro.obs import current_telemetry
from repro.resilience.events import SHARD_RETRY, SHARD_TIMEOUT, WORKER_LOST

__all__ = ["ProcessBackend"]

#: Watchdog poll beat while a shard result is outstanding, in seconds.
HEARTBEAT = 0.02

#: Liveness budget for a shard when ``shard_timeout`` is disabled: the
#: watchdog still detects dead workers on every beat, it just never
#: declares a live worker a straggler.
_NO_DEADLINE = float("inf")


def _worker_main(conn, store_root) -> None:
    """Worker loop: receive task dicts, answer ``("ok", partial)`` each.

    Runs until the parent sends ``None`` or closes the pipe. Exceptions
    are answered as ``("error", message)`` and do not kill the worker; an
    injected ``kill`` task dies by real ``SIGKILL`` before any reply, which
    is exactly the silence the parent's watchdog must detect.
    """
    from repro.engine.execute import run_stream

    store = None
    plans: dict = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            if task.get("kill"):
                os.kill(os.getpid(), signal.SIGKILL)
            if task.get("delay", 0.0) > 0.0:
                time.sleep(task["delay"])
            if task.get("crash"):
                from repro.resilience.faults import InjectedWorkerCrash

                raise InjectedWorkerCrash(
                    f"injected worker crash on mode-{task['mode']} shard"
                )
            stream = task.get("stream")
            if stream is None:
                key = task["key"]
                plan = plans.get(key)
                if plan is None:
                    if store is None or os.fspath(store.root) != task["store"]:
                        from repro.engine.plan_store import PlanStore

                        store = PlanStore(task["store"])
                        plans.clear()
                    plan = store.load(key)
                    if plan is None:
                        raise RuntimeError(
                            f"plan-store entry {key} is missing or quarantined"
                        )
                    plans[key] = plan
                stream = plan.shard_streams(task["n_shards"])[task["shard"]]
            out = np.zeros((task["out_rows"], task["rank"]), dtype=np.float64)
            result = run_stream(
                stream, task["fmats"], task["mode"], out, task["chunk"]
            )
        except BaseException as exc:  # noqa: BLE001 - reported, not fatal
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):
                return
        else:
            try:
                conn.send(("ok", result))
            except (OSError, ValueError):
                return


class _Worker:
    """One pool slot: a process plus its private task/result pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, ctx, index: int):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, None),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def alive(self) -> bool:
        return self.proc.is_alive()

    def stop(self, grace: float = 0.2) -> None:
        try:
            if self.proc.is_alive():
                self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=grace)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=grace)
        self.conn.close()
        self.proc.close()

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.join(timeout=1.0)
        finally:
            self.conn.close()
            try:
                self.proc.close()
            except ValueError:  # pragma: no cover - still-running straggler
                pass


class ProcessBackend(ExecutionBackend):
    name = "processes"

    def __init__(self):
        # fork is preferred where available: worker spawn is ~ms, and the
        # child executes only repro code paths that never touch inherited
        # locks. Falls back to spawn elsewhere (workers import repro fresh).
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: list[_Worker] = []
        self._pid = os.getpid()

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_workers(self, n: int) -> list[_Worker]:
        if self._pid != os.getpid():
            # Forked child: inherited Process handles belong to the real
            # parent. Drop them unjoined and build a private pool.
            self._workers = []
            self._pid = os.getpid()
        while len(self._workers) < n:
            self._workers.append(_Worker(self._ctx, len(self._workers)))
        for i in range(n):
            if not self._workers[i].alive():
                self._respawn(i)
        return self._workers[:n]

    def _respawn(self, index: int) -> _Worker:
        try:
            self._workers[index].kill()
        except (OSError, ValueError):  # pragma: no cover - already reaped
            pass
        self._workers[index] = _Worker(self._ctx, index)
        current_telemetry().counter("engine.backend.respawns")
        return self._workers[index]

    def shutdown(self) -> None:
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.stop()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------ #
    def run_shards(
        self, streams, fmats, mode, out_rows, rank, cfg, *,
        faults=None, events=None, plan_ref=None,
    ) -> np.ndarray:
        self._announce(streams)

        injected: dict[str, int] = {}
        delay = 0.0
        if faults is not None:
            injected = faults.draw_shard_faults(
                len(streams), mode=mode, events=events
            )
            if "slow_shard" in injected:
                delay = faults.slow_shard_delay()

        store_root, store_key = plan_ref if plan_ref is not None else (None, None)
        workers = self._ensure_workers(len(streams))
        fmats = [np.ascontiguousarray(f) for f in fmats]

        launched = time.monotonic()
        pending: list[bool] = [False] * len(streams)
        partials: list[np.ndarray | None] = [None] * len(streams)
        for i, stream in enumerate(streams):
            task = {
                "mode": mode, "out_rows": out_rows, "rank": rank,
                "chunk": cfg.chunk, "fmats": fmats, "shard": i,
                "n_shards": cfg.shards,
                "kill": injected.get("kill_worker") == i,
                "crash": injected.get("worker_crash") == i,
                "delay": delay if injected.get("slow_shard") == i else 0.0,
            }
            if store_root is not None and store_key is not None:
                task["stream"] = None
                task["store"] = os.fspath(store_root)
                task["key"] = store_key
            else:
                task["stream"] = stream
            pending[i] = self._send(workers, i, task)

        for i, stream in enumerate(streams):
            if not pending[i]:
                # The task could not even be delivered (worker lost between
                # launches); it was already counted — execute inline.
                partials[i] = self._redo_serial(
                    stream, fmats, mode, out_rows, rank, cfg.chunk
                )
                continue
            deadline = _NO_DEADLINE
            if cfg.shard_timeout > 0.0:
                deadline = launched + cfg.shard_timeout
            partials[i] = self._collect(
                workers, i, stream, fmats, mode, out_rows, rank, cfg,
                deadline, events,
            )
        return tree_reduce(partials)

    # ------------------------------------------------------------------ #
    def _send(self, workers: list[_Worker], i: int, task: dict) -> bool:
        """Deliver one task, respawning a dead worker once. Returns whether
        the task is in flight; a failed delivery is recorded as a lost
        worker and the caller executes the shard inline."""
        for _attempt in range(2):
            worker = workers[i]
            try:
                worker.conn.send(task)
                return True
            except (OSError, ValueError):
                self._record_lost(
                    worker, i, task["mode"], None,
                    context="task delivery failed",
                )
                workers[i] = self._respawn(i)
        return False

    def _collect(
        self, workers, i, stream, fmats, mode, out_rows, rank, cfg,
        deadline, events,
    ) -> np.ndarray:
        """Watchdog loop for one outstanding shard result."""
        tel = current_telemetry()
        worker = workers[i]
        while True:
            try:
                if worker.conn.poll(HEARTBEAT):
                    status, payload = worker.conn.recv()
                    if status == "ok":
                        return payload
                    # In-worker exception: worker survives, shard redone.
                    tel.counter("engine.shard.retries")
                    if events is not None:
                        events.record(
                            SHARD_RETRY, "MTTKRP", mode=mode,
                            detail=f"shard {i} worker raised ({payload}); "
                                   f"re-executed serially",
                            shard=i, nnz=stream.nnz,
                        )
                    return self._redo_serial(
                        stream, fmats, mode, out_rows, rank, cfg.chunk
                    )
            except (EOFError, OSError):
                # Pipe died under us: treat as a lost worker below.
                pass
            if not worker.alive():
                self._record_lost(worker, i, mode, events)
                workers[i] = self._respawn(i)
                return self._redo_serial(
                    stream, fmats, mode, out_rows, rank, cfg.chunk
                )
            if time.monotonic() >= deadline:
                # Straggler: kill it (its private accumulator dies with it)
                # and redo the shard serially, bit-identically.
                tel.counter("engine.shard.timeouts")
                if events is not None:
                    events.record(
                        SHARD_TIMEOUT, "MTTKRP", mode=mode,
                        detail=f"shard {i} missed its {cfg.shard_timeout:g}s "
                               f"deadline; worker killed and shard "
                               f"re-executed serially",
                        shard=i, nnz=stream.nnz,
                    )
                self._respawn(i)
                workers[i] = self._workers[i]
                return self._redo_serial(
                    stream, fmats, mode, out_rows, rank, cfg.chunk
                )

    def _record_lost(self, worker, i, mode, events, *, context=None) -> None:
        exitcode = worker.proc.exitcode
        if exitcode is not None and exitcode < 0:
            how = f"died on signal {signal.Signals(-exitcode).name}"
        elif exitcode is not None:
            how = f"exited with code {exitcode}"
        else:  # pragma: no cover - delivery race
            how = "became unreachable"
        if context:
            how = f"{how} ({context})"
        current_telemetry().counter("engine.backend.workers_lost")
        if events is not None:
            events.record(
                WORKER_LOST, "MTTKRP", mode=mode,
                detail=f"shard {i} worker process {how}; worker respawned "
                       f"and shard re-executed serially",
                shard=i, exitcode=exitcode,
            )
