"""Process-pool backend: shards in isolated workers, with real crash recovery.

Workers are separate OS processes, so the failure modes are the real
thing: a worker that takes a ``SIGKILL`` (OOM killer, operator, the chaos
harness's ``kill_worker`` fault) or aborts simply *disappears* — no
exception, no return value. The dispatching side runs a watchdog around
every outstanding shard:

- **liveness** — each worker owns a private duplex pipe; while a result is
  pending the parent polls the pipe and the process in short beats. A
  worker that is no longer alive (negative exitcode = died on a signal) is
  declared lost: a ``worker_lost`` event is recorded, the
  ``engine.backend.workers_lost`` counter bumps, the worker is respawned,
  and the lost shard is re-executed serially on the dispatching thread —
  deterministically bit-identical, because each shard's summation order is
  private and its output rows are disjoint.
- **straggler deadline** — a worker that is alive but has not delivered
  within ``EngineConfig.shard_timeout`` of the start of *its own*
  collection (deadlines are anchored per shard as the watchdog reaches
  it, so collecting or redoing earlier shards never erodes a later
  shard's budget) is killed outright (its private accumulator dies with
  it) and handled the same way, as a ``shard_timeout``.
- **broken pipes** — a task pipe that raises ``EOFError``/``OSError``
  while a result is pending can never deliver, even if the worker
  process is technically still alive (wedged); it is treated as a lost
  worker immediately rather than polling forever.
- **in-worker exceptions** — a worker that raises sends back an error
  marker and stays alive; the shard is redone serially (``shard_retry``),
  matching the threads backend.

Workers hold **private accumulators over disjoint output rows** (the
medium-grained factor-block partitioning of Liavas & Sidiropoulos's
distributed ADMM), so the parent-side tree reduce adds exact zeros and
every recovery path is rtol=0 against serial execution.

Task shipping: the parent's in-memory plan cache is invisible to workers,
so a task either carries its shard stream inline (pickled over the pipe)
or — when the plan was persisted to the on-disk
:class:`~repro.engine.plan_store.PlanStore` — just the store key plus the
shard coordinates. Workers memoize store loads (a small LRU, bounded so a
long-lived pool serving many tensors cannot grow without limit) and
re-derive shard streams with the same deterministic LPT assignment as the
parent.

Factor matrices and accumulators travel over one of two transports:

- **pipe** — the baseline: factor matrices pickled into every task,
  each ``(out_rows, rank)`` accumulator pickled back in the reply.
- **shm** (default where POSIX shared memory works; see
  ``EngineConfig.shm``) — zero-copy via :mod:`repro.engine.backends.shm`:
  the parent publishes each factor matrix once per dispatch into a pooled
  shared-memory segment and pre-zeroes one shm accumulator per shard that
  the worker fills in place, so tasks carry only segment names/shapes and
  the reply shrinks to a status tuple. Descriptors carry a per-dispatch
  generation tag a worker refuses when stale; fault paths discard the
  abandoned shm accumulator unread and redo the shard serially into a
  fresh private buffer, so every recovery rung stays bit-identical.
  Segments are unlinked on shutdown/atexit, idle segments on every
  respawn.

Pools are lazily sized, persistent across calls, refreshed if the parent
PID changes (fork safety: a forked child never reuses inherited workers,
whose pipes it shares with the real parent), and torn down by
:meth:`shutdown` / the registry ``atexit`` hook.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import OrderedDict

import numpy as np

from repro.engine.backends.base import ExecutionBackend, tree_reduce
from repro.obs import current_telemetry
from repro.obs.worker import merge_worker_batch
from repro.resilience.events import (
    SHARD_RETRY,
    SHARD_TIMEOUT,
    TRANSPORT_DOWNGRADED,
    WORKER_LOST,
    WORKER_RECYCLED,
)

__all__ = ["ProcessBackend"]

#: Watchdog poll beat while a shard result is outstanding, in seconds.
HEARTBEAT = 0.02

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover - exotic host
    _PAGE_SIZE = 4096


def _read_rss(pid: int) -> int:
    """Resident set size of *pid* in bytes via procfs (0 where unreadable).

    ``/proc/<pid>/statm`` field 1 is resident pages; a vanished process,
    a non-procfs host, or a malformed read all report 0 — the watchdog
    treats that as "no pressure signal", never as an error.
    """
    try:
        with open(f"/proc/{pid}/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0

#: Liveness budget for a shard when ``shard_timeout`` is disabled: the
#: watchdog still detects dead workers on every beat, it just never
#: declares a live worker a straggler.
_NO_DEADLINE = float("inf")

#: Worker-side plan memo capacity (plans loaded from the on-disk store).
#: A long-lived pool serving many tensors re-loads a cold plan from the
#: store rather than pinning every plan it ever saw in worker memory.
_PLAN_MEMO_LIMIT = 8


def _attach_shm_task(shm_desc: dict, attached: list, last_gen: int):
    """Worker-side: map one task's shm descriptors into ndarray views.

    Appends every successful attach to *attached* (the caller detaches in
    its ``finally`` whatever was mapped, even on a half-failed attach) and
    refuses descriptors from a dispatch generation older than the newest
    this worker has served — a respawned parent pool or recycled name must
    never be scribbled on.
    """
    from repro.engine.backends.shm import (
        ShmAttachError,
        attach_segment,
        segment_view,
    )

    gen = int(shm_desc["gen"])
    if gen < last_gen:
        raise ShmAttachError(
            f"stale shm generation {gen} (worker already served {last_gen})"
        )
    fmats = []
    for desc in shm_desc["fmats"]:
        seg = attach_segment(desc["name"])
        attached.append(seg)
        fmats.append(segment_view(seg, desc["shape"]))
    seg = attach_segment(shm_desc["out"]["name"])
    attached.append(seg)
    out = segment_view(seg, shm_desc["out"]["shape"])
    return fmats, out, gen


def _worker_main(conn, worker_id: int) -> None:
    """Worker loop: receive task dicts, answer ``("ok", partial, batch)``.

    Runs until the parent sends ``None`` or closes the pipe. Exceptions
    are answered as ``("error", message, batch)`` and do not kill the
    worker; an injected ``kill`` task dies by real ``SIGKILL`` before any
    reply, which is exactly the silence the parent's watchdog must detect.

    Telemetry: the worker installs its own
    :class:`~repro.obs.worker.WorkerTelemetrySession` as the ambient
    session the moment it starts (the parent's session never crosses the
    fork — see :mod:`repro.obs.spans`), so ``shard_kernel`` spans *and*
    everything deep code bumps — plan-store hit/miss counters, gauges —
    are captured locally. Each reply piggybacks the drained batch when the
    task asked for capture; the ``None`` shutdown sentinel is answered
    with a final ``("flush", batch)`` carrying whatever is still
    unshipped, so end-of-run traces are never truncated.
    """
    from repro.engine.execute import run_stream
    from repro.obs.worker import WorkerTelemetrySession

    session = WorkerTelemetrySession(worker_id=worker_id)
    session.push()
    store = None
    plans: OrderedDict = OrderedDict()
    last_gen = 0
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            session.counter("obs.worker.flushes")
            try:
                conn.send(("flush", session.drain()))
            except (OSError, ValueError):
                pass
            return
        capture = bool(task.get("telemetry"))
        try:
            if task.get("kill"):
                os.kill(os.getpid(), signal.SIGKILL)
            if task.get("delay", 0.0) > 0.0:
                time.sleep(task["delay"])
            if task.get("crash"):
                from repro.resilience.faults import InjectedWorkerCrash

                raise InjectedWorkerCrash(
                    f"injected worker crash on mode-{task['mode']} shard"
                )
            stream = task.get("stream")
            if stream is None:
                key = task["key"]
                plan = plans.get(key)
                if plan is None:
                    if store is None or os.fspath(store.root) != task["store"]:
                        from repro.engine.plan_store import PlanStore

                        store = PlanStore(task["store"])
                        plans.clear()
                    plan = store.load(key)
                    if plan is None:
                        raise RuntimeError(
                            f"plan-store entry {key} is missing or quarantined"
                        )
                    plans[key] = plan
                    while len(plans) > _PLAN_MEMO_LIMIT:
                        plans.popitem(last=False)
                else:
                    plans.move_to_end(key)
                stream = plan.shard_streams(task["n_shards"])[task["shard"]]
            shm_desc = task.get("shm")
            attached: list = []
            try:
                if shm_desc is not None:
                    fmats, out, last_gen = _attach_shm_task(
                        shm_desc, attached, last_gen
                    )
                else:
                    fmats = task["fmats"]
                    out = np.zeros(
                        (task["out_rows"], task["rank"]), dtype=np.float64
                    )
                if capture:
                    with session.span(
                        "shard_kernel", shard=task["shard"], mode=task["mode"],
                        nnz=stream.nnz,
                    ):
                        run_stream(
                            stream, fmats, task["mode"], out, task["chunk"]
                        )
                else:
                    run_stream(stream, fmats, task["mode"], out, task["chunk"])
                # shm: the parent already holds the filled accumulator —
                # the reply carries no payload at all.
                result = None if shm_desc is not None else out
            finally:
                fmats = out = None  # drop buffer views before unmapping
                for seg in attached:
                    try:
                        seg.close()
                    except BufferError:  # pragma: no cover - defensive
                        pass
        except BaseException as exc:  # noqa: BLE001 - reported, not fatal
            try:
                conn.send((
                    "error", f"{type(exc).__name__}: {exc}",
                    session.drain() if capture else None,
                ))
            except (OSError, ValueError):
                return
        else:
            try:
                conn.send(("ok", result, session.drain() if capture else None))
            except (OSError, ValueError):
                return


class _Worker:
    """One pool slot: a process plus its private task/result pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, ctx, index: int):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, index),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def alive(self) -> bool:
        return self.proc.is_alive()

    def stop(self, grace: float = 0.2) -> dict | None:
        """Shut the worker down; returns its final telemetry flush batch.

        The ``None`` sentinel is answered by a ``("flush", batch)`` reply
        carrying everything the worker had not yet shipped; stale replies
        from abandoned shards are skipped while waiting for it. Returns
        ``None`` when the worker died before flushing.
        """
        batch = None
        try:
            if self.proc.is_alive():
                self.conn.send(None)
                deadline = time.monotonic() + grace
                while time.monotonic() < deadline:
                    if not self.conn.poll(HEARTBEAT):
                        continue
                    reply = self.conn.recv()
                    if reply and reply[0] == "flush":
                        batch = reply[1]
                        break
        except (EOFError, OSError, ValueError):
            pass
        self.proc.join(timeout=grace)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=grace)
        self.conn.close()
        self.proc.close()
        return batch

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.join(timeout=1.0)
        finally:
            self.conn.close()
            try:
                self.proc.close()
            except ValueError:  # pragma: no cover - still-running straggler
                pass


class ProcessBackend(ExecutionBackend):
    name = "processes"

    def __init__(self):
        # fork is preferred where available: worker spawn is ~ms, and the
        # child executes only repro code paths that never touch inherited
        # locks. Falls back to spawn elsewhere (workers import repro fresh).
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: list[_Worker] = []
        self._pid = os.getpid()
        self._shm_pool = None

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_workers(self, n: int) -> list[_Worker]:
        if self._pid != os.getpid():
            # Forked child: inherited Process handles belong to the real
            # parent. Close the inherited pipe FDs (the other ends are the
            # parent's; keeping ours open would leak an FD per worker and
            # hold the parent's pipes half-open), then drop the handles
            # unjoined and build a private pool. The inherited shm pool's
            # segments also belong to the parent — forget them, never
            # unlink them.
            for worker in self._workers:
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            self._workers = []
            self._shm_pool = None
            self._pid = os.getpid()
        while len(self._workers) < n:
            self._workers.append(_Worker(self._ctx, len(self._workers)))
        for i in range(n):
            if not self._workers[i].alive():
                self._respawn(i)
        return self._workers[:n]

    def _respawn(self, index: int) -> _Worker:
        try:
            self._workers[index].kill()
        except (OSError, ValueError):  # pragma: no cover - already reaped
            pass
        if self._shm_pool is not None:
            # Respawn hygiene: idle segments are unlinked so the fresh
            # worker can never attach a recycled name from a dispatch it
            # did not see. The current dispatch's leases are untouched.
            self._shm_pool.flush_free()
        self._workers[index] = _Worker(self._ctx, index)
        current_telemetry().counter("engine.backend.respawns")
        return self._workers[index]

    def shutdown(self) -> None:
        workers, self._workers = self._workers, []
        tel = current_telemetry()
        for worker in workers:
            try:
                batch = worker.stop()
            except (OSError, ValueError):  # pragma: no cover - defensive
                batch = None
            # Final flush: anything a worker had not shipped yet (metrics
            # between shards, the flush counter itself) merges before the
            # process is reaped, so end-of-run traces are not truncated.
            if batch is not None:
                merge_worker_batch(tel, batch)
        pool, self._shm_pool = self._shm_pool, None
        if pool is not None:
            # Leak hygiene: every segment the transport ever created is
            # unlinked here (shutdown_backends wires this into atexit).
            pool.close()

    # ------------------------------------------------------------------ #
    # Shared-memory transport plumbing
    # ------------------------------------------------------------------ #
    def _use_shm(self, cfg) -> bool:
        mode = getattr(cfg, "shm", "auto")
        if mode == "off":
            return False
        from repro.engine.backends.shm import shm_available

        if shm_available():
            return True
        if mode == "on":
            raise RuntimeError(
                "EngineConfig.shm='on' but POSIX shared memory is "
                "unavailable on this host (shm='auto' falls back to the "
                "pipe transport instead)"
            )
        return False  # pragma: no cover - host without /dev/shm

    def _segment_pool(self):
        if self._shm_pool is None:
            from repro.engine.backends.shm import SegmentPool

            self._shm_pool = SegmentPool()
        return self._shm_pool

    # ------------------------------------------------------------------ #
    def run_shards(
        self, streams, fmats, mode, out_rows, rank, cfg, *,
        faults=None, events=None, plan_ref=None,
    ) -> np.ndarray:
        self._announce(streams)

        injected: dict[str, int] = {}
        delay = 0.0
        if faults is not None:
            injected = faults.draw_shard_faults(
                len(streams), mode=mode, events=events
            )
            if "slow_shard" in injected:
                delay = faults.slow_shard_delay()

        store_root, store_key = plan_ref if plan_ref is not None else (None, None)
        workers = self._ensure_workers(len(streams))
        fmats = [np.ascontiguousarray(f, dtype=np.float64) for f in fmats]

        tel = current_telemetry()
        use_shm = self._use_shm(cfg)
        budget = int(getattr(cfg, "memory_budget_bytes", 0) or 0)
        if budget > 0 and tel.enabled:
            tel.gauge("engine.proc.memory_budget", float(budget))
        anchor = tel.current_span_id()
        t_dispatch = tel.now()
        pending: list[bool] = [False] * len(streams)
        partials: list[np.ndarray | None] = [None] * len(streams)
        out_views: list[np.ndarray | None] = [None] * len(streams)
        out_leases: list = [None] * len(streams)
        fmat_leases: list = []
        pool = None
        shm_base = None
        if use_shm:
            from repro.engine.backends.shm import ShmExhausted

            pool = self._segment_pool()
            pool.budget_bytes = budget
            # getattr: chaos-suite test doubles implement only the draw
            # hooks they exercise.
            draw_shm = getattr(faults, "draw_shm_fault", None)
            if draw_shm is not None and draw_shm(mode=mode, events=events):
                pool.fail_next_lease = True
            try:
                # One write, N readers: each factor matrix is published
                # once per dispatch; every task carries only names and
                # shapes. Every segment of the dispatch — factors and the
                # per-shard accumulators — is leased up front, so a lease
                # failure downgrades the whole dispatch before any task
                # ships with a half-published descriptor set.
                fmat_descs = []
                for f in fmats:
                    lease = pool.lease(f.nbytes)
                    fmat_leases.append(lease)
                    lease.view(f.shape)[...] = f
                    fmat_descs.append({"name": lease.name, "shape": f.shape})
                for i in range(len(streams)):
                    lease = pool.lease(out_rows * rank * 8)
                    out_leases[i] = lease
                    out_views[i] = lease.view((out_rows, rank))
                    # run_stream assigns segment sums into disjoint rows;
                    # rows no nonzero touches must be exact zeros, and a
                    # reused segment still holds the previous dispatch.
                    out_views[i][...] = 0.0
                shm_base = {"gen": pool.next_generation(), "fmats": fmat_descs}
            except ShmExhausted as exc:
                # /dev/shm pressure (budget, kernel, or injected fault):
                # this dispatch falls back to pickling over the pipes —
                # bit-identical, only the transport differs.
                for lease in fmat_leases:
                    pool.release(lease)
                for i, lease in enumerate(out_leases):
                    out_views[i] = None
                    if lease is not None:
                        pool.release(lease)
                fmat_leases = []
                out_leases = [None] * len(streams)
                use_shm = False
                shm_base = None
                tel.counter("engine.shm.downgrades")
                if events is not None:
                    events.record(
                        TRANSPORT_DOWNGRADED, "MTTKRP", mode=mode,
                        detail=f"shm lease failed ({exc}); dispatch fell "
                               f"back to the pipe transport",
                        error=str(exc),
                    )
        try:
            for i, stream in enumerate(streams):
                task = {
                    "mode": mode, "out_rows": out_rows, "rank": rank,
                    "chunk": cfg.chunk, "shard": i,
                    "n_shards": cfg.shards,
                    "telemetry": tel.enabled,
                    "kill": injected.get("kill_worker") == i
                    or injected.get("oom_worker") == i,
                    "crash": injected.get("worker_crash") == i,
                    "delay": delay if injected.get("slow_shard") == i else 0.0,
                }
                if use_shm:
                    lease = out_leases[i]
                    task["shm"] = dict(
                        shm_base,
                        out={"name": lease.name, "shape": (out_rows, rank)},
                    )
                else:
                    task["fmats"] = fmats
                if store_root is not None and store_key is not None:
                    task["stream"] = None
                    task["store"] = os.fspath(store_root)
                    task["key"] = store_key
                else:
                    task["stream"] = stream
                pending[i] = self._send(workers, i, task)

            dispatch_peak = 0
            for i, stream in enumerate(streams):
                if not pending[i]:
                    # The task could not even be delivered (worker lost
                    # between launches); it was already counted — execute
                    # inline.
                    partials[i], batch = self._redo_captured(
                        stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                        enabled=tel.enabled,
                    )
                    batches, redone, peak_rss = [batch], True, 0
                else:
                    partials[i], batches, redone, peak_rss = self._collect(
                        workers, i, stream, fmats, mode, out_rows, rank, cfg,
                        events, out_view=out_views[i],
                        oom=injected.get("oom_worker") == i,
                    )
                if redone and use_shm and out_leases[i] is not None:
                    # Fault hygiene: the abandoned shm accumulator (which a
                    # killed worker may have been mid-write into) is never
                    # read and never recycled. Drop the parent-side view
                    # first so the segment unmaps cleanly.
                    out_views[i] = None
                    pool.discard(out_leases[i])
                    out_leases[i] = None
                self._finish_shard(
                    tel, anchor, t_dispatch, i, stream.nnz, batches,
                    redone=redone, captured=tel.enabled,
                    transport="inline" if redone
                    else ("shm" if use_shm else "pipe"),
                )
                dispatch_peak = max(dispatch_peak, peak_rss)
                if (
                    budget > 0 and not redone and peak_rss > budget
                    and workers[i].alive()
                ):
                    # Memory pressure: this worker's peak RSS breached the
                    # budget. Its shard result is already collected, so a
                    # graceful replacement at the shard boundary cannot
                    # affect bit-identity — it just returns the memory.
                    workers[i] = self._recycle(i, peak_rss, budget, mode, events)
            if tel.enabled and dispatch_peak > 0:
                # Gauges keep last-value semantics; the peak gauge is kept
                # monotone across dispatches so end-of-run summaries (and
                # the doctor) see the run's true high-water mark.
                prior = tel.metrics.gauges.get("engine.proc.worker_rss_peak", 0.0)
                if dispatch_peak > prior:
                    tel.gauge(
                        "engine.proc.worker_rss_peak", float(dispatch_peak)
                    )
            reduced = tree_reduce(partials)
            if use_shm:
                # The reduction root may be an shm view; the caller owns
                # the result beyond this dispatch's leases.
                reduced = np.array(reduced, dtype=np.float64, copy=True)
            return reduced
        finally:
            if use_shm:
                partials = out_views = None  # drop segment views first
                for lease in fmat_leases:
                    pool.release(lease)
                for lease in out_leases:
                    if lease is not None:
                        pool.release(lease)

    # ------------------------------------------------------------------ #
    def _send(self, workers: list[_Worker], i: int, task: dict) -> bool:
        """Deliver one task, respawning a dead worker once. Returns whether
        the task is in flight; a failed delivery is recorded as a lost
        worker and the caller executes the shard inline."""
        for _attempt in range(2):
            worker = workers[i]
            try:
                worker.conn.send(task)
                return True
            except (OSError, ValueError):
                self._record_lost(
                    worker, i, task["mode"], None,
                    context="task delivery failed",
                )
                workers[i] = self._respawn(i)
        return False

    def _collect(
        self, workers, i, stream, fmats, mode, out_rows, rank, cfg,
        events, *, out_view=None, oom=False,
    ) -> tuple:
        """Watchdog loop for one outstanding shard result.

        Returns ``(partial, batches, redone, peak_rss)``: the shard
        accumulator, the worker telemetry batches to merge under this
        shard's span (the piggybacked reply batch; on an in-worker
        exception, the failed attempt's batch *and* the redo's), whether
        the shard was re-executed serially, and the worker's peak RSS in
        bytes as sampled over this collection (0 where procfs is
        unavailable).

        The straggler deadline is anchored **here**, when this shard's
        collection begins — never at dispatch — so time spent collecting
        earlier shards (or serially redoing one) can never eat a later,
        healthy shard's budget. *out_view* is the parent-side view of the
        shard's shm accumulator (``None`` on the pipe transport): an
        ``"ok"`` reply means the worker filled it in place. *oom* marks a
        shard carrying the injected ``oom_worker`` fault, so its silent
        death is reported as a memory-pressure kill rather than a generic
        crash.
        """
        tel = current_telemetry()
        worker = workers[i]
        peak_rss = 0
        deadline = _NO_DEADLINE
        if cfg.shard_timeout > 0.0:
            deadline = time.monotonic() + cfg.shard_timeout
        while True:
            # One RSS sample per heartbeat: the gauge stream is what the
            # doctor (and the recycle decision) ranks against the budget.
            rss = _read_rss(worker.proc.pid)
            if rss > peak_rss:
                peak_rss = rss
                if tel.enabled:
                    tel.gauge("engine.proc.worker_rss", float(rss), worker=i)
            try:
                if worker.conn.poll(HEARTBEAT):
                    status, payload, batch = worker.conn.recv()
                    if status == "ok":
                        partial = out_view if out_view is not None else payload
                        return partial, [batch], False, peak_rss
                    # In-worker exception: worker survives, shard redone.
                    tel.counter("engine.shard.retries")
                    if isinstance(payload, str) and payload.startswith(
                        "ShmAttachError"
                    ):
                        tel.counter("engine.shm.attach_failures")
                    if events is not None:
                        events.record(
                            SHARD_RETRY, "MTTKRP", mode=mode,
                            detail=f"shard {i} worker raised ({payload}); "
                                   f"re-executed serially",
                            shard=i, nnz=stream.nnz,
                        )
                    partial, redo_batch = self._redo_captured(
                        stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                        enabled=tel.enabled,
                    )
                    return partial, [batch, redo_batch], True, peak_rss
            except (EOFError, OSError):
                # The task pipe broke. The worker may well still be alive
                # (wedged in a long shard, or its FD closed under it) but
                # can never deliver this result — spinning on liveness
                # would hang forever with shard_timeout=0. Treat it as a
                # lost worker: record, respawn, redo serially. A dying
                # worker's pipe EOF can race its reapability, so grant a
                # short grace first — a real death is then reported with
                # its exitcode/signal instead of "became unreachable".
                worker.proc.join(timeout=0.2)
                self._record_lost(
                    worker, i, mode, events,
                    context="OOM-killed (injected memory pressure)"
                    if oom else "task pipe broke",
                )
                workers[i] = self._respawn(i)
                partial, batch = self._redo_captured(
                    stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                return partial, [batch], True, peak_rss
            if not worker.alive():
                self._record_lost(
                    worker, i, mode, events,
                    context="OOM-killed (injected memory pressure)"
                    if oom else None,
                )
                workers[i] = self._respawn(i)
                partial, batch = self._redo_captured(
                    stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                return partial, [batch], True, peak_rss
            if time.monotonic() >= deadline:
                # Straggler: kill it (its private accumulator dies with it)
                # and redo the shard serially, bit-identically.
                tel.counter("engine.shard.timeouts")
                if events is not None:
                    events.record(
                        SHARD_TIMEOUT, "MTTKRP", mode=mode,
                        detail=f"shard {i} missed its {cfg.shard_timeout:g}s "
                               f"deadline; worker killed and shard "
                               f"re-executed serially",
                        shard=i, nnz=stream.nnz,
                    )
                self._respawn(i)
                workers[i] = self._workers[i]
                partial, batch = self._redo_captured(
                    stream, fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                return partial, [batch], True, peak_rss

    def _recycle(self, index, rss, budget, mode, events) -> _Worker:
        """Gracefully replace a worker whose RSS breached the memory budget.

        Unlike :meth:`_respawn` (a dead or wedged worker, killed outright)
        the recycled worker is healthy and idle — it is stopped with the
        shutdown sentinel so its final telemetry flush batch merges before
        the replacement starts, and nothing is lost.
        """
        worker = self._workers[index]
        tel = current_telemetry()
        try:
            batch = worker.stop()
        except (OSError, ValueError):  # pragma: no cover - defensive
            batch = None
        if batch is not None:
            merge_worker_batch(tel, batch)
        if self._shm_pool is not None:
            # Same hygiene as _respawn: the replacement must never attach
            # a recycled segment name from a dispatch it did not see.
            self._shm_pool.flush_free()
        self._workers[index] = _Worker(self._ctx, index)
        tel.counter("engine.proc.workers_recycled")
        if events is not None:
            events.record(
                WORKER_RECYCLED, "MTTKRP", mode=mode,
                detail=f"worker {index} peak RSS {rss} bytes breached the "
                       f"{budget}-byte memory budget; worker recycled at "
                       f"the shard boundary",
                worker=index, rss=int(rss), budget=int(budget),
            )
        return self._workers[index]

    def _record_lost(self, worker, i, mode, events, *, context=None) -> None:
        exitcode = worker.proc.exitcode
        if exitcode is not None and exitcode < 0:
            how = f"died on signal {signal.Signals(-exitcode).name}"
        elif exitcode is not None:
            how = f"exited with code {exitcode}"
        else:
            # Still-live worker behind a broken pipe, or a delivery race.
            how = "became unreachable"
        if context:
            how = f"{how} ({context})"
        current_telemetry().counter("engine.backend.workers_lost")
        if events is not None:
            events.record(
                WORKER_LOST, "MTTKRP", mode=mode,
                detail=f"shard {i} worker process {how}; worker respawned "
                       f"and shard re-executed serially",
                shard=i, exitcode=exitcode,
            )
