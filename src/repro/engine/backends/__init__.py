"""Execution-backend registry: named, lazily-built, process-wide singletons.

``get_backend("serial" | "threads" | "processes")`` returns the shared
instance for this process, creating it on first use — pools and worker
processes are only ever spawned when a sharded run actually dispatches
through them. :func:`shutdown_backends` tears every live backend down
(thread pools joined-less, worker processes stopped and reaped) and is
registered ``atexit`` so no interpreter exit leaks executors — the fix for
the old module-global ``_POOLS`` in :mod:`repro.engine.execute`, which was
created on demand and never shut down.

Fork safety: the registry is cleared in every forked child via
``os.register_at_fork``, so a child never dispatches into inherited pools
(threads that don't exist in the child) or inherited worker pipes (shared
with the real parent). The child lazily builds its own backends on first
use; the parent's registry is untouched.
"""

from __future__ import annotations

import atexit
import os
import threading

from repro.engine.backends.base import ExecutionBackend, tree_reduce

__all__ = [
    "ExecutionBackend",
    "tree_reduce",
    "get_backend",
    "shutdown_backends",
    "BACKEND_NAMES",
]

BACKEND_NAMES = ("serial", "threads", "processes")

_REGISTRY: dict[str, ExecutionBackend] = {}
_LOCK = threading.Lock()


def _build(name: str) -> ExecutionBackend:
    if name == "serial":
        from repro.engine.backends.serial import SerialBackend

        return SerialBackend()
    if name == "threads":
        from repro.engine.backends.threads import ThreadsBackend

        return ThreadsBackend()
    if name == "processes":
        from repro.engine.backends.processes import ProcessBackend

        return ProcessBackend()
    raise ValueError(
        f"unknown execution backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def get_backend(name: str) -> ExecutionBackend:
    """The process-wide backend instance registered under *name*."""
    with _LOCK:
        backend = _REGISTRY.get(name)
        if backend is None:
            backend = _build(name)
            _REGISTRY[name] = backend
        return backend


def shutdown_backends() -> None:
    """Tear down every live backend (pools, worker processes). Idempotent."""
    with _LOCK:
        backends = list(_REGISTRY.values())
        _REGISTRY.clear()
    for backend in backends:
        backend.shutdown()


def _forget_in_child() -> None:
    # No shutdown: the pools/processes belong to the parent. Just forget.
    _REGISTRY.clear()


atexit.register(shutdown_backends)
if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_forget_in_child)
