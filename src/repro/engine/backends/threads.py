"""Thread-pool backend: shards on a shared in-process executor.

This is the historical ``run_shards`` path of :mod:`repro.engine.execute`,
moved behind the backend seam and given a real pool lifecycle: pools are
created per worker-count on demand, torn down by :meth:`shutdown` (wired
into :func:`repro.engine.backends.shutdown_backends` and its ``atexit``
hook), and never survive a ``fork`` — a forked child only inherits the
forking thread, so an inherited executor would accept work that no thread
will ever run; the backend registry drops every backend instance in the
child via ``os.register_at_fork``, and this backend additionally discards
its pools if it ever observes a changed PID.

Fault handling: a worker that raises mid-shard (including an injected
``worker_crash``) or misses the per-shard ``shard_timeout`` deadline is
re-executed serially on the dispatching thread, counted
(``engine.shard.retries`` / ``engine.shard.timeouts``) and logged
(``shard_retry`` / ``shard_timeout``). An injected ``kill_worker`` fault —
a *process*-grade fault — degrades to ``worker_crash`` here, since a
thread cannot be SIGKILLed without taking the whole process down.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
import time

import numpy as np

from repro.engine.backends.base import (
    ExecutionBackend,
    run_shard_captured,
    tree_reduce,
)
from repro.obs import current_telemetry
from repro.resilience.events import SHARD_RETRY, SHARD_TIMEOUT

__all__ = ["ThreadsBackend"]


def _chaos_worker(
    stream, fmats, mode, partial, chunk, shard, *,
    crash=False, oom=False, delay=0.0, capture=True,
):
    """Shard worker wrapper carrying the injected execution faults.

    Pool threads never inherit the ambient contextvars session, so — like
    a process worker — the shard runs under its own local capture session
    and ships the batch back with the partial: ``(partial, batch)``.
    """
    if delay > 0.0:
        time.sleep(delay)
    if oom:
        # A thread cannot be OOM-killed on its own; the honest in-process
        # analogue of memory pressure is the allocator failing.
        raise MemoryError(f"injected worker OOM on mode-{mode} shard")
    if crash:
        from repro.resilience.faults import InjectedWorkerCrash

        raise InjectedWorkerCrash(f"injected worker crash on mode-{mode} shard")
    return run_shard_captured(
        stream, fmats, mode, partial, chunk, shard, enabled=capture
    )


class ThreadsBackend(ExecutionBackend):
    name = "threads"

    def __init__(self):
        self._pools: dict[int, concurrent.futures.ThreadPoolExecutor] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()

    # ------------------------------------------------------------------ #
    def _pool(self, workers: int) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pid != os.getpid():
                # Forked child: the inherited executors have no worker
                # threads. Drop them (no join — those threads never existed
                # here) and start fresh.
                self._pools = {}
                self._pid = os.getpid()
            pool = self._pools.get(workers)
            if pool is None:
                pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-shard"
                )
                self._pools[workers] = pool
            return pool

    def shutdown(self) -> None:
        with self._lock:
            pools, self._pools = self._pools, {}
        for pool in pools.values():
            # wait=False: an abandoned straggler may still be sleeping in an
            # orphaned shard; it holds no shared state worth waiting for.
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ #
    def run_shards(
        self, streams, fmats, mode, out_rows, rank, cfg, *,
        faults=None, events=None, plan_ref=None,
    ) -> np.ndarray:
        self._announce(streams)
        tel = current_telemetry()

        injected: dict[str, int] = {}
        delay = 0.0
        if faults is not None:
            injected = faults.draw_shard_faults(
                len(streams), mode=mode, events=events
            )
            if "slow_shard" in injected:
                delay = faults.slow_shard_delay()
        # kill_worker is a process-isolation fault; on threads the closest
        # honest equivalent is an in-worker crash.
        crash_shard = injected.get("worker_crash", injected.get("kill_worker"))

        partials = [
            np.zeros((out_rows, rank), dtype=np.float64) for _ in streams
        ]
        pool = self._pool(len(streams))
        anchor = tel.current_span_id()
        t_dispatch = tel.now()
        futures = [
            pool.submit(
                _chaos_worker, stream, fmats, mode, partial, cfg.chunk, i,
                crash=crash_shard == i,
                oom=injected.get("oom_worker") == i,
                delay=delay if injected.get("slow_shard") == i else 0.0,
                capture=tel.enabled,
            )
            for i, (stream, partial) in enumerate(zip(streams, partials))
        ]
        for i, future in enumerate(futures):
            # Each shard's straggler budget is anchored when its own
            # collection begins (matching the processes watchdog): time
            # spent waiting on — or serially redoing — earlier shards
            # never erodes a later, healthy shard's deadline.
            budget = cfg.shard_timeout if cfg.shard_timeout > 0.0 else None
            redone = False
            try:
                partials[i], batch = future.result(timeout=budget)
            except concurrent.futures.TimeoutError:
                # Straggler: abandon the in-flight worker (it finishes into
                # its orphaned buffer) and redo the shard serially.
                tel.counter("engine.shard.timeouts")
                if events is not None:
                    events.record(
                        SHARD_TIMEOUT, "MTTKRP", mode=mode,
                        detail=f"shard {i}/{len(streams)} missed its "
                               f"{cfg.shard_timeout:g}s deadline; "
                               f"re-executed serially",
                        shard=i, nnz=streams[i].nnz,
                    )
                partials[i], batch = self._redo_captured(
                    streams[i], fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                redone = True
            except Exception as exc:
                # Worker died mid-shard: deterministic serial re-execution.
                # If the shard is genuinely poisoned (e.g. a corrupted
                # plan), the serial pass raises too and the caller's
                # plan-repair fires.
                tel.counter("engine.shard.retries")
                if events is not None:
                    events.record(
                        SHARD_RETRY, "MTTKRP", mode=mode,
                        detail=f"shard {i}/{len(streams)} worker died "
                               f"({type(exc).__name__}: {exc}); "
                               f"re-executed serially",
                        shard=i, nnz=streams[i].nnz,
                    )
                partials[i], batch = self._redo_captured(
                    streams[i], fmats, mode, out_rows, rank, cfg.chunk, i,
                    enabled=tel.enabled,
                )
                redone = True
            self._finish_shard(
                tel, anchor, t_dispatch, i, streams[i].nnz, [batch],
                redone=redone, captured=tel.enabled,
                transport="inline" if redone else "threads",
            )
        return tree_reduce(partials)
