"""Crash-safe on-disk store of MTTKRP execution plans.

The in-memory :class:`~repro.engine.plan.PlanCache` dies with its process:
worker processes of the ``processes`` execution backend cannot see it, and
every fresh CLI invocation replans from scratch. A :class:`PlanStore`
persists each built plan under a **content-fingerprint key** — the SHA-1
content hash the cache already computes per tensor, combined with the
format and mode — so any process that can derive the key (the dispatching
parent, a pool worker, the next CLI run) skips the sort-and-segment
preprocessing entirely.

Write discipline (the same one the checkpoint layer uses against torn
writes):

- **Atomic publish** — the ``.npz`` payload is written to a ``.tmp``
  sibling, flushed and fsynced, then moved into place with
  :func:`os.replace`; readers never observe a partial entry, even if the
  writer is SIGKILLed mid-write.
- **Payload checksum** — the entry's metadata carries a SHA-1 digest over
  every array (name, dtype, shape, bytes); :meth:`PlanStore.load` verifies
  it, plus the stream's structural invariants, before returning a plan.
- **Quarantine, not crash** — an entry that fails any validation is moved
  aside to ``<key>.quarantine`` (kept for post-mortem) and reported as a
  miss, so the caller replans and the next save overwrites the bad key.
  Quarantines are counted (``engine.store.quarantined``) and logged as
  ``plan_repaired`` resilience events.

Store traffic is counted through the ambient telemetry session
(``engine.store.hits`` / ``engine.store.misses`` / ``engine.store.writes``
/ ``engine.store.evictions``) and mirrored on the instance for direct
assertion in tests. An optional ``max_bytes`` budget bounds the on-disk
footprint with LRU-by-mtime eviction (quarantine residue goes first).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.obs import current_telemetry
from repro.resilience.events import PLAN_REPAIRED, STORE_SKIPPED

__all__ = ["PlanStore", "store_key"]

STORE_VERSION = 1

#: Event phase used for store-level repairs (quarantine + replan).
_PHASE = "STORE"


def store_key(content_hash: str, fmt: str, mode: int) -> str:
    """The store key of one ``(tensor content, format, mode)`` plan.

    The tensor part reuses the cache's SHA-1 content hash — two equal
    tensors in different processes derive the same key, which is exactly
    what lets a pool worker or a repeated CLI run find the parent's plans.
    """
    return f"{content_hash[:24]}-{fmt}-m{int(mode)}"


def _payload_digest(arrays: dict) -> str:
    """SHA-1 over every payload array (name, dtype, shape, bytes)."""
    h = hashlib.sha1()
    for name in sorted(arrays):
        if name == "meta_json":
            continue
        arr = np.asarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(tuple(arr.shape)).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


class PlanStore:
    """Content-keyed directory of serialized :class:`MttkrpPlan` entries.

    ``max_bytes`` bounds the on-disk footprint: after every save the store
    evicts entries least-recently-*used* first (mtime order — loads *and*
    in-memory plan-cache hits :meth:`touch` the entry, so a hot plan
    survives) until the live ``.npz`` payload
    plus any ``.quarantine`` residue fits the budget. Quarantined files
    count against the budget and are evicted before any live entry — dead
    bytes go first. Evictions are counted (``engine.store.evictions``) and
    surfaced by ``repro perf``; ``max_bytes=None`` (the default) keeps the
    store unbounded.
    """

    def __init__(self, root, max_bytes: int | None = None):
        self.root = Path(root)
        self.max_bytes = int(max_bytes) if max_bytes else None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.evictions = 0
        self.write_errors = 0
        #: Chaos arm: the next :meth:`save` fails with a synthetic ENOSPC
        #: and takes the real skip-store path (the ``disk_full`` fault).
        self.fail_next_write = False

    # ------------------------------------------------------------------ #
    def path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return len(list(self.root.glob("*.npz"))) if self.root.exists() else 0

    def keys(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(p.name[: -len(".npz")] for p in self.root.glob("*.npz"))

    # ------------------------------------------------------------------ #
    def save(self, key: str, plan, *, events=None) -> Path | None:
        """Atomically persist *plan* under *key*; returns the entry path.

        Persistence is a cache tier, never a requirement: a write
        ``OSError`` (ENOSPC, read-only volume, vanished directory) is
        swallowed — the temp file is cleaned up, the failure is counted
        (``engine.store.write_errors``) and logged as a ``store_skipped``
        resilience event, and ``None`` is returned. The caller keeps its
        in-memory plan and the run continues.
        """
        path = self.path(key)
        tmp = path.with_name(path.name + ".tmp")
        try:
            if self.fail_next_write:
                self.fail_next_write = False
                raise OSError(errno.ENOSPC, "injected disk_full fault")
            self.root.mkdir(parents=True, exist_ok=True)
            stream = plan.stream
            arrays: dict[str, np.ndarray] = {
                "values": stream.values,
                "starts": stream.starts,
                "out_index": stream.out_index,
            }
            for m, col in enumerate(stream.cols):
                arrays[f"col_{m}"] = col
            meta = {
                "format_version": STORE_VERSION,
                "key": key,
                "mode": int(plan.mode),
                "out_rows": int(plan.out_rows),
                "ncols": len(stream.cols),
                "checksum": _payload_digest(arrays),
            }
            arrays["meta_json"] = np.array(json.dumps(meta))

            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.remove(tmp)
            except OSError:
                pass
            self.write_errors += 1
            current_telemetry().counter("engine.store.write_errors")
            if events is not None:
                events.record(
                    STORE_SKIPPED, _PHASE,
                    detail=f"plan-store write of {key} failed "
                           f"({type(exc).__name__}: {exc}); keeping the "
                           f"in-memory plan and skipping persistence",
                    key=key, error=str(exc),
                )
            return None
        self.writes += 1
        current_telemetry().counter("engine.store.writes")
        if self.max_bytes is not None:
            self._enforce_budget(keep=path)
        return path

    def _enforce_budget(self, keep: Path | None = None) -> None:
        """Evict entries (LRU by mtime) until the store fits ``max_bytes``.

        Quarantined residue is charged against the budget and evicted
        first; the just-written *keep* entry is never evicted, so a plan
        larger than the whole budget still persists (the store then holds
        exactly that one entry).
        """
        candidates: list[tuple[int, float, int, Path]] = []  # (tier, mtime, size, path)
        total = 0
        for pattern, tier in ((".quarantine", 0), (".npz", 1)):
            for path in self.root.glob(f"*{pattern}"):
                try:
                    st = path.stat()
                except OSError:  # pragma: no cover - racing removal
                    continue
                total += st.st_size
                if keep is not None and path == keep:
                    continue
                candidates.append((tier, st.st_mtime, st.st_size, path))
        if total <= self.max_bytes:
            return
        candidates.sort()  # dead quarantine bytes first, then oldest-used
        for _tier, _mtime, size, path in candidates:
            if total <= self.max_bytes:
                break
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - racing removal
                continue
            total -= size
            self.evictions += 1
            current_telemetry().counter("engine.store.evictions")

    def _total_bytes(self) -> int:
        if not self.root.exists():
            return 0
        return sum(
            p.stat().st_size
            for pattern in ("*.npz", "*.quarantine")
            for p in self.root.glob(pattern)
        )

    def load(self, key: str, *, events=None):
        """The plan stored under *key*, or ``None`` on miss.

        A present-but-invalid entry (torn write that dodged the atomic
        publish, bit rot, an injected ``corrupt_store`` fault) is
        quarantined and reported as a miss — the caller replans, exactly
        like the in-memory cache's self-heal.
        """
        from repro.engine.plan import MttkrpPlan, SegmentStream

        tel = current_telemetry()
        path = self.path(key)
        if not path.exists():
            self.misses += 1
            tel.counter("engine.store.misses")
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if "meta_json" not in data:
                    raise ValueError("not a plan-store entry (no metadata)")
                meta = json.loads(str(data["meta_json"]))
                if meta.get("format_version") != STORE_VERSION:
                    raise ValueError(
                        f"unsupported entry version {meta.get('format_version')!r}"
                    )
                payload = {name: data[name] for name in data.files}
                digest = _payload_digest(payload)
                if digest != meta.get("checksum"):
                    raise ValueError(
                        f"payload checksum mismatch (stored "
                        f"{str(meta.get('checksum'))[:12]}…, computed {digest[:12]}…)"
                    )
                cols = tuple(
                    np.array(data[f"col_{m}"]) for m in range(int(meta["ncols"]))
                )
                stream = SegmentStream(
                    cols,
                    np.array(data["values"]),
                    np.array(data["starts"]),
                    np.array(data["out_index"]),
                )
            if not stream.integrity_ok():
                raise ValueError("stored stream failed its integrity probe")
            plan = MttkrpPlan(int(meta["mode"]), int(meta["out_rows"]), stream)
            plan.store_key = key
        except Exception as exc:
            self._quarantine(key, path, exc, events)
            self.misses += 1
            tel.counter("engine.store.misses")
            return None
        self.hits += 1
        tel.counter("engine.store.hits")
        # LRU touch: a loaded entry is "recently used", so the budget
        # enforcer evicts cold plans before hot ones.
        self.touch(key)
        return plan

    def touch(self, key: str) -> None:
        """Refresh *key*'s recency (mtime) without loading it.

        The eviction order is mtime, so every use of an entry must leave a
        recency mark — loads do this implicitly, and the in-memory
        :class:`~repro.engine.plan.PlanCache` calls this on cache hits
        (which never re-read the disk) so a hot plan does not age like a
        cold one. Missing keys and read-only stores are silent no-ops.
        """
        try:
            os.utime(self.path(key))
        except OSError:
            pass

    def _quarantine(self, key: str, path: Path, exc: Exception, events) -> None:
        """Move a bad entry aside so the next save can republish the key."""
        target = path.with_name(path.name[: -len(".npz")] + ".quarantine")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - entry vanished under us
            target = None
        self.quarantined += 1
        current_telemetry().counter("engine.store.quarantined")
        if events is not None:
            events.record(
                PLAN_REPAIRED, _PHASE,
                detail=f"plan-store entry {key} failed validation "
                       f"({type(exc).__name__}: {exc}); quarantined"
                       + (f" to {target.name}" if target is not None else "")
                       + " and replanned",
                key=key,
            )

    # ------------------------------------------------------------------ #
    def corrupt(self, key: str, nbytes: int = 64) -> bool:
        """Deliberately damage the entry under *key* (chaos testing).

        Overwrites *nbytes* in the middle of the payload file in place —
        past the zip local-file headers, so the entry still *looks* like an
        archive but fails CRC/checksum validation on load. Returns whether
        an entry existed to corrupt.
        """
        path = self.path(key)
        if not path.exists():
            return False
        pos = max(path.stat().st_size // 2, 0)
        with open(path, "r+b") as fh:
            fh.seek(pos)
            chunk = fh.read(nbytes)
            fh.seek(pos)
            fh.write(bytes((b ^ 0xFF) for b in chunk) or b"\xff")
        return True

    def stats(self) -> dict:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "write_errors": self.write_errors,
            "bytes": self._total_bytes(),
            "max_bytes": self.max_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanStore({str(self.root)!r}, entries={len(self)})"
