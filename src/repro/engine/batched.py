"""Batched all-mode Khatri-Rao rows: gather once, reuse across modes.

When the same factors serve the MTTKRP of *every* mode — the AUNTF/
streaming pattern (Jacobi-style), as opposed to the batch AO loop's
Gauss-Seidel updates where each mode sees factors the previous mode just
changed — the per-nonzero factor-row gathers ``H⁽ᵐ⁾[i_m]`` can be shared.
The seed path gathers ``ndim`` rows per call and makes ``ndim + 1`` calls
per streaming step (one full product, one partial per mode): ``ndim²+ndim``
gathers. This driver gathers each mode exactly once and builds every
partial product from shared left-associated prefixes, so the bits match
the seed's ``partial_khatri_rao_rows`` exactly:

- prefix ``P_k = v ⊛ g_0 ⊛ … ⊛ g_{k-1}`` (left-associated) equals the
  seed's accumulator for mode *k* after its first *k* multiplies;
- mode *k*'s rows then left-multiply the remaining gathers one by one, in
  ascending mode order — the seed's exact order.

Factors are cast to float64 once per call (not once per mode per call).
"""

from __future__ import annotations

import numpy as np

__all__ = ["all_mode_krp_rows"]


def all_mode_krp_rows(indices, values, factors, include_full: bool = False):
    """Per-mode scaled Khatri-Rao rows for every mode, sharing gathers.

    Returns ``(per_mode, full)``: ``per_mode[k]`` is the ``(nnz, R)``
    matrix ``partial_khatri_rao_rows(indices, values, factors, mode=k)``
    (bitwise), and ``full`` is the ``mode=None`` all-mode product when
    *include_full* (else ``None``).
    """
    values = np.asarray(values, dtype=np.float64)
    fmats = [np.asarray(f, dtype=np.float64) for f in factors]
    ndim = len(fmats)
    rank = fmats[0].shape[1] if ndim else 0
    nnz = values.shape[0]
    gathers = [fmats[m][indices[:, m]] for m in range(ndim)]

    prefix = np.broadcast_to(values[:, None], (nnz, rank)).copy()
    per_mode: list[np.ndarray] = []
    for k in range(ndim):
        acc = prefix.copy()
        for m in range(k + 1, ndim):
            acc *= gathers[m]
        per_mode.append(acc)
        if k < ndim - 1 or include_full:
            prefix = prefix * gathers[k]
    return per_mode, (prefix if include_full else None)
