"""Configuration of the host execution engine (plan cache + sharding).

The engine accelerates the *concrete* NumPy hot paths of a cSTF run; it
never changes what the simulated machine model charges, so enabling it
alters host wall-clock only, not the reported device timelines. Apart from
the explicitly opt-in ``gram_rescale``, every engine path is bit-identical
to the seed kernels (same summation order, same multiply order).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.utils.validation import check_positive_int, require

__all__ = ["EngineConfig", "resolve_engine"]

_VALIDATE = ("off", "cheap", "full")
_BACKENDS = ("serial", "threads", "processes")
_SHM = ("auto", "on", "off")


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the cached/sharded MTTKRP execution path.

    Attributes
    ----------
    chunk:
        Target nonzeros per execution chunk. Chunks are always aligned to
        segment (output-row) boundaries, so chunked execution is bitwise
        identical to one flat pass; small chunks keep the per-nonzero
        Khatri-Rao accumulator inside the cache hierarchy, which is where
        the engine's wall-clock win comes from. ``0`` disables chunking
        (one chunk spanning all nonzeros).
    shards:
        Worker shards for the parallel execution path (``1`` = serial).
        Shards own whole segments (LPT greedy over segment sizes via
        :func:`repro.kernels.partition.greedy_assign`), accumulate into
        private outputs, and are tree-reduced — the CPU analogue of the
        paper's privatized GPU reductions. Because segment row sets are
        disjoint, sharded results equal serial results bitwise.
    shard_timeout:
        Per-shard wall-clock budget in seconds for the sharded path
        (``0.0`` disables timeout detection). Each shard's deadline is
        anchored when the dispatcher begins collecting *that* shard —
        never at batch launch, so time spent collecting (or serially
        redoing) earlier shards cannot erode a later shard's budget. A
        shard that has not delivered within the budget is declared a
        straggler: its in-flight result is abandoned (the ``processes``
        backend kills the worker outright) and the shard is re-executed
        serially on the dispatching thread — bit-identical, since each
        shard's summation order is private. Timeouts are counted
        (``engine.shard.timeouts``) and logged as ``shard_timeout``
        events.
    backend:
        Shard dispatch strategy (see :mod:`repro.engine.backends`):
        ``"threads"`` (default; shared in-process pool), ``"serial"``
        (inline, no workers), or ``"processes"`` (isolated worker
        processes with heartbeat/watchdog crash recovery — a SIGKILLed
        or aborted worker is detected, respawned, and its shard redone
        serially). All backends are bitwise identical to serial
        execution; only failure isolation and wall-clock differ.
    shm:
        Shard transport of the ``processes`` backend: ``"auto"`` (default;
        zero-copy ``multiprocessing.shared_memory`` transport where POSIX
        shared memory works, pipe pickling otherwise), ``"on"`` (require
        shared memory; raise where unavailable), or ``"off"`` (always
        pickle over the task pipes). With shm, factor matrices are
        published once per MTTKRP dispatch (one write, N readers) and
        each shard's accumulator is a parent-allocated segment the worker
        fills in place — bit-identical to the pipe transport and to
        serial execution across every fault-recovery path. Ignored by
        the ``serial``/``threads`` backends (shared address space
        already). Booleans are accepted and normalized to on/off.
    plan_store:
        Optional path of an on-disk :class:`~repro.engine.plan_store.
        PlanStore` directory (``None`` disables the store tier). Built
        plans are persisted under content-fingerprint keys with
        crash-safe writes, so fresh processes — pool workers of the
        ``processes`` backend, or the next CLI run over the same tensor
        — skip preprocessing. Corrupt entries are quarantined and
        replanned, never trusted.
    plan_store_bytes:
        On-disk budget for the plan store in bytes (``0`` = unbounded,
        the default). When set, every save evicts least-recently-used
        entries (mtime order; loads *and* in-memory plan-cache hits both
        refresh an entry's recency) until the store —
        including quarantine residue, which is evicted first — fits the
        budget. Evictions are counted (``engine.store.evictions``).
        Ignored when ``plan_store`` is ``None``.
    memory_budget_bytes:
        Resource-pressure memory budget in bytes (``0`` = unbounded, the
        default). Two enforcement points, both on the ``processes``
        backend: (1) the watchdog samples each worker's RSS
        (``/proc/<pid>/statm``) every heartbeat and emits
        ``engine.proc.worker_rss`` gauges — a worker whose peak RSS
        breaches the budget is proactively recycled at the next shard
        boundary (``worker_recycled`` event; the shard result is already
        collected, so bit-identity is untouched); (2) the shared-memory
        :class:`~repro.engine.backends.shm.SegmentPool` bounds its live
        /dev/shm bytes by the same budget, trimming idle segments under
        pressure and — when a lease still cannot fit — downgrading that
        dispatch to pipe transport (``transport_downgraded`` event)
        instead of erroring.
    disk_budget_bytes:
        Resource-pressure disk budget in bytes (``0`` = unbounded, the
        default). Acts as the default on-disk bound for cached artifacts:
        when ``plan_store_bytes`` is unset, the plan store evicts down to
        this budget instead. Persistence failures under real disk
        pressure (ENOSPC) are always survived regardless of budget —
        plan-store writes are skipped (``store_skipped``), checkpoint
        writes keep the last completed generation
        (``checkpoint_skipped``), and the telemetry sink degrades to a
        null sink (``obs.sink.dropped``).
    gram_rescale:
        Reuse the Gram matrix of the *unnormalized* update result via a
        rank-one λ-rescale (``G(H/λ) = G(H)/(λλᵀ)``) instead of a separate
        column-norm pass after normalization. Requires ``normalize="2"``
        (λ² is exactly ``diag(G)``). Opt-in: the rescaled Gram is
        numerically equivalent but *not* bit-identical to the seed path,
        so it is excluded from the engine's rtol=0 guarantee.
    max_tensors:
        Plan-cache capacity in tensors (LRU eviction). Each cached tensor
        pins its plans, cached format conversions, and a strong reference
        to the tensor itself.
    validate:
        Plan staleness detection per lookup: ``"cheap"`` (default; shape,
        nnz, and a 16-point sampled fingerprint of indices/values),
        ``"full"`` (content hash of all bytes — O(nnz) per lookup), or
        ``"off"`` (object identity only). In-place mutations that dodge
        the cheap probe require an explicit
        :meth:`~repro.engine.plan.PlanCache.invalidate`.
    """

    chunk: int = 4096
    shards: int = 1
    shard_timeout: float = 0.0
    backend: str = "threads"
    shm: str = "auto"
    plan_store: str | None = None
    plan_store_bytes: int = 0
    memory_budget_bytes: int = 0
    disk_budget_bytes: int = 0
    gram_rescale: bool = False
    max_tensors: int = 16
    validate: str = "cheap"

    def __post_init__(self):
        require(int(self.chunk) >= 0, "chunk must be >= 0")
        object.__setattr__(self, "chunk", int(self.chunk))
        object.__setattr__(self, "shards", check_positive_int(self.shards, "shards"))
        require(float(self.shard_timeout) >= 0.0, "shard_timeout must be >= 0")
        object.__setattr__(self, "shard_timeout", float(self.shard_timeout))
        require(
            self.backend in _BACKENDS,
            f"backend must be one of {_BACKENDS}, got {self.backend!r}",
        )
        shm = self.shm
        if shm is True:
            shm = "on"
        elif shm is False:
            shm = "off"
        require(
            shm in _SHM, f"shm must be one of {_SHM}, got {self.shm!r}"
        )
        object.__setattr__(self, "shm", shm)
        if self.plan_store is not None:
            object.__setattr__(self, "plan_store", os.fspath(self.plan_store))
        require(int(self.plan_store_bytes) >= 0, "plan_store_bytes must be >= 0")
        object.__setattr__(self, "plan_store_bytes", int(self.plan_store_bytes))
        require(
            int(self.memory_budget_bytes) >= 0, "memory_budget_bytes must be >= 0"
        )
        object.__setattr__(
            self, "memory_budget_bytes", int(self.memory_budget_bytes)
        )
        require(int(self.disk_budget_bytes) >= 0, "disk_budget_bytes must be >= 0")
        object.__setattr__(self, "disk_budget_bytes", int(self.disk_budget_bytes))
        object.__setattr__(
            self, "max_tensors", check_positive_int(self.max_tensors, "max_tensors")
        )
        require(
            self.validate in _VALIDATE,
            f"validate must be one of {_VALIDATE}, got {self.validate!r}",
        )


def default_shards() -> int:
    """Worker count for ``engine="sharded"``: the host's cores, capped."""
    return max(2, min(8, os.cpu_count() or 2))


def resolve_engine(setting) -> EngineConfig | None:
    """Normalize a ``CstfConfig.engine`` setting to an EngineConfig or None.

    Accepted: ``None``/``False``/``"off"`` (engine disabled), ``True``/
    ``"on"``/``"cached"`` (cached serial execution), ``"sharded"`` (cached +
    sharded across :func:`default_shards` workers), ``"processes"``
    (sharded across isolated worker processes with crash recovery), a dict
    of :class:`EngineConfig` fields, or an :class:`EngineConfig` instance.
    """
    if setting is None or setting is False:
        return None
    if isinstance(setting, EngineConfig):
        return setting
    if isinstance(setting, dict):
        return EngineConfig(**setting)
    if setting is True:
        return EngineConfig()
    if isinstance(setting, str):
        low = setting.lower()
        if low == "off":
            return None
        if low in ("on", "cached"):
            return EngineConfig()
        if low == "sharded":
            return EngineConfig(shards=default_shards())
        if low == "processes":
            return EngineConfig(shards=default_shards(), backend="processes")
    raise ValueError(
        f"engine must be None/'off', 'on'/'cached', 'sharded', 'processes', "
        f"a dict of EngineConfig fields, or an EngineConfig, got {setting!r}"
    )
