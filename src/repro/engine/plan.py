"""Per-tensor MTTKRP execution plans and the plan cache.

Every segment-based MTTKRP call in the seed kernels recomputes the same
preprocessing per call: the stable sort permutation of the nonzeros by the
target mode, the segment start offsets, the target rows, and (for the
linearized formats) the format conversion itself. All of that depends only
on the tensor's sparsity pattern — not on the factors — so it is computed
once per ``(tensor, format, mode)`` here and reused across every AO
iteration.

A :class:`MttkrpPlan` stores the nonzero stream *presorted* by the target
mode: per-mode coordinate columns, values, segment starts, and the output
row of each segment. Executing a plan (:mod:`repro.engine.execute`) then
needs no argsort and no ``rows[order]`` gather — the two biggest per-call
costs of :func:`repro.kernels.mttkrp_coo.segment_accumulate` — and chunked
execution falls out naturally from the segment starts.

:class:`PlanCache` keys entries by tensor identity with a content-hash
fallback (an equal copy of a cached tensor adopts the existing plans), and
guards against in-place mutation with a sampled fingerprint per lookup
(see ``EngineConfig.validate``). Hits and misses are counted through the
ambient telemetry session as ``engine.plan.hits`` / ``engine.plan.misses``
and ``engine.format.hits`` / ``engine.format.misses``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.engine.plan_store import store_key as _store_key
from repro.kernels.partition import greedy_assign
from repro.obs import current_telemetry

__all__ = ["SegmentStream", "MttkrpPlan", "PlanCache", "get_plan_cache"]


class SegmentStream:
    """A run of nonzeros presorted by target row, with segment boundaries.

    ``cols[m]`` are the mode-*m* coordinates in target-major order,
    ``values`` the matching nonzero values. ``starts`` marks the first
    position of each equal-target segment; ``bounds`` is ``starts`` with
    the total length appended, so segment *s* spans
    ``values[bounds[s]:bounds[s+1]]`` and accumulates into output row
    ``out_index[s]``.
    """

    __slots__ = ("cols", "values", "starts", "bounds", "out_index", "_edges")

    def __init__(self, cols, values, starts, out_index):
        self.cols = tuple(cols)
        self.values = values
        self.starts = starts
        self.bounds = np.append(starts, values.shape[0])
        self.out_index = out_index
        self._edges: dict[int, np.ndarray] = {}

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_segments(self) -> int:
        return int(self.starts.shape[0])

    def chunk_edges(self, chunk: int) -> np.ndarray:
        """Segment positions cutting the stream into ≈*chunk*-nonzero chunks.

        Chunk *i* covers segments ``[edges[i], edges[i+1])``. Boundaries
        always land on segment starts, so no output row is ever split
        across chunks — chunked accumulation reduces exactly the same runs
        as a flat ``np.add.reduceat`` and is therefore bitwise identical.
        A segment larger than *chunk* becomes its own oversized chunk.
        """
        edges = self._edges.get(chunk)
        if edges is None:
            edges = _chunk_edges(self.bounds, chunk)
            self._edges[chunk] = edges
        return edges

    def integrity_ok(self) -> bool:
        """Cheap structural self-check of the cached stream.

        Verifies the invariants execution relies on: one coordinate entry
        per nonzero, segment bounds that start at 0, end at ``nnz``, and
        never decrease, and one output row per segment. A cached stream
        that fails this probe is corrupt (bit flip, buggy in-place
        mutation, injected ``corrupt_plan`` fault) and must be replanned,
        not executed.
        """
        nnz = self.values.shape[0]
        if any(c.shape[0] != nnz for c in self.cols):
            return False
        if self.bounds.shape[0] != self.starts.shape[0] + 1:
            return False
        if self.out_index.shape[0] != self.starts.shape[0]:
            return False
        if nnz == 0:
            return True
        return bool(
            self.bounds[0] == 0
            and self.bounds[-1] == nnz
            and np.all(np.diff(self.bounds) > 0)
        )

    @property
    def nbytes(self) -> int:
        return int(
            sum(c.nbytes for c in self.cols)
            + self.values.nbytes
            + self.starts.nbytes
            + self.bounds.nbytes
            + self.out_index.nbytes
        )


def _chunk_edges(bounds: np.ndarray, chunk: int) -> np.ndarray:
    n_seg = bounds.shape[0] - 1
    if n_seg == 0:
        return np.zeros(1, dtype=np.int64)
    if chunk <= 0:
        return np.array([0, n_seg], dtype=np.int64)
    edges = [0]
    pos = 0
    while pos < n_seg:
        # Largest e with bounds[e] - bounds[pos] <= chunk, but at least one
        # segment so oversized segments still make progress.
        nxt = int(np.searchsorted(bounds, bounds[pos] + chunk, side="right")) - 1
        nxt = min(max(nxt, pos + 1), n_seg)
        edges.append(nxt)
        pos = nxt
    return np.asarray(edges, dtype=np.int64)


class MttkrpPlan:
    """The cached preprocessing for one ``(tensor, format, mode)`` MTTKRP."""

    __slots__ = ("mode", "out_rows", "stream", "store_key", "_shards")

    def __init__(self, mode: int, out_rows: int, stream: SegmentStream):
        self.mode = mode
        self.out_rows = out_rows
        self.stream = stream
        #: Key of this plan's on-disk :class:`~repro.engine.plan_store.
        #: PlanStore` entry, when one exists — lets the process backend ship
        #: shard work by reference instead of pickling streams per task.
        self.store_key: str | None = None
        self._shards: dict[int, list[SegmentStream]] = {}

    @classmethod
    def from_arrays(cls, indices, values, shape, mode: int) -> "MttkrpPlan":
        """Build a plan from a COO-like ``(nnz, ndim)`` index array.

        The stable argsort matches :func:`segment_accumulate` exactly, so
        executing the plan reproduces the seed kernel's summation order —
        and with it, its bits.
        """
        indices = np.asarray(indices)
        values = np.asarray(values, dtype=np.float64)
        ndim = int(indices.shape[1]) if indices.ndim == 2 else len(shape)
        targets = indices[:, mode] if values.shape[0] else np.zeros(0, dtype=np.int64)
        order = np.argsort(targets, kind="stable")
        cols = tuple(
            np.ascontiguousarray(indices[order, m], dtype=np.int64)
            for m in range(ndim)
        )
        values_sorted = np.ascontiguousarray(values[order])
        st = cols[mode]
        if st.shape[0]:
            starts = np.flatnonzero(np.concatenate(([True], st[1:] != st[:-1])))
        else:
            starts = np.zeros(0, dtype=np.int64)
        stream = SegmentStream(cols, values_sorted, starts, st[starts])
        return cls(mode, int(shape[mode]), stream)

    def integrity_ok(self) -> bool:
        """Whether the cached stream still satisfies its invariants."""
        return self.stream.integrity_ok()

    def shard_streams(self, n_shards: int) -> list[SegmentStream]:
        """Split the stream into *n_shards* per-worker streams.

        Whole segments are LPT-greedily assigned to workers
        (:func:`~repro.kernels.partition.greedy_assign` — deterministic by
        construction), then each worker's nonzeros are gathered once into a
        private contiguous stream. Workers own disjoint output rows, so
        their private accumulators tree-reduce without write conflicts.
        """
        streams = self._shards.get(n_shards)
        if streams is not None:
            return streams
        stream = self.stream
        if n_shards <= 1 or stream.n_segments <= 1:
            streams = [stream]
        else:
            seg_sizes = np.diff(stream.bounds)
            owner, _loads = greedy_assign(seg_sizes, n_shards)
            streams = []
            for w in range(n_shards):
                segs = np.flatnonzero(owner == w)
                if w > 0 and segs.size == 0:
                    continue  # fewer segments than shards
                sizes = seg_sizes[segs]
                local_starts = np.concatenate(
                    ([0], np.cumsum(sizes[:-1]))
                ).astype(np.int64) if segs.size else np.zeros(0, dtype=np.int64)
                total = int(sizes.sum())
                sel = (
                    np.repeat(stream.bounds[segs] - local_starts, sizes)
                    + np.arange(total, dtype=np.int64)
                )
                streams.append(
                    SegmentStream(
                        tuple(c[sel] for c in stream.cols),
                        stream.values[sel],
                        local_starts,
                        stream.out_index[segs],
                    )
                )
        self._shards[n_shards] = streams
        return streams

    @property
    def nbytes(self) -> int:
        shards = sum(s.nbytes for ss in self._shards.values() for s in ss)
        return self.stream.nbytes + shards


# --------------------------------------------------------------------- #
class _Entry:
    __slots__ = ("tensor", "probe", "content", "plans", "formats")

    def __init__(self, tensor, probe, content, plans=None, formats=None):
        self.tensor = tensor
        self.probe = probe
        self.content = content
        self.plans = plans if plans is not None else {}
        self.formats = formats if formats is not None else {}


def _probe(tensor) -> tuple:
    """Cheap mutation fingerprint: shape, nnz, 16 sampled coordinates/values."""
    nnz = tensor.nnz
    if nnz == 0:
        return (tuple(tensor.shape), 0)
    sample = np.linspace(0, nnz - 1, num=min(nnz, 16)).astype(np.int64)
    return (
        tuple(tensor.shape),
        nnz,
        tensor.indices[sample].tobytes(),
        tensor.values[sample].tobytes(),
    )


def _content_hash(tensor) -> str:
    h = hashlib.sha1()
    h.update(repr(tuple(tensor.shape)).encode())
    h.update(np.ascontiguousarray(tensor.indices).tobytes())
    h.update(np.ascontiguousarray(tensor.values).tobytes())
    return h.hexdigest()


class PlanCache:
    """LRU cache of per-tensor plans and format conversions.

    Entries hold a strong reference to their tensor (identity keys must
    stay stable), so the cache pins at most ``max_tensors`` tensors plus
    their plans; evicted or invalidated entries release everything.
    """

    def __init__(self, max_tensors: int = 16, store=None):
        self.max_tensors = int(max_tensors)
        #: Optional :class:`~repro.engine.plan_store.PlanStore` tier: plan
        #: misses probe the store before building, and fresh builds are
        #: persisted under their content-fingerprint key. ``None`` keeps
        #: the cache purely in-memory.
        self.store = store
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._by_content: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.format_hits = 0
        self.format_misses = 0
        self.repairs = 0
        """Self-heal count: corrupted or stale cached state that was
        evicted and replanned instead of raising (mirrored to the
        ``engine.plan.repairs`` telemetry counter)."""

    def record_repair(self, detail: str) -> None:
        self.repairs += 1
        current_telemetry().counter("engine.plan.repairs", detail=detail)

    # ------------------------------------------------------------------ #
    def plan(
        self,
        tensor,
        mode: int,
        *,
        fmt: str = "coo",
        indices=None,
        values=None,
        validate: str = "cheap",
        events=None,
    ) -> MttkrpPlan:
        """The cached plan for ``(tensor, fmt, mode)``; built on first use.

        ``indices``/``values`` override the arrays the plan is built from
        (used by the ALTO path, which plans over the decoded linearized
        order rather than the canonical COO order).

        With a :attr:`store` attached, an in-memory miss probes the
        on-disk tier under the content-fingerprint key before building —
        the key depends only on tensor bytes, format, and mode, so plans
        persisted by another process (or a previous run) are found — and
        every fresh build is persisted back. A store entry that fails
        validation is quarantined by the store (reported on *events* as
        ``plan_repaired``) and simply counts as a miss here. ``indices``
        overrides skip the store: the key cannot see the override arrays.
        """
        entry = self._entry(tensor, validate)
        key = (fmt, int(mode))
        plan = entry.plans.get(key)
        tel = current_telemetry()
        if plan is not None and validate != "off" and not plan.integrity_ok():
            # Self-heal: a corrupted cached plan is evicted and replanned
            # instead of feeding garbage offsets into the execution layer.
            entry.plans.pop(key, None)
            plan = None
            self.record_repair(f"plan {fmt}/mode{mode} failed its integrity probe")
        if plan is None:
            use_store = (
                self.store is not None and indices is None and values is None
            )
            skey = _store_key(entry.content, fmt, mode) if use_store else None
            if skey is not None:
                plan = self.store.load(skey, events=events)
            if plan is None:
                self.misses += 1
                tel.counter("engine.plan.misses")
                plan = MttkrpPlan.from_arrays(
                    tensor.indices if indices is None else indices,
                    tensor.values if values is None else values,
                    tensor.shape,
                    mode,
                )
                if skey is not None:
                    # Store tier is best-effort: save() swallows write
                    # failures (ENOSPC) itself and returns None.
                    if self.store.save(skey, plan, events=events) is not None:
                        plan.store_key = skey
            entry.plans[key] = plan
        else:
            self.hits += 1
            tel.counter("engine.plan.hits")
            # Backfill: a plan built before the store was attached (or
            # whose entry was quarantined) is persisted on its next hit,
            # so the on-disk tier converges to the in-memory contents.
            if (
                self.store is not None
                and plan.store_key is None
                and indices is None
                and values is None
            ):
                skey = _store_key(entry.content, fmt, mode)
                if self.store.save(skey, plan, events=events) is not None:
                    plan.store_key = skey
            elif self.store is not None and plan.store_key is not None:
                # LRU touch: an in-memory hit never re-reads the file, so
                # without this the budget enforcer sees the hottest plan
                # as the coldest entry and evicts it first under pressure
                # (from this process's saves or a sibling's).
                self.store.touch(plan.store_key)
        return plan

    def block_plans(
        self, tensor, blocked, mode: int, validate: str = "cheap", *,
        fmt: str = "blco",
    ) -> list:
        """Per-block segment streams for a blocked format, cached per mode.

        ``blocked`` is the cached BLCO or HiCOO conversion; plans are keyed
        ``(f"{fmt}_blocks", mode)`` and built in the format's block order,
        which the serial per-block execution preserves bit for bit.
        """
        entry = self._entry(tensor, validate)
        key = (f"{fmt}_blocks", int(mode))
        plans = entry.plans.get(key)
        tel = current_telemetry()
        if plans is not None and validate != "off" and not all(
            p.integrity_ok() for p in plans
        ):
            entry.plans.pop(key, None)
            plans = None
            self.record_repair(f"block plans {fmt}/mode{mode} failed the integrity probe")
        if plans is None:
            self.misses += 1
            tel.counter("engine.plan.misses")
            plans = self._build_block_plans(blocked, mode, fmt)
            entry.plans[key] = plans
        else:
            self.hits += 1
            tel.counter("engine.plan.hits")
        return plans

    @staticmethod
    def _build_block_plans(blocked, mode: int, fmt: str) -> list:
        plans = []
        if fmt == "blco":
            for block in blocked.blocks:
                idx = np.stack(
                    [blocked.block_mode_indices(block, m) for m in range(blocked.ndim)],
                    axis=1,
                )
                plans.append(
                    MttkrpPlan.from_arrays(idx, block.values, blocked.shape, mode)
                )
        elif fmt == "hicoo":
            for b in range(blocked.num_blocks):
                _, _, values = blocked.block_slice(b)
                idx = np.stack(
                    [blocked.mode_indices_of_block(b, m) for m in range(blocked.ndim)],
                    axis=1,
                )
                plans.append(
                    MttkrpPlan.from_arrays(idx, values, blocked.shape, mode)
                )
        else:  # pragma: no cover - callers pass known formats
            raise ValueError(f"unknown blocked format {fmt!r}")
        return plans

    def format(self, tensor, fmt: str, build, validate: str = "cheap"):
        """The cached format conversion for *tensor*; ``build(tensor)`` on miss.

        Used for ALTO/BLCO linearizations, CSF mode trees, and the decoded
        ALTO coordinate matrix — every once-per-tensor derivation that the
        seed path redoes once per ``cstf`` call.
        """
        entry = self._entry(tensor, validate)
        tel = current_telemetry()
        converted = entry.formats.get(fmt)
        if converted is None:
            self.format_misses += 1
            tel.counter("engine.format.misses")
            converted = build(tensor)
            entry.formats[fmt] = converted
        else:
            self.format_hits += 1
            tel.counter("engine.format.hits")
        return converted

    # ------------------------------------------------------------------ #
    def _entry(self, tensor, validate: str) -> _Entry:
        key = id(tensor)
        entry = self._entries.get(key)
        if entry is not None and entry.tensor is tensor:
            if (
                validate == "off"
                or (validate == "cheap" and entry.probe == _probe(tensor))
                or (validate == "full" and entry.content == _content_hash(tensor))
            ):
                self._entries.move_to_end(key)
                return entry
            # Stale: the tensor mutated under the cache. Evict-and-replan
            # (counted as a repair) rather than serving poisoned plans.
            self._evict(key)
            self.record_repair("tensor fingerprint mismatch; entry evicted")
        elif entry is not None:
            self._evict(key)  # id reuse by a different object

        # Content fallback: an equal copy adopts the existing entry's plans.
        content = _content_hash(tensor)
        twin_key = self._by_content.get(content)
        if twin_key is not None and twin_key in self._entries:
            twin = self._entries[twin_key]
            entry = _Entry(tensor, _probe(tensor), content, twin.plans, twin.formats)
        else:
            entry = _Entry(tensor, _probe(tensor), content)
            self._by_content[content] = key
        self._entries[key] = entry
        while len(self._entries) > self.max_tensors:
            old_key, _ = self._entries.popitem(last=False)
            self._drop_content_key(old_key)
        current_telemetry().gauge("engine.plan.tensors", float(len(self._entries)))
        return entry

    def _drop_content_key(self, key: int) -> None:
        for content, mapped in list(self._by_content.items()):
            if mapped == key:
                del self._by_content[content]

    def _evict(self, key: int) -> None:
        self._entries.pop(key, None)
        self._drop_content_key(key)

    # ------------------------------------------------------------------ #
    def invalidate(self, tensor) -> None:
        """Drop every cached plan/format of *tensor* (after mutating it)."""
        self._evict(id(tensor))

    def drop_plans(self, tensor) -> int:
        """Drop *tensor*'s in-memory plans, keeping format conversions.

        The next :meth:`plan` lookup goes back through the store tier (when
        one is attached) — the hook the chaos harness uses to force a
        corrupted store entry onto the read path. Returns the number of
        plan slots dropped.
        """
        entry = self._entries.get(id(tensor))
        if entry is None or entry.tensor is not tensor:
            return 0
        dropped = len(entry.plans)
        entry.plans.clear()
        return dropped

    def corrupt(self, tensor, how: str = "bounds") -> int:
        """Deliberately corrupt *tensor*'s cached plans (chaos testing).

        ``how="bounds"`` breaks each stream's segment-bound invariant —
        detectable by the integrity probe, so the next lookup self-heals.
        ``how="cols"`` poisons a coordinate with an out-of-range index —
        *not* probe-detectable; execution raises and the driver's
        replan-once recovery fires instead. Returns the number of plans
        corrupted (0 when the tensor has no cached entry).
        """
        entry = self._entries.get(id(tensor))
        if entry is None or entry.tensor is not tensor:
            return 0
        corrupted = 0
        for plan in entry.plans.values():
            for p in plan if isinstance(plan, list) else [plan]:
                stream = p.stream
                if stream.nnz == 0:
                    continue
                if how == "bounds":
                    stream.bounds[-1] = stream.nnz + 7
                else:
                    stream.cols[0][stream.nnz // 2] = 2**31
                corrupted += 1
        return corrupted

    def clear(self) -> None:
        self._entries.clear()
        self._by_content.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        """Plan-lookup hit fraction over this cache's lifetime (0.0 if unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def nbytes(self) -> int:
        total = 0
        for entry in self._entries.values():
            for plan in entry.plans.values():
                plans = plan if isinstance(plan, list) else [plan]
                total += sum(p.nbytes for p in plans)
        return total


#: Process-wide default cache, shared by every engine-enabled cstf run so
#: plans survive across calls on the same tensor (the AUNTF/streaming
#: pattern: many factorizations of one tensor).
_DEFAULT_CACHE = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-wide default :class:`PlanCache`."""
    return _DEFAULT_CACHE
