"""Format dispatch for the engine: cached, chunked, optionally sharded MTTKRP.

:func:`engine_mttkrp` is the engine's analogue of the per-format seed
kernels. Per format:

- ``coo`` — one cached plan per mode over the canonical COO order;
  bitwise identical to :func:`~repro.kernels.mttkrp_coo.mttkrp_coo`.
- ``alto`` — the ALTO linearization and its decoded coordinate matrix are
  cached once per tensor (the seed delinearizes per call); plans are built
  over the ALTO nonzero order, so the summation order — and the bits —
  match :func:`~repro.kernels.mttkrp_alto.mttkrp_alto`.
- ``blco`` — the BLCO conversion and per-block decoded plans are cached;
  blocks accumulate into the output in block order exactly like
  :func:`~repro.kernels.mttkrp_blco.mttkrp_blco`. Executed serially (the
  per-block structure is the paper's own blocking).
- ``csf`` — per-root mode trees are cached once per tensor and handed to
  the unchanged :func:`~repro.kernels.mttkrp_csf.mttkrp_csf` tree walk
  (the seed driver re-roots through COO when the cached tree's root
  differs; the cache keeps all roots).

Sharding applies to the ``coo`` and ``alto`` plan paths.

:class:`EngineMttkrp` is the drop-in replacement for the cstf driver's
``_ConcreteMttkrp``: it charges the *identical* simulated device cost
(:func:`~repro.machine.analytic.charge_mttkrp`), so engine-enabled runs
report the same device timelines — only the host wall-clock changes.
"""

from __future__ import annotations

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.execute import run_plan
from repro.engine.plan import PlanCache, get_plan_cache
from repro.kernels.mttkrp import check_factors
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.utils.validation import check_axis

__all__ = ["PreparedFactors", "engine_mttkrp", "EngineMttkrp"]


class PreparedFactors:
    """Cast factors to float64 once per factor object, not once per call.

    The seed kernels run ``np.asarray(f, dtype=np.float64)`` per factor per
    call; for float64 inputs that is a cheap no-copy, but for anything else
    it materializes a fresh copy every mode of every iteration. This memo
    keys on object identity, so a factor array is converted exactly once
    for as long as the driver sees the same object.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._memo: dict[int, tuple[object, np.ndarray]] = {}

    def __call__(self, factors) -> list[np.ndarray]:
        return [self._one(f) for f in factors]

    def _one(self, f) -> np.ndarray:
        key = id(f)
        hit = self._memo.get(key)
        if hit is not None and hit[0] is f:
            return hit[1]
        arr = np.asarray(f, dtype=np.float64)
        if len(self._memo) >= self.max_entries:
            self._memo.clear()
        self._memo[key] = (f, arr)
        return arr


def _build_alto(tensor):
    from repro.tensor.alto import AltoTensor

    return AltoTensor.from_coo(tensor)


def _build_blco(tensor):
    from repro.tensor.blco import BlcoTensor

    return BlcoTensor.from_coo(tensor)


def _build_csf_forest(tensor):
    from repro.tensor.csf import CsfTensor

    return [CsfTensor.from_coo(tensor, root_mode=m) for m in range(tensor.ndim)]


def engine_mttkrp(
    tensor,
    factors,
    mode: int,
    fmt: str = "coo",
    cfg: EngineConfig | None = None,
    cache: PlanCache | None = None,
    prepare: PreparedFactors | None = None,
) -> np.ndarray:
    """Cached/sharded MTTKRP over a COO tensor, dispatched by format."""
    cfg = cfg if cfg is not None else EngineConfig()
    # `is not None`, not truthiness: an empty PlanCache has len() == 0.
    cache = cache if cache is not None else get_plan_cache()
    mode = check_axis(mode, tensor.ndim)
    rank = check_factors(tensor.shape, factors, mode)
    fmats = prepare(factors) if prepare is not None else [
        np.asarray(f, dtype=np.float64) for f in factors
    ]

    if fmt == "coo":
        plan = cache.plan(tensor, mode, validate=cfg.validate)
        return run_plan(plan, fmats, mode, tensor.shape[mode], rank, cfg)

    if fmt == "alto":
        alto = cache.format(tensor, "alto", _build_alto, validate=cfg.validate)
        decoded = cache.format(
            tensor, "alto_indices", lambda _t: alto.all_mode_indices(),
            validate=cfg.validate,
        )
        plan = cache.plan(
            tensor, mode, fmt="alto", indices=decoded, values=alto.values,
            validate=cfg.validate,
        )
        return run_plan(plan, fmats, mode, tensor.shape[mode], rank, cfg)

    if fmt == "blco":
        blco = cache.format(tensor, "blco", _build_blco, validate=cfg.validate)
        out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
        serial = EngineConfig(chunk=cfg.chunk, shards=1)
        for plan in cache.block_plans(tensor, blco, mode, validate=cfg.validate):
            # Per-block accumulation into a private buffer then `out +=`,
            # matching the seed kernel's block order bit for bit.
            out += run_plan(plan, fmats, mode, tensor.shape[mode], rank, serial)
        return out

    if fmt == "csf":
        forest = cache.format(tensor, "csf", _build_csf_forest, validate=cfg.validate)
        return mttkrp_csf(forest[mode], factors, mode)

    raise ValueError(f"unknown engine format {fmt!r}")


class EngineMttkrp:
    """Drop-in for the cstf driver's ``_ConcreteMttkrp``, engine-backed.

    Keeps the seed's simulated cost charging (same
    :func:`~repro.machine.analytic.charge_mttkrp` call, same statistics) so
    the simulated timelines of engine and seed runs are bit-identical;
    only the host-side execution differs.
    """

    def __init__(self, tensor, fmt: str, cfg: EngineConfig, cache: PlanCache | None = None):
        self.fmt = fmt
        self.cfg = cfg
        self.cache = cache if cache is not None else get_plan_cache()
        self.stats = TensorStats.from_coo(tensor)
        self.ndim = tensor.ndim
        self.tensor = tensor
        self.prepare = PreparedFactors()

    def compute(self, ex, factors, mode: int, rank: int):
        charge_mttkrp(ex, self.stats, rank, mode, self.fmt)
        return engine_mttkrp(
            self.tensor, factors, mode, self.fmt, self.cfg, self.cache, self.prepare
        )
