"""Format dispatch for the engine: cached, chunked, optionally sharded MTTKRP.

:func:`engine_mttkrp` is the engine's analogue of the per-format seed
kernels. Per format:

- ``coo`` — one cached plan per mode over the canonical COO order;
  bitwise identical to :func:`~repro.kernels.mttkrp_coo.mttkrp_coo`.
- ``alto`` — the ALTO linearization and its decoded coordinate matrix are
  cached once per tensor (the seed delinearizes per call); plans are built
  over the ALTO nonzero order, so the summation order — and the bits —
  match :func:`~repro.kernels.mttkrp_alto.mttkrp_alto`.
- ``blco`` — the BLCO conversion and per-block decoded plans are cached;
  blocks accumulate into the output in block order exactly like
  :func:`~repro.kernels.mttkrp_blco.mttkrp_blco`. Executed serially (the
  per-block structure is the paper's own blocking).
- ``hicoo`` — the HiCOO blocking and per-block plans are cached; blocks
  accumulate serially in block order, value-first then ascending-mode
  multiplies, so the bits match
  :func:`~repro.kernels.mttkrp_hicoo.mttkrp_hicoo`.
- ``csf`` — per-root mode trees are cached once per tensor and handed to
  the unchanged :func:`~repro.kernels.mttkrp_csf.mttkrp_csf` tree walk
  (the seed driver re-roots through COO when the cached tree's root
  differs; the cache keeps all roots).

Sharding applies to the ``coo`` and ``alto`` plan paths.

Robustness: a format conversion or plan build that fails raises
:class:`PlanBuildError`, which the run supervisor treats as a trigger for
the COO format fallback. A failure *during execution* of cached state
(e.g. a corrupted plan that dodged the integrity probe) triggers a
replan-once recovery: the tensor's cache entry is invalidated, the repair
is counted (``engine.plan.repairs``) and logged (``plan_repaired``), and
the call re-dispatches from fresh plans; only a second failure propagates.
The ``corrupt_plan`` chaos fault (:class:`~repro.resilience.faults
.FaultInjector`) deliberately corrupts the cached plans before lookup to
prove this self-heal fires.

:class:`EngineMttkrp` is the drop-in replacement for the cstf driver's
``_ConcreteMttkrp``: it charges the *identical* simulated device cost
(:func:`~repro.machine.analytic.charge_mttkrp`), so engine-enabled runs
report the same device timelines — only the host wall-clock changes.
"""

from __future__ import annotations

import os

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.execute import run_plan
from repro.engine.plan import PlanCache, get_plan_cache
from repro.kernels.mttkrp import check_factors
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.resilience.events import PLAN_REPAIRED
from repro.utils.validation import check_axis

__all__ = ["PreparedFactors", "PlanBuildError", "engine_mttkrp", "EngineMttkrp"]


class PlanBuildError(RuntimeError):
    """A format conversion or plan build failed before execution started.

    Distinct from execution failures on purpose: no partial work has been
    done, so the caller (typically :class:`~repro.resilience.supervisor
    .RunSupervisor`) can safely fall back to the plain COO format.
    """


class PreparedFactors:
    """Cast factors to float64 once per factor object, not once per call.

    The seed kernels run ``np.asarray(f, dtype=np.float64)`` per factor per
    call; for float64 inputs that is a cheap no-copy, but for anything else
    it materializes a fresh copy every mode of every iteration. This memo
    keys on object identity, so a factor array is converted exactly once
    for as long as the driver sees the same object.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._memo: dict[int, tuple[object, np.ndarray]] = {}

    def __call__(self, factors) -> list[np.ndarray]:
        return [self._one(f) for f in factors]

    def _one(self, f) -> np.ndarray:
        key = id(f)
        hit = self._memo.get(key)
        if hit is not None and hit[0] is f:
            return hit[1]
        arr = np.asarray(f, dtype=np.float64)
        if len(self._memo) >= self.max_entries:
            self._memo.clear()
        self._memo[key] = (f, arr)
        return arr


def _build_alto(tensor):
    from repro.tensor.alto import AltoTensor

    return AltoTensor.from_coo(tensor)


def _build_blco(tensor):
    from repro.tensor.blco import BlcoTensor

    return BlcoTensor.from_coo(tensor)


def _build_hicoo(tensor):
    from repro.tensor.hicoo import HicooTensor

    return HicooTensor.from_coo(tensor)


def _build_csf_forest(tensor):
    from repro.tensor.csf import CsfTensor

    return [CsfTensor.from_coo(tensor, root_mode=m) for m in range(tensor.ndim)]


def _convert(cache, tensor, name, build, validate):
    """Cached format conversion, wrapping build failures in PlanBuildError."""
    try:
        return cache.format(tensor, name, build, validate=validate)
    except Exception as exc:
        raise PlanBuildError(
            f"{name} conversion failed: {type(exc).__name__}: {exc}"
        ) from exc


_ENGINE_FORMATS = ("coo", "alto", "blco", "hicoo", "csf")


def _dispatch(tensor, factors, fmats, mode, fmt, cfg, cache, rank, faults, events):
    if fmt == "coo":
        plan = cache.plan(tensor, mode, validate=cfg.validate, events=events)
        return run_plan(
            plan, fmats, mode, tensor.shape[mode], rank, cfg,
            faults=faults, events=events,
        )

    if fmt == "alto":
        alto = _convert(cache, tensor, "alto", _build_alto, cfg.validate)
        decoded = _convert(
            cache, tensor, "alto_indices", lambda _t: alto.all_mode_indices(),
            cfg.validate,
        )
        plan = cache.plan(
            tensor, mode, fmt="alto", indices=decoded, values=alto.values,
            validate=cfg.validate, events=events,
        )
        return run_plan(
            plan, fmats, mode, tensor.shape[mode], rank, cfg,
            faults=faults, events=events,
        )

    if fmt in ("blco", "hicoo"):
        build = _build_blco if fmt == "blco" else _build_hicoo
        blocked = _convert(cache, tensor, fmt, build, cfg.validate)
        out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
        serial = EngineConfig(chunk=cfg.chunk, shards=1)
        for plan in cache.block_plans(
            tensor, blocked, mode, validate=cfg.validate, fmt=fmt
        ):
            # Per-block accumulation into a private buffer then `out +=`,
            # matching the seed kernel's block order bit for bit.
            out += run_plan(plan, fmats, mode, tensor.shape[mode], rank, serial)
        return out

    if fmt == "csf":
        forest = _convert(cache, tensor, "csf", _build_csf_forest, cfg.validate)
        return mttkrp_csf(forest[mode], factors, mode)

    raise ValueError(f"unknown engine format {fmt!r}")


def engine_mttkrp(
    tensor,
    factors,
    mode: int,
    fmt: str = "coo",
    cfg: EngineConfig | None = None,
    cache: PlanCache | None = None,
    prepare: PreparedFactors | None = None,
    *,
    faults=None,
    events=None,
) -> np.ndarray:
    """Cached/sharded MTTKRP over a COO tensor, dispatched by format.

    ``faults`` (a :class:`~repro.resilience.faults.FaultInjector`) enables
    the chaos paths: ``corrupt_plan`` draws corrupt the cached plans before
    lookup, and shard-level faults ride into the sharded executor. Every
    recovery is logged to ``events`` when given.
    """
    cfg = cfg if cfg is not None else EngineConfig()
    # `is not None`, not truthiness: an empty PlanCache has len() == 0.
    cache = cache if cache is not None else get_plan_cache()
    mode = check_axis(mode, tensor.ndim)
    if fmt not in _ENGINE_FORMATS:
        raise ValueError(f"unknown engine format {fmt!r}")
    rank = check_factors(tensor.shape, factors, mode)
    fmats = prepare(factors) if prepare is not None else [
        np.asarray(f, dtype=np.float64) for f in factors
    ]

    if cfg.plan_store is not None and (
        cache.store is None or os.fspath(cache.store.root) != cfg.plan_store
    ):
        from repro.engine.plan_store import PlanStore

        # The explicit per-store budget wins; the engine-wide disk budget
        # is the default bound for cached artifacts.
        cache.store = PlanStore(
            cfg.plan_store,
            max_bytes=cfg.plan_store_bytes or cfg.disk_budget_bytes or None,
        )

    if faults is not None and faults.draw_plan_fault(mode=mode, events=events):
        cache.corrupt(tensor)

    if (
        faults is not None
        and cache.store is not None
        and faults.draw_disk_full("store", mode=mode, events=events)
    ):
        # The next store publish hits a synthetic ENOSPC; the store must
        # skip persistence (store_skipped) and the run keeps its in-memory
        # plan.
        cache.store.fail_next_write = True

    if (
        faults is not None
        and cache.store is not None
        and faults.draw_store_fault(mode=mode, events=events)
    ):
        # Damage the on-disk entry this dispatch would read and drop the
        # in-memory plans, forcing the read path through the corrupt entry;
        # the store quarantines it and the lookup replans.
        from repro.engine.plan import _content_hash
        from repro.engine.plan_store import store_key as _skey

        if cache.store.corrupt(_skey(_content_hash(tensor), fmt, mode)):
            cache.drop_plans(tensor)

    try:
        return _dispatch(
            tensor, factors, fmats, mode, fmt, cfg, cache, rank, faults, events
        )
    except PlanBuildError:
        raise
    except Exception as exc:
        # Replan-once self-heal: cached state that passed (or dodged) the
        # integrity probe still blew up in execution — e.g. an out-of-range
        # coordinate from a corrupted plan. Evict everything cached for
        # this tensor and re-dispatch from fresh plans; a second failure is
        # a genuine bug and propagates.
        cache.invalidate(tensor)
        cache.record_repair(
            f"execution over cached {fmt} plans failed "
            f"({type(exc).__name__}); entry evicted and replanned"
        )
        if events is not None:
            events.record(
                PLAN_REPAIRED, "MTTKRP", mode=mode,
                detail=f"{fmt} execution failed ({type(exc).__name__}: {exc}); "
                       f"cache entry evicted, replanned, and re-executed",
                fmt=fmt,
            )
        return _dispatch(
            tensor, factors, fmats, mode, fmt, cfg, cache, rank, faults, events
        )


class EngineMttkrp:
    """Drop-in for the cstf driver's ``_ConcreteMttkrp``, engine-backed.

    Keeps the seed's simulated cost charging (same
    :func:`~repro.machine.analytic.charge_mttkrp` call, same statistics) so
    the simulated timelines of engine and seed runs are bit-identical;
    only the host-side execution differs. ``events``/``injector`` thread
    the run's resilience context into the execution layer so shard
    recoveries and plan repairs land on ``CstfResult.events``.
    """

    def __init__(
        self,
        tensor,
        fmt: str,
        cfg: EngineConfig,
        cache: PlanCache | None = None,
        *,
        events=None,
        injector=None,
    ):
        self.fmt = fmt
        self.cfg = cfg
        self.cache = cache if cache is not None else get_plan_cache()
        self.stats = TensorStats.from_coo(tensor)
        self.ndim = tensor.ndim
        self.tensor = tensor
        self.prepare = PreparedFactors()
        self.events = events
        self.injector = injector

    def compute(self, ex, factors, mode: int, rank: int):
        charge_mttkrp(ex, self.stats, rank, mode, self.fmt)
        return engine_mttkrp(
            self.tensor, factors, mode, self.fmt, self.cfg, self.cache,
            self.prepare, faults=self.injector, events=self.events,
        )
