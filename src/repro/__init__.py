"""cSTF-Py: constrained sparse tensor factorization for massively parallel
architectures — a full reproduction of Soh, Kannan, Sao & Choi (ICPP '24).

The package implements the paper's GPU-resident cSTF framework and every
substrate it depends on, with real NumPy numerics and a roofline machine
simulator standing in for the A100/H100/Xeon testbed:

- sparse tensor formats: COO, CSF (SPLATT), ALTO, BLCO (:mod:`repro.tensor`)
- MTTKRP kernels per format (:mod:`repro.kernels`)
- the AO driver of Algorithm 1 (:mod:`repro.core`)
- update methods: ADMM, cuADMM (operation fusion + pre-inversion), HALS,
  MU, ALS, APG (:mod:`repro.updates`)
- the machine model (:mod:`repro.machine`), CPU baselines
  (:mod:`repro.baselines`), and the per-figure experiment drivers
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import cstf, planted_sparse_cp
>>> tensor, _ = planted_sparse_cp((30, 25, 20), rank=4, seed=0)
>>> result = cstf(tensor, rank=4, update="cuadmm", max_iters=30)
>>> result.fit > 0.9
True
"""

from repro.core.config import CstfConfig
from repro.core.cstf import CstfResult, cstf
from repro.core.kruskal import KruskalTensor, factor_match_score
from repro.data.frostt import FROSTT_TABLE2, get_dataset
from repro.machine.analytic import TensorStats
from repro.machine.executor import Executor
from repro.machine.spec import A100, H100, ICELAKE_XEON, DeviceSpec, get_device
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    ResilienceError,
    ResilienceEvent,
    ResiliencePolicy,
    guarded_cholesky,
    load_checkpoint,
    save_checkpoint,
)
from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import (
    planted_nonneg_cp,
    planted_sparse_cp,
    random_sparse,
    scaled_frostt_analogue,
)
from repro.updates.base import get_update

__version__ = "1.0.0"

__all__ = [
    "cstf",
    "CstfConfig",
    "CstfResult",
    "KruskalTensor",
    "factor_match_score",
    "SparseTensor",
    "TensorStats",
    "Executor",
    "DeviceSpec",
    "A100",
    "H100",
    "ICELAKE_XEON",
    "get_device",
    "get_update",
    "get_dataset",
    "FROSTT_TABLE2",
    "random_sparse",
    "planted_nonneg_cp",
    "planted_sparse_cp",
    "scaled_frostt_analogue",
    "FaultInjector",
    "FaultSpec",
    "ResilienceError",
    "ResilienceEvent",
    "ResiliencePolicy",
    "guarded_cholesky",
    "load_checkpoint",
    "save_checkpoint",
    "__version__",
]
