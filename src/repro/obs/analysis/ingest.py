"""Normalize any telemetry source into one :class:`RunRecord`.

The consumer-side analysis tools (:mod:`repro.obs.analysis.trace`,
:mod:`repro.obs.analysis.doctor`) operate on a single in-memory shape — the
:class:`~repro.obs.record.RunRecord` a telemetry-enabled run already
surfaces as ``CstfResult.telemetry``. :func:`load_run` accepts that record
directly (zero-copy, so a just-finished factorize can be analyzed
in-process with no files), a telemetry JSONL path, or an already-parsed
record list, and rebuilds the same object from the stream's stable line
contract (:mod:`repro.obs.schema`).
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.record import KernelEvent, ResilienceTraceEvent, RunRecord, Span
from repro.obs.schema import validate_record

__all__ = ["load_run"]


def load_run(source, *, validate: bool = False) -> RunRecord:
    """Return a :class:`RunRecord` for *source*.

    Parameters
    ----------
    source:
        A :class:`RunRecord` (returned as-is), a telemetry JSONL path or
        text file object, or a list of parsed record dicts.
    validate:
        When true, every JSONL line is checked against
        :data:`~repro.obs.schema.TELEMETRY_SCHEMA` first and a
        :class:`ValueError` listing the offending lines is raised on any
        mismatch — the strict mode the CLI verbs use on untrusted files.
    """
    if isinstance(source, RunRecord):
        return source
    telemetry = getattr(source, "telemetry", None)
    if isinstance(telemetry, RunRecord):
        # A CstfResult (or anything else carrying a RunRecord).
        return telemetry
    if isinstance(source, (str, Path)) or hasattr(source, "read"):
        from repro.obs.sinks import read_jsonl

        records = read_jsonl(source)
    else:
        records = list(source)
    if validate:
        errors = []
        if not records:
            errors.append("file contains no telemetry records")
        for i, rec in enumerate(records, start=1):
            errors.extend(f"line {i}: {e}" for e in validate_record(rec))
        if errors:
            raise ValueError("; ".join(errors[:10]))
    return _from_records(records)


def _from_records(records) -> RunRecord:
    rec = RunRecord()
    for obj in records:
        kind = obj.get("type")
        if kind == "meta":
            rec.meta.update(obj.get("run", {}))
        elif kind == "span":
            rec.spans.append(
                Span(
                    id=int(obj["id"]),
                    name=str(obj["name"]),
                    parent=obj["parent"],
                    t0=float(obj["ts"]),
                    attrs=dict(obj.get("attrs", {})),
                    dur=float(obj["dur"]),
                    sim=dict(obj["sim"]) if obj.get("sim") else None,
                    open=False,
                    worker=dict(obj["worker"]) if obj.get("worker") else None,
                )
            )
        elif kind == "kernel":
            # add_kernel rebuilds the per-phase sim aggregates exactly as
            # the live session maintained them.
            rec.add_kernel(
                KernelEvent(
                    name=str(obj["name"]),
                    phase=str(obj["phase"]),
                    ts=float(obj["ts"]),
                    dur=float(obj["dur"]),
                    flops=float(obj["flops"]),
                    bytes=float(obj["bytes"]),
                    launches=int(obj["launches"]),
                )
            )
        elif kind == "event":
            rec.events.append(
                ResilienceTraceEvent(
                    kind=str(obj["kind"]),
                    phase=str(obj["phase"]),
                    ts=float(obj["ts"]),
                    mode=obj.get("mode"),
                    iteration=obj.get("iteration"),
                    detail=str(obj.get("detail", "")),
                    data=dict(obj.get("data", {})),
                )
            )
        elif kind == "summary":
            rec.metrics_summary = dict(obj.get("metrics", {}))
    # JSONL spans arrive in close order (post-order); restore open order so
    # tree walks and "first span" heuristics behave like the live record.
    rec.spans.sort(key=lambda s: s.id)
    return rec
