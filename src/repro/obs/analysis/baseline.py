"""Baseline store and tolerance-banded regression detection.

Baselines live in ``benchmarks/baselines/*.json``, one file per benchmark
group, content-keyed by what was measured (figure, device, rank, storage
format) so a key change is a new baseline rather than a silent overwrite.
:func:`compare_metrics` classifies every metric of a fresh run against its
baseline as **improved** / **flat** / **regressed** inside a relative
tolerance band, with the metric's direction (lower-better seconds vs
higher-better speedups) inferred from its name; ``repro diff`` turns the
report into an exit code so CI fails on regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.obs.schema import check_schema

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCE",
    "baseline_key",
    "metric_direction",
    "MetricDelta",
    "compare_metrics",
    "DiffReport",
    "diff_against_store",
    "BaselineStore",
    "validate_baseline",
]

#: Default relative tolerance band: metrics within ±5 % are "flat".
DEFAULT_TOLERANCE = 0.05

_NUM = {"type": "number"}
_STR = {"type": "string"}

BASELINE_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro perf baseline",
    "type": "object",
    "required": ["type", "schema_version", "key", "meta", "metrics"],
    "properties": {
        "type": {"enum": ["baseline"]},
        "schema_version": {"type": "integer"},
        "key": _STR,
        "meta": {"type": "object"},
        "metrics": {"type": "object"},
        "tolerance": _NUM,
    },
}


def validate_baseline(doc) -> list[str]:
    """Schema-check one baseline document; returns error strings."""
    errors = check_schema(doc, BASELINE_SCHEMA)
    if not errors:
        for name, value in doc["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"metric {name!r} is not numeric")
    return errors


def baseline_key(figure: str, device: str, rank: int, fmt: str | None = None) -> str:
    """Content key for one benchmark group: what was measured, not when."""
    parts = [str(figure), str(device).lower(), f"r{int(rank)}"]
    if fmt:
        parts.append(str(fmt))
    return "__".join(parts)


# --------------------------------------------------------------------- #
# Direction-aware comparison
# --------------------------------------------------------------------- #
_LOWER_BETTER = ("seconds", "s_per_iter", "bytes", "_s", "time", "traffic")
_HIGHER_BETTER = ("speedup", "fit", "geomean", "flops_per_s", "throughput")


def metric_direction(name: str) -> str:
    """``"lower"``, ``"higher"``, or ``"either"`` (two-sided) for *name*."""
    low = name.lower()
    if any(low.endswith(sfx) or f".{sfx}" in low for sfx in _LOWER_BETTER):
        return "lower"
    if any(sfx in low for sfx in _HIGHER_BETTER):
        return "higher"
    return "either"


@dataclass(frozen=True)
class MetricDelta:
    """One metric's fate against its baseline.

    ``status`` is one of ``improved`` / ``flat`` / ``regressed`` (both
    present), ``missing`` (in the baseline but not the run — schema drift,
    treated as a regression), or ``new`` (in the run only — informational).
    """

    name: str
    baseline: float | None
    current: float | None
    status: str
    ratio: float | None
    tolerance: float

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "missing")


def _classify(name: str, base: float, cur: float, tol: float) -> tuple[str, float]:
    if base == 0.0:
        ratio = float("inf") if cur > 0 else 1.0
        within = abs(cur) <= tol
    else:
        ratio = cur / base
        within = abs(ratio - 1.0) <= tol
    if within:
        return "flat", ratio
    direction = metric_direction(name)
    if direction == "either":
        return "regressed", ratio
    better = (ratio < 1.0) if direction == "lower" else (ratio > 1.0)
    return ("improved" if better else "regressed"), ratio


def compare_metrics(
    current: dict,
    baseline: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    tolerances: dict | None = None,
) -> list[MetricDelta]:
    """Classify every metric of *current* against *baseline*.

    ``tolerances`` maps metric names to per-metric relative bands,
    overriding the default for noisy metrics.
    """
    overrides = tolerances or {}
    deltas: list[MetricDelta] = []
    for name in sorted(set(baseline) | set(current)):
        tol = float(overrides.get(name, tolerance))
        if name not in current:
            deltas.append(MetricDelta(name, float(baseline[name]), None, "missing", None, tol))
            continue
        if name not in baseline:
            deltas.append(MetricDelta(name, None, float(current[name]), "new", None, tol))
            continue
        base, cur = float(baseline[name]), float(current[name])
        status, ratio = _classify(name, base, cur, tol)
        deltas.append(MetricDelta(name, base, cur, status, ratio, tol))
    return deltas


@dataclass
class DiffReport:
    """All deltas of one comparison plus exit-code semantics."""

    deltas: list[MetricDelta]
    missing_groups: list[str]
    new_groups: list[str]

    def by_status(self, status: str) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == status]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.failed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.deltas:
            out[d.status] = out.get(d.status, 0) + 1
        return out


# --------------------------------------------------------------------- #
class BaselineStore:
    """The ``benchmarks/baselines/`` directory as a keyed document store."""

    def __init__(self, root):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load(self, key: str) -> dict | None:
        """Load and validate one baseline; None when absent."""
        path = self.path_for(key)
        if not path.exists():
            return None
        doc = json.loads(path.read_text(encoding="utf-8"))
        errors = validate_baseline(doc)
        if errors:
            raise ValueError(f"invalid baseline {path}: {'; '.join(errors[:5])}")
        if doc["key"] != key:
            raise ValueError(
                f"baseline {path} is keyed {doc['key']!r}, expected {key!r} "
                f"(file renamed without re-keying?)"
            )
        return doc

    def save(self, doc: dict) -> Path:
        errors = validate_baseline(doc)
        if errors:
            raise ValueError(f"refusing to save invalid baseline: {errors[:5]}")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(doc["key"])
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path


def diff_against_store(
    groups: list[dict],
    store: BaselineStore,
    *,
    tolerance: float | None = None,
) -> DiffReport:
    """Compare benchmark *groups* (``{"key", "metrics", ...}`` dicts, e.g.
    from a BENCH document) against their stored baselines.

    A group with no stored baseline is reported informationally (a new
    benchmark should not fail CI); a stored baseline with no matching group
    is a missing-group failure (the suite silently stopped measuring it) —
    unless the baseline's ``meta`` marks it ``optional`` (an opt-in group,
    e.g. the ``shmdispatch`` transport bench that only ``--shm-bench`` runs
    measure), in which case its absence is simply skipped. When an optional
    group *is* measured, it is compared like any other.
    """
    deltas: list[MetricDelta] = []
    new_groups: list[str] = []
    seen: set[str] = set()
    for group in groups:
        key = group["key"]
        seen.add(key)
        doc = store.load(key)
        if doc is None:
            new_groups.append(key)
            continue
        tol = tolerance if tolerance is not None else float(
            doc.get("tolerance", DEFAULT_TOLERANCE)
        )
        for d in compare_metrics(group["metrics"], doc["metrics"], tolerance=tol):
            deltas.append(
                MetricDelta(
                    name=f"{key}.{d.name}",
                    baseline=d.baseline,
                    current=d.current,
                    status=d.status,
                    ratio=d.ratio,
                    tolerance=d.tolerance,
                )
            )
    missing_groups = []
    for key in store.keys():
        if key in seen:
            continue
        doc = store.load(key)
        if doc is not None and doc.get("meta", {}).get("optional"):
            continue
        missing_groups.append(key)
    for key in missing_groups:
        deltas.append(MetricDelta(key, None, None, "missing", None, 0.0))
    return DiffReport(deltas=deltas, missing_groups=missing_groups, new_groups=new_groups)
