"""Consumer-side observability: trace analysis, baselines, doctor, bench.

The producer side (:mod:`repro.obs`) records runs; this package reads them
back. Four parts, surfaced through the ``repro perf`` / ``repro diff`` /
``repro doctor`` CLI verbs and ``scripts/run_bench_suite.py``:

- :mod:`~repro.obs.analysis.trace` — time attribution, hotspots, critical
  path, and modeled-bytes verification of the fusion/pre-inversion claims;
- :mod:`~repro.obs.analysis.baseline` — committed performance baselines
  with tolerance-banded regression classification;
- :mod:`~repro.obs.analysis.doctor` — ranked findings explaining sick runs;
- :mod:`~repro.obs.analysis.bench` — the Figure 4/5/7 bench suite and its
  BENCH JSON schema.
"""

from repro.obs.analysis.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_TOLERANCE,
    BaselineStore,
    DiffReport,
    MetricDelta,
    baseline_key,
    compare_metrics,
    diff_against_store,
    metric_direction,
    validate_baseline,
)
from repro.obs.analysis.bench import (
    BENCH_SCHEMA,
    DEFAULT_DATASETS,
    bench_to_baselines,
    run_bench_suite,
    validate_bench,
)
from repro.obs.analysis.doctor import Finding, diagnose
from repro.obs.analysis.ingest import load_run
from repro.obs.analysis.trace import (
    FusionReport,
    KernelStat,
    PathNode,
    PreinversionReport,
    TraceAnalysis,
    analyze_trace,
    aux_traffic_ratio,
    fusion_report,
    preinversion_report,
)

__all__ = [
    "load_run",
    # trace
    "TraceAnalysis",
    "analyze_trace",
    "KernelStat",
    "PathNode",
    "FusionReport",
    "fusion_report",
    "aux_traffic_ratio",
    "PreinversionReport",
    "preinversion_report",
    # baseline
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCE",
    "BaselineStore",
    "DiffReport",
    "MetricDelta",
    "baseline_key",
    "compare_metrics",
    "diff_against_store",
    "metric_direction",
    "validate_baseline",
    # doctor
    "Finding",
    "diagnose",
    # bench
    "BENCH_SCHEMA",
    "DEFAULT_DATASETS",
    "run_bench_suite",
    "validate_bench",
    "bench_to_baselines",
]
