"""Trace analyzer: attribution, hotspots, critical path, traffic claims.

Consumes one telemetry source (a live :class:`~repro.obs.record.RunRecord`
or an emitted JSONL file, via :func:`~repro.obs.analysis.ingest.load_run`)
and answers the questions the paper's evaluation asks of every run:

- **where did the simulated time go** — per-phase and per-kernel
  attribution with shares (:meth:`TraceAnalysis.phase_table`,
  :meth:`TraceAnalysis.kernel_hotspots`);
- **what chain of work bounded the run** — the host-span critical path
  (:meth:`TraceAnalysis.critical_path`);
- **do the fusion/pre-inversion claims hold** — modeled-bytes accounting of
  the ADMM auxiliary step against the counterfactual kernel plan
  (:func:`fusion_report`, :func:`aux_traffic_ratio`) and the
  triangular-solve census pre-inversion empties (:func:`preinversion_report`),
  both using the word model in :mod:`repro.machine.costmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.costmodel import admm_aux_formation_words, admm_aux_step_words
from repro.machine.counters import WORD_BYTES
from repro.machine.spec import get_device
from repro.obs.analysis.ingest import load_run
from repro.obs.record import RunRecord, Span

__all__ = [
    "KernelStat",
    "PathNode",
    "TraceAnalysis",
    "analyze_trace",
    "FusionReport",
    "fusion_report",
    "aux_traffic_ratio",
    "PreinversionReport",
    "preinversion_report",
]


# --------------------------------------------------------------------- #
# Kernel-name classifiers for the ADMM auxiliary step
# --------------------------------------------------------------------- #
_AUX_FORMATION_FUSED = frozenset({"fused_auxiliary"})
_AUX_FORMATION_UNFUSED = frozenset({"dgeam_h_plus_u", "dgeam_aux"})
_AUX_STEP_FUSED = frozenset(
    {"fused_auxiliary", "fused_prox_primal", "fused_dual_update"}
)
_AUX_STEP_UNFUSED = frozenset(
    {
        "dcopy_hprev", "dgeam_h_plus_u", "dgeam_aux", "dgeam_prox_arg",
        "dgeam_dh", "dgeam_dual", "dgeam_dprev",
        "norm_primal", "norm_h", "norm_dual", "norm_u",
    }
)
_SOLVE_SERIAL = frozenset({"dtrsm_fwd", "dtrsm_bwd"})
_SOLVE_GEMM = frozenset({"dgemm_apply_inverse"})


def _is_aux_kernel(name: str, fused: bool, formation_only: bool) -> bool:
    if formation_only:
        return name in (_AUX_FORMATION_FUSED if fused else _AUX_FORMATION_UNFUSED)
    if fused:
        return name in _AUX_STEP_FUSED
    # The standalone prox kernel is named after its operator (prox_nonneg,
    # prox_l1, ...).
    return name in _AUX_STEP_UNFUSED or name.startswith("prox_")


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelStat:
    """Aggregate of every launch of one kernel name."""

    name: str
    calls: int
    seconds: float
    flops: float
    bytes: float
    launches: int

    @property
    def arithmetic_intensity(self) -> float:
        """Flop/byte of the aggregate (0 when no bytes moved)."""
        return self.flops / self.bytes if self.bytes > 0 else 0.0


@dataclass(frozen=True)
class PathNode:
    """One hop of the host critical path."""

    span: Span
    inclusive: float
    self_seconds: float

    def label(self) -> str:
        attrs = {
            k: v for k, v in self.span.attrs.items()
            if k in ("iteration", "mode", "format") and v is not None
        }
        tag = "".join(f" {k}={v}" for k, v in sorted(attrs.items()))
        return f"{self.span.name}{tag}"


class TraceAnalysis:
    """Per-phase / per-kernel attribution and critical path for one run."""

    def __init__(self, source):
        self.record: RunRecord = load_run(source)

    # -- phase attribution --------------------------------------------- #
    def total_sim_seconds(self) -> float:
        return self.record.sim_total_seconds()

    def phase_table(self) -> list[dict]:
        """One row per phase: simulated seconds, share, flops, bytes.

        Sorted by seconds descending; shares sum to 1 over phases that
        charged any time.
        """
        total = self.total_sim_seconds()
        rows = []
        for phase, seconds in self.record.sim_phase_seconds.items():
            rows.append(
                {
                    "phase": phase,
                    "seconds": seconds,
                    "share": seconds / total if total > 0 else 0.0,
                    "flops": self.record.sim_phase_flops.get(phase, 0.0),
                    "bytes": self.record.sim_phase_bytes.get(phase, 0.0),
                }
            )
        rows.sort(key=lambda r: r["seconds"], reverse=True)
        return rows

    # -- kernel attribution -------------------------------------------- #
    def kernel_stats(self) -> dict[str, KernelStat]:
        """Aggregate the kernel stream by kernel name."""
        acc: dict[str, list] = {}
        for k in self.record.kernels:
            slot = acc.setdefault(k.name, [0, 0.0, 0.0, 0.0, 0])
            slot[0] += 1
            slot[1] += k.dur
            slot[2] += k.flops
            slot[3] += k.bytes
            slot[4] += k.launches
        return {
            name: KernelStat(name, calls, secs, flops, nbytes, launches)
            for name, (calls, secs, flops, nbytes, launches) in acc.items()
        }

    def kernel_hotspots(self, top: int = 10) -> list[KernelStat]:
        """The *top* kernels by aggregate simulated seconds."""
        stats = sorted(
            self.kernel_stats().values(), key=lambda s: s.seconds, reverse=True
        )
        return stats[: max(int(top), 0)]

    def memory_bound(self, stat: KernelStat, device=None) -> bool | None:
        """Roofline side of *stat* on the run's (or given) device.

        A kernel whose arithmetic intensity sits below the device's machine
        balance (peak flops / peak bandwidth) is bandwidth-bound. Returns
        ``None`` when no device can be resolved.
        """
        name = device or self.record.meta.get("device")
        if name is None:
            return None
        try:
            spec = get_device(name)
        except KeyError:
            return None
        balance = spec.peak_flops / spec.mem_bandwidth
        return stat.arithmetic_intensity < balance

    # -- critical path -------------------------------------------------- #
    def _children(self) -> dict[int | None, list[Span]]:
        by_parent: dict[int | None, list[Span]] = {}
        for s in self.record.spans:
            by_parent.setdefault(s.parent, []).append(s)
        return by_parent

    def span_self_seconds(self, span: Span, by_parent=None) -> float:
        """Host seconds in *span* not covered by its children (exclusive)."""
        by_parent = by_parent if by_parent is not None else self._children()
        child_time = sum(c.dur for c in by_parent.get(span.id, []))
        return max(span.dur - child_time, 0.0)

    def critical_path(self) -> list[PathNode]:
        """Root-to-leaf chain following the longest child at every level.

        Starts at the longest root span (the driver's ``run`` span for a
        single factorize) and descends into the child with the largest
        inclusive host duration until reaching a leaf — the chain of spans
        an optimizer should look at first.
        """
        by_parent = self._children()
        roots = by_parent.get(None, [])
        if not roots:
            return []
        path: list[PathNode] = []
        node = max(roots, key=lambda s: s.dur)
        while node is not None:
            path.append(
                PathNode(
                    span=node,
                    inclusive=node.dur,
                    self_seconds=self.span_self_seconds(node, by_parent),
                )
            )
            children = by_parent.get(node.id, [])
            node = max(children, key=lambda s: s.dur) if children else None
        return path

    def hotspot_spans(self, top: int = 10) -> list[tuple[Span, float]]:
        """Spans ranked by exclusive host time (name-level self seconds)."""
        by_parent = self._children()
        ranked = sorted(
            ((s, self.span_self_seconds(s, by_parent)) for s in self.record.spans),
            key=lambda pair: pair[1],
            reverse=True,
        )
        return ranked[: max(int(top), 0)]


def analyze_trace(source) -> TraceAnalysis:
    """Build a :class:`TraceAnalysis` from any telemetry source."""
    return TraceAnalysis(source)


# --------------------------------------------------------------------- #
# Fusion traffic accounting (Section 4.3.1 claim)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FusionReport:
    """Measured vs modeled auxiliary-step traffic for one run.

    ``measured_bytes`` sums the kernel stream's bytes over the auxiliary
    kernels the run actually launched; ``modeled_counterfactual_bytes`` is
    what the *other* kernel plan would have moved for the same element
    count, from the word model in :mod:`repro.machine.costmodel`. For a
    fused run ``ratio = measured / counterfactual`` is the fusion saving
    (~2/3 for formation, ~0.58 for the full step); for an unfused run the
    reciprocal view applies.
    """

    fused: bool
    formation_only: bool
    kernel_calls: int
    measured_bytes: float
    modeled_counterfactual_bytes: float
    element_words: float

    @property
    def ratio(self) -> float:
        """Fused-over-unfused byte ratio regardless of which ran."""
        if self.fused:
            if self.modeled_counterfactual_bytes <= 0:
                return float("nan")
            return self.measured_bytes / self.modeled_counterfactual_bytes
        if self.measured_bytes <= 0:
            return float("nan")
        return self.modeled_counterfactual_bytes / self.measured_bytes


def _aux_bytes(record: RunRecord, fused: bool, formation_only: bool) -> tuple[float, int]:
    total = 0.0
    calls = 0
    for k in record.kernels:
        if _is_aux_kernel(k.name, fused, formation_only):
            total += k.bytes
            calls += 1
    return total, calls


def fusion_report(source, formation_only: bool = False) -> FusionReport:
    """Check the operation-fusion traffic claim against one trace.

    Detects which kernel plan the run used, sums its measured auxiliary
    bytes, infers the per-iteration element count from the formation
    kernels, and models the counterfactual plan's bytes. Raises
    :class:`ValueError` if the trace contains no ADMM auxiliary kernels
    (e.g. an MU/HALS run).
    """
    record = load_run(source)
    fused_bytes, fused_calls = _aux_bytes(record, True, formation_only)
    unfused_bytes, unfused_calls = _aux_bytes(record, False, formation_only)
    if fused_calls == 0 and unfused_calls == 0:
        raise ValueError(
            "trace contains no ADMM auxiliary kernels; fusion accounting "
            "applies to admm/cuadmm runs only"
        )
    fused = fused_bytes >= unfused_bytes
    measured = fused_bytes if fused else unfused_bytes
    calls = fused_calls if fused else unfused_calls

    # Element count per inner iteration from the formation kernels: the
    # fused kernel moves 4n words, the unfused pair 6n (model contract).
    formation_bytes, formation_calls = _aux_bytes(record, fused, True)
    inner_iters = formation_calls if fused else formation_calls / 2.0
    if inner_iters <= 0:
        raise ValueError("trace has no auxiliary-formation kernels to size the model")
    words_per_iter = formation_bytes / WORD_BYTES / inner_iters
    n_elements = words_per_iter / (4.0 if fused else 6.0)

    model = admm_aux_formation_words if formation_only else admm_aux_step_words
    counterfactual = model(n_elements, not fused) * inner_iters * WORD_BYTES
    return FusionReport(
        fused=fused,
        formation_only=formation_only,
        kernel_calls=calls,
        measured_bytes=measured,
        modeled_counterfactual_bytes=counterfactual,
        element_words=n_elements,
    )


def aux_traffic_ratio(fused_source, unfused_source, formation_only: bool = False) -> float:
    """Measured fused-over-unfused auxiliary-step bytes across two traces.

    Both runs must perform the same iteration schedule (same tensor, rank,
    and inner-iteration count) for the ratio to be meaningful. The paper's
    claim: ≈2/3 for the formation step, smaller for the full fused set.
    """
    fused_bytes, fused_calls = _aux_bytes(load_run(fused_source), True, formation_only)
    unfused_bytes, unfused_calls = _aux_bytes(
        load_run(unfused_source), False, formation_only
    )
    if fused_calls == 0:
        raise ValueError("first trace has no fused auxiliary kernels")
    if unfused_calls == 0:
        raise ValueError("second trace has no unfused auxiliary kernels")
    return fused_bytes / unfused_bytes


# --------------------------------------------------------------------- #
# Pre-inversion accounting (Section 4.3.2 claim)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PreinversionReport:
    """Census of the ``(S+ρI)⁻¹`` application kernels in one trace.

    Pre-inversion replaces the two serialized triangular solves of every
    inner iteration with a single GEMM; the only remaining DTRSM pairs are
    the one-off explicit inversions (one per update call). A non-PI run
    instead shows ``2 × inner_iters`` solves per update call.
    """

    triangular_solves: int
    apply_inverse_gemms: int
    triangular_solve_seconds: float
    apply_inverse_seconds: float
    update_calls: int
    preinverted: bool

    @property
    def solves_per_update(self) -> float:
        if self.update_calls <= 0:
            return float("nan")
        return self.triangular_solves / self.update_calls


def preinversion_report(source) -> PreinversionReport:
    """Count solve-application kernels and decide which plan the run used."""
    record = load_run(source)
    trsm = trsm_s = 0.0
    gemm = gemm_s = 0.0
    n_trsm = n_gemm = 0
    for k in record.kernels:
        if k.name in _SOLVE_SERIAL:
            n_trsm += 1
            trsm_s += k.dur
        elif k.name in _SOLVE_GEMM:
            n_gemm += 1
            gemm_s += k.dur
    update_calls = sum(1 for s in record.spans if s.name == "update")
    return PreinversionReport(
        triangular_solves=n_trsm,
        apply_inverse_gemms=n_gemm,
        triangular_solve_seconds=trsm_s,
        apply_inverse_seconds=gemm_s,
        update_calls=update_calls,
        preinverted=n_gemm > 0,
    )
