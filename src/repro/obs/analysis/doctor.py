"""The run doctor: ranked findings explaining why a run was slow or sick.

:func:`diagnose` replays a run's telemetry — the metrics-registry summary,
the resilience event mirror, and the span tree — and emits ranked
:class:`Finding` objects, each carrying the span IDs and iterations that
evidence it. Detectors cover the failure modes the AO-ADMM literature
(Huang, Sidiropoulos & Liavas 2015) and the paper's GPU evaluation say to
watch:

- **ADMM stall** — divergence recoveries, restarts, or give-ups in the
  inner loop (``admm_divergence``/``admm_restart``/``admm_giveup`` events);
- **ρ thrash** — repeated ρ rescales, or a final-ρ histogram spanning
  orders of magnitude across update calls;
- **oscillating fit** — the outer-loop objective moving backwards, from
  the per-iteration fit values stamped on the ``fit`` spans;
- **BLCO load imbalance** — the ``mttkrp.blco.block_imbalance`` gauge the
  BLCO kernel records (max/mean nonzeros per block);
- **checkpoint-resume gaps** — a resumed run that never re-armed
  checkpointing, leaving its post-resume progress unprotected;
- **lost workers** — shard worker processes that died mid-run
  (``worker_lost`` events / ``engine.backend.workers_lost``): recovered
  bit-identically, but something is killing workers;
- **silent workers** — shards that returned results but shipped no
  worker-attributed kernel spans (``obs.worker.silent``): the numbers are
  fine, the cross-process telemetry path is not;
- **degraded execution** — the run only finished because the execution
  layer healed itself: shard retries/timeouts, plan-cache repairs,
  plan-store quarantines, lost workers, supervisor retries, ladder
  degradations, or format fallbacks;
- **resource pressure** — the run degraded under memory/disk pressure:
  workers recycled over the RSS budget (``worker_recycled``), shm
  dispatches downgraded to pipe transport (``transport_downgraded``),
  checkpoint/plan-store writes skipped on ENOSPC
  (``checkpoint_skipped``/``store_skipped``), telemetry records dropped
  by a degraded sink (``obs.sink.dropped``) — plus how close the peak
  worker RSS came to the configured budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.analysis.ingest import load_run
from repro.obs.record import RunRecord, Span

__all__ = ["Finding", "diagnose"]

_SEVERITY_ORDER = {"error": 0, "warn": 1, "info": 2}

#: Gauge threshold for flagging BLCO block imbalance (max/mean block nnz).
BLCO_IMBALANCE_THRESHOLD = 2.0

#: ρ histogram max/min spread that counts as thrash.
RHO_SPREAD_THRESHOLD = 8.0


@dataclass(frozen=True)
class Finding:
    """One diagnosis, with the telemetry that evidences it.

    ``evidence`` holds machine-usable pointers — ``span_ids`` into the
    record's span list, ``iterations``/``modes``, raw counts — so a caller
    can jump from the finding to the exact trace region.
    """

    code: str
    severity: str  # "error" | "warn" | "info"
    summary: str
    evidence: dict = field(default_factory=dict)
    score: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.summary}"


# --------------------------------------------------------------------- #
# Span indexing helpers
# --------------------------------------------------------------------- #
def _span_iteration(span: Span, by_id: dict[int, Span]) -> int | None:
    """Outer iteration a span belongs to, walking up to an ``outer_iter``."""
    node = span
    while node is not None:
        it = node.attrs.get("iteration")
        if it is not None:
            return it
        node = by_id.get(node.parent) if node.parent is not None else None
    return None


def _update_spans_for(
    record: RunRecord, iterations: set, modes: set
) -> tuple[list[int], list[int]]:
    """``update`` spans matching any offending (iteration, mode).

    Returns ``(span_ids, span_iterations)`` — the second list names the
    outer iterations the matched spans belong to, which stands in for the
    event-carried iterations when the EventLog did not record any.
    """
    by_id = {s.id: s for s in record.spans}
    ids: list[int] = []
    its: set[int] = set()
    for s in record.spans:
        if s.name != "update":
            continue
        it = _span_iteration(s, by_id)
        if (not iterations or it in iterations) and (
            not modes or s.attrs.get("mode") in modes
        ):
            ids.append(s.id)
            if it is not None:
                its.add(it)
    return ids, sorted(its)


def _hist(record: RunRecord, name: str) -> dict | None:
    return (record.metrics_summary or {}).get("histograms", {}).get(name)


def _gauge(record: RunRecord, name: str):
    return (record.metrics_summary or {}).get("gauges", {}).get(name)


def _counter(record: RunRecord, name: str) -> float:
    return float((record.metrics_summary or {}).get("counters", {}).get(name, 0.0))


# --------------------------------------------------------------------- #
# Detectors (each returns a list of findings)
# --------------------------------------------------------------------- #
def _detect_admm_stall(record: RunRecord) -> list[Finding]:
    divergences = [e for e in record.events if e.kind == "admm_divergence"]
    restarts = [e for e in record.events if e.kind == "admm_restart"]
    giveups = [e for e in record.events if e.kind == "admm_giveup"]
    if not (divergences or restarts or giveups):
        return []
    iterations = sorted({e.iteration for e in divergences + restarts + giveups
                         if e.iteration is not None})
    modes = sorted({e.mode for e in divergences + restarts + giveups
                    if e.mode is not None})
    span_ids, span_iters = _update_spans_for(record, set(iterations), set(modes))
    if not iterations:
        # The EventLog did not carry iteration indices; name the outer
        # iterations of the update spans that evidence the stall instead.
        iterations = span_iters
    severity = "error" if giveups else "warn"
    where = ""
    if iterations:
        where = f" at outer iteration{'s' if len(iterations) > 1 else ''} " + \
            ", ".join(str(i) for i in iterations[:6])
        if len(iterations) > 6:
            where += ", ..."
    spans_note = f"; evidence spans #{', #'.join(str(i) for i in span_ids[:6])}" \
        if span_ids else ""
    summary = (
        f"ADMM inner loop stalled{where}: {len(divergences)} divergence "
        f"recover{'ies' if len(divergences) != 1 else 'y'}, "
        f"{len(restarts)} restart{'s' if len(restarts) != 1 else ''}, "
        f"{len(giveups)} give-up{'s' if len(giveups) != 1 else ''}{spans_note}"
    )
    return [
        Finding(
            code="admm_stall",
            severity=severity,
            summary=summary,
            evidence={
                "span_ids": span_ids,
                "iterations": iterations,
                "modes": modes,
                "divergences": len(divergences),
                "restarts": len(restarts),
                "giveups": len(giveups),
            },
            score=float(len(divergences) + 5 * len(restarts) + 25 * len(giveups)),
        )
    ]


def _detect_rho_thrash(record: RunRecord) -> list[Finding]:
    rescales = [e for e in record.events if e.kind == "admm_rho_rescale"]
    # ρ differs across modes by design (it tracks each gram's scale), so a
    # wide global histogram alone is not thrash; repeated rescale events are.
    if len(rescales) < 3:
        return []
    rho = _hist(record, "admm.rho")
    spread = None
    if rho and rho.get("count", 0) >= 2 and rho.get("min", 0.0) > 0.0:
        spread = rho["max"] / rho["min"]
    iterations = sorted({e.iteration for e in rescales if e.iteration is not None})
    modes = sorted({e.mode for e in rescales if e.mode is not None})
    span_ids, span_iters = _update_spans_for(record, set(iterations), set(modes))
    if not iterations:
        iterations = span_iters
    bits = [f"{len(rescales)} ρ-rescale events"]
    if spread is not None and spread > RHO_SPREAD_THRESHOLD:
        bits.append(f"final-ρ spread {spread:.1f}x across update calls")
    return [
        Finding(
            code="rho_thrash",
            severity="warn",
            summary="ADMM penalty ρ is thrashing: " + "; ".join(bits),
            evidence={
                "span_ids": span_ids,
                "iterations": iterations,
                "modes": modes,
                "rescales": len(rescales),
                "rho_spread": spread,
            },
            score=float(len(rescales)) + min(spread or 0.0, 100.0),
        )
    ]


def _detect_fit_oscillation(record: RunRecord) -> list[Finding]:
    # Preferred evidence: per-iteration fit values stamped on the fit spans.
    fit_spans = [s for s in record.spans if s.name == "fit" and "fit" in s.attrs]
    fit_spans.sort(key=lambda s: s.t0)
    values = [float(s.attrs["fit"]) for s in fit_spans]
    drops: list[int] = []  # indices of spans whose fit decreased
    if len(values) >= 2:
        drops = [i for i in range(1, len(values)) if values[i] < values[i - 1]]
    if drops:
        span_ids = [fit_spans[i].id for i in drops]
        worst = min(values[i] - values[i - 1] for i in drops)
        by_id = {s.id: s for s in record.spans}
        iterations = sorted(
            {it for it in (_span_iteration(fit_spans[i], by_id) for i in drops)
             if it is not None}
        )
        return [
            Finding(
                code="fit_oscillation",
                severity="warn",
                summary=(
                    f"fit decreased on {len(drops)} of {len(values) - 1} outer "
                    f"iterations (worst drop {worst:.2e}); AO-ADMM should be "
                    f"monotone once the inner loops converge"
                ),
                evidence={"span_ids": span_ids, "iterations": iterations,
                          "drops": len(drops), "worst_drop": worst},
                score=float(len(drops)) + abs(worst),
            )
        ]
    # Fallback (summary-only traces): a negative fit-delta histogram floor.
    delta = _hist(record, "cstf.fit_delta")
    if delta and delta.get("count", 0) >= 2 and delta.get("min", 0.0) < 0.0:
        return [
            Finding(
                code="fit_oscillation",
                severity="warn",
                summary=(
                    f"fit-delta histogram has a negative floor "
                    f"({delta['min']:.2e} over {delta['count']} iterations): "
                    f"the objective moved backwards at least once"
                ),
                evidence={"worst_drop": delta["min"], "samples": delta["count"]},
                score=abs(delta["min"]),
            )
        ]
    return []


def _detect_blco_imbalance(record: RunRecord) -> list[Finding]:
    imbalance = _gauge(record, "mttkrp.blco.block_imbalance")
    if imbalance is None or imbalance <= BLCO_IMBALANCE_THRESHOLD:
        return []
    blocks = _gauge(record, "mttkrp.blco.blocks")
    span_ids = [s.id for s in record.spans
                if s.name == "mttkrp_kernel" and s.attrs.get("format") == "blco"]
    return [
        Finding(
            code="blco_load_imbalance",
            severity="warn",
            summary=(
                f"BLCO blocks are imbalanced: max/mean nonzeros per block is "
                f"{imbalance:.1f}x across {int(blocks) if blocks else '?'} blocks "
                f"— the largest block bounds every MTTKRP launch"
            ),
            evidence={"span_ids": span_ids[:8], "imbalance": imbalance,
                      "blocks": blocks},
            score=float(imbalance),
        )
    ]


def _detect_checkpoint_gaps(record: RunRecord) -> list[Finding]:
    resumed = [e for e in record.events if e.kind == "checkpoint_resumed"]
    saved = [e for e in record.events if e.kind == "checkpoint_saved"]
    findings: list[Finding] = []
    if resumed:
        at = resumed[-1].iteration
        findings.append(
            Finding(
                code="checkpoint_resume",
                severity="info",
                summary=f"run resumed from a checkpoint at outer iteration {at}",
                evidence={"iteration": at, "resumes": len(resumed)},
                score=float(len(resumed)),
            )
        )
        later_saves = [e for e in saved
                       if e.iteration is not None and (at is None or e.iteration > at)]
        if not later_saves:
            findings.append(
                Finding(
                    code="checkpoint_gap",
                    severity="warn",
                    summary=(
                        f"resumed from iteration {at} but wrote no further "
                        f"checkpoints: all post-resume progress is unprotected"
                    ),
                    evidence={"resumed_iteration": at, "later_saves": 0},
                    score=10.0,
                )
            )
    return findings


def _detect_lost_workers(record: RunRecord) -> list[Finding]:
    """Process-backend worker deaths: every loss was recovered bit-identically,
    but a nonzero count means something is killing workers (OOM, bad node,
    chaos harness) and the run paid a serial redo per loss."""
    lost_events = [e for e in record.events if e.kind == "worker_lost"]
    lost = max(_counter(record, "engine.backend.workers_lost"), len(lost_events))
    if lost == 0:
        return []
    respawns = _counter(record, "engine.backend.respawns")
    exitcodes = sorted(
        {e.data.get("exitcode") for e in lost_events
         if e.data.get("exitcode") is not None}
    )
    codes = f" (worker exit codes: {exitcodes})" if exitcodes else ""
    return [
        Finding(
            code="lost_workers",
            severity="warn",
            summary=(
                f"{int(lost)} shard worker process(es) died mid-run and were "
                f"respawned ({int(respawns)} respawns); each lost shard was "
                f"re-executed serially{codes} — results are bit-identical, "
                f"but find what is killing the workers (OOM killer, node "
                f"health, injected faults)"
            ),
            evidence={
                "workers_lost": lost,
                "respawns": respawns,
                "exitcodes": exitcodes,
                "iterations": sorted(
                    {e.iteration for e in lost_events if e.iteration is not None}
                ),
            },
            score=float(lost),
        )
    ]


def _detect_silent_workers(record: RunRecord) -> list[Finding]:
    """Shards that returned results but shipped no kernel spans.

    Every captured shard should merge at least one worker-attributed
    ``shard_kernel`` span under its ``shard`` span; a shard span with no
    attributed descendants means the worker's telemetry was lost or its
    capture is stuck — the numbers are fine, the observability is not."""
    shard_spans = [s for s in record.spans if s.name == "shard"]
    if not shard_spans:
        return []
    attributed_parents = {
        s.parent for s in record.spans
        if s.worker is not None and s.parent is not None
    }
    silent = [s for s in shard_spans if s.id not in attributed_parents]
    counted = _counter(record, "obs.worker.silent")
    if not silent and counted == 0:
        return []
    span_ids = [s.id for s in silent[:8]]
    shards = sorted({s.attrs.get("shard") for s in silent
                     if s.attrs.get("shard") is not None})
    n = max(len(silent), int(counted))
    return [
        Finding(
            code="silent_worker",
            severity="warn",
            summary=(
                f"{n} shard(s) returned results but shipped no kernel spans "
                f"(shard indices {shards}): worker telemetry was lost or the "
                f"capture session is stuck — numerics are unaffected, but "
                f"per-worker attribution has holes"
            ),
            evidence={"span_ids": span_ids, "shards": shards,
                      "silent_counter": counted},
            score=float(n),
        )
    ]


def _detect_degraded_execution(record: RunRecord) -> list[Finding]:
    degraded = [e for e in record.events if e.kind == "execution_degraded"]
    fallbacks = [e for e in record.events if e.kind == "format_fallback"]
    shard_events = [e for e in record.events
                    if e.kind in ("shard_retry", "shard_timeout")]
    counts = {
        "supervisor retries": _counter(record, "resilience.retries"),
        "degradations": _counter(record, "resilience.degradations"),
        "shard retries": _counter(record, "engine.shard.retries"),
        "shard timeouts": _counter(record, "engine.shard.timeouts"),
        "plan repairs": _counter(record, "engine.plan.repairs"),
        "workers lost": _counter(record, "engine.backend.workers_lost"),
        "store entries quarantined": _counter(record, "engine.store.quarantined"),
        "silent workers": _counter(record, "obs.worker.silent"),
    }
    total = sum(counts.values()) + len(degraded) + len(fallbacks) + len(shard_events)
    if total == 0:
        return []
    bits = [f"{int(v)} {k}" for k, v in counts.items() if v > 0]
    for label, evs in (("tier degradations", degraded),
                       ("format fallbacks", fallbacks)):
        if evs and not any(label.split()[-1] in b for b in bits):
            bits.append(f"{len(evs)} {label}")
    tiers = [e.data.get("to_tier") for e in degraded if e.data.get("to_tier")]
    where = f" (landed on '{tiers[-1]}')" if tiers else ""
    severity = "warn" if (degraded or fallbacks
                          or counts["supervisor retries"] > 0) else "info"
    return [
        Finding(
            code="degraded_execution",
            severity=severity,
            summary=(
                "run completed through execution-layer recovery: "
                + ", ".join(bits) + where
                + " — results are bit-identical, but wall-clock and "
                  "robustness margins suffered; investigate the trigger"
            ),
            evidence={
                "counters": {k: v for k, v in counts.items() if v > 0},
                "degraded_to": tiers,
                "format_fallbacks": len(fallbacks),
                "shard_events": len(shard_events),
            },
            score=float(total),
        )
    ]


def _detect_resource_pressure(record: RunRecord) -> list[Finding]:
    """Memory/disk pressure the run absorbed by degrading, ranked.

    Every signal here is a *survived* pressure episode — the run finished
    and its numerics are bit-identical — but each one traded something
    away (zero-copy transport, warm workers, checkpoint currency, plan
    persistence, or telemetry completeness) that a right-sized budget
    would have kept.
    """
    recycled = [e for e in record.events if e.kind == "worker_recycled"]
    downgrades = [e for e in record.events if e.kind == "transport_downgraded"]
    ck_skips = [e for e in record.events if e.kind == "checkpoint_skipped"]
    st_skips = [e for e in record.events if e.kind == "store_skipped"]
    counts = {
        "workers recycled over the memory budget": max(
            _counter(record, "engine.proc.workers_recycled"), len(recycled)
        ),
        "shm dispatches downgraded to pipe transport": max(
            _counter(record, "engine.shm.downgrades"), len(downgrades)
        ),
        "idle shm segments trimmed": _counter(record, "engine.shm.trims"),
        "checkpoint writes skipped (ENOSPC)": max(
            _counter(record, "resilience.checkpoint.skips"), len(ck_skips)
        ),
        "plan-store writes skipped (ENOSPC)": max(
            _counter(record, "engine.store.write_errors"), len(st_skips)
        ),
        "telemetry records dropped by a degraded sink": _counter(
            record, "obs.sink.dropped"
        ),
    }
    total = sum(counts.values())
    peak = _gauge(record, "engine.proc.worker_rss_peak")
    budget = _gauge(record, "engine.proc.memory_budget")
    ratio = (peak / budget) if peak and budget else None
    if total == 0 and (ratio is None or ratio < 0.8):
        return []
    bits = [f"{int(v)} {k}" for k, v in counts.items() if v > 0]
    if ratio is not None:
        bits.append(
            f"peak worker RSS {peak / 1e6:.1f} MB = {ratio:.0%} of the "
            f"{budget / 1e6:.1f} MB memory budget"
        )
    severity = "warn" if total > 0 else "info"
    return [
        Finding(
            code="resource_pressure",
            severity=severity,
            summary=(
                "run degraded under resource pressure: " + "; ".join(bits)
                + " — results are bit-identical, but raise the budgets or "
                  "shrink the run to stop paying the degraded paths"
            ),
            evidence={
                "counters": {k: v for k, v in counts.items() if v > 0},
                "rss_peak": peak,
                "memory_budget": budget,
                "rss_budget_ratio": ratio,
                "iterations": sorted(
                    {e.iteration for e in recycled + downgrades + ck_skips
                     + st_skips if e.iteration is not None}
                ),
            },
            score=float(total) + (ratio or 0.0),
        )
    ]


_DETECTORS = (
    _detect_admm_stall,
    _detect_rho_thrash,
    _detect_fit_oscillation,
    _detect_blco_imbalance,
    _detect_checkpoint_gaps,
    _detect_lost_workers,
    _detect_silent_workers,
    _detect_degraded_execution,
    _detect_resource_pressure,
)


def diagnose(source) -> list[Finding]:
    """Run every detector over *source* and rank the findings.

    *source* is anything :func:`~repro.obs.analysis.ingest.load_run`
    accepts — a ``CstfResult.telemetry`` record, a JSONL path, or parsed
    records. Findings are ordered most severe first (``error`` > ``warn`` >
    ``info``), ties broken by detector score descending.
    """
    record = load_run(source)
    findings: list[Finding] = []
    for detector in _DETECTORS:
        findings.extend(detector(record))
    findings.sort(key=lambda f: (_SEVERITY_ORDER.get(f.severity, 3), -f.score))
    return findings
