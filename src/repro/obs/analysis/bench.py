"""Bench harness: run the Figure 4/5/7 benchmark subset, emit BENCH JSON.

:func:`run_bench_suite` replays the paper's headline evaluations through
the real figure drivers (:mod:`repro.experiments.figures`) and folds the
results into one BENCH document — a list of *groups*, each content-keyed
like a baseline (:func:`~repro.obs.analysis.baseline.baseline_key`) and
carrying a flat numeric metric dict. Everything measured is simulated and
deterministic, so the numbers are bit-stable across machines and safe to
gate CI on (:func:`~repro.obs.analysis.baseline.diff_against_store`).

The on-disk schema (:data:`BENCH_SCHEMA`, documented in
``docs/OBSERVABILITY.md``) is what ``scripts/run_bench_suite.py`` writes as
``BENCH_<timestamp>.json`` and what ``repro diff`` reads back.
"""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean
from repro.obs.analysis.baseline import BASELINE_SCHEMA, baseline_key
from repro.obs.schema import check_schema

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_DATASETS",
    "run_bench_suite",
    "validate_bench",
    "bench_to_baselines",
]

BENCH_SCHEMA_VERSION = 1

#: Fast, shape-diverse Table 2 subset: one long-mode tensor (flickr), one
#: short-mode (uber), one small (nips) — enough to exercise both regimes
#: of the speedup claims while keeping the suite quick.
DEFAULT_DATASETS = ("nips", "uber", "flickr")

BENCH_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro bench suite result",
    "type": "object",
    "required": ["type", "schema_version", "suite", "config", "groups"],
    "properties": {
        "type": {"enum": ["bench"]},
        "schema_version": {"type": "integer"},
        "suite": {"type": "string"},
        "config": {"type": "object"},
        "groups": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["key", "figure", "meta", "metrics"],
                "properties": {
                    "key": {"type": "string"},
                    "figure": {"type": "string"},
                    "meta": {"type": "object"},
                    "metrics": {"type": "object"},
                    "tolerance": {"type": "number"},
                },
            },
        },
    },
}


def validate_bench(doc) -> list[str]:
    """Schema-check one BENCH document; returns error strings."""
    errors = check_schema(doc, BENCH_SCHEMA)
    if not errors:
        for group in doc["groups"]:
            for name, value in group["metrics"].items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(
                        f"group {group['key']!r}: metric {name!r} is not numeric"
                    )
    return errors


# --------------------------------------------------------------------- #
# Group builders — one per figure
# --------------------------------------------------------------------- #
def _fig4_group(device: str, rank: int, names) -> dict:
    from repro.experiments.figures import fig4_cuadmm_optimizations

    rows = fig4_cuadmm_optimizations(rank=rank, device=device, names=tuple(names))
    metrics: dict[str, float] = {}
    per_ds: dict[str, list] = {}
    for row in rows:
        per_ds.setdefault(row.dataset, []).append(row)
    for ds, modes in per_ds.items():
        metrics[f"{ds}.speedup_of"] = geometric_mean([m.speedup_of for m in modes])
        metrics[f"{ds}.speedup_pi"] = geometric_mean([m.speedup_pi for m in modes])
        metrics[f"{ds}.speedup_both"] = geometric_mean([m.speedup_both for m in modes])
    metrics["geomean.speedup_both"] = geometric_mean(
        [m.speedup_both for ms in per_ds.values() for m in ms]
    )
    return {
        "key": baseline_key("fig4", device, rank),
        "figure": "fig4",
        "meta": {"device": device, "rank": rank, "datasets": sorted(per_ds)},
        "metrics": metrics,
    }


def _fig5_group(device: str, rank: int, inner_iters: int, datasets) -> dict:
    from repro.experiments.figures import fig5_6_end_to_end_speedup

    series = fig5_6_end_to_end_speedup(device=device, rank=rank, inner_iters=inner_iters)
    keep = {label: s for label, s in zip(series.labels, series.speedups)
            if label in datasets}
    metrics = {f"{name}.speedup": value for name, value in keep.items()}
    metrics["geomean.speedup"] = geometric_mean(list(keep.values()))
    return {
        "key": baseline_key("fig5", device, rank, "blco"),
        "figure": "fig5",
        "meta": {
            "device": device,
            "rank": rank,
            "format": "blco",
            "inner_iters": inner_iters,
            "datasets": sorted(keep),
            "baseline": "splatt",
        },
        "metrics": metrics,
    }


def _fig7_group(device: str, rank: int, inner_iters: int, datasets) -> dict:
    from repro.experiments.figures import fig7_8_kernel_speedups

    rows = [r for r in fig7_8_kernel_speedups(device=device, rank=rank,
                                              inner_iters=inner_iters)
            if r.dataset in datasets]
    metrics: dict[str, float] = {}
    for row in rows:
        metrics[f"{row.dataset}.mttkrp_speedup"] = row.mttkrp_speedup
        metrics[f"{row.dataset}.admm_speedup"] = row.admm_speedup
    metrics["geomean.mttkrp_speedup"] = geometric_mean(
        [r.mttkrp_speedup for r in rows]
    )
    metrics["geomean.admm_speedup"] = geometric_mean([r.admm_speedup for r in rows])
    return {
        "key": baseline_key("fig7", device, rank, "blco"),
        "figure": "fig7",
        "meta": {
            "device": device,
            "rank": rank,
            "format": "blco",
            "inner_iters": inner_iters,
            "datasets": sorted(r.dataset for r in rows),
        },
        "metrics": metrics,
    }


def _fig4wall_group(rank: int, names, target_nnz: int, repeats: int) -> dict:
    """Measured host wall-clock: engine (plan cache + chunked execution)
    vs the seed kernels, full cSTF runs on the Figure-4 subset.

    Unlike every other group these numbers are *real timings* — machine-
    dependent and noisy — so the group carries a wide group-level
    ``tolerance`` (copied into its blessed baseline) and the determinism
    tests exclude it. The PR 4 acceptance gate is
    ``geomean.engine_speedup >= 2.0``.
    """
    import time

    from repro.core.config import CstfConfig
    from repro.core.cstf import cstf
    from repro.data.frostt import get_dataset

    def best_of(tensor, engine) -> float:
        config = CstfConfig(
            rank=rank, max_iters=3, update="cuadmm", device="a100",
            mttkrp_format="coo", compute_fit=False, telemetry="off",
            update_params={"inner_iters": 1}, engine=engine,
        )
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            cstf(tensor, config)
            best = min(best, time.perf_counter() - t0)
        return best

    metrics: dict[str, float] = {}
    speedups = []
    for name in sorted(names):
        tensor = get_dataset(name).load_scaled(seed=0, target_nnz=target_nnz)
        speedup = best_of(tensor, None) / best_of(tensor, "on")
        metrics[f"{name}.engine_speedup"] = speedup
        speedups.append(speedup)
    metrics["geomean.engine_speedup"] = geometric_mean(speedups)
    return {
        "key": baseline_key("fig4wall", "host", rank, "coo"),
        "figure": "fig4wall",
        "meta": {
            "device": "host",
            "rank": rank,
            "format": "coo",
            "datasets": sorted(names),
            "target_nnz": target_nnz,
            "repeats": repeats,
            "measured": "wall_clock",
        },
        "metrics": metrics,
        "tolerance": 0.5,
    }


def _shm_dispatch_group(
    rank: int, shards: int, nnz: int, repeats: int
) -> dict:
    """Measured processes-backend dispatch overhead: pipe vs shm transport.

    A transport-dominated workload — large factor matrices, modest nnz —
    so the timings isolate what each dispatch *ships* (pickled arrays over
    pipes vs shared-memory segment names), not what it computes. Like
    ``fig4wall`` these are real machine-dependent timings, so the group
    carries a wide ``tolerance`` and is opt-in (``shm_bench=True`` /
    ``--shm-bench``); its blessed baseline is marked ``optional`` so
    default runs that skip the group do not trip the missing-group check.
    On hosts without POSIX shared memory both timings take the pipe path
    (``meta.shm_available`` records which was measured).
    """
    import time

    import numpy as np

    from repro.engine import EngineConfig, PlanCache, engine_mttkrp
    from repro.engine.backends import get_backend
    from repro.engine.backends.shm import shm_available
    from repro.tensor.synthetic import random_sparse

    dims = (4096, 3072, 2048)
    tensor = random_sparse(dims, nnz=nnz, seed=12)
    rng = np.random.default_rng(12)
    factors = [rng.random((d, rank)) for d in dims]

    def best_of(shm: str) -> float:
        cfg = EngineConfig(shards=shards, backend="processes", shm=shm)
        cache = PlanCache()
        engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)  # warm pool+plan
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)
            best = min(best, time.perf_counter() - t0)
        return best

    pipe_s = best_of("off")
    shm_s = best_of("auto")
    get_backend("processes").shutdown()
    return {
        "key": baseline_key("shmdispatch", "host", rank, "coo"),
        "figure": "shmdispatch",
        "meta": {
            "device": "host",
            "rank": rank,
            "format": "coo",
            "dims": list(dims),
            "nnz": nnz,
            "shards": shards,
            "repeats": repeats,
            "measured": "wall_clock",
            "shm_available": bool(shm_available()),
            "optional": True,
        },
        "metrics": {
            "pipe.dispatch_s": pipe_s,
            "shm.dispatch_s": shm_s,
            "shm_speedup": pipe_s / shm_s,
        },
        "tolerance": 0.75,
    }


def run_bench_suite(
    device: str = "a100",
    rank: int = 32,
    inner_iters: int = 10,
    datasets=DEFAULT_DATASETS,
    fig4_names=("nips", "flickr"),
    fig4_device: str = "h100",
    wall: bool = True,
    wall_names=("nips", "flickr"),
    wall_nnz: int = 80_000,
    wall_repeats: int = 2,
    shm_bench: bool = False,
    shm_shards: int = 4,
    shm_nnz: int = 50_000,
    shm_repeats: int = 3,
) -> dict:
    """Run the Figure 4/5/7 subset and return the BENCH document.

    All simulated numbers come from the roofline model, so those groups are
    deterministic for a given (device, rank, inner_iters, datasets) tuple —
    timestamps are the *caller's* concern (``scripts/run_bench_suite.py``
    stamps the output filename, not the content). The one exception is the
    ``fig4wall`` group (``wall=True``): measured host wall-clock of the
    engine vs the seed kernels, nondeterministic by nature and tagged with
    its own wide ``tolerance``. ``shm_bench=True`` (opt-in: it spawns a
    worker-process pool) appends the measured ``shmdispatch`` group —
    processes-backend dispatch overhead, pipe vs shared-memory transport.
    """
    datasets = tuple(datasets)
    groups = [_fig4_group(fig4_device, rank, fig4_names)]
    if wall:
        groups.append(_fig4wall_group(rank, wall_names, wall_nnz, wall_repeats))
    groups.append(_fig5_group(device, rank, inner_iters, datasets))
    groups.append(_fig7_group(device, rank, inner_iters, datasets))
    if shm_bench:
        groups.append(
            _shm_dispatch_group(rank, shm_shards, shm_nnz, shm_repeats)
        )
    doc = {
        "type": "bench",
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "fig4_fig5_fig7",
        "config": {
            "device": device,
            "rank": rank,
            "inner_iters": inner_iters,
            "datasets": list(datasets),
            "fig4_names": list(fig4_names),
            "fig4_device": fig4_device,
            "wall": bool(wall),
            "wall_names": list(wall_names) if wall else [],
            "wall_nnz": wall_nnz,
            "wall_repeats": wall_repeats,
            "shm_bench": bool(shm_bench),
            "shm_shards": shm_shards,
            "shm_nnz": shm_nnz,
            "shm_repeats": shm_repeats,
        },
        "groups": groups,
    }
    errors = validate_bench(doc)
    if errors:  # defensive: the builders above must satisfy their own schema
        raise AssertionError(f"bench suite produced invalid document: {errors[:5]}")
    return doc


def bench_to_baselines(doc, tolerance: float | None = None) -> list[dict]:
    """Convert a BENCH document's groups into baseline documents
    (:data:`~repro.obs.analysis.baseline.BASELINE_SCHEMA`) ready for
    :meth:`~repro.obs.analysis.baseline.BaselineStore.save`."""
    out = []
    for group in doc["groups"]:
        base = {
            "type": "baseline",
            "schema_version": BENCH_SCHEMA_VERSION,
            "key": group["key"],
            "meta": dict(group["meta"], figure=group["figure"]),
            "metrics": dict(group["metrics"]),
        }
        # A group-level tolerance (e.g. fig4wall's wall-clock band) beats
        # the caller's blanket override — it encodes the group's noise.
        tol = group.get("tolerance", tolerance)
        if tol is not None:
            base["tolerance"] = float(tol)
        assert not check_schema(base, BASELINE_SCHEMA)
        out.append(base)
    return out
