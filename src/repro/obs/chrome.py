"""Chrome-trace (``chrome://tracing`` / Perfetto) exporter.

Renders one unified timeline from a telemetry source — a live
:class:`~repro.obs.record.RunRecord` or an emitted JSONL file — with
these process tracks:

- **host** (pid 1): the hierarchical span tree as complete (``X``)
  events. Thread 1 carries the ordinary LIFO span stack; synthesized
  per-shard ``shard`` spans (which overlap in time) each get their own
  ``shard <i>`` thread so concurrent shards render side by side;
- **device (simulated)** (pid 2): the simulated kernel stream, one thread
  per cSTF phase, laid out back-to-back in simulated time;
- **resilience** (pid 3): every resilience-layer action as an instant
  (``i``) event at the host time it fired;
- **worker <slot>** (pid 10+slot): spans shipped from pool workers
  (schema-v2 ``worker`` attribution). The *slot* keys the track, so a
  worker that is killed and respawned stays on the same named track; the
  OS pid of the process that actually ran each span is the thread, so a
  respawn is visible as a new ``pid <n>`` lane inside the track.

Host and simulated tracks use their own time bases (host wall time vs.
simulated device seconds); they share the viewport, not a clock.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "telemetry_to_chrome_trace",
    "jsonl_to_chrome_trace",
    "write_telemetry_chrome_trace",
]

PID_HOST = 1
PID_DEVICE = 2
PID_RESILIENCE = 3

#: Base pid for per-worker tracks: worker slot *w* renders as pid
#: ``PID_WORKERS + w``, stable across respawns of that slot.
PID_WORKERS = 10


def _meta_event(pid: int, name: str, tid: int = 0, kind: str = "process_name") -> dict:
    return {"name": kind, "ph": "M", "pid": pid, "tid": tid, "args": {"name": name}}


def telemetry_to_chrome_trace(source) -> dict:
    """Build the Chrome-trace dict from a RunRecord or parsed JSONL records."""
    spans, kernels, events, meta = _normalize(source)

    trace_events: list[dict] = [
        _meta_event(PID_HOST, "host"),
        _meta_event(PID_DEVICE, "device (simulated)"),
        _meta_event(PID_RESILIENCE, "resilience"),
        _meta_event(PID_HOST, "spans", tid=1, kind="thread_name"),
        _meta_event(PID_RESILIENCE, "events", tid=1, kind="thread_name"),
    ]

    worker_tracks: dict[int, set[int]] = {}
    shard_tids: dict[int, int] = {}
    for s in spans:
        args = {k: v for k, v in s["attrs"].items()}
        if s.get("sim"):
            args["sim_seconds"] = s["sim"]["seconds"]
            args["sim_flops"] = s["sim"]["flops"]
            args["sim_bytes"] = s["sim"]["bytes"]
        worker = s.get("worker")
        if worker:
            # Worker-shipped span: its own process track keyed by the
            # worker *slot* (stable across respawns); the OS pid is the
            # thread, so a respawned slot shows a new pid lane.
            slot = int(worker.get("id", 0))
            ospid = int(worker.get("pid", 0))
            pid, tid = PID_WORKERS + slot, ospid
            worker_tracks.setdefault(slot, set()).add(ospid)
            args["worker_pid"] = ospid
        elif s["name"] == "shard":
            # Overlapping per-shard spans render side by side, one host
            # thread per shard index.
            shard = int(s["attrs"].get("shard", 0))
            tid = shard_tids.setdefault(shard, 2 + shard)
            pid = PID_HOST
        else:
            pid, tid = PID_HOST, 1
        trace_events.append(
            {
                "name": s["name"],
                "cat": "host" if pid == PID_HOST else "worker",
                "ph": "X",
                "ts": round(s["ts"] * 1e6, 3),
                "dur": round(s["dur"] * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for shard, tid in shard_tids.items():
        trace_events.append(
            _meta_event(PID_HOST, f"shard {shard}", tid=tid, kind="thread_name")
        )
    for slot, ospids in sorted(worker_tracks.items()):
        trace_events.append(_meta_event(PID_WORKERS + slot, f"worker {slot}"))
        for ospid in sorted(ospids):
            trace_events.append(
                _meta_event(
                    PID_WORKERS + slot, f"pid {ospid}", tid=ospid,
                    kind="thread_name",
                )
            )

    phase_tids: dict[str, int] = {}
    for k in kernels:
        tid = phase_tids.setdefault(k["phase"], len(phase_tids) + 1)
        trace_events.append(
            {
                "name": k["name"],
                "cat": k["phase"],
                "ph": "X",
                "ts": round(k["ts"] * 1e6, 3),
                "dur": round(k["dur"] * 1e6, 3),
                "pid": PID_DEVICE,
                "tid": tid,
                "args": {
                    "flops": k["flops"],
                    "bytes": k["bytes"],
                    "launches": k["launches"],
                },
            }
        )
    for phase, tid in phase_tids.items():
        trace_events.append(_meta_event(PID_DEVICE, phase, tid=tid, kind="thread_name"))

    for e in events:
        args = {"detail": e.get("detail", ""), **e.get("data", {})}
        if e.get("mode") is not None:
            args["mode"] = e["mode"]
        if e.get("iteration") is not None:
            args["iteration"] = e["iteration"]
        trace_events.append(
            {
                "name": e["kind"],
                "cat": e.get("phase", ""),
                "ph": "i",
                "s": "g",
                "ts": round(e["ts"] * 1e6, 3),
                "pid": PID_RESILIENCE,
                "tid": 1,
                "args": args,
            }
        )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "simulated_device_track": True, **meta},
    }


def _normalize(source):
    """Split any supported source into (spans, kernels, events, meta) dicts."""
    from repro.obs.record import RunRecord

    if isinstance(source, RunRecord):
        d = source.to_dict()
        return d["spans"], d["kernels"], d["events"], _meta_strings(d["meta"])
    if isinstance(source, (str, Path)):
        from repro.obs.sinks import read_jsonl

        source = read_jsonl(source)
    spans, kernels, events, meta = [], [], [], {}
    for rec in source:
        kind = rec.get("type")
        if kind == "span":
            spans.append(rec)
        elif kind == "kernel":
            kernels.append(rec)
        elif kind == "event":
            events.append(rec)
        elif kind == "meta":
            meta.update(_meta_strings(rec.get("run", {})))
    return spans, kernels, events, meta


def _meta_strings(meta: dict) -> dict:
    return {str(k): v for k, v in meta.items() if isinstance(v, (str, int, float, bool))}


def jsonl_to_chrome_trace(path) -> dict:
    """Convert an emitted telemetry JSONL file to a Chrome-trace dict."""
    return telemetry_to_chrome_trace(path)


def write_telemetry_chrome_trace(source, target) -> dict:
    """Export *source* as a Chrome-trace JSON file; returns the trace dict."""
    trace = telemetry_to_chrome_trace(source)
    if isinstance(target, (str, Path)):
        Path(target).write_text(json.dumps(trace), encoding="utf-8")
    else:
        json.dump(trace, target)
    return trace
