"""The live run monitor behind ``repro watch``.

Tails a telemetry JSONL stream *while the run writes it* and renders a
compact, in-place-refreshing status panel: per-shard progress, worker
health (dispatches, lost workers, respawns, silent workers, final
flushes), plan-store hit rates, the fit trajectory as a sparkline, and
the telemetry self-cost meter. Two pieces:

- :class:`JsonlTail` — an incremental reader that remembers its byte
  offset and carries partial trailing lines between polls. It opens the
  file read-only on every poll and never writes, truncates, or locks —
  the run being watched cannot tell it is being watched.
- :class:`RunMonitor` — a stateful aggregator fed parsed records;
  :meth:`RunMonitor.render` produces the panel as plain text, so tests
  (and any other frontend) can drive it without a terminal.

``watch_run`` ties them together for the CLI: poll, feed, redraw, sleep —
until the run's ``summary`` line lands, a ``--duration`` budget expires,
or the user interrupts.
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["JsonlTail", "RunMonitor", "sparkline", "watch_run"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 32) -> str:
    """Render the last *width* values as a unicode block sparkline."""
    tail = [float(v) for v in values][-width:]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0.0:
        return _BLOCKS[3] * len(tail)
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - lo) / span * len(_BLOCKS)))]
        for v in tail
    )


class JsonlTail:
    """Incremental, read-only reader of a (possibly growing) JSONL file."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._offset = 0
        self._carry = b""

    def poll(self) -> list[dict]:
        """Parse every complete line appended since the previous poll.

        A trailing partial line (the writer mid-``write``) is carried to
        the next poll; unparseable lines are skipped, not fatal — a live
        stream is allowed to be momentarily torn.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        self._offset += len(data)
        data = self._carry + data
        lines = data.split(b"\n")
        self._carry = lines.pop()
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except (ValueError, UnicodeDecodeError):
                continue
        return records


class RunMonitor:
    """Aggregates a telemetry record stream into a live status panel."""

    #: Counter names surfaced in the panel, grouped by panel row.
    _STORE = ("hits", "misses", "writes", "evictions", "quarantined")

    def __init__(self, title: str = ""):
        self.title = title
        self.records = 0
        self.version = None
        self.finished = False
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.fit_trajectory: list[float] = []
        self.events: dict[str, int] = {}
        self.shards: dict[int, dict] = {}
        self.worker_pids: dict[int, int] = {}
        self.kernel_spans = 0
        self.span_names: dict[str, int] = {}
        self._t_last = None

    # ------------------------------------------------------------------ #
    def feed(self, records) -> None:
        for obj in records:
            if not isinstance(obj, dict):
                continue
            self.records += 1
            kind = obj.get("type")
            if kind == "meta":
                self.version = obj.get("version", self.version)
            elif kind == "span":
                self._feed_span(obj)
            elif kind == "metric":
                self._feed_metric(obj)
            elif kind == "event":
                self.events[obj.get("kind", "?")] = (
                    self.events.get(obj.get("kind", "?"), 0) + 1
                )
                self._t_last = obj.get("ts", self._t_last)
            elif kind == "summary":
                self.finished = True

    def _feed_span(self, obj: dict) -> None:
        name = obj.get("name", "?")
        self.span_names[name] = self.span_names.get(name, 0) + 1
        self._t_last = obj.get("ts", self._t_last)
        worker = obj.get("worker")
        if worker:
            self.worker_pids[int(worker.get("id", 0))] = int(worker.get("pid", 0))
        if name == "shard":
            attrs = obj.get("attrs", {})
            shard = int(attrs.get("shard", -1))
            entry = self.shards.setdefault(shard, {"runs": 0, "redone": 0})
            entry["runs"] += 1
            entry["nnz"] = attrs.get("nnz")
            entry["dur"] = obj.get("dur", 0.0)
            if attrs.get("redone"):
                entry["redone"] += 1
        elif worker and name.endswith("kernel"):
            self.kernel_spans += 1

    def _feed_metric(self, obj: dict) -> None:
        name = obj.get("name", "?")
        value = float(obj.get("value", 0.0))
        kind = obj.get("kind")
        self._t_last = obj.get("ts", self._t_last)
        if kind == "counter":
            self.counters[name] = self.counters.get(name, 0.0) + value
        elif kind == "gauge":
            self.gauges[name] = value
        elif kind == "histogram":
            if name == "cstf.fit":
                self.fit_trajectory.append(value)

    # ------------------------------------------------------------------ #
    def _c(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def render(self) -> str:
        """The status panel as plain text (one frame)."""
        lines = []
        head = self.title or "telemetry"
        status = "finished" if self.finished else "live"
        version = f"v{self.version}" if self.version is not None else "v?"
        lines.append(
            f"{head} — schema {version} · {self.records} records · {status}"
        )
        if self.fit_trajectory:
            lines.append(
                f"  fit      {self.fit_trajectory[-1]:.6f}  "
                f"{sparkline(self.fit_trajectory)}"
            )
        elif "cstf.last_fit" in self.gauges:
            lines.append(f"  fit      {self.gauges['cstf.last_fit']:.6f}")
        if self.shards:
            runs = sum(e["runs"] for e in self.shards.values())
            redone = sum(e["redone"] for e in self.shards.values())
            lines.append(
                f"  shards   {len(self.shards)} active · {runs} executed · "
                f"{redone} redone serially · kernel spans {self.kernel_spans}"
            )
            for shard in sorted(self.shards)[:8]:
                e = self.shards[shard]
                nnz = e.get("nnz")
                lines.append(
                    f"    shard {shard}: runs={e['runs']} redone={e['redone']}"
                    + (f" nnz={nnz}" if nnz is not None else "")
                    + f" last={e.get('dur', 0.0) * 1e3:.1f}ms"
                )
        if self.worker_pids or self._c("engine.backend.dispatches"):
            pids = sorted(set(self.worker_pids.values()))
            lines.append(
                f"  workers  pids={pids or '[]'} · "
                f"dispatches={self._c('engine.backend.dispatches'):.0f} · "
                f"lost={self._c('engine.backend.workers_lost'):.0f} · "
                f"respawns={self._c('engine.backend.respawns'):.0f} · "
                f"silent={self._c('obs.worker.silent'):.0f} · "
                f"flushes={self._c('obs.worker.flushes'):.0f}"
            )
        retries = self._c("engine.shard.retries")
        timeouts = self._c("engine.shard.timeouts")
        if retries or timeouts or self.events:
            evs = " ".join(f"{k}={v}" for k, v in sorted(self.events.items()))
            lines.append(
                f"  faults   retries={retries:.0f} timeouts={timeouts:.0f}"
                + (f" · events: {evs}" if evs else "")
            )
        store = {k: self._c(f"engine.store.{k}") for k in self._STORE}
        if any(store.values()):
            probes = store["hits"] + store["misses"]
            rate = f" ({store['hits'] / probes:.0%} hit)" if probes else ""
            lines.append(
                "  store    "
                + " ".join(f"{k}={v:.0f}" for k, v in store.items())
                + rate
            )
        if self._c("obs.overhead.batches"):
            lines.append(
                f"  overhead batches={self._c('obs.overhead.batches'):.0f} "
                f"spans={self._c('obs.overhead.spans'):.0f} "
                f"worker={self._c('obs.overhead.worker_s') * 1e3:.2f}ms "
                f"merge={self._c('obs.overhead.merge_s') * 1e3:.2f}ms"
            )
        return "\n".join(lines)


def watch_run(
    path,
    *,
    interval: float = 0.5,
    duration: float | None = None,
    once: bool = False,
    clear: bool = True,
    out=None,
) -> RunMonitor:
    """Tail *path* and redraw the panel until the run finishes.

    Returns the final :class:`RunMonitor` (the CLI prints nothing else).
    The file is only ever opened for reading — watching a live run cannot
    perturb it.
    """
    import sys

    out = out or sys.stdout
    tail = JsonlTail(path)
    monitor = RunMonitor(title=os.path.basename(os.fspath(path)))
    deadline = time.monotonic() + duration if duration else None
    while True:
        monitor.feed(tail.poll())
        frame = monitor.render()
        if clear and not once:
            out.write("\x1b[2J\x1b[H")
        out.write(frame + "\n")
        out.flush()
        if once or monitor.finished:
            return monitor
        if deadline is not None and time.monotonic() >= deadline:
            return monitor
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return monitor
