"""Unified run telemetry: spans, metrics, and trace export.

The observability layer the paper's own argument is made with — per-phase
breakdowns and counters (Figures 1/3/4) — as a first-class subsystem:

- :mod:`repro.obs.spans` — hierarchical host spans, the run-scoped
  :class:`Telemetry` session, and the ambient-session machinery
  (:func:`current_telemetry`, :func:`telemetry_session`);
- :mod:`repro.obs.metrics` — the counters/gauges/histograms registry with
  ``min/max/mean/pXX`` summaries and checkpointable state;
- :mod:`repro.obs.record` — the in-memory :class:`RunRecord` sink surfaced
  as ``CstfResult.telemetry``;
- :mod:`repro.obs.sinks` — the streaming JSONL sink and reader;
- :mod:`repro.obs.chrome` — the Chrome-trace/Perfetto exporter that puts
  host spans, simulated kernels, and resilience events on one timeline;
- :mod:`repro.obs.schema` — the JSONL line contract (JSON Schema) and its
  validator;
- :mod:`repro.obs.worker` — cross-process telemetry: the worker-side
  capture session and the parent-side batch merger;
- :mod:`repro.obs.watch` — the live run monitor behind ``repro watch``.

Enable per run (``cstf(..., telemetry="on")``), per session
(:func:`telemetry_session`), or not at all — the default is a no-op with
zero overhead and bit-identical numerics.
"""

from repro.obs.chrome import (
    jsonl_to_chrome_trace,
    telemetry_to_chrome_trace,
    write_telemetry_chrome_trace,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.record import KernelEvent, ResilienceTraceEvent, RunRecord, Span
from repro.obs.schema import (
    SCHEMA_VERSION,
    TELEMETRY_SCHEMA,
    validate_jsonl,
    validate_record,
)
from repro.obs.sinks import JsonlSink, read_jsonl
from repro.obs.spans import (
    NULL,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    resolve_telemetry,
    telemetry_session,
)
from repro.obs.watch import JsonlTail, RunMonitor
from repro.obs.worker import WorkerTelemetrySession, merge_worker_batch

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "current_telemetry",
    "resolve_telemetry",
    "telemetry_session",
    "MetricsRegistry",
    "Histogram",
    "RunRecord",
    "Span",
    "KernelEvent",
    "ResilienceTraceEvent",
    "JsonlSink",
    "read_jsonl",
    "telemetry_to_chrome_trace",
    "jsonl_to_chrome_trace",
    "write_telemetry_chrome_trace",
    "SCHEMA_VERSION",
    "TELEMETRY_SCHEMA",
    "validate_record",
    "validate_jsonl",
    "WorkerTelemetrySession",
    "merge_worker_batch",
    "JsonlTail",
    "RunMonitor",
]
