"""Hierarchical spans and the run-scoped telemetry session.

A :class:`Telemetry` session ties the three previously disconnected
instrumentation silos together:

- **host spans** — ``with tel.span("mttkrp", mode=n): ...`` captures wall
  time with structured attributes, nested under the currently open span;
- **simulated device** — when an :class:`~repro.machine.Executor` is
  attached, every kernel it charges is bridged into the session (per-phase
  aggregates, the kernel stream, and per-span device attribution);
- **resilience** — a subscribed :class:`~repro.resilience.events.EventLog`
  mirrors each event into the trace as an instant event and bumps
  ``resilience.<kind>`` counters.

The *ambient* session is carried in a :mod:`contextvars` variable so deep
call sites (MTTKRP kernels, ADMM inner loops, the scheduler) instrument
themselves via :func:`current_telemetry` without parameter plumbing. When
no session is active, :func:`current_telemetry` returns the module's
:data:`NULL` singleton whose every method is a no-op — the zero-overhead
``telemetry="off"`` path.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs.metrics import MetricsRegistry
from repro.obs.record import KernelEvent, ResilienceTraceEvent, RunRecord, Span
from repro.obs.schema import SCHEMA_VERSION

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "current_telemetry",
    "resolve_telemetry",
    "telemetry_session",
]


class NullTelemetry:
    """The do-nothing telemetry: every instrument point is a cheap no-op.

    ``enabled`` is False so call sites that must branch (e.g. checkpoint
    serialization) can skip work entirely; everything else just calls the
    no-op methods unconditionally.
    """

    enabled = False
    record = None
    metrics = None

    # -- spans --------------------------------------------------------- #
    def span(self, name, **attrs):
        return _NULL_CTX

    def open_span(self, name, **attrs):
        return None

    def close_span(self, span) -> None:
        pass

    def add_span(self, name, t0, dur, parent=None, *, worker=None, attrs=None):
        return None

    def current_span_id(self):
        return None

    def now(self) -> float:
        return 0.0

    # -- metrics ------------------------------------------------------- #
    def counter(self, name, amount=1.0, **attrs) -> None:
        pass

    def gauge(self, name, value, **attrs) -> None:
        pass

    def observe(self, name, value, **attrs) -> None:
        pass

    # -- events / wiring ----------------------------------------------- #
    def event(self, kind, phase, **kwargs) -> None:
        pass

    def set_meta(self, **meta) -> None:
        pass

    def attach_executor(self, executor) -> None:
        pass

    def attach_events(self, event_log) -> None:
        pass

    def push(self):
        return _ACTIVE.set(self)

    def pop(self, token) -> None:
        _ACTIVE.reset(token)

    @contextmanager
    def activate(self):
        token = self.push()
        try:
            yield self
        finally:
            self.pop(token)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class _NullSpanContext:
    """Reusable null context manager yielding a discardable attrs holder."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc):
        return False


class _NullSpan:
    __slots__ = ("attrs",)

    def __init__(self):
        self.attrs: dict = {}


_NULL_SPAN = _NullSpan()
_NULL_CTX = _NullSpanContext()

#: Module-level no-op singleton; ``current_telemetry()`` default.
NULL = NullTelemetry()

_ACTIVE: ContextVar = ContextVar("repro_obs_telemetry", default=NULL)


def current_telemetry():
    """The ambient telemetry session (:data:`NULL` when none is active)."""
    return _ACTIVE.get()


def _reset_active_after_fork() -> None:
    # Forked children inherit the parent's ambient session *object*,
    # including its open JSONL file handle; any write from the child would
    # interleave bytes into the parent's stream. Children therefore start
    # with no ambient session — pool workers install their own
    # WorkerTelemetrySession explicitly (see repro.obs.worker).
    _ACTIVE.set(NULL)


if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on POSIX
    os.register_at_fork(after_in_child=_reset_active_after_fork)


class Telemetry:
    """One run-scoped telemetry session.

    Parameters
    ----------
    jsonl_path:
        Optional path (or text file object) for the streaming JSONL sink;
        every span/kernel/metric/event is written as one JSON line as it
        happens (see :mod:`repro.obs.schema` for the line contract).
    capture_kernels:
        Keep the per-kernel event stream (record + JSONL). Per-phase
        simulated aggregates are always maintained; disabling this bounds
        trace size for huge sweeps.
    clock:
        Monotonic host clock, injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, jsonl_path=None, capture_kernels: bool = True, clock=time.perf_counter):
        self.metrics = MetricsRegistry()
        self.record = RunRecord()
        self.capture_kernels = bool(capture_kernels)
        self._clock = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self._next_id = 0
        self._sim_cursor = 0.0
        self._sink = None
        if jsonl_path is not None:
            from repro.obs.sinks import JsonlSink

            self._sink = JsonlSink(jsonl_path)
            self._sink.emit({"type": "meta", "version": SCHEMA_VERSION, "run": {}})

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return self._clock() - self._epoch

    def now(self) -> float:
        """Seconds since this session's epoch (the spans' time base)."""
        return self._now()

    def _emit(self, obj: dict) -> None:
        sink = self._sink
        if sink is None:
            return
        sink.emit(obj)
        if getattr(sink, "degraded", False):
            # The sink swallowed a write failure (ENOSPC and friends) and is
            # now a null sink. Count the dropped line registry-only: the
            # summary still reports the loss, and going through
            # ``self.counter`` here would recurse into the dead sink.
            self.metrics.count("obs.sink.dropped")

    # ------------------------------------------------------------------ #
    # Spans
    # ------------------------------------------------------------------ #
    def open_span(self, name: str, **attrs) -> Span:
        span = Span(
            id=self._next_id,
            name=name,
            parent=self._stack[-1].id if self._stack else None,
            t0=self._now(),
            attrs=attrs,
        )
        self._next_id += 1
        # Simulated attribution baseline: device seconds charged so far.
        span.sim = {"seconds": self._sim_cursor, "flops": 0.0, "bytes": 0.0}
        span.attrs.setdefault("_sim_flops0", self._sim_flops_total())
        span.attrs.setdefault("_sim_bytes0", self._sim_bytes_total())
        self._stack.append(span)
        self.record.spans.append(span)
        return span

    def close_span(self, span: Span | None) -> None:
        if span is None or not span.open:
            return
        if span in self._stack:
            # First close any children an exception unwound past, so their
            # durations and simulated attribution stay well-formed.
            while self._stack[-1] is not span:
                self.close_span(self._stack[-1])
            self._stack.pop()
        span.dur = self._now() - span.t0
        span.open = False
        sim0 = span.sim["seconds"] if span.sim else 0.0
        flops0 = span.attrs.pop("_sim_flops0", 0.0)
        bytes0 = span.attrs.pop("_sim_bytes0", 0.0)
        sim_delta = self._sim_cursor - sim0
        if sim_delta > 0.0:
            span.sim = {
                "seconds": sim_delta,
                "flops": self._sim_flops_total() - flops0,
                "bytes": self._sim_bytes_total() - bytes0,
            }
        else:
            span.sim = None
        self._emit(
            {
                "type": "span",
                "id": span.id,
                "parent": span.parent,
                "name": span.name,
                "ts": span.t0,
                "dur": span.dur,
                "attrs": dict(span.attrs),
                "sim": dict(span.sim) if span.sim else None,
            }
        )

    @contextmanager
    def span(self, name: str, **attrs):
        span = self.open_span(name, **attrs)
        try:
            yield span
        finally:
            self.close_span(span)

    def current_span_id(self) -> int | None:
        """ID of the innermost open span (``None`` at the top level)."""
        return self._stack[-1].id if self._stack else None

    def add_span(
        self,
        name: str,
        t0: float,
        dur: float,
        parent: int | None = None,
        *,
        worker: dict | None = None,
        attrs: dict | None = None,
    ) -> Span:
        """Record an already-completed span outside the ambient stack.

        This is how cross-process telemetry enters the session: the
        parent-side merger re-roots spans captured in worker processes
        (or shard threads) under an explicit *parent* id with ``worker``
        attribution, and the backends synthesize the per-shard ``shard``
        spans whose lifetimes overlap and therefore cannot ride the
        LIFO ``open_span``/``close_span`` stack.
        """
        span = Span(
            id=self._next_id,
            name=name,
            parent=parent,
            t0=float(t0),
            attrs=dict(attrs or {}),
            dur=float(dur),
            sim=None,
            open=False,
            worker=dict(worker) if worker else None,
        )
        self._next_id += 1
        self.record.spans.append(span)
        line = {
            "type": "span",
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "ts": span.t0,
            "dur": span.dur,
            "attrs": dict(span.attrs),
            "sim": None,
        }
        if span.worker is not None:
            line["worker"] = dict(span.worker)
        self._emit(line)
        return span

    def _sim_flops_total(self) -> float:
        return sum(self.record.sim_phase_flops.values())

    def _sim_bytes_total(self) -> float:
        return sum(self.record.sim_phase_bytes.values())

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def counter(self, name: str, amount: float = 1.0, **attrs) -> None:
        self.metrics.count(name, amount)
        self._emit(
            {"type": "metric", "kind": "counter", "name": name,
             "value": float(amount), "ts": self._now(), "attrs": attrs}
        )

    def gauge(self, name: str, value: float, **attrs) -> None:
        self.metrics.gauge(name, value)
        self._emit(
            {"type": "metric", "kind": "gauge", "name": name,
             "value": float(value), "ts": self._now(), "attrs": attrs}
        )

    def observe(self, name: str, value: float, **attrs) -> None:
        self.metrics.observe(name, value)
        self._emit(
            {"type": "metric", "kind": "histogram", "name": name,
             "value": float(value), "ts": self._now(), "attrs": attrs}
        )

    # ------------------------------------------------------------------ #
    # Instant events (resilience and scheduler decisions)
    # ------------------------------------------------------------------ #
    def event(
        self,
        kind: str,
        phase: str,
        *,
        mode: int | None = None,
        iteration: int | None = None,
        detail: str = "",
        data: dict | None = None,
    ) -> None:
        ev = ResilienceTraceEvent(
            kind=kind, phase=phase, ts=self._now(), mode=mode,
            iteration=iteration, detail=detail, data=dict(data or {}),
        )
        self.record.events.append(ev)
        self._emit(
            {"type": "event", "kind": ev.kind, "phase": ev.phase, "ts": ev.ts,
             "mode": ev.mode, "iteration": ev.iteration, "detail": ev.detail,
             "data": _jsonable(ev.data)}
        )

    def set_meta(self, **meta) -> None:
        self.record.meta.update(meta)
        self._emit({"type": "meta", "version": SCHEMA_VERSION, "run": _jsonable(meta)})

    # ------------------------------------------------------------------ #
    # Bridges: simulated device and resilience layers
    # ------------------------------------------------------------------ #
    def attach_executor(self, executor) -> None:
        """Forward every kernel the executor charges into this session."""
        executor.on_kernel = self.on_kernel

    def on_kernel(self, rec, seconds: float) -> None:
        """Executor hook: one simulated kernel was charged."""
        event = KernelEvent(
            name=rec.name,
            phase=rec.phase,
            ts=self._sim_cursor,
            dur=float(seconds),
            flops=rec.flops,
            bytes=rec.total_bytes,
            launches=rec.launches,
        )
        self._sim_cursor += float(seconds)
        if self.capture_kernels:
            self.record.add_kernel(event)
            self._emit(
                {"type": "kernel", "name": event.name, "phase": event.phase,
                 "ts": event.ts, "dur": event.dur, "flops": event.flops,
                 "bytes": event.bytes, "launches": event.launches}
            )
        else:
            # Aggregates only: skip the per-kernel stream but keep the
            # phase accounting the acceptance checks rely on.
            self.record.sim_phase_seconds[event.phase] = (
                self.record.sim_phase_seconds.get(event.phase, 0.0) + event.dur
            )
            self.record.sim_phase_flops[event.phase] = (
                self.record.sim_phase_flops.get(event.phase, 0.0) + event.flops
            )
            self.record.sim_phase_bytes[event.phase] = (
                self.record.sim_phase_bytes.get(event.phase, 0.0) + event.bytes
            )

    def attach_events(self, event_log) -> None:
        """Mirror a resilience :class:`EventLog` into this session."""
        event_log.subscribe(self.on_resilience_event)

    def inject_sink_failure(self) -> None:
        """Arm the JSONL sink to fail its next write (``disk_full`` chaos).

        A no-op without a sink; with one, the next emitted line takes the
        real ENOSPC degradation path (null sink + ``obs.sink.dropped``).
        """
        if self._sink is not None:
            self._sink.fail_next_write = True

    def on_resilience_event(self, ev) -> None:
        self.metrics.count(f"resilience.{ev.kind}")
        self.event(
            ev.kind, ev.phase, mode=ev.mode, iteration=ev.iteration,
            detail=ev.detail, data=ev.data,
        )

    # ------------------------------------------------------------------ #
    # Session management
    # ------------------------------------------------------------------ #
    def push(self):
        """Make this session the ambient telemetry; returns a reset token."""
        return _ACTIVE.set(self)

    def pop(self, token) -> None:
        _ACTIVE.reset(token)

    @contextmanager
    def activate(self):
        token = self.push()
        try:
            yield self
        finally:
            self.pop(token)

    def flush(self) -> None:
        """Refresh the record's metrics snapshot and flush the JSONL sink."""
        self.record.metrics_summary = self.metrics.summary()
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Close any still-open spans, write the summary line, release sinks."""
        while self._stack:
            self.close_span(self._stack[-1])
        self.record.metrics_summary = self.metrics.summary()
        if self._sink is not None:
            self._emit({"type": "summary", "metrics": self.record.metrics_summary})
            degraded = getattr(self._sink, "degraded", False)
            self._sink.close()
            self._sink = None
            if degraded:
                # The summary line itself was dropped; re-snapshot so the
                # in-memory record reflects the final obs.sink.dropped tally.
                self.record.metrics_summary = self.metrics.summary()


def _jsonable(obj):
    """Best-effort conversion of small payload dicts to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    try:  # NumPy scalars
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)


def resolve_telemetry(setting):
    """Map a ``CstfConfig.telemetry`` value to a session object.

    - ``"auto"`` / ``None`` — join the ambient session if one is active
      (see :func:`telemetry_session`), otherwise the no-op :data:`NULL`;
    - ``"off"`` / ``False`` — force :data:`NULL`, even inside an ambient
      session;
    - ``"on"`` / ``True`` — a fresh in-memory :class:`Telemetry`;
    - a :class:`Telemetry` (or compatible) instance — used as-is.
    """
    if setting is None or setting == "auto":
        return current_telemetry()
    if setting is False or setting == "off":
        return NULL
    if setting is True or setting == "on":
        return Telemetry()
    if hasattr(setting, "span") and hasattr(setting, "attach_executor"):
        return setting
    raise ValueError(
        f"telemetry must be 'auto', 'off', 'on', or a Telemetry instance; "
        f"got {setting!r}"
    )


@contextmanager
def telemetry_session(jsonl_path=None, capture_kernels: bool = True, **meta):
    """Open an ambient telemetry session for a ``with`` block.

    Every ``cstf``/streaming/scheduler call inside the block that keeps the
    default ``telemetry="auto"`` joins the session, so scripts can audit a
    whole experiment sweep with one line::

        with telemetry_session(jsonl_path="run.jsonl") as tel:
            cstf(tensor, rank=16)
        print(tel.metrics.summary())
    """
    tel = Telemetry(jsonl_path=jsonl_path, capture_kernels=capture_kernels)
    if meta:
        tel.set_meta(**meta)
    token = tel.push()
    try:
        yield tel
    finally:
        tel.pop(token)
        tel.close()
