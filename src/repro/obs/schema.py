"""The telemetry JSONL line contract, as a JSON Schema plus a validator.

:data:`TELEMETRY_SCHEMA` is a standard JSON-Schema document (draft-07
subset) describing every line type the JSONL sink emits: ``meta``,
``span``, ``kernel``, ``metric``, ``event``, and ``summary``. The bundled
:func:`validate_record` interprets exactly the subset the schema uses
(``type``, ``enum``, ``required``, ``properties``, ``oneOf``), so
validation needs no third-party ``jsonschema`` dependency; the document
itself remains exportable to any external validator.

``scripts/check_trace.py`` drives :func:`validate_jsonl` from the command
line; the fault suite runs it over an injected-fault run so resilience
events are schema-checked too.
"""

from __future__ import annotations

__all__ = [
    "SCHEMA_VERSION",
    "TELEMETRY_SCHEMA",
    "check_schema",
    "validate_record",
    "validate_jsonl",
]

SCHEMA_VERSION = 2
"""Current JSONL line-contract version, stamped into ``meta`` lines.

Version 2 adds the optional ``worker`` field on span lines (cross-process
attribution: the worker slot and OS pid that actually ran the span).
Version-1 files remain valid — the field is optional, never required."""

_NUM = {"type": "number"}
_STR = {"type": "string"}
_INT = {"type": "integer"}

TELEMETRY_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro telemetry JSONL line",
    "oneOf": [
        {
            "type": "object",
            "required": ["type", "version", "run"],
            "properties": {
                "type": {"enum": ["meta"]},
                "version": _INT,
                "run": {"type": "object"},
            },
        },
        {
            "type": "object",
            "required": ["type", "id", "parent", "name", "ts", "dur", "attrs", "sim"],
            "properties": {
                "type": {"enum": ["span"]},
                "id": _INT,
                "parent": {"type": ["integer", "null"]},
                "name": _STR,
                "ts": _NUM,
                "dur": _NUM,
                "attrs": {"type": "object"},
                "sim": {
                    "type": ["object", "null"],
                    "required": ["seconds", "flops", "bytes"],
                    "properties": {"seconds": _NUM, "flops": _NUM, "bytes": _NUM},
                },
                # Optional since version 2: cross-process attribution.
                "worker": {
                    "type": ["object", "null"],
                    "required": ["pid", "id"],
                    "properties": {"pid": _INT, "id": _INT},
                },
            },
        },
        {
            "type": "object",
            "required": ["type", "name", "phase", "ts", "dur", "flops", "bytes", "launches"],
            "properties": {
                "type": {"enum": ["kernel"]},
                "name": _STR,
                "phase": _STR,
                "ts": _NUM,
                "dur": _NUM,
                "flops": _NUM,
                "bytes": _NUM,
                "launches": _INT,
            },
        },
        {
            "type": "object",
            "required": ["type", "kind", "name", "value", "ts"],
            "properties": {
                "type": {"enum": ["metric"]},
                "kind": {"enum": ["counter", "gauge", "histogram"]},
                "name": _STR,
                "value": _NUM,
                "ts": _NUM,
                "attrs": {"type": "object"},
            },
        },
        {
            "type": "object",
            "required": ["type", "kind", "phase", "ts", "detail", "data"],
            "properties": {
                "type": {"enum": ["event"]},
                "kind": _STR,
                "phase": _STR,
                "ts": _NUM,
                "mode": {"type": ["integer", "null"]},
                "iteration": {"type": ["integer", "null"]},
                "detail": _STR,
                "data": {"type": "object"},
            },
        },
        {
            "type": "object",
            "required": ["type", "metrics"],
            "properties": {
                "type": {"enum": ["summary"]},
                "metrics": {"type": "object"},
            },
        },
    ],
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check(value, schema: dict, path: str, errors: list[str]) -> None:
    """Validate *value* against the JSON-Schema subset used above."""
    if "oneOf" in schema:
        candidates = schema["oneOf"]
        failures = []
        for sub in candidates:
            sub_errors: list[str] = []
            _check(value, sub, path, sub_errors)
            if not sub_errors:
                return
            failures.append(sub_errors)
        # Report against the branch whose discriminator matched, if any.
        tag = value.get("type") if isinstance(value, dict) else None
        for sub, errs in zip(candidates, failures):
            enum = sub.get("properties", {}).get("type", {}).get("enum", [])
            if tag in enum:
                errors.extend(errs)
                return
        errors.append(f"{path}: matches no schema branch (type={tag!r})")
        return
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(f"{path}: expected {'/'.join(allowed)}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
        return
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _check(value[key], sub, f"{path}.{key}", errors)


def check_schema(value, schema: dict) -> list[str]:
    """Validate *value* against a JSON-Schema document (draft-07 subset).

    The interpreter covers exactly the keywords the in-repo schemas use
    (``type``, ``enum``, ``required``, ``properties``, ``oneOf``), so the
    telemetry line contract, the BENCH document schema, and the baseline
    schema (:mod:`repro.obs.analysis`) all share one validator with no
    third-party dependency.
    """
    errors: list[str] = []
    _check(value, schema, "$", errors)
    return errors


def validate_record(obj) -> list[str]:
    """Validate one parsed JSONL line; returns a list of error strings."""
    return check_schema(obj, TELEMETRY_SCHEMA)


def validate_jsonl(source) -> list[str]:
    """Validate a whole telemetry JSONL file; returns all line errors."""
    from repro.obs.sinks import read_jsonl

    errors: list[str] = []
    records = read_jsonl(source)
    if not records:
        return ["file contains no telemetry records"]
    for i, rec in enumerate(records, start=1):
        for err in validate_record(rec):
            errors.append(f"line {i}: {err}")
    return errors
