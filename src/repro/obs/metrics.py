"""The metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` lives on every telemetry session and records
the run's convergence telemetry — fit and fit delta per outer iteration,
ADMM inner-iteration counts, primal/dual residuals, ρ values, Cholesky
jitter retries — under the stable metric names documented in
``docs/OBSERVABILITY.md``.

Three instrument kinds:

- **counter** — monotone accumulator (``resilience.cholesky_jitter``);
- **gauge** — last-value-wins sample (``cstf.fit``);
- **histogram** — full distribution with ``min/max/mean/pXX`` summaries
  (``admm.inner_iters``).

The registry is checkpointable: :meth:`MetricsRegistry.state_dict` returns
a JSON-serializable image that :meth:`MetricsRegistry.load_state` restores,
so a resumed run continues its cumulative counters and histograms without a
gap (see :mod:`repro.resilience.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Histogram", "MetricsRegistry"]

#: Histogram sample retention cap; past it, count/total/min/max stay exact
#: while percentiles are computed from the retained prefix.
MAX_SAMPLES = 65536

#: Percentiles reported by every histogram summary.
PERCENTILES = (50, 90, 99)


@dataclass
class Histogram:
    """Streaming distribution of one metric.

    Retains raw samples (up to :data:`MAX_SAMPLES`) so percentiles are
    exact for any realistically sized run; count/total/min/max are always
    exact regardless of retention.
    """

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.values) < MAX_SAMPLES:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """JSON summary; an empty histogram is well-defined, never raising:
        an explicit ``count: 0`` with every statistic pinned to 0.0 (the
        ±inf min/max sentinels never leak out)."""
        out = {
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }
        for p in PERCENTILES:
            out[f"p{p}"] = self.percentile(p)
        return out

    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "values": list(self.values),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        h = cls(
            count=int(state["count"]),
            total=float(state["total"]),
            values=[float(v) for v in state.get("values", [])],
        )
        if h.count:
            h.min = float(state["min"])
            h.max = float(state["max"])
        return h


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(amount)

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------ #
    def histogram(self, name: str) -> Histogram | None:
        return self.histograms.get(name)

    def summary(self) -> dict:
        """JSON-serializable snapshot of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.summary() for k, h in sorted(self.histograms.items())},
        }

    # ------------------------------------------------------------------ #
    # Checkpoint integration
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.state_dict() for k, h in self.histograms.items()},
        }

    def load_state(self, state: dict | None) -> None:
        """Replace the registry contents with a checkpointed image."""
        if not state:
            return
        self.counters = {k: float(v) for k, v in state.get("counters", {}).items()}
        self.gauges = {k: float(v) for k, v in state.get("gauges", {}).items()}
        self.histograms = {
            k: Histogram.from_state(v) for k, v in state.get("histograms", {}).items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )
