"""The in-memory telemetry sink: everything one run did, in one object.

A :class:`RunRecord` accumulates the host span tree, the simulated-device
kernel stream, the resilience events, and per-phase simulated aggregates.
It is surfaced as ``CstfResult.telemetry`` so callers can answer "what did
this run do, where did the time go, and what did the resilience layer
touch" without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Span", "KernelEvent", "ResilienceTraceEvent", "RunRecord"]


@dataclass
class Span:
    """One hierarchical host-side span (wall time + simulated attribution).

    ``t0``/``dur`` are host seconds relative to the telemetry session's
    epoch. ``sim`` is present when a simulated-device timeline was active
    during the span: the device seconds/flops/bytes charged while the span
    was open (children included — it is an inclusive attribution, matching
    how wall time nests).
    """

    id: int
    name: str
    parent: int | None
    t0: float
    attrs: dict = field(default_factory=dict)
    dur: float = 0.0
    sim: dict | None = None
    open: bool = True
    worker: dict | None = None
    """Cross-process attribution when the span ran in a pool worker:
    ``{"pid": <OS pid>, "id": <worker slot>}`` (schema version 2)."""


@dataclass(frozen=True)
class KernelEvent:
    """One simulated-device kernel on the run's device timeline.

    ``ts`` is the simulated-time cursor (seconds) at which the kernel
    starts — the simulator models a single in-order device queue, so
    kernels are laid out back-to-back.
    """

    name: str
    phase: str
    ts: float
    dur: float
    flops: float
    bytes: float
    launches: int


@dataclass(frozen=True)
class ResilienceTraceEvent:
    """A resilience-layer action stamped with host time for the trace."""

    kind: str
    phase: str
    ts: float
    mode: int | None = None
    iteration: int | None = None
    detail: str = ""
    data: dict = field(default_factory=dict)


@dataclass
class RunRecord:
    """Everything a telemetry-enabled run recorded."""

    meta: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    kernels: list[KernelEvent] = field(default_factory=list)
    events: list[ResilienceTraceEvent] = field(default_factory=list)

    sim_phase_seconds: dict[str, float] = field(default_factory=dict)
    sim_phase_flops: dict[str, float] = field(default_factory=dict)
    sim_phase_bytes: dict[str, float] = field(default_factory=dict)

    metrics_summary: dict = field(default_factory=dict)
    """Final :meth:`~repro.obs.metrics.MetricsRegistry.summary` snapshot;
    refreshed by :meth:`repro.obs.spans.Telemetry.flush`."""

    # ------------------------------------------------------------------ #
    def add_kernel(self, event: KernelEvent) -> None:
        self.kernels.append(event)
        self.sim_phase_seconds[event.phase] = (
            self.sim_phase_seconds.get(event.phase, 0.0) + event.dur
        )
        self.sim_phase_flops[event.phase] = (
            self.sim_phase_flops.get(event.phase, 0.0) + event.flops
        )
        self.sim_phase_bytes[event.phase] = (
            self.sim_phase_bytes.get(event.phase, 0.0) + event.bytes
        )

    def phase_seconds(self, phase: str) -> float:
        """Simulated seconds attributed to *phase* (0.0 if never seen)."""
        return self.sim_phase_seconds.get(phase, 0.0)

    def sim_total_seconds(self) -> float:
        return sum(self.sim_phase_seconds.values())

    # ------------------------------------------------------------------ #
    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.id]

    def span_tree_lines(self) -> list[str]:
        """Indented one-line-per-span rendering (debugging/report helper)."""
        by_parent: dict[int | None, list[Span]] = {}
        for s in self.spans:
            by_parent.setdefault(s.parent, []).append(s)
        lines: list[str] = []

        def walk(parent: int | None, depth: int) -> None:
            for s in sorted(by_parent.get(parent, []), key=lambda s: s.t0):
                sim = f" sim={s.sim['seconds']:.3e}s" if s.sim else ""
                lines.append(f"{'  ' * depth}{s.name} host={s.dur:.3e}s{sim}")
                walk(s.id, depth + 1)

        walk(None, 0)
        return lines

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Full JSON-serializable export (the JSONL sink's line set)."""
        return {
            "meta": dict(self.meta),
            "spans": [
                {
                    "id": s.id, "parent": s.parent, "name": s.name,
                    "ts": s.t0, "dur": s.dur, "attrs": dict(s.attrs),
                    "sim": dict(s.sim) if s.sim else None,
                    **({"worker": dict(s.worker)} if s.worker else {}),
                }
                for s in self.spans
            ],
            "kernels": [
                {
                    "name": k.name, "phase": k.phase, "ts": k.ts, "dur": k.dur,
                    "flops": k.flops, "bytes": k.bytes, "launches": k.launches,
                }
                for k in self.kernels
            ],
            "events": [
                {
                    "kind": e.kind, "phase": e.phase, "ts": e.ts, "mode": e.mode,
                    "iteration": e.iteration, "detail": e.detail, "data": dict(e.data),
                }
                for e in self.events
            ],
            "metrics": dict(self.metrics_summary),
        }
