"""Streaming JSONL sink and the matching reader.

One JSON object per line, written as telemetry happens — a run killed
mid-flight still leaves an audit trail up to its last flushed line. Line
shapes are the stable contract in :mod:`repro.obs.schema`; the Chrome-trace
exporter (:mod:`repro.obs.chrome`) and ``scripts/check_trace.py`` both
consume this format.

Telemetry is strictly non-fatal: a write failure (ENOSPC, a closed pipe, a
yanked volume) **degrades the sink to a null sink** instead of propagating
into the run. The first failing write closes the file handle best-effort;
every line from then on is counted in :attr:`JsonlSink.dropped` (mirrored
as the ``obs.sink.dropped`` counter by the owning
:class:`~repro.obs.spans.Telemetry`), so the in-memory run record still
shows exactly how much audit trail was lost.
"""

from __future__ import annotations

import errno
import json
from pathlib import Path

__all__ = ["JsonlSink", "read_jsonl"]


class JsonlSink:
    """Append telemetry records to a ``.jsonl`` file (or text file object).

    ``degraded`` flips true after the first write ``OSError``; from then on
    the sink behaves as a null sink and ``dropped`` counts the lines lost.
    ``fail_next_write`` is the chaos-injection arm for the ``disk_full``
    fault: the next :meth:`emit` raises a synthetic ENOSPC internally and
    takes the same degradation path a real full disk would.
    """

    def __init__(self, target):
        if isinstance(target, (str, Path)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.lines_written = 0
        self.dropped = 0
        self.degraded = False
        self.fail_next_write = False

    def emit(self, obj: dict) -> None:
        if self._fh is None:
            if self.degraded:
                self.dropped += 1
            return
        try:
            if self.fail_next_write:
                self.fail_next_write = False
                raise OSError(errno.ENOSPC, "injected disk_full fault")
            self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
            self.lines_written += 1
        except OSError:
            self._degrade()
            self.dropped += 1

    def _degrade(self) -> None:
        """Swap to a null sink: close best-effort, never raise again."""
        fh, self._fh = self._fh, None
        self.degraded = True
        if fh is not None and self._owns:
            try:
                fh.close()
            except OSError:
                pass

    def flush(self) -> None:
        if self._fh is None:
            return
        try:
            self._fh.flush()
        except OSError:
            self._degrade()

    def close(self) -> None:
        if self._fh is None:
            return
        fh, self._fh = self._fh, None
        try:
            fh.flush()
            if self._owns:
                fh.close()
        except OSError:
            self.degraded = True


def read_jsonl(source) -> list[dict]:
    """Parse a telemetry JSONL file into its record dicts (blank-line safe)."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno} is not valid JSON: {exc}") from exc
    return records
