"""Streaming JSONL sink and the matching reader.

One JSON object per line, written as telemetry happens — a run killed
mid-flight still leaves an audit trail up to its last flushed line. Line
shapes are the stable contract in :mod:`repro.obs.schema`; the Chrome-trace
exporter (:mod:`repro.obs.chrome`) and ``scripts/check_trace.py`` both
consume this format.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["JsonlSink", "read_jsonl"]


class JsonlSink:
    """Append telemetry records to a ``.jsonl`` file (or text file object)."""

    def __init__(self, target):
        if isinstance(target, (str, Path)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.lines_written = 0

    def emit(self, obj: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self.lines_written += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        if self._owns:
            self._fh.close()
        self._fh = None


def read_jsonl(source) -> list[dict]:
    """Parse a telemetry JSONL file into its record dicts (blank-line safe)."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno} is not valid JSON: {exc}") from exc
    return records
