"""Cross-process telemetry: capture in workers, ship batches, merge.

The ambient :mod:`contextvars` session in :mod:`repro.obs.spans` does not
cross ``fork`` (and deliberately must not: a forked child inherits the
parent's open JSONL file handle), so spans and metrics produced inside a
:class:`~repro.engine.backends.processes.ProcessBackend` worker would be
silently dropped. This module closes that gap:

- :class:`WorkerTelemetrySession` — a sink-less :class:`Telemetry` the
  worker loop installs as its ambient session. Everything the shard code
  records (``shard_kernel`` spans, plan-store counters, gauges,
  histograms, events) lands in local memory; :meth:`~WorkerTelemetrySession.drain`
  packages the *new* items since the previous drain into a compact
  JSON-serializable batch that rides back over the existing duplex pipe —
  piggybacked on each shard result, plus one final flush at shutdown.

- :func:`merge_worker_batch` — the parent-side merger. Worker spans are
  re-rooted under the dispatching ``shard`` span (ids remapped into the
  parent session, timestamps rebased onto the anchor span) and stamped
  with ``worker={"pid": ..., "id": ...}`` attribution; counters, gauges,
  and histogram samples are merged into the ambient
  :class:`~repro.obs.metrics.MetricsRegistry` so summaries, the doctor,
  and ``repro watch`` see one coherent run regardless of backend.

The shipping path meters itself: each drain records the seconds it spent
packaging, and the merger accumulates ``obs.overhead.worker_s`` /
``obs.overhead.merge_s`` counters (plus batch/span counts) so a run can
prove the telemetry self-cost stays under budget (see OBSERVABILITY.md).
"""

from __future__ import annotations

import os
import time

from repro.obs.spans import Telemetry

__all__ = ["WorkerTelemetrySession", "merge_worker_batch"]


class WorkerTelemetrySession(Telemetry):
    """A local capture session for one pool worker (process *or* thread).

    Identical to :class:`Telemetry` except it never opens a sink (the
    parent owns the JSONL stream) and it knows how to :meth:`drain`
    incrementally: closed spans are shipped exactly once, counters ship
    as deltas, gauges ship last-value-when-changed, histograms ship only
    samples not yet sent. Open spans stay behind until they close, so a
    drain in the middle of a shard never tears a span.
    """

    def __init__(self, worker_id: int = 0, clock=time.perf_counter):
        super().__init__(jsonl_path=None, capture_kernels=True, clock=clock)
        self.worker_id = int(worker_id)
        self._shipped_counters: dict[str, float] = {}
        self._shipped_gauges: dict[str, float] = {}
        self._shipped_hist: dict[str, int] = {}
        self._shipped_events = 0
        self._overhead_unshipped = 0.0

    # ------------------------------------------------------------------ #
    def drain(self) -> dict:
        """Package everything new since the last drain into one batch."""
        t_drain0 = self._clock()
        spans: list[dict] = []
        remaining = []
        for s in self.record.spans:
            if s.open:
                remaining.append(s)
            else:
                spans.append(
                    {"id": s.id, "parent": s.parent, "name": s.name,
                     "ts": s.t0, "dur": s.dur, "attrs": dict(s.attrs)}
                )
        self.record.spans = remaining

        counters: dict[str, float] = {}
        for name, value in self.metrics.counters.items():
            delta = value - self._shipped_counters.get(name, 0.0)
            if delta:
                counters[name] = delta
                self._shipped_counters[name] = value

        gauges: dict[str, float] = {}
        for name, value in self.metrics.gauges.items():
            if self._shipped_gauges.get(name) != value:
                gauges[name] = value
                self._shipped_gauges[name] = value

        hists: dict[str, list[float]] = {}
        for name, hist in self.metrics.histograms.items():
            offset = self._shipped_hist.get(name, 0)
            fresh = hist.values[offset:]
            if fresh:
                hists[name] = list(fresh)
                self._shipped_hist[name] = len(hist.values)

        events = [
            {"kind": e.kind, "phase": e.phase, "mode": e.mode,
             "iteration": e.iteration, "detail": e.detail, "data": dict(e.data)}
            for e in self.record.events[self._shipped_events:]
        ]
        self._shipped_events = len(self.record.events)

        overhead = self._overhead_unshipped + (self._clock() - t_drain0)
        self._overhead_unshipped = 0.0
        return {
            "pid": os.getpid(),
            "worker": self.worker_id,
            "spans": spans,
            "counters": counters,
            "gauges": gauges,
            "hists": hists,
            "events": events,
            "overhead_s": overhead,
        }


def merge_worker_batch(tel, batch: dict | None, *, anchor=None) -> int:
    """Merge one shipped worker batch into the parent session *tel*.

    Spans are re-rooted: their worker-local ids are remapped into the
    parent session, their parent pointers follow the mapping (a span whose
    parent was not shipped — e.g. still open worker-side — re-roots under
    *anchor*), and their timestamps are rebased so the earliest shipped
    span starts at the anchor span's ``t0`` (or at ``tel.now()`` for the
    final anchor-less flush). Metrics merge into the ambient registry as
    ordinary counter/gauge/histogram updates, so they also stream to the
    JSONL sink for live consumers.

    Returns the number of spans merged.
    """
    if batch is None or not getattr(tel, "enabled", False):
        return 0
    t_merge0 = time.perf_counter()
    worker = {"pid": int(batch.get("pid", 0)), "id": int(batch.get("worker", 0))}
    anchor_id = anchor.id if anchor is not None else None

    spans = sorted(batch.get("spans", ()), key=lambda s: s["id"])
    if anchor is not None:
        base = anchor.t0
    else:
        base = tel.now()
    t_min = min((s["ts"] for s in spans), default=0.0)
    mapping: dict[int, int] = {}
    for sp in spans:
        parent = mapping.get(sp.get("parent"), anchor_id)
        merged = tel.add_span(
            sp["name"],
            base + (sp["ts"] - t_min),
            sp["dur"],
            parent=parent,
            worker=worker,
            attrs=sp.get("attrs"),
        )
        mapping[sp["id"]] = merged.id

    for name, delta in batch.get("counters", {}).items():
        tel.counter(name, delta)
    for name, value in batch.get("gauges", {}).items():
        tel.gauge(name, value)
    for name, values in batch.get("hists", {}).items():
        for value in values:
            tel.observe(name, value)
    for ev in batch.get("events", ()):
        tel.event(
            ev["kind"], ev["phase"], mode=ev.get("mode"),
            iteration=ev.get("iteration"), detail=ev.get("detail", ""),
            data=dict(ev.get("data", {}), worker_pid=worker["pid"]),
        )

    # Telemetry self-cost meter: what did shipping itself cost?
    tel.counter("obs.overhead.batches")
    if spans:
        tel.counter("obs.overhead.spans", len(spans))
    tel.counter("obs.overhead.worker_s", float(batch.get("overhead_s", 0.0)))
    tel.counter("obs.overhead.merge_s", time.perf_counter() - t_merge0)
    return len(spans)
