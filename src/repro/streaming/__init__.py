"""Streaming constrained sparse tensor factorization.

An extension reproducing the related-work line the paper builds on (Soh et
al., IPDPS '21 [33]: "High Performance Streaming Tensor Decomposition",
which accelerated ADMM updates for *streaming* sparse factorization with
the same fusion ideas cuADMM later brought to GPUs).

:class:`~repro.streaming.stream.StreamingCstf` factorizes a tensor whose
last mode is time and arrives one slice per step: non-temporal factors are
maintained incrementally from exponentially-weighted MTTKRP/Gram history,
each step appends one row to the temporal factor, and the constraint
updates are warm-started — so a step costs a fraction of refitting from
scratch while tracking drift.
"""

from repro.streaming.stream import StreamingCstf, StreamStep

__all__ = ["StreamingCstf", "StreamStep"]
