"""Incremental (streaming) constrained CP factorization.

Model: the tensor is ``X ∈ R^{I₁×…×I_{N-1}×T}`` with time as the last mode;
slice ``X_t`` (an ``(N-1)``-mode sparse tensor) arrives at step *t*. We
maintain nonnegative factors ``H⁽¹⁾…H⁽ᴺ⁻¹⁾`` and grow the temporal factor
one row per step.

Per step (cf. Soh et al., IPDPS '21):

1. **Temporal row** — solve the rank-R nonnegative least-squares problem
   for the new time row against the fixed spatial factors (closed-form
   ridge solve + projection; a single R×R system).
2. **History accumulation** — exponentially decay the running per-mode
   MTTKRP accumulators and temporal Gram by the forgetting factor γ, then
   add the new slice's contributions (one slice-MTTKRP per mode, weighted
   by the new temporal row).
3. **Factor refresh** — one warm-started constraint update (ADMM/cuADMM/
   MU/HALS) per spatial mode against the accumulated history.

All device work flows through an :class:`~repro.machine.Executor`, so the
streaming path reports the same simulated per-phase costs as the batch
driver, and the speed advantage of streaming over refitting is measurable
in simulated device time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kruskal import KruskalTensor
from repro.core.trace import PHASE_GRAM, PHASE_MTTKRP, PHASE_NORMALIZE, PHASE_UPDATE
from repro.engine.batched import all_mode_krp_rows
from repro.engine.config import resolve_engine
from repro.engine.execute import sharded_segment_accumulate
from repro.kernels.mttkrp_coo import segment_accumulate
from repro.machine.executor import Executor
from repro.obs import resolve_telemetry
from repro.resilience.events import SLICE_SKIPPED, EventLog
from repro.tensor.coo import SparseTensor
from repro.updates.base import get_update
from repro.utils.rng import as_generator
from repro.utils.validation import check_rank, check_shape, require

__all__ = ["StreamingCstf", "StreamStep"]


@dataclass(frozen=True)
class StreamStep:
    """Outcome of ingesting one time slice."""

    step: int
    slice_fit: float
    """Fit of the model's new temporal row against the ingested slice."""

    seconds: float
    """Simulated device seconds spent on this step."""

    skipped: bool = False
    """True when the slice was rejected (all-zero or non-finite) and the
    history accumulators were left untouched; a zero temporal row keeps the
    time axis aligned."""


class StreamingCstf:
    """Streaming nonnegative CP over a time-sliced sparse tensor.

    Parameters
    ----------
    spatial_shape:
        Dimensions of the non-temporal modes.
    rank:
        CP rank.
    update:
        Constraint update for the spatial factors (default cuADMM with few
        inner iterations — warm starts converge fast).
    forgetting:
        γ ∈ (0, 1]: weight decay of history per step (1.0 = never forget).
    refresh_every:
        Refresh spatial factors every k-th step (1 = every step).
    telemetry:
        ``"auto"`` (join an ambient :func:`~repro.obs.telemetry_session`,
        else off), ``"off"``/``"on"``, or a ``Telemetry`` instance.
    engine:
        Host execution engine setting (same values as
        ``CstfConfig.engine``). With ``shards > 1`` the per-slice history
        accumulation runs through the engine's fault-tolerant sharded
        segment reduction (:func:`~repro.engine.execute
        .sharded_segment_accumulate`) — bit-identical to the serial seed
        accumulate, with shard crash/straggler recovery logged on
        ``self.events``.
    """

    def __init__(
        self,
        spatial_shape,
        rank: int,
        update="cuadmm",
        device="a100",
        forgetting: float = 0.98,
        inner_iters: int = 3,
        refresh_every: int = 1,
        seed=0,
        telemetry="auto",
        engine=None,
    ):
        self.spatial_shape = check_shape(spatial_shape, min_modes=2)
        self.rank = check_rank(rank)
        require(0.0 < forgetting <= 1.0, "forgetting must be in (0, 1]")
        require(refresh_every >= 1, "refresh_every must be >= 1")
        self.forgetting = float(forgetting)
        self.refresh_every = int(refresh_every)
        # Remember how the stream was configured so save()/load() can
        # round-trip it; non-string update/device objects can't be named in
        # a checkpoint, so they persist as None (load falls back to its
        # explicit arguments or the historical defaults).
        self._ctor_meta = {
            "update": update if isinstance(update, str) else None,
            "device": device if isinstance(device, str) else None,
            "inner_iters": int(inner_iters),
            "engine": engine if isinstance(engine, str) else None,
        }
        self.engine = resolve_engine(engine)
        self.executor = Executor(device)
        self.update = get_update(
            update,
            **({"inner_iters": inner_iters} if update in ("admm", "cuadmm") else {}),
        )
        rng = as_generator(seed)
        # Spatial factors stay column-normalized throughout (the CP-stream
        # convention): all scale lives in the temporal rows, which keeps the
        # history accumulators and the current Gram matrices on the same
        # scale — without this, alternating refreshes diverge.
        self.factors = []
        for dim in self.spatial_shape:
            f = np.asarray(rng.random((dim, self.rank)), dtype=np.float64)
            self.factors.append(f / np.linalg.norm(f, axis=0))
        self.temporal_rows: list[np.ndarray] = []
        self._state = self.update.init_state(tuple(self.spatial_shape), self.rank)
        # Exponentially weighted history.
        self._hist_mttkrp = [np.zeros((dim, self.rank)) for dim in self.spatial_shape]
        self._hist_temporal_gram = np.zeros((self.rank, self.rank))
        self._grams = [f.T @ f for f in self.factors]
        self._step = 0
        self.events = EventLog()
        """Resilience log: one :class:`ResilienceEvent` per skipped slice."""
        self.telemetry = resolve_telemetry(telemetry)
        self.telemetry.attach_executor(self.executor)
        self.telemetry.attach_events(self.events)

    # ------------------------------------------------------------------ #
    @property
    def steps_ingested(self) -> int:
        return self._step

    def temporal_factor(self) -> np.ndarray:
        """The temporal factor accumulated so far, ``(steps, R)``."""
        if not self.temporal_rows:
            return np.zeros((0, self.rank))
        return np.vstack(self.temporal_rows)

    def model(self) -> KruskalTensor:
        """The current streaming model over all ingested steps."""
        require(self._step > 0, "no slices ingested yet")
        return KruskalTensor(self.factors + [self.temporal_factor()])

    # ------------------------------------------------------------------ #
    def ingest(self, slice_tensor: SparseTensor) -> StreamStep:
        """Ingest the next time slice and refresh the model."""
        tel = self.telemetry
        # Make the stream's own session ambient for the duration of the
        # step so the update methods' `current_telemetry()` lands here even
        # when the stream was built with an explicit Telemetry instance.
        token = tel.push()
        try:
            with tel.span("stream_step", step=self._step, nnz=int(slice_tensor.nnz)):
                out = self._ingest(slice_tensor)
        finally:
            tel.pop(token)
        tel.gauge("stream.slice_fit", out.slice_fit)
        tel.observe("stream.step_seconds", out.seconds)
        if out.skipped:
            tel.counter("stream.slices_skipped")
        return out

    def _ingest(self, slice_tensor: SparseTensor) -> StreamStep:
        require(
            slice_tensor.shape == self.spatial_shape,
            f"slice shape {slice_tensor.shape} != spatial shape {self.spatial_shape}",
        )
        # Robustness gate: an all-zero slice carries no information and a
        # non-finite one would poison every history accumulator (the γ-decay
        # never forgets a NaN). Skip-and-log instead of ingesting; a zero
        # temporal row keeps the time axis aligned with the slice sequence.
        values = np.asarray(slice_tensor.values)
        finite = bool(np.isfinite(values).all())
        if slice_tensor.nnz == 0 or not values.any() or not finite:
            reason = "non-finite values" if not finite else "all-zero slice"
            self.events.record(
                SLICE_SKIPPED, "STREAM", iteration=self._step,
                detail=f"skipped incoming slice at step {self._step}: {reason}",
                nnz=int(slice_tensor.nnz),
            )
            self._step += 1
            self.temporal_rows.append(np.zeros(self.rank, dtype=np.float64))
            return StreamStep(
                step=self._step,
                slice_fit=1.0 if finite else 0.0,
                seconds=0.0,
                skipped=True,
            )
        ex = self.executor
        start = ex.timeline.total_seconds()

        # 1. Temporal row: solve min_{s>=0} ||X_t - sum_r s_r (⊗ factors)||.
        # The batched driver shares one set of factor-row gathers between
        # this full product and the per-mode partials of step 2 (the
        # factors are fixed across all of them — the Jacobi-style pattern),
        # bit-identical to per-mode partial_khatri_rao_rows calls.
        with ex.phase(PHASE_MTTKRP):
            per_mode_rows, rows = all_mode_krp_rows(
                slice_tensor.indices, slice_tensor.values, self.factors,
                include_full=True,
            )
            m_t = rows.sum(axis=0)
            ex.record(
                "stream_temporal_mttkrp",
                flops=slice_tensor.nnz * self.rank * (len(self.spatial_shape) + 1),
                reads=slice_tensor.nnz * (len(self.spatial_shape) + 1 + self.rank),
                writes=self.rank,
                parallel_work=slice_tensor.nnz * self.rank,
                traffic_kind="gather",
            )
        with ex.phase(PHASE_UPDATE):
            s_all = self._grams[0].copy()
            for g in self._grams[1:]:
                s_all = ex.hadamard(s_all, g, name="hadamard_gram")
            ridge = 1e-10 * max(np.trace(s_all), 1.0)
            temporal_row = np.maximum(
                np.linalg.solve(s_all + ridge * np.eye(self.rank), m_t), 0.0
            )
            ex.record(
                "stream_temporal_solve",
                flops=self.rank**3 / 3 + 2.0 * self.rank**2,
                reads=self.rank * self.rank,
                writes=self.rank,
                parallel_work=self.rank * self.rank,
                serial_steps=self.rank,
                compute_efficiency=ex.device.trsm_efficiency,
                utilization_exempt=True,
            )
        self.temporal_rows.append(temporal_row)

        # 2. History accumulation with forgetting.
        gamma = self.forgetting
        with ex.phase(PHASE_MTTKRP):
            for mode, dim in enumerate(self.spatial_shape):
                contrib = per_mode_rows[mode] * temporal_row[None, :]
                if self.engine is not None and self.engine.shards > 1:
                    acc = sharded_segment_accumulate(
                        contrib, slice_tensor.indices[:, mode], dim,
                        self.engine, events=self.events,
                    )
                else:
                    acc = segment_accumulate(
                        contrib, slice_tensor.indices[:, mode], dim
                    )
                self._hist_mttkrp[mode] = gamma * self._hist_mttkrp[mode] + acc
                ex.record(
                    "stream_slice_mttkrp",
                    flops=slice_tensor.nnz * self.rank * (len(self.spatial_shape) + 1),
                    reads=slice_tensor.nnz * (len(self.spatial_shape) + 1 + self.rank)
                    + dim * self.rank,
                    writes=dim * self.rank,
                    parallel_work=slice_tensor.nnz * self.rank,
                    traffic_kind="gather",
                )
        self._hist_temporal_gram = gamma * self._hist_temporal_gram + np.outer(
            temporal_row, temporal_row
        )

        # 3. Warm-started spatial factor refresh.
        self._step += 1
        if self._step % self.refresh_every == 0:
            for mode in range(len(self.spatial_shape)):
                others = [g for m, g in enumerate(self._grams) if m != mode]
                with ex.phase(PHASE_GRAM):
                    s_mat = self._hist_temporal_gram.copy()
                    for g in others:
                        s_mat = ex.hadamard(s_mat, g, name="hadamard_gram")
                with ex.phase(PHASE_UPDATE):
                    new_h = self.update.update(
                        ex, mode, self._hist_mttkrp[mode], s_mat, self.factors[mode],
                        self._state,
                    )
                with ex.phase(PHASE_NORMALIZE):
                    # Re-normalize columns; the discarded norms are re-absorbed
                    # by the next temporal-row solves, which carry all scale.
                    new_h = np.maximum(new_h, 0.0)
                    new_h, _ = ex.normalize_columns(new_h, kind="2")
                    # Revive any dead column so the Gram stays full-rank.
                    dead = ~new_h.any(axis=0)
                    if dead.any():
                        new_h[:, dead] = 1.0 / np.sqrt(new_h.shape[0])
                self.factors[mode] = new_h
                with ex.phase(PHASE_GRAM):
                    self._grams[mode] = ex.gram(new_h)

        fit = self._slice_fit(slice_tensor, temporal_row)
        return StreamStep(
            step=self._step,
            slice_fit=fit,
            seconds=ex.timeline.total_seconds() - start,
        )

    # ------------------------------------------------------------------ #
    def _slice_fit(self, slice_tensor: SparseTensor, temporal_row: np.ndarray) -> float:
        """Fit of ``Σ_r s_r · (⊗ factors_r)`` against the ingested slice."""
        norm = slice_tensor.norm()
        if norm == 0.0:
            return 1.0
        model = KruskalTensor(self.factors, temporal_row)
        return 1.0 - float(np.sqrt(model.residual_norm_sq(slice_tensor))) / norm

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def save(self, target) -> None:
        """Checkpoint the stream state to an ``.npz`` archive.

        Captures the spatial factors, temporal rows, history accumulators
        and step counter — everything needed to resume ingestion after a
        restart. The executor's timeline is *not* persisted (it describes
        the past process, not the model).
        """
        import json

        arrays = {
            "meta_json": np.array(
                json.dumps(
                    {
                        "format_version": 1,
                        "spatial_shape": list(self.spatial_shape),
                        "rank": self.rank,
                        "forgetting": self.forgetting,
                        "refresh_every": self.refresh_every,
                        "step": self._step,
                        # Run configuration, so load() resumes with the
                        # same update rule / device / inner iterations
                        # instead of silently reverting to defaults.
                        "update": self._ctor_meta["update"],
                        "device": self._ctor_meta["device"],
                        "inner_iters": self._ctor_meta["inner_iters"],
                        "engine": self._ctor_meta["engine"],
                    }
                )
            ),
            "temporal": self.temporal_factor(),
            "hist_temporal_gram": self._hist_temporal_gram,
        }
        for n, f in enumerate(self.factors):
            arrays[f"factor_{n}"] = f
            arrays[f"hist_mttkrp_{n}"] = self._hist_mttkrp[n]
        from pathlib import Path

        if isinstance(target, (str, Path)):
            with open(target, "wb") as fh:
                np.savez_compressed(fh, **arrays)
        else:
            np.savez_compressed(target, **arrays)

    @classmethod
    def load(cls, source, update=None, device=None, inner_iters: int | None = None,
             engine=None) -> "StreamingCstf":
        """Restore a checkpointed stream (fresh executor and update state).

        The saved run's configuration — update rule, device, and inner
        iterations — is restored from the checkpoint; pass an explicit
        argument only to deliberately override it. Checkpoints written
        before these fields existed (or saved from streams configured with
        non-string update/device objects) fall back to the historical
        defaults (``"cuadmm"``, ``"a100"``, 3).
        """
        import json

        with np.load(source, allow_pickle=False) as data:
            require("meta_json" in data, "not a StreamingCstf checkpoint")
            meta = json.loads(str(data["meta_json"]))
            require(meta.get("format_version") == 1, "unsupported checkpoint version")
            if update is None:
                update = meta.get("update") or "cuadmm"
            if device is None:
                device = meta.get("device") or "a100"
            if inner_iters is None:
                inner_iters = int(meta.get("inner_iters") or 3)
            if engine is None:
                engine = meta.get("engine")
            stream = cls(
                tuple(meta["spatial_shape"]),
                rank=int(meta["rank"]),
                update=update,
                device=device,
                forgetting=float(meta["forgetting"]),
                inner_iters=inner_iters,
                refresh_every=int(meta["refresh_every"]),
                engine=engine,
            )
            stream.factors = [
                np.array(data[f"factor_{n}"]) for n in range(len(meta["spatial_shape"]))
            ]
            stream._grams = [f.T @ f for f in stream.factors]
            stream._hist_mttkrp = [
                np.array(data[f"hist_mttkrp_{n}"])
                for n in range(len(meta["spatial_shape"]))
            ]
            stream._hist_temporal_gram = np.array(data["hist_temporal_gram"])
            temporal = np.array(data["temporal"])
            stream.temporal_rows = [temporal[t] for t in range(temporal.shape[0])]
            stream._step = int(meta["step"])
        return stream
