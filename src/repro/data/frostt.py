"""The Table 2 dataset registry: FROSTT tensors used by the paper.

Each entry records the published dimensions and nonzero counts (FROSTT
metadata, matching Table 2 of the paper) plus the paper's factor-matrix size
group from Figure 4 (small / medium / large). Two consumers:

- ``stats()`` — a :class:`~repro.machine.analytic.TensorStats` at **paper
  scale**, feeding the analytic cost evaluation of Figures 5–8.
- ``load_scaled()`` — a reproducible synthetic analogue at **test scale**:
  mode lengths scaled geometrically (preserving which modes are long), with
  skewed index histograms and log-normal values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.analytic import TensorStats
from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import scaled_frostt_analogue
from repro.utils.validation import require

__all__ = ["FrosttDataset", "FROSTT_TABLE2", "get_dataset", "dataset_names"]


@dataclass(frozen=True)
class FrosttDataset:
    """Metadata of one FROSTT tensor, as published (and as in Table 2)."""

    name: str
    dims: tuple[int, ...]
    nnz: int
    group: str
    """Factor-matrix size group from Figure 4: small / medium / large."""

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def density(self) -> float:
        space = 1.0
        for d in self.dims:
            space *= float(d)
        return self.nnz / space

    @property
    def factor_rows(self) -> int:
        """Total factor-matrix rows ΣIₙ — the paper's 'factor matrix size'
        axis (drives the UPDATE phase cost and the GPU speedup)."""
        return sum(self.dims)

    def stats(self, bit_budget: int = 48) -> TensorStats:
        """Paper-scale statistics for the analytic cost model."""
        return TensorStats.from_dims(self.dims, self.nnz, bit_budget=bit_budget)

    def scaled_shape(self, max_dim: int = 2000) -> tuple[int, ...]:
        """Geometrically scaled dimensions: ``dᵇ`` with ``b`` chosen so the
        longest mode lands at *max_dim*. Preserves the long/short mode
        ordering that the paper's per-mode analysis (Fig 4) relies on."""
        require(max_dim >= 4, "max_dim too small")
        longest = max(self.dims)
        if longest <= max_dim:
            return self.dims
        beta = math.log(max_dim) / math.log(longest)
        return tuple(max(2, round(d**beta)) for d in self.dims)

    def scaled_nnz(self, shape: tuple[int, ...], target_nnz: int = 50_000) -> int:
        """Nonzero count for the analogue: the target, capped so the tensor
        stays sparse (≤ 30 % of the scaled index space) and at the paper's
        own count."""
        space = 1.0
        for d in shape:
            space *= float(d)
        return int(max(16, min(target_nnz, self.nnz, 0.3 * space)))

    def load_scaled(
        self, seed=0, max_dim: int = 2000, target_nnz: int = 50_000
    ) -> SparseTensor:
        """Generate the scaled synthetic analogue (deterministic per seed)."""
        shape = self.scaled_shape(max_dim=max_dim)
        nnz = self.scaled_nnz(shape, target_nnz=target_nnz)
        return scaled_frostt_analogue(shape, nnz, seed=seed)


#: Table 2 of the paper, ordered by nonzero count. Dimensions and counts are
#: the published FROSTT values the table rounds from.
FROSTT_TABLE2: tuple[FrosttDataset, ...] = (
    FrosttDataset("nips", (2482, 2862, 14036, 17), 3_101_609, "small"),
    FrosttDataset("uber", (183, 24, 1140, 1717), 3_309_490, "small"),
    FrosttDataset("chicago", (6186, 24, 77, 32), 5_330_673, "small"),
    FrosttDataset("vast", (165_427, 11_374, 2), 26_021_945, "medium"),
    FrosttDataset("enron", (6066, 5699, 244_268, 1176), 54_202_099, "medium"),
    FrosttDataset("nell2", (12_092, 9184, 28_818), 76_879_419, "medium"),
    FrosttDataset("flickr", (319_686, 28_153_045, 1_607_191, 731), 112_890_310, "large"),
    FrosttDataset("delicious", (532_924, 17_262_471, 2_480_308, 1443), 140_126_181, "large"),
    FrosttDataset("nell1", (2_902_330, 2_143_368, 25_495_389), 143_599_552, "large"),
    FrosttDataset("amazon", (4_821_207, 1_774_269, 1_805_187), 1_741_809_018, "large"),
)

_BY_NAME = {d.name: d for d in FROSTT_TABLE2}
_ALIASES = {"deli": "delicious", "nell-1": "nell1", "nell-2": "nell2"}


def dataset_names() -> list[str]:
    """Registry order (Table 2 order: ascending nnz)."""
    return [d.name for d in FROSTT_TABLE2]


def get_dataset(name: str) -> FrosttDataset:
    """Look a dataset up by (case-insensitive) name or alias."""
    key = str(name).lower()
    key = _ALIASES.get(key, key)
    if key not in _BY_NAME:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    return _BY_NAME[key]
