"""FROSTT ``.tns`` text format: one nonzero per line, 1-indexed coordinates
followed by the value, ``#`` comments allowed.

Example (a 2×2×2 tensor with two nonzeros)::

    # my tensor
    1 1 1 1.5
    2 2 2 -3.0

Shapes are inferred from the coordinate maxima unless given explicitly,
matching common FROSTT tooling.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.validation import require

__all__ = ["read_tns", "write_tns"]


def read_tns(source, shape=None) -> SparseTensor:
    """Parse a ``.tns`` file (path, string content, or file object)."""
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        text = Path(source).read_text()
    elif isinstance(source, str):
        text = source
    else:
        text = source.read()

    rows = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        parts = stripped.split()
        require(len(parts) >= 2, f"line {lineno}: need at least one index and a value")
        rows.append(parts)

    require(bool(rows), "no nonzeros found in .tns input")
    ndim = len(rows[0]) - 1
    for lineno, parts in enumerate(rows, start=1):
        require(
            len(parts) == ndim + 1,
            f"inconsistent column count at data row {lineno} "
            f"({len(parts)} vs {ndim + 1})",
        )

    indices = np.array([[int(p) for p in parts[:-1]] for parts in rows], dtype=np.int64)
    values = np.array([float(parts[-1]) for parts in rows], dtype=np.float64)
    require(bool((indices >= 1).all()), ".tns coordinates are 1-indexed; found index < 1")
    indices -= 1  # to 0-indexed
    if shape is None:
        shape = tuple(int(m) + 1 for m in indices.max(axis=0))
    return SparseTensor(indices, values, shape)


def write_tns(tensor: SparseTensor, target) -> None:
    """Write *tensor* in ``.tns`` format (path or file object)."""
    buf = io.StringIO()
    dims = "x".join(str(d) for d in tensor.shape)
    buf.write(f"# {tensor.ndim}-mode tensor, shape {dims}, nnz {tensor.nnz}\n")
    for coords, value in zip(tensor.indices, tensor.values):
        coord_str = " ".join(str(int(c) + 1) for c in coords)
        buf.write(f"{coord_str} {float(value)!r}\n")
    if isinstance(target, (str, Path)):
        Path(target).write_text(buf.getvalue())
    else:
        target.write(buf.getvalue())
