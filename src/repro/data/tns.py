"""FROSTT ``.tns`` text format: one nonzero per line, 1-indexed coordinates
followed by the value, ``#`` comments allowed.

Example (a 2×2×2 tensor with two nonzeros)::

    # my tensor
    1 1 1 1.5
    2 2 2 -3.0

Shapes are inferred from the coordinate maxima unless given explicitly,
matching common FROSTT tooling.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.utils.validation import require

__all__ = ["read_tns", "write_tns"]


def read_tns(source, shape=None, *, dedupe: bool = False) -> SparseTensor:
    """Parse a ``.tns`` file (path, string content, or file object).

    Every malformed line is reported with its 1-based line number — an
    unparsable coordinate or value never surfaces as a bare
    ``ValueError: could not convert string to float``. Non-finite values
    (``nan``/``inf``) are rejected outright: they would silently poison
    every Gram matrix and fit downstream.

    Duplicate coordinates are rejected by default — in a file exported by
    well-behaved tooling they almost always indicate a corrupted or
    double-concatenated dump. Pass ``dedupe=True`` to opt into the
    coalescing (values summed) semantics instead.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        text = Path(source).read_text()
    elif isinstance(source, str):
        text = source
    else:
        text = source.read()

    rows = []  # (source line number, tokens)
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        parts = stripped.split()
        require(len(parts) >= 2, f"line {lineno}: need at least one index and a value")
        rows.append((lineno, parts))

    require(bool(rows), "no nonzeros found in .tns input")
    ndim = len(rows[0][1]) - 1
    index_rows = []
    value_list = []
    for lineno, parts in rows:
        require(
            len(parts) == ndim + 1,
            f"line {lineno}: inconsistent column count "
            f"({len(parts)} vs {ndim + 1})",
        )
        try:
            coords = [int(p) for p in parts[:-1]]
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed coordinate in {parts[:-1]!r} "
                f"(coordinates must be integers)"
            ) from None
        try:
            value = float(parts[-1])
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value {parts[-1]!r} "
                f"(must be a real number)"
            ) from None
        require(
            bool(np.isfinite(value)),
            f"line {lineno}: non-finite value {parts[-1]!r} "
            f"(NaN/inf would silently poison Gram matrices and fits)",
        )
        require(
            all(c >= 1 for c in coords),
            f"line {lineno}: .tns coordinates are 1-indexed; found index < 1",
        )
        index_rows.append(coords)
        value_list.append(value)

    indices = np.array(index_rows, dtype=np.int64)
    values = np.array(value_list, dtype=np.float64)
    if not dedupe:
        _reject_duplicates(indices, rows)
    indices -= 1  # to 0-indexed
    if shape is None:
        shape = tuple(int(m) + 1 for m in indices.max(axis=0))
    return SparseTensor(indices, values, shape)


def _reject_duplicates(indices: np.ndarray, rows) -> None:
    """Raise with the offending line numbers if any coordinate repeats."""
    _, first, counts = np.unique(
        indices, axis=0, return_index=True, return_counts=True
    )
    if not (counts > 1).any():
        return
    dup_row = int(first[counts > 1][0])
    coord = indices[dup_row]
    offenders = [
        rows[r][0] for r in range(len(rows)) if np.array_equal(indices[r], coord)
    ]
    raise ValueError(
        f"duplicate coordinate {tuple(int(c) for c in coord)} on lines "
        f"{offenders} — pass dedupe=True to coalesce duplicates "
        f"(values summed) instead"
    )


def write_tns(tensor: SparseTensor, target) -> None:
    """Write *tensor* in ``.tns`` format (path or file object)."""
    buf = io.StringIO()
    dims = "x".join(str(d) for d in tensor.shape)
    buf.write(f"# {tensor.ndim}-mode tensor, shape {dims}, nnz {tensor.nnz}\n")
    for coords, value in zip(tensor.indices, tensor.values):
        coord_str = " ".join(str(int(c) + 1) for c in coords)
        buf.write(f"{coord_str} {float(value)!r}\n")
    if isinstance(target, (str, Path)):
        Path(target).write_text(buf.getvalue())
    else:
        target.write(buf.getvalue())
