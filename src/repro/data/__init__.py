"""Datasets: the Table 2 FROSTT registry and the ``.tns`` text format.

The paper evaluates on 10 real-world sparse tensors from FROSTT (Smith et
al.). Those files are multi-gigabyte downloads; :mod:`repro.data.frostt`
registers their exact published metadata (dimensions, nonzeros, density —
the inputs the analytic cost model needs) and generates *scaled synthetic
analogues* for concrete runs (same mode-length ordering and skewed-index
character at test scale). :mod:`repro.data.tns` reads and writes the FROSTT
``.tns`` interchange format so real files drop in when available.
"""

from repro.data.frostt import FrosttDataset, FROSTT_TABLE2, get_dataset, dataset_names
from repro.data.tns import read_tns, write_tns

__all__ = [
    "FrosttDataset",
    "FROSTT_TABLE2",
    "get_dataset",
    "dataset_names",
    "read_tns",
    "write_tns",
]
