"""Persistence of factorization results.

Saves a :class:`~repro.core.kruskal.KruskalTensor` (plus optional metadata
such as the fit trace and configuration) to a single ``.npz`` archive, and
loads it back. The format is plain NumPy arrays — no pickling — so archives
are portable and safe to share.

Archive layout::

    weights            (R,)            float64
    factor_0..N-1      (I_n, R)        float64
    meta_json          ()              unicode  (JSON-encoded metadata dict)
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.kruskal import KruskalTensor
from repro.utils.validation import require

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def save_model(model: KruskalTensor, target, metadata: dict | None = None) -> None:
    """Write *model* (and JSON-serializable *metadata*) to ``target``.

    ``target`` may be a path or a binary file object. Metadata values must
    be JSON-serializable (numbers, strings, lists, dicts).
    """
    require(isinstance(model, KruskalTensor), "model must be a KruskalTensor")
    meta = dict(metadata or {})
    meta["format_version"] = _FORMAT_VERSION
    meta["ndim"] = model.ndim
    meta["rank"] = model.rank
    arrays = {
        "weights": model.weights,
        "meta_json": np.array(json.dumps(meta)),
    }
    for n, factor in enumerate(model.factors):
        arrays[f"factor_{n}"] = factor
    if isinstance(target, (str, Path)):
        with open(target, "wb") as fh:
            np.savez_compressed(fh, **arrays)
    else:
        np.savez_compressed(target, **arrays)


def load_model(source) -> tuple[KruskalTensor, dict]:
    """Read a saved model; returns ``(model, metadata)``."""
    with np.load(source, allow_pickle=False) as data:
        require("meta_json" in data, "not a cSTF-Py model archive (meta_json missing)")
        meta = json.loads(str(data["meta_json"]))
        require(
            meta.get("format_version") == _FORMAT_VERSION,
            f"unsupported archive version {meta.get('format_version')!r}",
        )
        ndim = int(meta["ndim"])
        factors = [data[f"factor_{n}"] for n in range(ndim)]
        weights = data["weights"]
    model = KruskalTensor(factors, weights)
    require(model.rank == int(meta["rank"]), "archive rank metadata disagrees with factors")
    return model, meta
