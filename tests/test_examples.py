"""Examples: compile-check all, execute the fast ones end to end."""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


class TestCompile:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_at_least_five_examples(self):
        assert len(EXAMPLES) >= 5


def _run_example(name: str, timeout: int = 240) -> str:
    path = Path(__file__).parent.parent / "examples" / name
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExecution:
    def test_quickstart(self):
        out = _run_example("quickstart.py")
        assert "factor match score" in out
        assert "per-iteration" in out

    def test_anomaly_detection_detects(self):
        out = _run_example("anomaly_detection.py")
        assert "detection: SUCCESS" in out

    def test_custom_constraint(self):
        out = _run_example("custom_constraint.py")
        assert "custom cap" in out
        assert "nonneg + L1" in out

    def test_telemetry_tour(self):
        out = _run_example("telemetry_tour.py")
        assert "schema OK" in out
        assert "telemetry tour complete" in out
