"""Deeper algebraic property tests for MTTKRP and the Gram machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.gram import gram_chain
from repro.kernels.mttkrp import khatri_rao, mttkrp_dense
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import random_sparse


def _problem(seed, rank=3, shape=(10, 8, 6)):
    t = random_sparse(shape, nnz=50, seed=seed, value_dist="normal", nonneg=False)
    rng = np.random.default_rng(seed)
    factors = [rng.random((d, rank)) for d in shape]
    return t, factors


class TestAdditivity:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_additive_in_tensor(self, seed):
        """M(X + Y) = M(X) + M(Y) for tensors on the same coordinates."""
        t, factors = _problem(seed)
        doubled = SparseTensor(t.indices, 2.0 * t.values, t.shape)
        summed = SparseTensor(
            np.vstack([t.indices, t.indices]),
            np.concatenate([t.values, t.values]),
            t.shape,
        )  # duplicates coalesce to 2x
        assert summed.allclose(doubled)
        assert np.allclose(
            mttkrp_coo(summed, factors, 0), 2.0 * mttkrp_coo(t, factors, 0)
        )

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_linear_in_factor(self, seed):
        """MTTKRP is linear in each non-target factor."""
        t, factors = _problem(seed)
        base = mttkrp_coo(t, factors, 0)
        scaled = list(factors)
        scaled[1] = 3.0 * factors[1]
        assert np.allclose(mttkrp_coo(t, scaled, 0), 3.0 * base)


class TestPermutationInvariance:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_mode_permutation(self, seed):
        """Permuting tensor modes and factors together permutes nothing in
        the result for the tracked mode."""
        t, factors = _problem(seed)
        perm = [2, 0, 1]
        t_perm = t.permute_modes(perm)
        f_perm = [factors[p] for p in perm]
        # Mode 0 of the permuted problem is mode 2 of the original.
        assert np.allclose(
            mttkrp_coo(t_perm, f_perm, 0), mttkrp_coo(t, factors, 2)
        )


class TestNormalEquationsIdentity:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_gram_chain_is_krp_gram(self, seed):
        """The CP normal-equations identity the whole AO loop rests on:
        ``KRPᵀKRP = ⊛_{m≠n} H⁽ᵐ⁾ᵀH⁽ᵐ⁾``."""
        _, factors = _problem(seed)
        krp = khatri_rao([factors[1], factors[2]])
        assert np.allclose(krp.T @ krp, gram_chain(factors, skip=0))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_exact_solve_reconstructs_dense_ls(self, seed):
        """Solving the normal equations with MTTKRP equals the dense
        least-squares solution for the unfolding."""
        t, factors = _problem(seed)
        m = mttkrp_coo(t, factors, 0)
        s = gram_chain(factors, skip=0)
        h_star = np.linalg.solve(s + 1e-12 * np.eye(s.shape[0]), m.T).T
        # Dense check: X_(0) ≈ H* · KRPᵀ in the least-squares sense — the
        # residual must be orthogonal to the KRP column space.
        from repro.tensor.dense import matricize

        krp = khatri_rao([factors[1], factors[2]])
        residual = matricize(t.to_dense(), 0) - h_star @ krp.T
        assert np.allclose(residual @ krp, 0.0, atol=1e-8)


class TestFitIdentity:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_sparse_fit_equals_dense_fit(self, seed):
        """The sparse fit expansion must agree with densified computation."""
        from repro.core.kruskal import KruskalTensor

        t, factors = _problem(seed)
        model = KruskalTensor(factors)
        dense_residual = np.linalg.norm(t.to_dense() - model.full()) ** 2
        assert model.residual_norm_sq(t) == pytest.approx(dense_residual, rel=1e-8, abs=1e-8)

    def test_mttkrp_is_gradient_of_inner_product(self):
        """⟨X, X̂⟩ differentiated in H⁽⁰⁾ is exactly the MTTKRP output —
        finite-difference checked."""
        t, factors = _problem(123)
        m = mttkrp_coo(t, factors, 0)
        from repro.core.kruskal import KruskalTensor

        eps = 1e-6
        for (i, r) in [(0, 0), (3, 2), (9, 1)]:
            bumped = [f.copy() for f in factors]
            bumped[0][i, r] += eps
            delta = (
                KruskalTensor(bumped).inner_with_sparse(t)
                - KruskalTensor(factors).inner_with_sparse(t)
            ) / eps
            assert delta == pytest.approx(m[i, r], rel=1e-4, abs=1e-6)
