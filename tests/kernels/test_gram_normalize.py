"""Tests for Gram chains and factor normalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.gram import gram, gram_chain, hadamard_of_grams
from repro.kernels.normalize import normalize_factor


class TestGram:
    def test_gram_is_hth(self):
        h = np.random.default_rng(0).random((10, 4))
        assert np.allclose(gram(h), h.T @ h)

    def test_gram_symmetric_psd(self):
        h = np.random.default_rng(1).random((12, 5)) - 0.5
        g = gram(h)
        assert np.allclose(g, g.T)
        assert (np.linalg.eigvalsh(g) > -1e-12).all()

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            gram(np.ones(4))


class TestGramChain:
    def test_chain_matches_manual(self):
        rng = np.random.default_rng(2)
        factors = [rng.random((d, 3)) for d in (7, 6, 5)]
        grams = [gram(f) for f in factors]
        assert np.allclose(hadamard_of_grams(grams), grams[0] * grams[1] * grams[2])

    def test_skip_excludes_one(self):
        rng = np.random.default_rng(3)
        factors = [rng.random((d, 3)) for d in (7, 6, 5)]
        grams = [gram(f) for f in factors]
        assert np.allclose(hadamard_of_grams(grams, skip=1), grams[0] * grams[2])

    def test_gram_chain_equals_hadamard_of_grams(self):
        rng = np.random.default_rng(4)
        factors = [rng.random((d, 4)) for d in (5, 6, 7, 8)]
        for skip in (None, 0, 3):
            assert np.allclose(
                gram_chain(factors, skip=skip),
                hadamard_of_grams([gram(f) for f in factors], skip=skip),
            )

    def test_cannot_skip_only_gram(self):
        with pytest.raises(ValueError):
            hadamard_of_grams([np.eye(2)], skip=0)

    def test_input_not_mutated(self):
        grams = [np.full((2, 2), 2.0), np.full((2, 2), 3.0)]
        hadamard_of_grams(grams)
        assert np.allclose(grams[0], 2.0)


class TestNormalize:
    def test_two_norm_columns_unit(self):
        h = np.random.default_rng(5).random((20, 4)) + 0.1
        normed, lam = normalize_factor(h, kind="2")
        assert np.allclose(np.linalg.norm(normed, axis=0), 1.0)
        assert np.allclose(normed * lam, h)

    def test_max_norm_never_scales_up(self):
        h = np.full((5, 2), 0.5)
        normed, lam = normalize_factor(h, kind="max")
        # Max norms below 1 are floored at 1 (PLANC convention).
        assert np.allclose(lam, 1.0)
        assert np.allclose(normed, h)

    def test_max_norm_scales_down_large_columns(self):
        h = np.array([[4.0, 0.5], [2.0, 0.25]])
        normed, lam = normalize_factor(h, kind="max")
        assert lam[0] == pytest.approx(4.0)
        assert lam[1] == pytest.approx(1.0)
        assert normed[:, 0].max() == pytest.approx(1.0)

    def test_zero_column_safe(self):
        h = np.zeros((4, 2))
        h[:, 1] = 3.0
        normed, lam = normalize_factor(h, kind="2")
        assert lam[0] == 1.0
        assert not np.isnan(normed).any()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            normalize_factor(np.ones((2, 2)), kind="1")

    @given(st.integers(min_value=0, max_value=2**31), st.sampled_from(["2", "max"]))
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_invariant(self, seed, kind):
        """Normalization never changes the product ``normed · diag(λ)``."""
        h = np.random.default_rng(seed).random((9, 3)) * 5.0
        normed, lam = normalize_factor(h, kind=kind)
        assert np.allclose(normed * lam, h)
