"""MTTKRP kernels: every format must equal the dense oracle, plus algebraic
property tests (linearity, zero tensors, dispatch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.mttkrp import khatri_rao, mttkrp, mttkrp_dense
from repro.kernels.mttkrp_alto import mttkrp_alto
from repro.kernels.mttkrp_blco import mttkrp_blco
from repro.kernels.mttkrp_coo import mttkrp_coo, segment_accumulate
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.coo import SparseTensor
from repro.tensor.csf import CsfTensor
from repro.tensor.dense import DenseTensor
from repro.tensor.synthetic import random_sparse


class TestKhatriRao:
    def test_shape(self):
        a = np.ones((3, 4))
        b = np.ones((5, 4))
        assert khatri_rao([a, b]).shape == (15, 4)

    def test_columnwise_kronecker(self):
        rng = np.random.default_rng(0)
        a, b = rng.random((3, 2)), rng.random((4, 2))
        k = khatri_rao([a, b])
        for col in range(2):
            assert np.allclose(k[:, col], np.kron(a[:, col], b[:, col]))

    def test_leftmost_slowest(self):
        a = np.array([[1.0], [2.0]])
        b = np.array([[10.0], [20.0], [30.0]])
        assert np.allclose(khatri_rao([a, b]).ravel(), [10, 20, 30, 20, 40, 60])

    def test_single_matrix_identity(self):
        a = np.random.default_rng(1).random((4, 3))
        assert np.array_equal(khatri_rao([a]), a)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            khatri_rao([np.ones((2, 3)), np.ones((2, 4))])


class TestAgainstDenseOracle:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_all_formats_4mode(self, small4, factors4, mode):
        ref = mttkrp_dense(small4.to_dense(), factors4, mode)
        assert np.allclose(mttkrp_coo(small4, factors4, mode), ref)
        assert np.allclose(mttkrp_coo(small4, factors4, mode, strategy="atomic"), ref)
        assert np.allclose(
            mttkrp_csf(CsfTensor.from_coo(small4, root_mode=mode), factors4, mode), ref
        )
        assert np.allclose(mttkrp_alto(AltoTensor.from_coo(small4), factors4, mode), ref)
        assert np.allclose(
            mttkrp_blco(BlcoTensor.from_coo(small4, bit_budget=8), factors4, mode), ref
        )

    def test_blco_multi_block_agrees(self, small4, factors4):
        tight = BlcoTensor.from_coo(small4, bit_budget=5)
        assert tight.num_blocks > 1
        ref = mttkrp_dense(small4.to_dense(), factors4, 0)
        assert np.allclose(mttkrp_blco(tight, factors4, 0), ref)

    def test_csf_wrong_root_reroots(self, small3, factors3):
        c = CsfTensor.from_coo(small3, root_mode=0)
        ref = mttkrp_dense(small3.to_dense(), factors3, 2)
        assert np.allclose(mttkrp_csf(c, factors3, 2), ref)

    def test_empty_tensor_gives_zeros(self, factors3):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), (17, 13, 9))
        for fn, arg in (
            (mttkrp_coo, t),
            (mttkrp_alto, AltoTensor.from_coo(t)),
            (mttkrp_blco, BlcoTensor.from_coo(t)),
            (mttkrp_csf, CsfTensor.from_coo(t)),
        ):
            out = fn(arg, factors3, 0)
            assert out.shape == (17, 5)
            assert not out.any()


class TestDispatch:
    def test_dispatch_matches_direct(self, small3, factors3):
        ref = mttkrp_coo(small3, factors3, 1)
        assert np.allclose(mttkrp(small3, factors3, 1), ref)
        assert np.allclose(mttkrp(AltoTensor.from_coo(small3), factors3, 1), ref)
        assert np.allclose(mttkrp(BlcoTensor.from_coo(small3), factors3, 1), ref)
        assert np.allclose(mttkrp(CsfTensor.from_coo(small3, 1), factors3, 1), ref)
        assert np.allclose(mttkrp(DenseTensor(small3.to_dense()), factors3, 1), ref)
        assert np.allclose(mttkrp(small3.to_dense(), factors3, 1), ref)

    def test_unknown_type_rejected(self, factors3):
        with pytest.raises(TypeError, match="no MTTKRP kernel"):
            mttkrp("not a tensor", factors3, 0)

    def test_factor_shape_validated(self, small3, factors3):
        bad = list(factors3)
        bad[1] = np.ones((99, 5))
        with pytest.raises(ValueError, match="rows"):
            mttkrp_coo(small3, bad, 0)

    def test_rank_mismatch_validated(self, small3, factors3):
        bad = list(factors3)
        bad[2] = np.ones((9, 7))
        with pytest.raises(ValueError, match="rank"):
            mttkrp_coo(small3, bad, 0)

    def test_unknown_strategy_rejected(self, small3, factors3):
        with pytest.raises(ValueError, match="strategy"):
            mttkrp_coo(small3, factors3, 0, strategy="magic")


class TestSegmentAccumulate:
    def test_matches_add_at(self):
        rng = np.random.default_rng(2)
        rows = rng.random((50, 4))
        targets = rng.integers(0, 8, 50)
        expected = np.zeros((8, 4))
        np.add.at(expected, targets, rows)
        assert np.allclose(segment_accumulate(rows, targets, 8), expected)

    def test_empty(self):
        out = segment_accumulate(np.zeros((0, 3)), np.zeros(0, dtype=np.int64), 5)
        assert out.shape == (5, 3)
        assert not out.any()


class TestAlgebraicProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_values(self, seed, rank):
        """MTTKRP is linear in the tensor values: M(αX) = αM(X)."""
        t = random_sparse((9, 8, 7), nnz=40, seed=seed)
        rng = np.random.default_rng(seed)
        factors = [rng.random((d, rank)) for d in t.shape]
        base = mttkrp_coo(t, factors, 0)
        scaled = mttkrp_coo(t.scale_values(3.5), factors, 0)
        assert np.allclose(scaled, 3.5 * base)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_formats_agree_property(self, seed):
        t = random_sparse((11, 6, 9), nnz=55, seed=seed)
        rng = np.random.default_rng(seed)
        factors = [rng.random((d, 3)) for d in t.shape]
        for mode in range(3):
            ref = mttkrp_dense(t.to_dense(), factors, mode)
            assert np.allclose(mttkrp_alto(AltoTensor.from_coo(t), factors, mode), ref)
            assert np.allclose(
                mttkrp_blco(BlcoTensor.from_coo(t, bit_budget=7), factors, mode), ref
            )
            assert np.allclose(
                mttkrp_csf(CsfTensor.from_coo(t, root_mode=mode), factors, mode), ref
            )
