"""Nonzero partitioning and load-balance statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.partition import (
    greedy_assign,
    imbalance,
    partition_by_output_row,
    partition_equal_nnz,
    partition_greedy_fibers,
)
from repro.tensor.synthetic import random_sparse, scaled_frostt_analogue


@pytest.fixture(scope="module")
def skewed():
    """A tensor with a heavy-tailed mode-0 fiber histogram."""
    return scaled_frostt_analogue((120, 60, 30), nnz=6000, seed=3, skew=1.1)


class TestImbalance:
    def test_perfect_balance(self):
        assert imbalance([10, 10, 10]) == pytest.approx(1.0)

    def test_worst_case(self):
        assert imbalance([30, 0, 0]) == pytest.approx(3.0)

    def test_empty_workers_ok(self):
        assert imbalance([0, 0]) == 1.0


class TestEqualNnz:
    def test_counts_cover_all(self, skewed):
        p = partition_equal_nnz(skewed, 7)
        assert p.total == skewed.nnz
        assert p.imbalance() < 1.01

    def test_owner_array_matches_counts(self, skewed):
        p = partition_equal_nnz(skewed, 5)
        assert np.array_equal(np.bincount(p.owner_of_nnz, minlength=5), p.counts)

    def test_not_conflict_free(self, skewed):
        assert not partition_equal_nnz(skewed, 4).conflict_free()


class TestByOutputRow:
    def test_counts_cover_all(self, skewed):
        p = partition_by_output_row(skewed, 0, 6)
        assert p.total == skewed.nnz
        assert p.conflict_free()

    def test_owners_respect_row_ranges(self, skewed):
        p = partition_by_output_row(skewed, 0, 6)
        rows = skewed.mode_indices(0)
        # Owner must be non-decreasing in the row index.
        order = np.argsort(rows)
        assert (np.diff(p.owner_of_nnz[order]) >= 0).all()

    def test_skew_hurts_balance(self, skewed):
        """Static row ranges are imbalanced under a heavy-tailed histogram."""
        p = partition_by_output_row(skewed, 0, 8)
        assert p.imbalance() > 1.3


class TestGreedyFibers:
    def test_counts_cover_all(self, skewed):
        p = partition_greedy_fibers(skewed, 0, 6)
        assert p.total == skewed.nnz
        assert p.conflict_free()

    def test_beats_static_ranges(self, skewed):
        """The LPT fix: greedy fiber assignment dominates static ranges."""
        static = partition_by_output_row(skewed, 0, 8)
        greedy = partition_greedy_fibers(skewed, 0, 8)
        assert greedy.imbalance() < static.imbalance()

    def test_workers_consistent(self, skewed):
        p = partition_greedy_fibers(skewed, 1, 4)
        assert np.array_equal(
            np.bincount(p.owner_of_nnz, minlength=4).astype(np.int64), p.counts
        )

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_lpt_bound_property(self, seed, workers):
        """LPT is a 4/3-approximation: imbalance ≤ 4/3 + heaviest/mean."""
        t = random_sparse((40, 20, 10), nnz=400, seed=seed)
        p = partition_greedy_fibers(t, 0, workers)
        mean = t.nnz / workers
        heaviest = float(t.mode_fiber_counts(0).max())
        assert p.counts.max() <= (4.0 / 3.0) * mean + heaviest + 1e-9


class TestGreedyAssignDeterminism:
    """Regression: the LPT sort used a non-stable ``argsort``, so equal
    fiber weights could be visited in a platform-dependent order and the
    same tensor could shard differently across runs. ``greedy_assign``
    pins a stable sort with an index tie-break."""

    def test_matches_stable_reference(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(0, 6, size=200)  # heavy ties, some zeros
        owner, loads = greedy_assign(sizes, 5)
        ref_owner = np.zeros(sizes.size, dtype=np.int64)
        ref_loads = np.zeros(5, dtype=np.int64)
        for i in sorted(range(sizes.size), key=lambda j: (-sizes[j], j)):
            if sizes[i] == 0:
                continue
            w = int(np.argmin(ref_loads))
            ref_owner[i] = w
            ref_loads[w] += sizes[i]
        assert np.array_equal(owner, ref_owner)
        assert np.array_equal(loads, ref_loads)

    def test_equal_weights_assign_in_index_order(self):
        """All-equal weights must land round-robin — the visible symptom of
        the old bug was any other permutation."""
        owner, loads = greedy_assign(np.full(12, 7), 4)
        assert np.array_equal(owner, np.arange(12) % 4)
        assert np.array_equal(loads, np.full(4, 21))

    def test_zero_size_items_stay_on_worker_zero(self):
        owner, loads = greedy_assign([0, 4, 0, 4], 2)
        assert owner[0] == 0 and owner[2] == 0
        assert int(loads.sum()) == 8

    def test_repeat_calls_identical(self):
        sizes = np.tile([9, 9, 9, 1], 50)
        a = greedy_assign(sizes, 7)
        b = greedy_assign(sizes, 7)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_partition_repeat_calls_identical(self, skewed):
        p1 = partition_greedy_fibers(skewed, 0, 6)
        p2 = partition_greedy_fibers(skewed, 0, 6)
        assert np.array_equal(p1.owner_of_nnz, p2.owner_of_nnz)
        assert np.array_equal(p1.counts, p2.counts)
