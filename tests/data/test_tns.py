"""The FROSTT .tns reader/writer."""

import io

import numpy as np
import pytest

from repro.data.tns import read_tns, write_tns
from repro.tensor.synthetic import random_sparse


class TestRead:
    def test_basic(self):
        text = "# comment\n1 1 1 1.5\n2 2 2 -3.0\n"
        t = read_tns(text)
        assert t.shape == (2, 2, 2)
        assert t.nnz == 2
        assert t.to_dense()[0, 0, 0] == 1.5
        assert t.to_dense()[1, 1, 1] == -3.0

    def test_explicit_shape(self):
        t = read_tns("1 1 2.0\n", shape=(5, 5))
        assert t.shape == (5, 5)

    def test_inline_comment_and_blank_lines(self):
        t = read_tns("\n1 1 4.0  # inline\n\n")
        assert t.nnz == 1

    def test_zero_index_rejected(self):
        with pytest.raises(ValueError, match="1-indexed"):
            read_tns("0 1 2.0\n")

    def test_inconsistent_columns_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            read_tns("1 1 2.0\n1 1 1 2.0\n")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no nonzeros"):
            read_tns("# nothing here\n")

    def test_file_object(self):
        t = read_tns(io.StringIO("3 4 9.0\n"))
        assert t.shape == (3, 4)

    def test_duplicates_rejected_by_default(self):
        with pytest.raises(ValueError, match=r"duplicate coordinate \(1, 1\) on lines \[1, 2\]"):
            read_tns("1 1 2.0\n1 1 3.0\n")

    def test_duplicates_coalesced_on_request(self):
        t = read_tns("1 1 2.0\n1 1 3.0\n", dedupe=True)
        assert t.nnz == 1
        assert t.values[0] == 5.0


class TestMalformedInput:
    def test_bad_coordinate_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2: malformed coordinate"):
            read_tns("1 1 2.0\n1 x 3.0\n")

    def test_bad_value_reports_line_number(self):
        with pytest.raises(ValueError, match="line 3: malformed value 'oops'"):
            read_tns("1 1 2.0\n2 2 3.0\n3 3 oops\n")

    def test_line_numbers_account_for_comments_and_blanks(self):
        text = "# header\n\n1 1 2.0\n# interlude\n2 q 3.0\n"
        with pytest.raises(ValueError, match="line 5: malformed coordinate"):
            read_tns(text)

    def test_nan_value_rejected(self):
        with pytest.raises(ValueError, match="line 2: non-finite value 'nan'"):
            read_tns("1 1 2.0\n2 2 nan\n")

    def test_inf_value_rejected(self):
        with pytest.raises(ValueError, match="line 1: non-finite value"):
            read_tns("1 1 inf\n")

    def test_inconsistent_columns_report_source_line(self):
        with pytest.raises(ValueError, match="line 3: inconsistent column count"):
            read_tns("# c\n1 1 2.0\n1 1 1 2.0\n")


class TestRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        t = random_sparse((12, 9, 7), nnz=80, seed=0, value_dist="normal", nonneg=False)
        path = tmp_path / "x.tns"
        write_tns(t, path)
        again = read_tns(path, shape=t.shape)
        assert again.allclose(t, rtol=0, atol=0)

    def test_roundtrip_stringio(self):
        t = random_sparse((5, 5), nnz=10, seed=1)
        buf = io.StringIO()
        write_tns(t, buf)
        again = read_tns(buf.getvalue(), shape=t.shape)
        assert again.allclose(t, rtol=0, atol=0)

    def test_header_comment_written(self, tmp_path):
        t = random_sparse((5, 5), nnz=3, seed=2)
        path = tmp_path / "y.tns"
        write_tns(t, path)
        assert path.read_text().startswith("#")

    def test_values_preserved_bit_exact(self):
        t = random_sparse((4, 4), nnz=5, seed=3)
        buf = io.StringIO()
        write_tns(t, buf)
        again = read_tns(buf.getvalue(), shape=t.shape)
        assert np.array_equal(again.values, t.values)
