"""The Table 2 dataset registry."""

import pytest

from repro.data.frostt import FROSTT_TABLE2, dataset_names, get_dataset


class TestRegistry:
    def test_ten_datasets(self):
        assert len(FROSTT_TABLE2) == 10

    def test_ordered_by_nnz(self):
        """Table 2 lists datasets in ascending nonzero order."""
        nnzs = [d.nnz for d in FROSTT_TABLE2]
        assert nnzs == sorted(nnzs)

    def test_lookup_by_name_and_alias(self):
        assert get_dataset("delicious").name == "delicious"
        assert get_dataset("DELI").name == "delicious"
        assert get_dataset("NELL-1").name == "nell1"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_dataset("netflix")

    def test_names_order(self):
        assert dataset_names()[0] == "nips"
        assert dataset_names()[-1] == "amazon"


class TestTable2Values:
    """Spot-check the registry against Table 2 of the paper."""

    @pytest.mark.parametrize(
        "name,nnz_paper",
        [
            ("nips", 3.1e6),
            ("uber", 3.3e6),
            ("chicago", 5.3e6),
            ("vast", 26e6),
            ("enron", 54.2e6),
            ("nell2", 76.9e6),
            ("flickr", 112.9e6),
            ("delicious", 140.1e6),
            ("nell1", 143.6e6),
            ("amazon", 1.7e9),
        ],
    )
    def test_nnz_matches_table(self, name, nnz_paper):
        assert get_dataset(name).nnz == pytest.approx(nnz_paper, rel=0.03)

    @pytest.mark.parametrize(
        "name,density",
        [
            ("nips", 1.8e-6),
            ("uber", 3.8e-4),
            ("vast", 6.9e-3),
            ("delicious", 4.3e-15),
            ("nell1", 9.1e-13),
            ("amazon", 1.1e-10),
        ],
    )
    def test_density_matches_table(self, name, density):
        # Table 2 rounds to two significant digits.
        assert get_dataset(name).density == pytest.approx(density, rel=0.15)

    def test_groups(self):
        assert get_dataset("nips").group == "small"
        assert get_dataset("enron").group == "medium"
        assert get_dataset("amazon").group == "large"


class TestScaledAnalogues:
    def test_scaled_shape_preserves_mode_ordering(self):
        ds = get_dataset("flickr")
        scaled = ds.scaled_shape(max_dim=2000)
        # Mode 1 is the longest in the paper; it must stay the longest.
        assert max(scaled) == scaled[1]
        assert max(scaled) <= 2000

    def test_small_tensors_not_scaled(self):
        ds = get_dataset("uber")
        assert ds.scaled_shape(max_dim=2000) == ds.dims

    def test_load_scaled_reproducible(self):
        ds = get_dataset("chicago")
        a = ds.load_scaled(seed=1, target_nnz=2000)
        b = ds.load_scaled(seed=1, target_nnz=2000)
        assert a.allclose(b)

    def test_load_scaled_respects_sparsity_cap(self):
        ds = get_dataset("vast")
        t = ds.load_scaled(seed=0, max_dim=100, target_nnz=10**9)
        assert t.density <= 0.3 + 1e-9

    def test_stats_at_paper_scale(self):
        stats = get_dataset("amazon").stats()
        assert stats.nnz == 1_741_809_018
        assert stats.shape == (4_821_207, 1_774_269, 1_805_187)

    def test_factor_rows(self):
        ds = get_dataset("nips")
        assert ds.factor_rows == sum(ds.dims)
