"""Model persistence (.npz archives)."""

import io

import numpy as np
import pytest

from repro.core.kruskal import KruskalTensor, factor_match_score
from repro.data.results import load_model, save_model


@pytest.fixture
def model(rng):
    return KruskalTensor([rng.random((d, 4)) for d in (9, 7, 5)], rng.random(4) + 0.1)


class TestRoundtrip:
    def test_path_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(model, path, metadata={"fit": 0.93, "update": "cuadmm"})
        loaded, meta = load_model(path)
        assert factor_match_score(loaded, model) == pytest.approx(1.0)
        assert np.array_equal(loaded.weights, model.weights)
        assert meta["fit"] == 0.93
        assert meta["update"] == "cuadmm"
        assert meta["rank"] == 4

    def test_buffer_roundtrip(self, model):
        buf = io.BytesIO()
        save_model(model, buf)
        buf.seek(0)
        loaded, meta = load_model(buf)
        for a, b in zip(loaded.factors, model.factors):
            assert np.array_equal(a, b)

    def test_bit_exact(self, model, tmp_path):
        path = tmp_path / "m.npz"
        save_model(model, path)
        loaded, _ = load_model(path)
        assert all(
            np.array_equal(a, b) for a, b in zip(loaded.factors, model.factors)
        )


class TestValidation:
    def test_rejects_non_model(self, tmp_path):
        with pytest.raises(ValueError, match="KruskalTensor"):
            save_model("nope", tmp_path / "x.npz")

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValueError, match="meta_json"):
            load_model(path)

    def test_rejects_wrong_version(self, model, tmp_path):
        import json

        path = tmp_path / "old.npz"
        arrays = {f"factor_{n}": f for n, f in enumerate(model.factors)}
        arrays["weights"] = model.weights
        arrays["meta_json"] = np.array(
            json.dumps({"format_version": 99, "ndim": 3, "rank": 4})
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_model(path)

    def test_metadata_must_be_jsonable(self, model, tmp_path):
        with pytest.raises(TypeError):
            save_model(model, tmp_path / "x.npz", metadata={"bad": object()})
