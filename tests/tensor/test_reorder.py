"""Index reordering for locality."""

import numpy as np
import pytest

from repro.core import cstf
from repro.tensor.hicoo import HicooTensor
from repro.tensor.reorder import Relabeling, frequency_reorder, random_reorder
from repro.tensor.synthetic import scaled_frostt_analogue


@pytest.fixture(scope="module")
def skewed():
    return scaled_frostt_analogue((400, 300, 50), nnz=8000, seed=6, skew=1.1)


class TestRelabeling:
    def test_apply_preserves_values_and_structure(self, skewed):
        reordered, relabeling = frequency_reorder(skewed)
        assert reordered.nnz == skewed.nnz
        assert reordered.shape == skewed.shape
        assert np.allclose(np.sort(reordered.values), np.sort(skewed.values))

    def test_inverse_roundtrip(self, skewed):
        reordered, relabeling = frequency_reorder(skewed)
        back = relabeling.inverse().apply(reordered)
        assert back.allclose(skewed)

    def test_map_factors_back(self, skewed):
        """Factorizing the reordered tensor and mapping factors back gives
        the same model as factorizing the original (same seed)."""
        reordered, relabeling = frequency_reorder(skewed)
        # Evaluate equivalence structurally: reconstruct a planted value set.
        rng = np.random.default_rng(0)
        factors_new = [rng.random((d, 3)) for d in skewed.shape]
        factors_orig = relabeling.map_factors_back(factors_new)
        # A model value at original coords equals the value at new coords.
        from repro.core.kruskal import KruskalTensor

        model_new = KruskalTensor(factors_new)
        model_orig = KruskalTensor(factors_orig)
        vals_new = model_new.values_at(relabeling.apply(skewed).indices)
        vals_orig = model_orig.values_at(skewed.indices)
        assert np.allclose(np.sort(vals_new), np.sort(vals_orig))

    def test_mode_count_validated(self, skewed):
        bad = Relabeling((np.arange(400),))
        with pytest.raises(ValueError):
            bad.apply(skewed)


class TestFrequencyReorder:
    def test_hot_indices_move_to_front(self, skewed):
        reordered, _ = frequency_reorder(skewed)
        counts = reordered.mode_fiber_counts(0)
        # The busiest new index is index 0; frequency is non-increasing-ish
        # at the head.
        assert counts[0] == counts.max()
        assert counts[:10].sum() >= counts[-10:].sum()

    def test_improves_hicoo_block_density(self, skewed):
        """The point of reordering: hot indices cluster, so HiCOO needs
        fewer, denser blocks than under an adversarial labeling."""
        reordered, _ = frequency_reorder(skewed)
        scrambled, _ = random_reorder(skewed, seed=1)
        blocks_good = HicooTensor.from_coo(reordered, block_bits=4).num_blocks
        blocks_bad = HicooTensor.from_coo(scrambled, block_bits=4).num_blocks
        assert blocks_good < blocks_bad

    def test_factorization_quality_unaffected(self, skewed):
        """Relabeling is a bijection: the achievable fit is identical."""
        reordered, _ = frequency_reorder(skewed)
        a = cstf(skewed, rank=2, update="cuadmm", max_iters=5, seed=3)
        b = cstf(reordered, rank=2, update="cuadmm", max_iters=5, seed=3)
        # Different index labels -> different random init alignment, so the
        # trajectories differ; but both must be finite and in-range.
        assert np.isfinite(a.fits).all() and np.isfinite(b.fits).all()


class TestRandomReorder:
    def test_deterministic_per_seed(self, skewed):
        a, _ = random_reorder(skewed, seed=5)
        b, _ = random_reorder(skewed, seed=5)
        assert a.allclose(b)

    def test_roundtrip(self, skewed):
        scrambled, relabeling = random_reorder(skewed, seed=2)
        assert relabeling.inverse().apply(scrambled).allclose(skewed)
