"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.core.kruskal import KruskalTensor
from repro.tensor.synthetic import (
    planted_nonneg_cp,
    planted_sparse_cp,
    random_sparse,
    scaled_frostt_analogue,
)


class TestRandomSparse:
    def test_requested_nnz(self):
        t = random_sparse((30, 20, 10), nnz=500, seed=0)
        assert t.nnz == 500

    def test_deterministic_per_seed(self):
        a = random_sparse((10, 10), nnz=40, seed=7)
        b = random_sparse((10, 10), nnz=40, seed=7)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = random_sparse((30, 30), nnz=100, seed=1)
        b = random_sparse((30, 30), nnz=100, seed=2)
        assert not (a.indices.shape == b.indices.shape and np.array_equal(a.indices, b.indices))

    def test_nonneg_values(self):
        t = random_sparse((10, 10), nnz=50, seed=3, value_dist="normal", nonneg=True)
        assert (t.values > 0).all()

    def test_signed_values_possible(self):
        t = random_sparse((20, 20), nnz=150, seed=3, value_dist="normal", nonneg=False)
        assert (t.values < 0).any()

    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "normal"])
    def test_all_distributions(self, dist):
        t = random_sparse((10, 10), nnz=30, seed=0, value_dist=dist)
        assert t.nnz == 30

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="value_dist"):
            random_sparse((10, 10), nnz=5, value_dist="cauchy")

    def test_too_many_nnz_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            random_sparse((2, 2), nnz=5)

    def test_full_density_possible(self):
        t = random_sparse((3, 3), nnz=9, seed=0)
        assert t.nnz == 9


class TestPlantedNonneg:
    def test_returns_factors_matching_shape(self):
        t, factors = planted_nonneg_cp((12, 10, 8), rank=3, nnz=200, seed=0)
        assert [f.shape for f in factors] == [(12, 3), (10, 3), (8, 3)]
        assert t.nnz == 200

    def test_values_match_model_when_noiseless(self):
        t, factors = planted_nonneg_cp((10, 9, 8), rank=2, nnz=100, noise=0.0, seed=1)
        model = KruskalTensor(factors)
        assert np.allclose(t.values, np.maximum(model.values_at(t.indices), 1e-12))

    def test_factor_sparsity_zeroes_entries(self):
        _, factors = planted_nonneg_cp(
            (40, 40, 40), rank=4, nnz=100, factor_sparsity=0.7, seed=2
        )
        frac_zero = np.mean([np.mean(f == 0.0) for f in factors])
        assert 0.4 < frac_zero < 0.8

    def test_no_dead_rows_with_sparsity(self):
        _, factors = planted_nonneg_cp(
            (30, 30, 30), rank=3, nnz=50, factor_sparsity=0.9, seed=3
        )
        for f in factors:
            assert f.any(axis=1).all()

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            planted_nonneg_cp((5, 5), rank=2, nnz=5, factor_sparsity=1.0)


class TestPlantedSparseCp:
    def test_exactly_low_rank(self):
        t, factors = planted_sparse_cp((15, 12, 10), rank=3, seed=4)
        model = KruskalTensor(factors)
        assert np.allclose(t.to_dense(), model.full())

    def test_fit_of_planted_model_is_one(self):
        t, factors = planted_sparse_cp((15, 12, 10), rank=3, seed=5)
        assert KruskalTensor(factors).fit(t) == pytest.approx(1.0, abs=1e-8)

    def test_sparsity_increases_with_factor_sparsity(self):
        dense_t, _ = planted_sparse_cp((15, 12, 10), rank=3, factor_sparsity=0.2, seed=6)
        sparse_t, _ = planted_sparse_cp((15, 12, 10), rank=3, factor_sparsity=0.8, seed=6)
        assert sparse_t.nnz < dense_t.nnz


class TestFrosttAnalogue:
    def test_shape_and_nnz(self):
        t = scaled_frostt_analogue((50, 40, 8), nnz=300, seed=0)
        assert t.shape == (50, 40, 8)
        assert t.nnz == 300

    def test_positive_values(self):
        t = scaled_frostt_analogue((50, 40, 8), nnz=300, seed=0)
        assert (t.values > 0).all()

    def test_skewed_histogram(self):
        # With skew, the most popular index should carry far more than the
        # uniform share of nonzeros.
        t = scaled_frostt_analogue((200, 50, 10), nnz=2000, seed=1, skew=1.1)
        counts = t.mode_fiber_counts(0)
        assert counts.max() > 3 * (t.nnz / t.shape[0])
