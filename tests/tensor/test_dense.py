"""Tests for dense tensors and Kolda-style matricization."""

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor, fold, matricize


class TestMatricize:
    def test_shape(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        assert matricize(x, 0).shape == (2, 12)
        assert matricize(x, 1).shape == (3, 8)
        assert matricize(x, 2).shape == (4, 6)

    def test_mode0_rows_are_slices(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        assert np.array_equal(matricize(x, 0)[0], x[0].ravel())

    def test_column_order_last_mode_fastest(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        m = matricize(x, 1)
        # Column j enumerates (i, k) with k fastest: column 1 is (i=0, k=1).
        assert np.array_equal(m[:, 1], x[0, :, 1])

    def test_fold_inverts_matricize(self):
        x = np.arange(120.0).reshape(2, 3, 4, 5)
        for mode in range(4):
            assert np.array_equal(fold(matricize(x, mode), mode, x.shape), x)

    def test_negative_mode(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        assert np.array_equal(matricize(x, -1), matricize(x, 2))

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            matricize(np.zeros((2, 2)), 5)


class TestDenseTensor:
    def test_properties(self):
        t = DenseTensor(np.ones((3, 4, 5)))
        assert t.shape == (3, 4, 5)
        assert t.ndim == 3
        assert t.size == 60

    def test_norm(self):
        t = DenseTensor(2.0 * np.ones((2, 2)))
        assert t.norm() == pytest.approx(4.0)

    def test_matricize_method(self):
        data = np.arange(8.0).reshape(2, 2, 2)
        t = DenseTensor(data)
        assert np.array_equal(t.matricize(1), matricize(data, 1))

    def test_data_is_float64_contiguous(self):
        t = DenseTensor(np.arange(6, dtype=np.int32).reshape(2, 3))
        assert t.data.dtype == np.float64
        assert t.data.flags["C_CONTIGUOUS"]

    def test_repr(self):
        assert "2x3" in repr(DenseTensor(np.zeros((2, 3))))
