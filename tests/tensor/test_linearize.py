"""Unit and property tests for the bit-linearization helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import linearize as lin


class TestBitWidth:
    @pytest.mark.parametrize(
        "dim,expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)],
    )
    def test_values(self, dim, expected):
        assert lin.bit_width(dim) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            lin.bit_width(0)

    def test_mode_bit_widths(self):
        assert lin.mode_bit_widths((8, 1, 3)) == [3, 0, 2]


class TestAltoPositions:
    def test_positions_are_disjoint_and_complete(self):
        shape = (100, 7, 33)
        positions = lin.alto_bit_positions(shape)
        flat = sorted(int(p) for arr in positions for p in arr)
        total = sum(lin.mode_bit_widths(shape))
        assert flat == list(range(total))

    def test_widths_match(self):
        shape = (100, 7, 33)
        positions = lin.alto_bit_positions(shape)
        assert [len(p) for p in positions] == lin.mode_bit_widths(shape)

    def test_long_mode_gets_lsb(self):
        # The mode with the most bits should own bit 0 (locality of the
        # longest mode is preserved best).
        positions = lin.alto_bit_positions((1 << 10, 4))
        assert 0 in positions[0]

    def test_too_many_bits_rejected(self):
        with pytest.raises(ValueError, match="BLCO"):
            lin.alto_bit_positions((1 << 40, 1 << 40))

    def test_singleton_mode_gets_no_bits(self):
        positions = lin.alto_bit_positions((16, 1, 4))
        assert len(positions[1]) == 0


class TestPackUnpack:
    def test_roundtrip_fixed(self):
        shape = (20, 6, 50)
        positions = lin.alto_bit_positions(shape)
        rng = np.random.default_rng(0)
        idx = np.column_stack([rng.integers(0, d, 64) for d in shape]).astype(np.int64)
        packed = lin.pack_bits(idx, positions)
        assert np.array_equal(lin.unpack_bits(packed, positions), idx)

    def test_packing_is_injective(self):
        shape = (5, 5, 5)
        positions = lin.alto_bit_positions(shape)
        all_idx = np.array(
            [(i, j, k) for i in range(5) for j in range(5) for k in range(5)],
            dtype=np.int64,
        )
        packed = lin.pack_bits(all_idx, positions)
        assert len(np.unique(packed)) == len(all_idx)


class TestConcat:
    def test_offsets_last_mode_lsb(self):
        assert lin.concat_bit_offsets([3, 2, 4]) == [6, 4, 0]

    def test_roundtrip(self):
        widths = [5, 0, 3]
        rng = np.random.default_rng(1)
        idx = np.column_stack(
            [rng.integers(0, 1 << w if w else 1, 32) for w in widths]
        ).astype(np.int64)
        packed = lin.encode_concat(idx, widths)
        assert np.array_equal(lin.decode_concat(packed, widths), idx)

    def test_concat_order_matches_lexicographic(self):
        # With power-of-two dims, sorting by the concatenated key equals
        # row-major coordinate order.
        widths = [2, 3]
        idx = np.array([[1, 0], [0, 7], [1, 3], [0, 0]], dtype=np.int64)
        packed = lin.encode_concat(idx, widths)
        order = np.argsort(packed)
        expected = np.lexsort((idx[:, 1], idx[:, 0]))
        assert np.array_equal(order, expected)

    def test_budget_enforced(self):
        with pytest.raises(ValueError, match="exceed"):
            lin.encode_concat(np.zeros((1, 2), dtype=np.int64), [40, 40])


@st.composite
def shapes_and_indices(draw):
    ndim = draw(st.integers(min_value=1, max_value=5))
    shape = tuple(draw(st.integers(min_value=1, max_value=200)) for _ in range(ndim))
    n = draw(st.integers(min_value=0, max_value=40))
    idx = [[draw(st.integers(min_value=0, max_value=d - 1)) for d in shape] for _ in range(n)]
    return shape, np.asarray(idx, dtype=np.int64).reshape(n, ndim)


class TestProperties:
    @given(shapes_and_indices())
    @settings(max_examples=60, deadline=None)
    def test_alto_roundtrip_any_shape(self, case):
        shape, idx = case
        positions = lin.alto_bit_positions(shape)
        assert np.array_equal(lin.unpack_bits(lin.pack_bits(idx, positions), positions), idx)

    @given(shapes_and_indices())
    @settings(max_examples=60, deadline=None)
    def test_concat_roundtrip_any_shape(self, case):
        shape, idx = case
        widths = lin.mode_bit_widths(shape)
        assert np.array_equal(lin.decode_concat(lin.encode_concat(idx, widths), widths), idx)

    @given(shapes_and_indices())
    @settings(max_examples=40, deadline=None)
    def test_packed_values_nonnegative(self, case):
        shape, idx = case
        positions = lin.alto_bit_positions(shape)
        assert (lin.pack_bits(idx, positions) >= 0).all()
