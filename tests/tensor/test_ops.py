"""Sparse tensor algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.coo import SparseTensor
from repro.tensor.ops import (
    add,
    drop_mode_index,
    mode_slice,
    stack_along_new_mode,
    subtract,
)
from repro.tensor.synthetic import random_sparse


class TestArithmetic:
    def test_add_matches_dense(self, small3):
        other = random_sparse(small3.shape, nnz=100, seed=99, value_dist="normal",
                              nonneg=False)
        out = add(small3, other)
        assert np.allclose(out.to_dense(), small3.to_dense() + other.to_dense())

    def test_subtract_self_is_empty_valued(self, small3):
        out = subtract(small3, small3)
        assert np.allclose(out.to_dense(), 0.0)

    def test_shape_mismatch(self, small3):
        other = random_sparse((5, 5), nnz=4, seed=0)
        with pytest.raises(ValueError, match="shape mismatch"):
            add(small3, other)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_add_commutative(self, seed):
        a = random_sparse((8, 7), nnz=20, seed=seed)
        b = random_sparse((8, 7), nnz=20, seed=seed + 1)
        assert add(a, b).allclose(add(b, a))


class TestSlicing:
    def test_mode_slice_matches_dense(self, small4):
        dense = small4.to_dense()
        for mode in range(4):
            for index in (0, small4.shape[mode] - 1):
                sliced = mode_slice(small4, mode, index)
                assert np.allclose(sliced.to_dense(), np.take(dense, index, axis=mode))

    def test_slice_reduces_ndim(self, small4):
        assert mode_slice(small4, 1, 0).ndim == 3

    def test_out_of_range(self, small3):
        with pytest.raises(ValueError, match="out of range"):
            mode_slice(small3, 0, 99)


class TestStack:
    def test_stack_then_slice_roundtrip(self):
        slabs = [random_sparse((6, 5), nnz=8, seed=s) for s in range(4)]
        stacked = stack_along_new_mode(slabs, position=-1)
        assert stacked.shape == (6, 5, 4)
        for t, slab in enumerate(slabs):
            assert mode_slice(stacked, 2, t).allclose(slab)

    def test_stack_front_position(self):
        slabs = [random_sparse((6, 5), nnz=8, seed=s) for s in range(3)]
        stacked = stack_along_new_mode(slabs, position=0)
        assert stacked.shape == (3, 6, 5)
        assert mode_slice(stacked, 0, 1).allclose(slabs[1])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            stack_along_new_mode([])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="share a shape"):
            stack_along_new_mode(
                [random_sparse((4, 4), nnz=2, seed=0), random_sparse((5, 4), nnz=2, seed=0)]
            )


class TestDrop:
    def test_drop_matches_dense_delete(self, small4):
        dense = small4.to_dense()
        out = drop_mode_index(small4, 2, 3)
        assert np.allclose(out.to_dense(), np.delete(dense, 3, axis=2))

    def test_drop_shrinks_mode(self, small3):
        out = drop_mode_index(small3, 0, 5)
        assert out.shape == (16, 13, 9)

    def test_cannot_drop_singleton(self):
        t = SparseTensor(np.array([[0, 0]]), np.array([1.0]), (1, 4))
        with pytest.raises(ValueError, match="only index"):
            drop_mode_index(t, 0, 0)
