"""Unit tests for the canonical COO sparse tensor."""

import numpy as np
import pytest

from repro.tensor.coo import SparseTensor


def _make(indices, values, shape):
    return SparseTensor(np.asarray(indices), np.asarray(values, dtype=float), shape)


class TestConstruction:
    def test_basic_properties(self):
        t = _make([[0, 1], [2, 0]], [1.5, -2.0], (3, 2))
        assert t.shape == (3, 2)
        assert t.ndim == 2
        assert t.nnz == 2
        assert t.density == pytest.approx(2 / 6)

    def test_values_are_float64(self):
        t = _make([[0, 0]], [3], (2, 2))
        assert t.values.dtype == np.float64

    def test_indices_are_int64(self):
        t = _make([[0, 0]], [3.0], (2, 2))
        assert t.indices.dtype == np.int64

    def test_duplicate_coordinates_are_summed(self):
        t = _make([[1, 1], [1, 1], [0, 0]], [2.0, 3.0, 1.0], (2, 2))
        assert t.nnz == 2
        dense = t.to_dense()
        assert dense[1, 1] == pytest.approx(5.0)
        assert dense[0, 0] == pytest.approx(1.0)

    def test_entries_sorted_lexicographically(self):
        t = _make([[2, 0], [0, 1], [1, 2]], [1.0, 2.0, 3.0], (3, 3))
        assert np.array_equal(t.indices[:, 0], [0, 1, 2])

    def test_empty_tensor(self):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), (4, 5, 6))
        assert t.nnz == 0
        assert t.norm() == 0.0
        assert t.to_dense().sum() == 0.0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="out of bounds"):
            _make([[3, 0]], [1.0], (3, 2))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            _make([[-1, 0]], [1.0], (3, 2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="coordinate columns"):
            _make([[0, 0, 0]], [1.0], (3, 2))

    def test_value_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values"):
            _make([[0, 0], [1, 1]], [1.0], (3, 2))

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            _make([[0]], [1.0], (0,))

    def test_one_mode_tensor_from_flat_indices(self):
        t = SparseTensor(np.array([1, 3]), np.array([2.0, 4.0]), (5,))
        assert t.ndim == 1
        assert t.to_dense()[3] == 4.0


class TestConversions:
    def test_dense_roundtrip(self, small3):
        again = SparseTensor.from_dense(small3.to_dense())
        assert again.allclose(small3)

    def test_from_dense_threshold(self):
        dense = np.array([[0.5, 0.01], [0.0, -2.0]])
        t = SparseTensor.from_dense(dense, tol=0.1)
        assert t.nnz == 2
        assert set(map(tuple, t.indices)) == {(0, 0), (1, 1)}

    def test_norm_matches_dense(self, small3):
        assert small3.norm() == pytest.approx(np.linalg.norm(small3.to_dense()))


class TestTransforms:
    def test_permute_modes_roundtrip(self, small4):
        perm = small4.permute_modes([2, 0, 3, 1])
        back = perm.permute_modes([1, 3, 0, 2])
        assert back.allclose(small4)

    def test_permute_matches_dense_transpose(self, small3):
        perm = small3.permute_modes([2, 1, 0])
        assert np.allclose(perm.to_dense(), small3.to_dense().transpose(2, 1, 0))

    def test_permute_invalid(self, small3):
        with pytest.raises(ValueError, match="permutation"):
            small3.permute_modes([0, 0, 1])

    def test_sorted_by_mode_groups_major_key(self, small4):
        s = small4.sorted_by_mode(2)
        col = s.indices[:, 2]
        assert np.all(np.diff(col) >= 0)
        # Contents unchanged.
        assert s.to_dense().sum() == pytest.approx(small4.to_dense().sum())

    def test_scale_values(self, small3):
        doubled = small3.scale_values(2.0)
        assert np.allclose(doubled.values, 2.0 * small3.values)
        assert doubled.shape == small3.shape


class TestStatistics:
    def test_mode_fiber_counts_sum_to_nnz(self, small4):
        for m in range(small4.ndim):
            counts = small4.mode_fiber_counts(m)
            assert counts.sum() == small4.nnz
            assert counts.shape == (small4.shape[m],)

    def test_distinct_mode_indices(self, small4):
        for m in range(small4.ndim):
            expected = len(np.unique(small4.indices[:, m]))
            assert small4.distinct_mode_indices(m) == expected

    def test_distinct_empty(self):
        t = SparseTensor(np.zeros((0, 2), dtype=np.int64), np.zeros(0), (3, 3))
        assert t.distinct_mode_indices(0) == 0

    def test_mode_indices_negative_mode(self, small3):
        assert np.array_equal(small3.mode_indices(-1), small3.mode_indices(2))

    def test_repr_mentions_shape_and_nnz(self, small3):
        text = repr(small3)
        assert "17x13x9" in text
        assert str(small3.nnz) in text
