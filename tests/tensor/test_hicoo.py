"""HiCOO format and its MTTKRP kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.mttkrp import mttkrp_dense
from repro.kernels.mttkrp_hicoo import mttkrp_hicoo
from repro.tensor.coo import SparseTensor
from repro.tensor.hicoo import HicooTensor
from repro.tensor.synthetic import random_sparse


class TestFormat:
    @pytest.mark.parametrize("block_bits", [1, 2, 4, 7])
    def test_roundtrip(self, small4, block_bits):
        h = HicooTensor.from_coo(small4, block_bits=block_bits)
        assert h.to_coo().allclose(small4)

    def test_block_count_shrinks_with_bigger_blocks(self, small4):
        fine = HicooTensor.from_coo(small4, block_bits=1)
        coarse = HicooTensor.from_coo(small4, block_bits=5)
        assert coarse.num_blocks < fine.num_blocks

    def test_block_nnz_sums_to_total(self, small4):
        h = HicooTensor.from_coo(small4, block_bits=3)
        assert h.block_nnz().sum() == small4.nnz
        assert (h.block_nnz() >= 1).all()

    def test_offsets_within_block(self, small4):
        h = HicooTensor.from_coo(small4, block_bits=3)
        for b in range(h.num_blocks):
            _, offsets, _ = h.block_slice(b)
            assert (offsets >= 0).all()
            assert (offsets < 8).all()

    def test_index_compression(self):
        """HiCOO's raison d'être: index metadata smaller than raw COO
        (ndim × int64 per nonzero) for clustered data."""
        rng = np.random.default_rng(0)
        # Clustered nonzeros: a few dense 8x8x8 bricks.
        base = rng.integers(0, 32, size=(6, 3)) * 8
        offs = rng.integers(0, 8, size=(400, 3))
        coords = np.unique(base[rng.integers(0, 6, 400)] + offs, axis=0)
        t = SparseTensor(coords, rng.random(coords.shape[0]), (256, 256, 256))
        h = HicooTensor.from_coo(t, block_bits=3)
        raw_bytes = t.indices.nbytes
        assert h.index_storage_bytes() < raw_bytes

    def test_empty(self):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), (8, 8, 8))
        h = HicooTensor.from_coo(t)
        assert h.num_blocks == 0
        assert h.to_coo().nnz == 0

    def test_block_bits_validated(self, small4):
        with pytest.raises(ValueError):
            HicooTensor.from_coo(small4, block_bits=0)

    def test_block_slice_bounds(self, small4):
        h = HicooTensor.from_coo(small4, block_bits=3)
        with pytest.raises(ValueError):
            h.block_slice(h.num_blocks)


class TestMttkrp:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_matches_dense_oracle(self, small4, factors4, mode):
        h = HicooTensor.from_coo(small4, block_bits=2)
        ref = mttkrp_dense(small4.to_dense(), factors4, mode)
        assert np.allclose(mttkrp_hicoo(h, factors4, mode), ref)

    def test_empty_gives_zeros(self, factors3):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), (17, 13, 9))
        out = mttkrp_hicoo(HicooTensor.from_coo(t), factors3, 0)
        assert out.shape == (17, 5)
        assert not out.any()

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_and_mttkrp_property(self, seed, block_bits):
        t = random_sparse((13, 9, 11), nnz=45, seed=seed)
        h = HicooTensor.from_coo(t, block_bits=block_bits)
        assert h.to_coo().allclose(t)
        rng = np.random.default_rng(seed)
        factors = [rng.random((d, 3)) for d in t.shape]
        ref = mttkrp_dense(t.to_dense(), factors, 1)
        assert np.allclose(mttkrp_hicoo(h, factors, 1), ref)
