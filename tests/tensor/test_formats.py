"""Unit and property tests for the ALTO, BLCO and CSF formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor, split_bit_widths
from repro.tensor.coo import SparseTensor
from repro.tensor.csf import CsfTensor
from repro.tensor.synthetic import random_sparse


class TestAlto:
    def test_roundtrip(self, small4):
        assert AltoTensor.from_coo(small4).to_coo().allclose(small4)

    def test_linear_indices_sorted(self, small4):
        a = AltoTensor.from_coo(small4)
        assert np.all(np.diff(a.linear_indices) >= 0)

    def test_mode_indices_multiset_preserved(self, small4):
        a = AltoTensor.from_coo(small4)
        for m in range(small4.ndim):
            assert np.array_equal(
                np.sort(a.mode_indices(m)), np.sort(small4.indices[:, m])
            )

    def test_all_mode_indices_consistent(self, small3):
        a = AltoTensor.from_coo(small3)
        full = a.all_mode_indices()
        for m in range(small3.ndim):
            assert np.array_equal(full[:, m], a.mode_indices(m))

    def test_index_bits(self, small3):
        a = AltoTensor.from_coo(small3)
        # 17 -> 5 bits, 13 -> 4 bits, 9 -> 4 bits
        assert a.index_bits() == 13

    def test_empty(self):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), (4, 4, 4))
        a = AltoTensor.from_coo(t)
        assert a.nnz == 0
        assert a.to_coo().nnz == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            AltoTensor(np.zeros(3, dtype=np.int64), np.zeros(2), (4, 4))


class TestBlcoSplit:
    def test_no_split_needed(self):
        low, high = split_bit_widths([3, 4, 2], budget=16)
        assert low == [3, 4, 2]
        assert high == [0, 0, 0]

    def test_split_strips_widest(self):
        low, high = split_bit_widths([10, 4], budget=12)
        assert low == [8, 4]
        assert high == [2, 0]

    def test_split_balances(self):
        low, high = split_bit_widths([10, 10], budget=10)
        assert low == [5, 5]
        assert sum(high) == 10

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            split_bit_widths([3], budget=0)


class TestBlco:
    @pytest.mark.parametrize("budget", [4, 7, 10, 48])
    def test_roundtrip_various_budgets(self, small4, budget):
        b = BlcoTensor.from_coo(small4, bit_budget=budget)
        assert b.to_coo().allclose(small4)

    def test_single_block_when_budget_large(self, small4):
        b = BlcoTensor.from_coo(small4, bit_budget=48)
        assert b.num_blocks == 1

    def test_blocks_multiply_when_budget_tight(self, small4):
        wide = BlcoTensor.from_coo(small4, bit_budget=48)
        tight = BlcoTensor.from_coo(small4, bit_budget=6)
        assert tight.num_blocks > wide.num_blocks

    def test_nnz_preserved_across_blocks(self, small4):
        b = BlcoTensor.from_coo(small4, bit_budget=6)
        assert sum(blk.nnz for blk in b.blocks) == small4.nnz

    def test_block_keys_unique_and_sorted(self, small4):
        b = BlcoTensor.from_coo(small4, bit_budget=6)
        keys = [blk.key for blk in b.blocks]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_block_mode_indices_within_bounds(self, small4):
        b = BlcoTensor.from_coo(small4, bit_budget=7)
        for blk in b.blocks:
            for m in range(b.ndim):
                idx = b.block_mode_indices(blk, m)
                assert (idx >= 0).all() and (idx < small4.shape[m]).all()

    def test_low_bits_fit_budget(self, small4):
        b = BlcoTensor.from_coo(small4, bit_budget=9)
        assert sum(b.low_widths) <= 9

    def test_empty(self):
        t = SparseTensor(np.zeros((0, 2), dtype=np.int64), np.zeros(0), (8, 8))
        b = BlcoTensor.from_coo(t)
        assert b.num_blocks == 0
        assert b.to_coo().nnz == 0


class TestCsf:
    def test_roundtrip_each_root(self, small4):
        for root in range(small4.ndim):
            c = CsfTensor.from_coo(small4, root_mode=root)
            assert c.to_coo().allclose(small4)

    def test_level_sizes_monotone(self, small4):
        c = CsfTensor.from_coo(small4, root_mode=0)
        sizes = c.level_sizes()
        assert sizes == sorted(sizes)
        assert sizes[-1] == small4.nnz

    def test_root_level_counts_distinct_indices(self, small4):
        c = CsfTensor.from_coo(small4, root_mode=1)
        assert c.level_sizes()[0] == small4.distinct_mode_indices(1)

    def test_fptr_spans_cover_children(self, small4):
        c = CsfTensor.from_coo(small4, root_mode=0)
        for level in range(small4.ndim - 1):
            ptr = c.fptr[level]
            assert ptr[0] == 0
            assert ptr[-1] == c.fids[level + 1].size
            assert np.all(np.diff(ptr) >= 1)  # every node has >= 1 child

    def test_leaf_counts_sum_to_nnz(self, small4):
        c = CsfTensor.from_coo(small4, root_mode=2)
        counts = c.leaf_counts()
        for level_counts in counts:
            assert level_counts.sum() == small4.nnz

    def test_custom_mode_order(self, small4):
        c = CsfTensor.from_coo(small4, root_mode=1, mode_order=[1, 3, 0, 2])
        assert c.mode_order == (1, 3, 0, 2)
        assert c.to_coo().allclose(small4)

    def test_mode_order_must_start_with_root(self, small4):
        with pytest.raises(ValueError, match="root_mode"):
            CsfTensor.from_coo(small4, root_mode=1, mode_order=[0, 1, 2, 3])

    def test_empty(self):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), (4, 4, 4))
        c = CsfTensor.from_coo(t)
        assert c.nnz == 0
        assert c.level_sizes() == [0, 0, 0]


@st.composite
def small_sparse(draw):
    ndim = draw(st.integers(min_value=2, max_value=4))
    shape = tuple(draw(st.integers(min_value=2, max_value=20)) for _ in range(ndim))
    space = int(np.prod(shape))
    nnz = draw(st.integers(min_value=1, max_value=min(space, 60)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return random_sparse(shape, nnz=nnz, seed=seed)


class TestFormatProperties:
    @given(small_sparse())
    @settings(max_examples=40, deadline=None)
    def test_alto_roundtrip(self, tensor):
        assert AltoTensor.from_coo(tensor).to_coo().allclose(tensor)

    @given(small_sparse(), st.integers(min_value=3, max_value=48))
    @settings(max_examples=40, deadline=None)
    def test_blco_roundtrip(self, tensor, budget):
        assert BlcoTensor.from_coo(tensor, bit_budget=budget).to_coo().allclose(tensor)

    @given(small_sparse())
    @settings(max_examples=40, deadline=None)
    def test_csf_roundtrip(self, tensor):
        for root in range(tensor.ndim):
            assert CsfTensor.from_coo(tensor, root_mode=root).to_coo().allclose(tensor)
