"""Roofline placement of recorded kernels."""

import numpy as np
import pytest

from repro.analysis.roofline import admm_arithmetic_intensity_limit
from repro.analysis.roofline_points import ridge_point, roofline_points
from repro.kernels.gram import gram_chain
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.machine.executor import Executor
from repro.machine.spec import A100, H100, ICELAKE_XEON
from repro.tensor.synthetic import random_sparse
from repro.updates.admm import cuadmm


@pytest.fixture
def traced_admm_run():
    """A cuADMM update on a realistic subproblem, with retained records."""
    tensor = random_sparse((400, 300, 200), nnz=8000, seed=0)
    rng = np.random.default_rng(0)
    factors = [rng.random((d, 32)) for d in tensor.shape]
    ex = Executor("h100", keep_records=True)
    update = cuadmm(inner_iters=10)
    state = update.init_state(tensor.shape, 32)
    with ex.phase("UPDATE"):
        update.update(ex, 0, mttkrp_coo(tensor, factors, 0),
                      gram_chain(factors, 0), factors[0], state)
    return ex


class TestRidge:
    def test_ridge_values(self):
        # A100: 9.7 TF / 2039 GB/s ≈ 4.8 flop/byte.
        assert ridge_point(A100) == pytest.approx(4.76, abs=0.1)
        assert ridge_point(H100) > ridge_point(A100)
        assert ridge_point(ICELAKE_XEON) == pytest.approx(12.98, abs=0.2)


class TestPoints:
    def test_requires_records(self):
        with pytest.raises(ValueError, match="keep_records"):
            roofline_points(Executor("a100"))

    def test_points_extracted(self, traced_admm_run):
        points = roofline_points(traced_admm_run)
        assert len(points) > 10
        for p in points:
            assert p.arithmetic_intensity > 0
            assert p.attained_gflops > 0

    def test_admm_elementwise_kernels_are_memory_bound(self, traced_admm_run):
        """Section 3.3 kernel by kernel: every fused/elementwise ADMM kernel
        sits left of the ridge."""
        points = roofline_points(traced_admm_run)
        for p in points:
            if p.name.startswith(("fused_", "dgeam", "hadamard")):
                assert p.memory_bound, p.name

    def test_fused_kernel_ai_near_eq5(self, traced_admm_run):
        """The fused auxiliary kernel's intensity is in the neighborhood of
        the whole-iteration Eq. 5 value (same order, elementwise regime)."""
        points = roofline_points(traced_admm_run)
        aux = next(p for p in points if p.name == "fused_auxiliary")
        whole_iteration = admm_arithmetic_intensity_limit(32)
        assert 0.02 < aux.arithmetic_intensity < 10 * whole_iteration

    def test_attained_below_roofline(self, traced_admm_run):
        """No kernel exceeds min(peak, AI × bandwidth) — the roofline law."""
        spec = traced_admm_run.device
        for p in roofline_points(traced_admm_run):
            envelope = min(spec.peak_flops, p.arithmetic_intensity * spec.mem_bandwidth)
            assert p.attained_gflops * 1e9 <= envelope * 1.001, p.name
