"""Structural dataset reports."""

import numpy as np
import pytest

from repro.analysis.dataset_report import DatasetReport, _gini, analyze
from repro.data.frostt import get_dataset
from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import random_sparse, scaled_frostt_analogue


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        counts = np.zeros(100)
        counts[0] = 1000.0
        assert _gini(counts) > 0.9

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            g = _gini(rng.integers(0, 50, size=30).astype(float))
            assert 0.0 <= g <= 1.0

    def test_skewed_beats_uniform(self):
        rng = np.random.default_rng(1)
        uniform = rng.integers(40, 60, size=200).astype(float)
        skewed = rng.zipf(1.6, size=200).astype(float)
        assert _gini(skewed) > _gini(uniform)


class TestAnalyze:
    def test_concrete_tensor(self, small4):
        report = analyze(small4, rank=8)
        assert report.shape == small4.shape
        assert report.factor_rows == sum(small4.shape)
        assert all(0.0 <= g <= 1.0 for g in report.fiber_gini)

    def test_stats_input_has_nan_gini(self):
        report = analyze(get_dataset("uber").stats())
        assert all(g != g for g in report.fiber_gini)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            analyze(np.zeros((3, 3)))

    def test_size_groups_match_paper(self):
        """The report's size grouping reproduces Figure 4's categories."""
        assert analyze(get_dataset("nips").stats()).size_group() == "small"
        assert analyze(get_dataset("enron").stats()).size_group() == "medium"
        for name in ("flickr", "delicious", "amazon"):
            assert analyze(get_dataset(name).stats()).size_group() == "large", name

    def test_vast_flagged_for_contention(self):
        """VAST's length-2 mode gives an enormous atomic chain estimate —
        the report's early warning for the Figure 7 outlier."""
        vast = analyze(get_dataset("vast").stats())
        others = [analyze(get_dataset(n).stats()) for n in ("flickr", "amazon", "nell1")]
        assert vast.contention_risk > 50 * max(o.contention_risk for o in others)

    def test_update_bound_predicts_figure3(self):
        """The three Figure 3 tensors (and Figure 1's Delicious) must be
        classified update-bound; a dense-ish tensor must not."""
        for name in ("flickr", "delicious", "nell1"):
            assert analyze(get_dataset(name).stats()).update_bound(), name
        # A near-dense tensor (nnz ≫ ΣIₙ) is MTTKRP-bound, like Figure 1's
        # DenseTF case.
        dense_ish = random_sparse((100, 20, 10), nnz=19000, seed=0)
        assert not analyze(dense_ish).update_bound()

    def test_skewed_analogue_has_skewed_fibers(self):
        t = scaled_frostt_analogue((300, 200, 40), nnz=5000, seed=0, skew=1.1)
        u = random_sparse((300, 200, 40), nnz=5000, seed=0)
        report_t, report_u = analyze(t), analyze(u)
        assert report_t.fiber_gini[0] > report_u.fiber_gini[0]

    def test_working_set_scales_with_rank(self, small3):
        assert analyze(small3, rank=64).factor_working_set_mb == pytest.approx(
            2 * analyze(small3, rank=32).factor_working_set_mb
        )
