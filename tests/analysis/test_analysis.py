"""Analysis utilities: the paper's equations, breakdowns, speedups, tables."""

import math

import pytest

from repro.analysis.breakdown import breakdown_row, dominant_phase, phase_fractions
from repro.analysis.reporting import format_table
from repro.analysis.roofline import (
    admm_arithmetic_intensity,
    admm_arithmetic_intensity_limit,
    admm_flops,
    admm_words,
)
from repro.analysis.speedup import geometric_mean, speedup_series
from repro.core.trace import PHASES
from repro.machine.counters import KernelRecord, Timeline


class TestRoofline:
    def test_equation3(self):
        assert admm_flops(100, 8) == 19 * 100 * 8 + 2 * 100 * 64

    def test_equation4(self):
        assert admm_words(100, 8) == 22 * 100 * 8 + 64

    @pytest.mark.parametrize("rank,expected", [(16, 0.29), (32, 0.47), (64, 0.83)])
    def test_equation5_paper_values(self, rank, expected):
        """The paper quotes AI of 0.29 / 0.47 / 0.83 flop/byte at R=16/32/64."""
        assert admm_arithmetic_intensity_limit(rank) == pytest.approx(expected, abs=0.01)

    def test_limit_matches_large_rows(self):
        assert admm_arithmetic_intensity(10**9, 32) == pytest.approx(
            admm_arithmetic_intensity_limit(32), rel=1e-3
        )

    def test_memory_bound_on_all_devices(self):
        """AI below every device's balance point ⇒ ADMM is bandwidth-bound,
        the paper's Section 3.3 conclusion."""
        from repro.machine.spec import A100, H100, ICELAKE_XEON

        for spec in (A100, H100, ICELAKE_XEON):
            balance = spec.peak_flops / spec.mem_bandwidth
            assert admm_arithmetic_intensity_limit(64) < balance


def _timeline(seconds_by_phase):
    tl = Timeline()
    for phase, s in seconds_by_phase.items():
        tl.add(
            KernelRecord(name="k", phase=phase, flops=0, bytes_read=0, bytes_written=0,
                         parallel_work=1),
            s,
        )
    return tl


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        tl = _timeline({"GRAM": 1.0, "MTTKRP": 2.0, "UPDATE": 6.0, "NORMALIZE": 1.0})
        fr = phase_fractions(tl)
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["UPDATE"] == pytest.approx(0.6)

    def test_extra_phases_excluded(self):
        tl = _timeline({"UPDATE": 1.0, "FIT": 100.0})
        assert phase_fractions(tl)["UPDATE"] == pytest.approx(1.0)

    def test_dominant(self):
        tl = _timeline({"MTTKRP": 5.0, "UPDATE": 2.0})
        assert dominant_phase(tl) == "MTTKRP"

    def test_empty_timeline(self):
        assert all(v == 0.0 for v in phase_fractions(Timeline()).values())

    def test_row_format(self):
        tl = _timeline({p: 1.0 for p in PHASES})
        row = breakdown_row("x", tl)
        assert row[0] == "x"
        assert len(row) == 5


class TestSpeedup:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_series(self):
        s = speedup_series(["a", "b"], [2.0, 9.0], [1.0, 3.0])
        assert s.speedups == (2.0, 3.0)
        assert s.gmean == pytest.approx(math.sqrt(6.0))
        assert s.max_speedup == 3.0
        assert s.min_speedup == 2.0

    def test_series_length_validated(self):
        with pytest.raises(ValueError):
            speedup_series(["a"], [1.0, 2.0], [1.0])

    def test_rows_include_gmean(self):
        s = speedup_series(["a"], [2.0], [1.0])
        rows = s.as_rows()
        assert rows[-1][0] == "GMean"


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["name", "v"], [["x", "1"], ["longer", "22"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert all(len(line) <= max(len(l) for l in lines) for line in lines)

    def test_no_title(self):
        out = format_table(["a"], [["1"]])
        assert out.splitlines()[0].startswith("a")

    def test_handles_non_strings(self):
        out = format_table(["a"], [[1.5]])
        assert "1.5" in out
