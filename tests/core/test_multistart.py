"""Multi-start factorization."""

import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.multistart import cstf_multistart
from repro.tensor.synthetic import planted_sparse_cp


@pytest.fixture(scope="module")
def tensor():
    t, _ = planted_sparse_cp((16, 14, 12), rank=3, factor_sparsity=0.5, seed=41)
    return t


class TestMultiStart:
    def test_best_is_max_fit(self, tensor):
        res = cstf_multistart(tensor, rank=3, update="cuadmm", max_iters=8,
                              n_starts=4, master_seed=7)
        assert len(res.fits) == 4
        assert res.best.fit == max(res.fits)
        assert res.fits[res.best_index] == res.best.fit

    def test_never_worse_than_single_start(self, tensor):
        multi = cstf_multistart(tensor, rank=3, update="cuadmm", max_iters=8,
                                n_starts=4, master_seed=7)
        # The best-of-4 is at least as good as each individual start.
        assert all(multi.best.fit >= f - 1e-12 for f in multi.fits)

    def test_deterministic_per_master_seed(self, tensor):
        a = cstf_multistart(tensor, rank=3, max_iters=4, n_starts=3, master_seed=5)
        b = cstf_multistart(tensor, rank=3, max_iters=4, n_starts=3, master_seed=5)
        assert a.fits == b.fits
        assert a.best_index == b.best_index

    def test_spread_nonnegative(self, tensor):
        res = cstf_multistart(tensor, rank=3, max_iters=4, n_starts=3, master_seed=1)
        assert res.spread >= 0.0

    def test_total_cost_scales_with_starts(self, tensor):
        res = cstf_multistart(tensor, rank=3, max_iters=4, n_starts=3, master_seed=1)
        assert res.total_simulated_seconds() == pytest.approx(
            3 * res.best.timeline.total_seconds()
        )

    def test_requires_fit_tracking(self, tensor):
        with pytest.raises(ValueError, match="compute_fit"):
            cstf_multistart(tensor, CstfConfig(rank=3, compute_fit=False))

    def test_warm_start_rejected(self, tensor):
        base = cstf(tensor, rank=3, max_iters=2)
        with pytest.raises(ValueError, match="exclusive"):
            cstf_multistart(tensor, rank=3, init_factors=base.kruskal)
