"""The AO driver (Algorithm 1): fit progress, phases, formats, analytic mode."""

import numpy as np
import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.trace import PHASES
from repro.machine.analytic import TensorStats
from repro.tensor.synthetic import planted_sparse_cp, random_sparse


@pytest.fixture(scope="module")
def tensor():
    t, _ = planted_sparse_cp((20, 16, 12), rank=3, factor_sparsity=0.4, seed=9)
    return t


class TestConfig:
    def test_defaults_are_paper_values(self):
        c = CstfConfig()
        assert c.rank == 32
        assert c.update == "cuadmm"
        assert c.mttkrp_format == "blco"

    def test_invalid_format(self):
        with pytest.raises(ValueError, match="mttkrp_format"):
            CstfConfig(mttkrp_format="hicoo")

    def test_invalid_normalize(self):
        with pytest.raises(ValueError, match="normalize"):
            CstfConfig(normalize="1")

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            CstfConfig(rank=0)

    def test_config_and_overrides_mutually_exclusive(self, tensor):
        with pytest.raises(TypeError):
            cstf(tensor, CstfConfig(), rank=4)


class TestDriver:
    def test_fit_improves(self, tensor):
        res = cstf(tensor, rank=3, update="cuadmm", max_iters=15, seed=0)
        assert res.fits[-1] > res.fits[0]
        assert res.fits[-1] > 0.8

    def test_all_phases_charged(self, tensor):
        res = cstf(tensor, rank=3, max_iters=2, seed=0)
        for phase in PHASES:
            assert res.timeline.seconds(phase) > 0.0

    def test_nonneg_factors_with_nonneg_updates(self, tensor):
        for update in ("cuadmm", "mu", "hals"):
            res = cstf(tensor, rank=3, update=update, max_iters=3, seed=0)
            for f in res.kruskal.factors:
                assert (f >= 0).all(), update

    def test_deterministic_given_seed(self, tensor):
        a = cstf(tensor, rank=3, max_iters=3, seed=5)
        b = cstf(tensor, rank=3, max_iters=3, seed=5)
        assert a.fits == b.fits

    def test_seeds_change_init(self, tensor):
        a = cstf(tensor, rank=3, max_iters=1, seed=1)
        b = cstf(tensor, rank=3, max_iters=1, seed=2)
        assert a.fits != b.fits

    @pytest.mark.parametrize("fmt", ["coo", "csf", "alto", "blco"])
    def test_formats_numerically_identical(self, tensor, fmt):
        """The storage format must never change the math."""
        ref = cstf(tensor, rank=3, max_iters=3, seed=3, mttkrp_format="coo")
        res = cstf(tensor, rank=3, max_iters=3, seed=3, mttkrp_format=fmt)
        assert res.fits == pytest.approx(ref.fits, rel=1e-9)

    def test_convergence_tolerance_stops(self, tensor):
        res = cstf(tensor, rank=3, max_iters=200, tol=1e-4, seed=0)
        assert res.converged
        assert res.iterations < 200

    def test_fit_disabled(self, tensor):
        res = cstf(tensor, rank=3, max_iters=2, compute_fit=False)
        assert res.fits == []
        assert res.fit is None

    def test_4mode_tensor(self):
        t = random_sparse((10, 8, 6, 5), nnz=300, seed=1)
        res = cstf(t, rank=2, max_iters=3, seed=0)
        assert len(res.kruskal.factors) == 4
        assert res.fits[-1] >= res.fits[0] - 0.05

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="SparseTensor or TensorStats"):
            cstf(np.zeros((3, 3)), rank=2)

    def test_per_iteration_seconds_positive(self, tensor):
        res = cstf(tensor, rank=3, max_iters=2)
        assert res.per_iteration_seconds() > 0


class TestAnalyticMode:
    def test_runs_at_paper_scale(self):
        stats = TensorStats.from_dims((532_924, 17_262_471, 2_480_308, 1443), 140_126_181)
        res = cstf(stats, rank=32, update="cuadmm", device="h100", max_iters=1, compute_fit=False)
        assert res.kruskal is None
        assert res.fits == []
        assert res.per_iteration_seconds() > 0

    def test_update_dominates_on_long_mode_tensors(self):
        """The paper's central observation (Figs 1/3): for hypersparse
        tensors with long modes on the CPU, UPDATE dwarfs MTTKRP."""
        stats = TensorStats.from_dims((532_924, 17_262_471, 2_480_308, 1443), 140_126_181)
        res = cstf(
            stats, rank=32, update="admm", device="cpu", mttkrp_format="alto", max_iters=1
        )
        assert res.timeline.seconds("UPDATE") > res.timeline.seconds("MTTKRP")

    def test_concrete_and_analytic_agree(self):
        """Same tensor statistics → identical simulated timeline, whether
        the numerics actually ran or not."""
        t = random_sparse((40, 30, 20), nnz=600, seed=4)
        concrete = cstf(t, rank=4, update="cuadmm", max_iters=2, compute_fit=False)
        analytic = cstf(
            TensorStats.from_coo(t), rank=4, update="cuadmm", max_iters=2, compute_fit=False
        )
        for phase in PHASES:
            assert analytic.timeline.seconds(phase) == pytest.approx(
                concrete.timeline.seconds(phase), rel=1e-12
            ), phase

    def test_gpu_faster_than_cpu_at_scale(self):
        stats = TensorStats.from_dims((319_686, 28_153_045, 1_607_191, 731), 112_890_310)
        gpu = cstf(stats, rank=32, update="cuadmm", device="a100", max_iters=1)
        cpu = cstf(stats, rank=32, update="admm", device="cpu", mttkrp_format="csf", max_iters=1)
        assert gpu.per_iteration_seconds() < cpu.per_iteration_seconds()


class TestWarmStart:
    def test_warm_start_from_model(self, tensor):
        cold = cstf(tensor, rank=3, update="cuadmm", max_iters=10, seed=0)
        warm = cstf(tensor, rank=3, update="cuadmm", max_iters=3,
                    init_factors=cold.kruskal)
        assert warm.fits[0] >= cold.fits[-1] - 1e-6

    def test_warm_start_from_factor_list(self, tensor):
        import numpy as np

        rng = np.random.default_rng(0)
        init = [rng.random((d, 3)) for d in tensor.shape]
        res = cstf(tensor, rank=3, update="cuadmm", max_iters=2, init_factors=init)
        assert np.isfinite(res.fits).all()

    def test_shape_mismatch_rejected(self, tensor):
        import numpy as np

        bad = [np.ones((99, 3)) for _ in tensor.shape]
        with pytest.raises(ValueError, match="warm-start factor"):
            cstf(tensor, rank=3, init_factors=bad)

    def test_model_rank_mismatch_rejected(self, tensor):
        cold = cstf(tensor, rank=3, max_iters=2)
        with pytest.raises(ValueError, match="warm-start model"):
            cstf(tensor, rank=4, init_factors=cold.kruskal)

    def test_negative_init_clipped_for_nonneg_updates(self, tensor):
        import numpy as np

        init = [np.full((d, 3), -1.0) + np.eye(d, 3) * 3 for d in tensor.shape]
        res = cstf(tensor, rank=3, update="cuadmm", max_iters=2, init_factors=init)
        for f in res.kruskal.factors:
            assert (f >= 0).all()
