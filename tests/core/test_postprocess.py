"""Model post-processing: interpretation helpers."""

import numpy as np
import pytest

from repro.core.kruskal import KruskalTensor
from repro.core.postprocess import (
    component_similarity,
    component_strengths,
    effective_rank,
    prune_components,
    top_indices,
)


@pytest.fixture
def model(rng):
    factors = [rng.random((d, 4)) + 0.01 for d in (12, 10, 8)]
    weights = np.array([10.0, 5.0, 1.0, 0.01])
    return KruskalTensor(factors, weights)


class TestTopIndices:
    def test_returns_strongest(self, model):
        idx = top_indices(model, 0, 0, k=3)
        column = model.factors[0][:, 0]
        assert set(idx) == set(np.argsort(column)[::-1][:3])
        # Descending order.
        assert list(column[idx]) == sorted(column[idx], reverse=True)

    def test_k_capped_at_dim(self, model):
        assert top_indices(model, 2, 1, k=100).shape == (8,)

    def test_component_validated(self, model):
        with pytest.raises(ValueError):
            top_indices(model, 0, 9)


class TestStrengths:
    def test_sums_to_one(self, model):
        s = component_strengths(model)
        assert s.sum() == pytest.approx(1.0)
        assert (s >= 0).all()

    def test_ordering_follows_weights_for_normalized(self, rng):
        factors = [rng.random((6, 3)) for _ in range(2)]
        factors = [f / np.linalg.norm(f, axis=0) for f in factors]
        model = KruskalTensor(factors, np.array([5.0, 2.0, 1.0]))
        s = component_strengths(model)
        assert s[0] > s[1] > s[2]

    def test_zero_model(self):
        model = KruskalTensor([np.zeros((4, 2)), np.zeros((3, 2))])
        assert component_strengths(model).sum() == 0.0


class TestEffectiveRank:
    def test_counts_strong_components(self, model):
        # Weight 0.01 of total ~16: well below a 5% threshold.
        assert effective_rank(model, threshold=0.05) == 3

    def test_threshold_validated(self, model):
        with pytest.raises(ValueError):
            effective_rank(model, threshold=1.5)


class TestSimilarity:
    def test_duplicate_components_flagged(self, rng):
        a = rng.random((10, 1))
        b = rng.random((8, 1))
        dup = KruskalTensor([np.hstack([a, a]), np.hstack([b, b])])
        sim = component_similarity(dup)
        assert sim[0, 1] == pytest.approx(1.0)

    def test_orthogonal_components_near_zero(self):
        f0 = np.eye(6)[:, :2]
        f1 = np.eye(5)[:, :2]
        sim = component_similarity(KruskalTensor([f0, f1]))
        assert sim[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_symmetric(self, model):
        sim = component_similarity(model)
        assert np.allclose(sim, sim.T)


class TestPrune:
    def test_keep_count(self, model):
        pruned = prune_components(model, keep=2)
        assert pruned.rank == 2
        # The two strongest (weights 10 and 5) survive.
        assert set(pruned.weights) == {10.0, 5.0}

    def test_threshold(self, model):
        pruned = prune_components(model, threshold=0.03)
        assert pruned.rank == 3

    def test_kept_components_unchanged(self, model):
        pruned = prune_components(model, keep=4)
        assert np.allclose(pruned.full(), model.full())

    def test_exactly_one_criterion(self, model):
        with pytest.raises(ValueError):
            prune_components(model)
        with pytest.raises(ValueError):
            prune_components(model, keep=2, threshold=0.1)

    def test_over_pruning_rejected(self, model):
        with pytest.raises(ValueError):
            prune_components(model, threshold=0.999)

    def test_pruned_model_approximates_original(self, model):
        """Dropping only the 0.01-weight component barely changes the
        reconstruction."""
        pruned = prune_components(model, keep=3)
        rel = np.linalg.norm(pruned.full() - model.full()) / np.linalg.norm(model.full())
        assert rel < 0.01
