"""KruskalTensor model and factor match score."""

import numpy as np
import pytest

from repro.core.kruskal import KruskalTensor, factor_match_score
from repro.tensor.coo import SparseTensor


@pytest.fixture
def model(rng):
    return KruskalTensor([rng.random((d, 3)) for d in (8, 7, 6)], rng.random(3) + 0.5)


class TestBasics:
    def test_properties(self, model):
        assert model.shape == (8, 7, 6)
        assert model.rank == 3
        assert model.ndim == 3

    def test_default_weights(self, rng):
        m = KruskalTensor([rng.random((4, 2)), rng.random((5, 2))])
        assert np.array_equal(m.weights, [1.0, 1.0])

    def test_rank_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="rank"):
            KruskalTensor([rng.random((4, 2)), rng.random((5, 3))])

    def test_weight_length_validated(self, rng):
        with pytest.raises(ValueError, match="length-R"):
            KruskalTensor([rng.random((4, 2))], np.ones(3))


class TestReconstruction:
    def test_full_matches_manual(self, rng):
        a, b = rng.random((3, 2)), rng.random((4, 2))
        w = np.array([2.0, 0.5])
        m = KruskalTensor([a, b], w)
        manual = sum(w[r] * np.outer(a[:, r], b[:, r]) for r in range(2))
        assert np.allclose(m.full(), manual)

    def test_values_at_matches_full(self, model, rng):
        idx = np.column_stack([rng.integers(0, d, 20) for d in model.shape])
        dense = model.full()
        assert np.allclose(model.values_at(idx), dense[tuple(idx.T)])

    def test_norm_sq_matches_dense(self, model):
        assert model.norm_sq() == pytest.approx(np.linalg.norm(model.full()) ** 2)

    def test_inner_with_sparse_matches_dense(self, model, rng):
        dense = model.full()
        t = SparseTensor.from_dense(np.where(rng.random(model.shape) < 0.3, dense, 0.0))
        assert model.inner_with_sparse(t) == pytest.approx(
            float((t.to_dense() * dense).sum())
        )

    def test_shape_mismatch_rejected(self, model):
        t = SparseTensor(np.zeros((1, 3), dtype=np.int64), np.ones(1), (9, 9, 9))
        with pytest.raises(ValueError, match="shape"):
            model.inner_with_sparse(t)


class TestFit:
    def test_perfect_fit(self, model):
        t = SparseTensor.from_dense(model.full())
        assert model.fit(t) == pytest.approx(1.0, abs=1e-6)

    def test_residual_nonnegative(self, model, rng):
        t = SparseTensor.from_dense(rng.random(model.shape))
        assert model.residual_norm_sq(t) >= 0.0

    def test_fit_of_zero_model_is_zero(self, rng):
        t = SparseTensor.from_dense(rng.random((4, 4)) + 0.1)
        zero = KruskalTensor([np.zeros((4, 1)), np.zeros((4, 1))])
        assert zero.fit(t) == pytest.approx(0.0)

    def test_fit_against_zero_tensor_rejected(self, model):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), model.shape)
        with pytest.raises(ValueError, match="all-zero"):
            model.fit(t)


class TestNormalized:
    def test_reconstruction_preserved(self, model):
        assert np.allclose(model.normalized().full(), model.full())

    def test_unit_columns(self, model):
        normed = model.normalized()
        for f in normed.factors:
            assert np.allclose(np.linalg.norm(f, axis=0), 1.0)


class TestFactorMatchScore:
    def test_identity(self, model):
        assert factor_match_score(model, model) == pytest.approx(1.0)

    def test_permutation_invariant(self, model):
        perm = [2, 0, 1]
        permuted = KruskalTensor(
            [f[:, perm] for f in model.factors], model.weights[perm]
        )
        assert factor_match_score(model, permuted) == pytest.approx(1.0)

    def test_scaling_invariant(self, model):
        scaled = KruskalTensor(
            [f * np.array([2.0, 0.5, 3.0]) for f in model.factors], model.weights
        )
        assert factor_match_score(model, scaled) == pytest.approx(1.0)

    def test_unrelated_models_score_low(self, rng):
        a = KruskalTensor([np.eye(6)[:, :3], np.eye(6)[:, :3]])
        b = KruskalTensor([np.eye(6)[:, 3:], np.eye(6)[:, 3:]])
        assert factor_match_score(a, b) < 0.1

    def test_shape_mismatch_rejected(self, model, rng):
        other = KruskalTensor([rng.random((9, 3)), rng.random((7, 3)), rng.random((6, 3))])
        with pytest.raises(ValueError):
            factor_match_score(model, other)
