"""Streaming cSTF: incremental tracking of time-sliced sparse tensors."""

import numpy as np
import pytest

from repro.core.kruskal import KruskalTensor, factor_match_score
from repro.streaming import StreamingCstf
from repro.tensor.coo import SparseTensor


def _make_stream(spatial, rank, steps, seed=0, drift=0.0):
    """Yield (slice, truth_factors) from a (possibly drifting) CP model."""
    rng = np.random.default_rng(seed)
    factors = [rng.exponential(size=(d, rank)) for d in spatial]
    for _ in range(steps):
        if drift > 0.0:
            for f in factors:
                f += drift * rng.normal(size=f.shape)
                np.maximum(f, 1e-6, out=f)
        weights = np.abs(rng.normal(size=rank)) + 0.1
        slab = np.einsum("ir,jr,r->ij", factors[0], factors[1], weights)
        yield SparseTensor.from_dense(slab), [f.copy() for f in factors]


class TestBasics:
    def test_shape_validation(self):
        stream = StreamingCstf((10, 8), rank=2)
        wrong = SparseTensor.from_dense(np.ones((9, 8)))
        with pytest.raises(ValueError, match="slice shape"):
            stream.ingest(wrong)

    def test_bad_forgetting_rejected(self):
        with pytest.raises(ValueError, match="forgetting"):
            StreamingCstf((10, 8), rank=2, forgetting=0.0)

    def test_model_before_ingest_rejected(self):
        with pytest.raises(ValueError, match="no slices"):
            StreamingCstf((10, 8), rank=2).model()

    def test_temporal_factor_grows(self):
        stream = StreamingCstf((10, 8), rank=2, seed=0)
        for slab, _ in _make_stream((10, 8), 2, steps=5, seed=1):
            stream.ingest(slab)
        assert stream.temporal_factor().shape == (5, 2)
        assert stream.steps_ingested == 5
        assert stream.model().shape == (10, 8, 5)

    def test_factors_stay_normalized_and_nonneg(self):
        stream = StreamingCstf((12, 9), rank=3, seed=0)
        for slab, _ in _make_stream((12, 9), 3, steps=10, seed=2):
            stream.ingest(slab)
        for f in stream.factors:
            assert (f >= 0).all()
            assert np.allclose(np.linalg.norm(f, axis=0), 1.0)

    def test_simulated_time_charged(self):
        stream = StreamingCstf((12, 9), rank=3, seed=0)
        steps = [stream.ingest(s) for s, _ in _make_stream((12, 9), 3, steps=3, seed=3)]
        assert all(st.seconds > 0 for st in steps)
        assert stream.executor.timeline.total_seconds() == pytest.approx(
            sum(st.seconds for st in steps)
        )


class TestTracking:
    @pytest.mark.parametrize("update", ["cuadmm", "hals", "mu"])
    def test_converges_to_static_truth(self, update):
        spatial, rank = (25, 20), 3
        stream = StreamingCstf(spatial, rank=rank, update=update, seed=1,
                               inner_iters=8, forgetting=0.95)
        truth = None
        fits = []
        for slab, factors in _make_stream(spatial, rank, steps=90, seed=4):
            fits.append(stream.ingest(slab).slice_fit)
            truth = factors
        late = float(np.mean(fits[-10:]))
        early = float(np.mean(fits[:10]))
        assert late > early + 0.05, f"{update}: no improvement ({early:.2f}->{late:.2f})"
        assert late > 0.8, update
        fms = factor_match_score(
            KruskalTensor(list(stream.factors)), KruskalTensor(truth)
        )
        # HALS does a single rank sweep per step and converges more slowly.
        assert fms > (0.85 if update == "hals" else 0.9), update

    def test_tracks_drifting_model(self):
        """With forgetting, the stream keeps fitting a slowly drifting
        ground truth rather than being anchored to the past."""
        spatial, rank = (20, 16), 2
        stream = StreamingCstf(spatial, rank=rank, seed=1, inner_iters=8,
                               forgetting=0.9)
        fits = []
        for slab, _ in _make_stream(spatial, rank, steps=120, seed=5, drift=0.01):
            fits.append(stream.ingest(slab).slice_fit)
        assert float(np.mean(fits[-15:])) > 0.75

    def test_refresh_every_reduces_cost(self):
        spatial, rank = (20, 16), 2
        every = StreamingCstf(spatial, rank=rank, seed=1, refresh_every=1)
        lazy = StreamingCstf(spatial, rank=rank, seed=1, refresh_every=4)
        for slab, _ in _make_stream(spatial, rank, steps=12, seed=6):
            every.ingest(slab)
        for slab, _ in _make_stream(spatial, rank, steps=12, seed=6):
            lazy.ingest(slab)
        assert (
            lazy.executor.timeline.total_seconds()
            < every.executor.timeline.total_seconds()
        )

    def test_streaming_cheaper_than_refit(self):
        """The point of streaming: an ingest step costs far less simulated
        time than refitting the accumulated tensor from scratch."""
        from repro.core import cstf

        spatial, rank = (25, 20), 3
        stream = StreamingCstf(spatial, rank=rank, seed=1)
        slabs = [s for s, _ in _make_stream(spatial, rank, steps=30, seed=7)]
        last_step = None
        for slab in slabs:
            last_step = stream.ingest(slab)

        # Refit the full 30-slice tensor from scratch with the batch driver.
        idx = []
        vals = []
        for t, slab in enumerate(slabs):
            coords = np.column_stack(
                [slab.indices, np.full(slab.nnz, t, dtype=np.int64)]
            )
            idx.append(coords)
            vals.append(slab.values)
        full = SparseTensor(np.vstack(idx), np.concatenate(vals), spatial + (30,))
        refit = cstf(full, rank=rank, update="cuadmm", max_iters=10, compute_fit=False)

        assert last_step.seconds < 0.2 * refit.timeline.total_seconds()


class TestCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        stream = StreamingCstf((14, 11), rank=2, seed=3)
        slabs = list(_make_stream((14, 11), 2, steps=8, seed=8))
        for slab, _ in slabs[:5]:
            stream.ingest(slab)
        path = tmp_path / "ckpt.npz"
        stream.save(path)

        resumed = StreamingCstf.load(path)
        assert resumed.steps_ingested == 5
        for a, b in zip(resumed.factors, stream.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(resumed.temporal_factor(), stream.temporal_factor())

        # Resumed stream continues deterministically like the original.
        for slab, _ in slabs[5:]:
            s_orig = stream.ingest(slab)
            s_res = resumed.ingest(slab)
            assert s_res.slice_fit == pytest.approx(s_orig.slice_fit, rel=1e-10)

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValueError, match="checkpoint"):
            StreamingCstf.load(path)

    def test_load_restores_configuration(self, tmp_path):
        """Regression: load() used to rebuild the stream with the default
        update/device/inner_iters, so a HALS-on-CPU stream silently resumed
        as cuADMM-on-A100 and tracked differently from the original."""
        stream = StreamingCstf((12, 9), rank=2, seed=2, update="hals", device="cpu")
        slabs = list(_make_stream((12, 9), 2, steps=6, seed=9))
        for slab, _ in slabs[:3]:
            stream.ingest(slab)
        path = tmp_path / "ckpt.npz"
        stream.save(path)

        resumed = StreamingCstf.load(path)
        assert resumed.update.name == "hals"
        assert resumed.executor.device.name == stream.executor.device.name
        for slab, _ in slabs[3:]:
            s_orig = stream.ingest(slab)
            s_res = resumed.ingest(slab)
            assert s_res.slice_fit == pytest.approx(s_orig.slice_fit, rel=1e-12)

    def test_load_restores_inner_iters_and_honors_overrides(self, tmp_path):
        stream = StreamingCstf((10, 8), rank=2, seed=1, inner_iters=7)
        for slab, _ in _make_stream((10, 8), 2, steps=2, seed=10):
            stream.ingest(slab)
        path = tmp_path / "ckpt.npz"
        stream.save(path)

        assert StreamingCstf.load(path).update.inner_iters == 7
        # Explicit arguments still beat the persisted configuration.
        overridden = StreamingCstf.load(path, update="mu", device="cpu")
        assert overridden.update.name == "mu"
        assert overridden.executor.device.name != stream.executor.device.name


class TestDegenerateSlices:
    def test_all_zero_slice_skipped_and_logged(self):
        stream = StreamingCstf((10, 8), rank=2, seed=0)
        factors_before = [f.copy() for f in stream.factors]
        step = stream.ingest(SparseTensor.from_dense(np.zeros((10, 8))))
        assert step.skipped
        assert step.seconds == 0.0
        assert step.slice_fit == 1.0  # trivially explained: nothing to model
        assert stream.steps_ingested == 1
        # The model is untouched; only a zero temporal row keeps the time
        # axis aligned with the slice sequence.
        for before, after in zip(factors_before, stream.factors):
            assert np.array_equal(before, after)
        assert np.array_equal(stream.temporal_factor(), np.zeros((1, 2)))
        (event,) = list(stream.events)
        assert event.kind == "slice_skipped"
        assert event.iteration == 0

    def test_nonfinite_slice_skipped_without_poisoning_history(self):
        stream = StreamingCstf((10, 8), rank=2, seed=0)
        healthy = list(_make_stream((10, 8), 2, steps=3, seed=4))
        stream.ingest(healthy[0][0])
        hist_before = [h.copy() for h in stream._hist_mttkrp]

        corrupt = healthy[1][0]
        corrupt._values = corrupt._values.copy()
        corrupt._values[0] = np.nan  # simulate in-flight corruption
        step = stream.ingest(corrupt)
        assert step.skipped
        assert step.slice_fit == 0.0
        for before, after in zip(hist_before, stream._hist_mttkrp):
            assert np.array_equal(before, after)
        assert np.isfinite(stream._hist_temporal_gram).all()

        # The stream keeps working on the next healthy slice.
        good = stream.ingest(healthy[2][0])
        assert not good.skipped
        assert np.isfinite(good.slice_fit)
        assert stream.temporal_factor().shape == (3, 2)
        assert np.array_equal(stream.temporal_factor()[1], np.zeros(2))
        assert len(stream.events.of_kind("slice_skipped")) == 1

    def test_skipped_steps_charge_no_simulated_time(self):
        stream = StreamingCstf((10, 8), rank=2, seed=0)
        stream.ingest(SparseTensor.from_dense(np.zeros((10, 8))))
        assert stream.executor.timeline.total_seconds() == 0.0


class TestShardedIngest:
    """Satellite: EngineConfig.shards routes history accumulation through
    the sharded engine path, bit-identical to the serial seed path."""

    def _run(self, engine):
        stream = StreamingCstf((15, 11), rank=3, seed=4, engine=engine)
        for slab, _ in _make_stream((15, 11), 3, steps=6, seed=4):
            stream.ingest(slab)
        model = stream.model()
        return model.factors, model.weights

    def test_sharded_matches_serial_bitwise(self):
        base_f, base_w = self._run(engine=None)
        for shards in (2, 3):
            f, w = self._run(engine={"shards": shards})
            assert np.array_equal(base_w, w)
            for a, b in zip(base_f, f):
                assert np.array_equal(a, b), shards

    def test_engine_string_setting_resolves(self):
        base_f, base_w = self._run(engine=None)
        f, w = self._run(engine="sharded")
        assert np.array_equal(base_w, w)
        for a, b in zip(base_f, f):
            assert np.array_equal(a, b)

    def test_engine_survives_save_load(self, tmp_path):
        stream = StreamingCstf((12, 9), rank=2, seed=2, engine="sharded")
        for slab, _ in _make_stream((12, 9), 2, steps=3, seed=2):
            stream.ingest(slab)
        path = tmp_path / "stream.npz"
        stream.save(path)
        loaded = StreamingCstf.load(path)
        assert loaded.engine is not None
        assert loaded.engine.shards == stream.engine.shards
        for a, b in zip(loaded.factors, stream.factors):
            assert np.array_equal(a, b)
        # Explicit argument beats the persisted setting.
        assert StreamingCstf.load(path, engine="off").engine is None
