"""ADMM/cuADMM: numerical equivalence of all four optimization configs,
constraint satisfaction, convergence behavior, and cost ordering."""

import numpy as np
import pytest

from repro.kernels.gram import gram_chain
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray
from repro.updates.admm import AdmmUpdate, cuadmm


@pytest.fixture
def subproblem(small3, factors3):
    """A realistic per-mode subproblem (M, S, H) from a real tensor."""
    mode = 0
    m_mat = mttkrp_coo(small3, factors3, mode)
    s_mat = gram_chain(factors3, skip=mode)
    h = np.array(factors3[mode])
    return mode, m_mat, s_mat, h, small3.shape


def _run(update, subproblem, device="a100"):
    mode, m_mat, s_mat, h, shape = subproblem
    ex = Executor(device)
    state = update.init_state(shape, h.shape[1])
    with ex.phase("UPDATE"):
        out = update.update(ex, mode, m_mat, s_mat, h, state)
    return out, ex, state


ALL_CONFIGS = [
    dict(),
    dict(fuse_ops=True),
    dict(preinvert=True),
    dict(fuse_ops=True, preinvert=True),
]


class TestNumericalEquivalence:
    @pytest.mark.parametrize("config", ALL_CONFIGS[1:])
    def test_optimizations_change_cost_not_results(self, subproblem, config):
        """OF and PI are performance transforms: iterates must agree with
        the baseline to floating-point accuracy."""
        base, _, _ = _run(AdmmUpdate(inner_iters=10), subproblem)
        opt, _, _ = _run(AdmmUpdate(inner_iters=10, **config), subproblem)
        assert np.allclose(base, opt, rtol=1e-8, atol=1e-10)

    def test_cuadmm_factory_is_both_flags(self):
        u = cuadmm()
        assert u.fuse_ops and u.preinvert
        assert u.name == "cuadmm"

    def test_names(self):
        assert AdmmUpdate().name == "admm"
        assert AdmmUpdate(fuse_ops=True).name == "admm+OF"
        assert AdmmUpdate(preinvert=True).name == "admm+PI"


class TestConstraints:
    def test_nonneg_output(self, subproblem):
        out, _, _ = _run(cuadmm(inner_iters=10), subproblem)
        assert (out >= 0).all()

    def test_l1_sparsifies(self, subproblem):
        dense_out, _, _ = _run(AdmmUpdate(constraint="unconstrained"), subproblem)
        sparse_out, _, _ = _run(
            AdmmUpdate(constraint="l1", constraint_params={"alpha": 5.0}), subproblem
        )
        assert np.mean(sparse_out == 0.0) > np.mean(dense_out == 0.0)

    def test_box_constraint(self, subproblem):
        out, _, _ = _run(
            AdmmUpdate(constraint="box", constraint_params={"lo": 0.0, "hi": 0.5}),
            subproblem,
        )
        assert (out >= 0).all() and (out <= 0.5).all()

    def test_unconstrained_approaches_least_squares(self, subproblem):
        """With no constraint, ADMM converges to the exact LS solution."""
        mode, m_mat, s_mat, h, shape = subproblem
        out, _, _ = _run(AdmmUpdate(constraint="unconstrained", inner_iters=200), subproblem)
        rho = np.trace(s_mat) / h.shape[1]
        exact = np.linalg.solve(s_mat, m_mat.T).T
        assert np.allclose(out, exact, rtol=1e-2, atol=1e-3)


class TestConvergence:
    def test_residual_decreases(self, subproblem):
        """More inner iterations move the iterate closer to the fixed point."""
        mode, m_mat, s_mat, h, shape = subproblem
        ref, _, _ = _run(AdmmUpdate(inner_iters=300), subproblem)
        few, _, _ = _run(AdmmUpdate(inner_iters=2), subproblem)
        many, _, _ = _run(AdmmUpdate(inner_iters=50), subproblem)
        assert np.linalg.norm(many - ref) < np.linalg.norm(few - ref)

    def test_tolerance_stops_early(self, subproblem):
        _, ex_fixed, _ = _run(AdmmUpdate(inner_iters=100, tol=0.0), subproblem)
        _, ex_tol, _ = _run(AdmmUpdate(inner_iters=100, tol=1e-3), subproblem)
        assert (
            ex_tol.timeline.kernel_seconds.get("dgeam_aux", 0.0)
            < ex_fixed.timeline.kernel_seconds.get("dgeam_aux", 0.0)
        )

    def test_dual_state_warm_start(self, subproblem):
        """The dual variable persists in state and is reused next visit."""
        mode, m_mat, s_mat, h, shape = subproblem
        update = AdmmUpdate(inner_iters=5)
        state = update.init_state(shape, h.shape[1])
        ex = Executor("a100")
        update.update(ex, mode, m_mat, s_mat, h, state)
        assert state["dual"][mode].any()

    def test_requires_state_when_concrete(self, subproblem):
        mode, m_mat, s_mat, h, _ = subproblem
        with pytest.raises(ValueError, match="state"):
            AdmmUpdate().update(Executor("a100"), mode, m_mat, s_mat, h, {})


class TestCostOrdering:
    def _update_seconds(self, update, rows=200_000, rank=32, device="h100"):
        ex = Executor(device)
        with ex.phase("UPDATE"):
            update.update(
                ex, 0, SymArray((rows, rank)), SymArray((rank, rank)), SymArray((rows, rank)), {}
            )
        return ex.timeline.seconds("UPDATE")

    def test_each_optimization_helps_on_gpu(self):
        base = self._update_seconds(AdmmUpdate())
        of = self._update_seconds(AdmmUpdate(fuse_ops=True))
        pi = self._update_seconds(AdmmUpdate(preinvert=True))
        both = self._update_seconds(cuadmm())
        assert of < base
        assert pi < base
        assert both < min(of, pi)

    def test_preinversion_matters_less_on_cpu(self):
        """CPUs handle triangular solves well (high trsm efficiency), so PI
        buys much less than on the GPU — the reason SPLATT never needed it."""
        gpu_gain = self._update_seconds(AdmmUpdate(), device="h100") / self._update_seconds(
            AdmmUpdate(preinvert=True), device="h100"
        )
        cpu_gain = self._update_seconds(AdmmUpdate(), device="cpu") / self._update_seconds(
            AdmmUpdate(preinvert=True), device="cpu"
        )
        assert gpu_gain > cpu_gain

    def test_fixed_iterations_in_symbolic_mode(self):
        """NaN residuals must never trigger early exit."""
        ex = Executor("a100")
        update = AdmmUpdate(inner_iters=7, tol=0.5)
        update.update(ex, 0, SymArray((100, 8)), SymArray((8, 8)), SymArray((100, 8)), {})
        # 7 iterations × 1 fused-free aux kernel each.
        assert ex.timeline.kernel_seconds["dgeam_aux"] > 0
        count = sum(1 for _ in range(1))  # records not kept; check via launches
        assert ex.timeline.launch_count > 7  # at least one kernel per iteration

    def test_symbolic_concrete_same_cost(self, subproblem):
        """Paper-scale analytic runs must charge exactly what a concrete run
        charges at equal shape (the analytic-mode contract)."""
        mode, m_mat, s_mat, h, shape = subproblem
        update = AdmmUpdate(inner_iters=4)
        _, ex_c, _ = _run(update, subproblem)
        ex_s = Executor("a100")
        update.update(
            ex_s,
            mode,
            SymArray(m_mat.shape),
            SymArray(s_mat.shape),
            SymArray(h.shape),
            {},
        )
        assert ex_s.timeline.total_seconds() == pytest.approx(
            ex_c.timeline.total_seconds(), rel=1e-12
        )
