"""ANLS-BPP update (PLANC's exact NNLS solver) in the driver."""

import numpy as np
import pytest

from repro.core import cstf
from repro.kernels.gram import gram_chain
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.tensor.synthetic import planted_sparse_cp
from repro.updates.anls import AnlsBppUpdate
from repro.updates.base import get_update


@pytest.fixture
def subproblem(small3, factors3):
    mode = 0
    m_mat = mttkrp_coo(small3, factors3, mode)
    s_mat = gram_chain(factors3, skip=mode)
    return mode, m_mat, s_mat, np.array(factors3[mode])


class TestUpdate:
    def test_registered(self):
        assert isinstance(get_update("anls_bpp"), AnlsBppUpdate)

    def test_exact_kkt_solution(self, subproblem):
        mode, m_mat, s_mat, h = subproblem
        out = AnlsBppUpdate().update(Executor("cpu"), mode, m_mat, s_mat, h, {})
        grad = out @ s_mat - m_mat
        assert (out >= 0).all()
        assert (grad[out <= 1e-12] > -1e-6).all()
        assert np.abs(grad[out > 1e-12]).max() < 1e-5 * np.abs(m_mat).max()

    def test_beats_admm_objective_per_call(self, subproblem, small3):
        """Exact NNLS reaches a lower per-mode objective than 10 ADMM
        iterations from the same start (that is the ANLS value proposition;
        ADMM compensates with cheaper iterations)."""
        from repro.updates.admm import AdmmUpdate

        mode, m_mat, s_mat, h = subproblem

        def objective(x):
            return 0.5 * np.einsum("ir,rs,is->", x, s_mat, x) - np.einsum(
                "ir,ir->", x, m_mat
            )

        exact = AnlsBppUpdate().update(Executor("cpu"), mode, m_mat, s_mat, h, {})
        admm = AdmmUpdate(inner_iters=10)
        admm_out = admm.update(
            Executor("cpu"), mode, m_mat, s_mat, h, admm.init_state(small3.shape, h.shape[1])
        )
        assert objective(exact) <= objective(admm_out) + 1e-8

    def test_symbolic_mode(self):
        out = AnlsBppUpdate().update(
            Executor("a100"), 0, SymArray((100, 6)), SymArray((6, 6)), SymArray((100, 6)), {}
        )
        assert is_symbolic(out)

    def test_symbolic_charges_time(self):
        ex = Executor("a100")
        AnlsBppUpdate().update(
            ex, 0, SymArray((100, 6)), SymArray((6, 6)), SymArray((100, 6)), {}
        )
        assert ex.timeline.total_seconds() > 0
        assert "bpp_batched_solve" in ex.timeline.kernel_seconds


class TestDriver:
    def test_converges_on_planted(self):
        tensor, _ = planted_sparse_cp((20, 16, 12), rank=3, seed=9)
        res = cstf(tensor, rank=3, update="anls_bpp", max_iters=25, seed=0)
        assert res.fits[-1] > 0.95

    def test_faster_convergence_per_iteration_than_mu(self):
        tensor, _ = planted_sparse_cp((20, 16, 12), rank=3, seed=10)
        anls = cstf(tensor, rank=3, update="anls_bpp", max_iters=8, seed=0)
        mu = cstf(tensor, rank=3, update="mu", max_iters=8, seed=0)
        assert anls.fits[-1] > mu.fits[-1]
